//! Quickstart: spin up a Fabric++ network, run a few transfers, inspect
//! the outcome.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```


use fabric_common::{Key, PipelineConfig, Value};
use fabricpp::{chaincode_fn, NetworkBuilder};

fn main() {
    // A tiny asset-transfer chaincode: args = [from u64][to u64][amount i64].
    let transfer = chaincode_fn("transfer", |ctx, args| {
        if args.len() != 24 {
            return Err("args must be 24 bytes".into());
        }
        let from = Key::composite("acct", u64::from_le_bytes(args[0..8].try_into().unwrap()));
        let to = Key::composite("acct", u64::from_le_bytes(args[8..16].try_into().unwrap()));
        let amount = i64::from_le_bytes(args[16..24].try_into().unwrap());
        let fb = ctx.get_i64(&from).map_err(|e| e.to_string())?.ok_or("unknown sender")?;
        let tb = ctx.get_i64(&to).map_err(|e| e.to_string())?.ok_or("unknown receiver")?;
        if fb < amount {
            return Err("insufficient funds".into());
        }
        ctx.put_i64(from, fb - amount);
        ctx.put_i64(to, tb + amount);
        Ok(())
    });

    // Two organizations with two peers each — the paper's topology — and
    // 100 accounts with 1000 units each.
    let net = NetworkBuilder::new()
        .orgs(2)
        .peers_per_org(2)
        .pipeline(PipelineConfig::fabric_pp())
        .deploy(transfer)
        .genesis((0..100).map(|i| (Key::composite("acct", i), Value::from_i64(1000))))
        .build()
        .expect("network construction");

    // Fire 200 transfers from 2 concurrent clients.
    let mut handles = Vec::new();
    for c in 0..2u64 {
        let client = net.client(0);
        handles.push(std::thread::spawn(move || {
            for i in 0..100u64 {
                let from = (c * 50 + i) % 100;
                let to = (from + 7) % 100;
                let mut args = Vec::with_capacity(24);
                args.extend_from_slice(&from.to_le_bytes());
                args.extend_from_slice(&to.to_le_bytes());
                args.extend_from_slice(&5i64.to_le_bytes());
                client.submit("transfer", args);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // Drain the pipeline and print the report.
    let report = net.finish();
    println!("elapsed:          {:?}", report.elapsed);
    println!("submitted:        {}", report.stats.submitted);
    println!("valid:            {}", report.stats.valid);
    println!("aborted:          {}", report.stats.aborted());
    println!("chain height:     {}", report.block_heights[0]);
    println!("network messages: {} ({} bytes)", report.net_messages, report.net_bytes);
    println!("avg latency:      {:?}", report.latency.avg);
    assert_eq!(report.stats.finished(), report.stats.submitted);
}
