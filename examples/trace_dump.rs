//! Transaction flight recorder tour: run the paper's Appendix A scenario
//! under Fabric++ with tracing enabled, then dump the recorded lifecycle
//! through each exporter (JSONL, Chrome trace-event, Prometheus text).
//!
//! ```text
//! cargo run --example trace_dump
//! ```
//!
//! Pipe the Chrome document into a file and load it at
//! <https://ui.perfetto.dev> to see the per-block timeline.

use std::sync::Arc;

use fabricpp_suite::common::{Key, PhaseSummary, PipelineConfig, Value};
use fabricpp_suite::fabric::sync::ProposeOutcome;
use fabricpp_suite::fabric::{chaincode_fn, SyncNet};
use fabricpp_suite::trace::{chrome, jsonl, prom, TraceSink};

fn transfer_chaincode() -> Arc<dyn fabricpp_suite::peer::chaincode::Chaincode> {
    chaincode_fn("transfer", |ctx, args| {
        let amount = i64::from_le_bytes(args.try_into().map_err(|_| "bad args")?);
        let bal_a = ctx
            .get_i64(&Key::from("BalA"))
            .map_err(|e| e.to_string())?
            .ok_or("no BalA")?;
        let bal_b = ctx
            .get_i64(&Key::from("BalB"))
            .map_err(|e| e.to_string())?
            .ok_or("no BalB")?;
        ctx.put_i64(Key::from("BalA"), bal_a - amount);
        ctx.put_i64(Key::from("BalB"), bal_b + amount);
        Ok(())
    })
}

fn main() {
    // A bounded ring: ample for this run, drop-oldest beyond that.
    let sink = TraceSink::bounded(4096);
    let genesis = vec![
        (Key::from("BalA"), Value::from_i64(100)),
        (Key::from("BalB"), Value::from_i64(50)),
    ];
    let mut net = SyncNet::new_traced(
        &PipelineConfig::fabric_pp(),
        2,
        2,
        vec![transfer_chaincode()],
        &genesis,
        sink.clone(),
    )
    .expect("network");

    // Two conflicting transfers simulated against the same snapshot: both
    // read and write {BalA, BalB}, a two-cycle the reorderer cannot
    // serialize — Fabric++ early-aborts one at ORDER time instead of
    // shipping it to every peer only to fail validation.
    let t7 = match net.propose(1, "transfer", 30i64.to_le_bytes().to_vec()) {
        ProposeOutcome::Endorsed(tx) => *tx,
        other => panic!("unexpected {other:?}"),
    };
    let t9 = match net.propose(3, "transfer", 50i64.to_le_bytes().to_vec()) {
        ProposeOutcome::Endorsed(tx) => *tx,
        other => panic!("unexpected {other:?}"),
    };
    let (t7_id, t9_id) = (t7.id, t9.id);
    net.submit(t7);
    net.submit(t9);
    net.cut_block().expect("commit").expect("block");

    // A second, conflict-free block so the trace shows a clean commit too.
    let t10 = match net.propose(2, "transfer", 5i64.to_le_bytes().to_vec()) {
        ProposeOutcome::Endorsed(tx) => *tx,
        other => panic!("unexpected {other:?}"),
    };
    let t10_id = t10.id;
    net.submit(t10);
    net.cut_block().expect("commit").expect("block");

    let stats = net.stats();
    let store = net.reporting_peer().store().counters().snapshot();
    let report = sink.report();

    println!("== flight recorder ==");
    println!(
        "{} events retained ({} emitted, {} dropped, capacity {})\n",
        report.len(),
        report.emitted,
        report.dropped,
        report.capacity
    );

    println!("== per-transaction lifecycles ==");
    for (name, id) in [("T7", t7_id), ("T9", t9_id), ("T10", t10_id)] {
        println!("{name} ({id}):");
        for ev in report.lifecycle(id) {
            println!("  {}", jsonl::event_to_line(ev));
        }
    }

    println!("\n== JSONL dump (machine-readable, one event per line) ==");
    print!("{}", jsonl::to_string(&report.events));

    println!("\n== Chrome trace-event document (load at ui.perfetto.dev) ==");
    let doc = chrome::to_string(&report.events);
    for line in doc.lines().take(6) {
        println!("{line}");
    }
    println!("... ({} bytes total)", doc.len());

    println!("\n== Prometheus text exposition ==");
    print!("{}", prom::render(&stats, &store, &PhaseSummary::default(), &sink));
}
