//! Ledger persistence and peer recovery: run a workload, persist every
//! committed block to an on-disk log, "crash", then rebuild the ledger and
//! the current state from the log alone — re-verifying hash-chain linkage,
//! data hashes, and even the recorded validation flags.
//!
//! ```bash
//! cargo run --release --example ledger_audit
//! ```

use fabric_common::{Key, PipelineConfig, Value};
use fabric_ledger::FileBlockStore;
use fabric_peer::recovery;
use fabric_statedb::StateStore;
use fabricpp::{chaincode_fn, SyncNet};

fn main() {
    let dir = std::env::temp_dir().join(format!("fabricpp-audit-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let log_path = dir.join("blocks.log");

    let bump = chaincode_fn("bump", |ctx, args| {
        let k = Key::new(args.to_vec());
        let v = ctx.get_i64(&k).map_err(|e| e.to_string())?.unwrap_or(0);
        ctx.put_i64(k, v + 1);
        Ok(())
    });

    // Phase 1: run a Fabric++ network and persist its blocks.
    let mut net = SyncNet::new(
        &PipelineConfig::fabric_pp(),
        2,
        1,
        vec![bump],
        &(0..8).map(|i| (Key::composite("ctr", i), Value::from_i64(0))).collect::<Vec<_>>(),
    )
    .expect("network");

    let mut store = FileBlockStore::open(&log_path).expect("block log");
    // Persist the genesis block the peers installed.
    store.append(&net.reporting_peer().ledger().get(0).unwrap()).unwrap();

    for round in 0..5u64 {
        for client in 0..6u64 {
            let target = Key::composite("ctr", (round + client) % 8);
            net.propose_and_submit(client, "bump", target.as_bytes().to_vec());
        }
        let committed = net.cut_block().expect("cut").expect("block");
        store.append(&committed).unwrap();
        println!(
            "block {}: {} txs, {} valid",
            committed.block.header.number,
            committed.block.txs.len(),
            committed.valid_count()
        );
    }
    store.sync().unwrap();
    let live_tip = net.reporting_peer().ledger().tip_hash();
    drop(net); // "crash"

    // Phase 2: recover from the log alone, re-checking everything.
    println!("\nrecovering from {} …", log_path.display());
    let recovered = recovery::recover_from_log(&log_path, /* recheck_flags = */ true)
        .expect("recovery");
    recovered.ledger.verify_chain().expect("chain audit");
    assert_eq!(recovered.ledger.tip_hash(), live_tip, "recovered chain matches live tip");

    println!("recovered height: {}", recovered.ledger.height());
    let (valid, invalid) = recovered.ledger.tx_totals();
    println!("transactions:     {valid} valid, {invalid} invalid (all retained)");
    let mut total = 0i64;
    for i in 0..8u64 {
        let v = recovered
            .state
            .get(&Key::composite("ctr", i))
            .unwrap()
            .map(|vv| vv.value.as_i64().unwrap())
            .unwrap_or(0);
        total += v;
        println!("  ctr:{i} = {v}");
    }
    // `tx_totals` includes the genesis bootstrap transaction (TxId 0).
    let bumps = valid - 1;
    assert_eq!(total as u64, bumps, "every valid bump is reflected exactly once");
    println!("state rebuilt consistently: {total} bumps == {bumps} valid bump transactions");

    let _ = std::fs::remove_dir_all(&dir);
}
