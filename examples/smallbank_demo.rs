//! Smallbank under contention: vanilla Fabric vs. Fabric++ side by side.
//!
//! Runs the paper's Smallbank workload (write-heavy, skewed account
//! selection) against both pipeline configurations and prints the
//! successful/aborted throughput — a miniature of the paper's Figure 8(c).
//!
//! ```bash
//! cargo run --release --example smallbank_demo
//! ```

use std::time::Duration;

use fabric_common::PipelineConfig;
use fabric_workloads::smallbank::SmallbankChaincode;
use fabric_workloads::{SmallbankConfig, SmallbankWorkload, WorkloadGen};
use fabricpp::NetworkBuilder;

fn run(label: &str, pipeline: PipelineConfig) {
    let cfg = SmallbankConfig {
        users: 10_000,
        p_write: 0.95, // write-heavy, like Figure 8(c)
        s_value: 1.4,  // strong skew — where Fabric++ shines
        seed: 1,
    };
    let genesis = SmallbankWorkload::new(cfg.clone()).genesis();

    let net = NetworkBuilder::new()
        .orgs(2)
        .peers_per_org(2)
        .pipeline(pipeline)
        .deploy(SmallbankChaincode::deployable())
        .genesis(genesis)
        .build()
        .expect("network");

    let duration = Duration::from_secs(3);
    let mut handles = Vec::new();
    for c in 0..4u64 {
        let client = net.client(0);
        let mut gen = SmallbankWorkload::new(SmallbankConfig { seed: cfg.seed + c, ..cfg.clone() });
        handles.push(std::thread::spawn(move || {
            let start = std::time::Instant::now();
            while start.elapsed() < duration {
                client.submit("smallbank", gen.next_args());
                std::thread::sleep(Duration::from_micros(1950)); // ≈512 tps
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let report = net.finish();
    println!(
        "{label:<10} valid {:>6.0}/s   aborted {:>6.0}/s   avg latency {:?}",
        report.stats.valid as f64 / duration.as_secs_f64(),
        report.stats.aborted() as f64 / duration.as_secs_f64(),
        report.latency.avg,
    );
}

fn main() {
    println!("Smallbank, 10k users, Pw=95%, Zipf s=1.4, 4 clients x ~512 tps, 3s:");
    run("fabric", PipelineConfig::vanilla());
    run("fabric++", PipelineConfig::fabric_pp());
}
