//! Standalone exploration of the Fabric++ reordering mechanism
//! (Algorithm 1) on the paper's worked example — §5.1.1, Tables 3–4,
//! Figures 3–5 — printing every intermediate artifact.
//!
//! ```bash
//! cargo run --release --example reordering_explorer
//! ```

use fabric_common::rwset::{rwset_from_keys, ReadWriteSet};
use fabric_common::{Key, Value, Version};
use fabric_reorder::tarjan::strongly_connected_components;
use fabric_reorder::{count_valid_in_order, reorder, ConflictGraph, ReorderConfig};

fn tx(reads: &[usize], writes: &[usize]) -> ReadWriteSet {
    let rk: Vec<Key> = reads.iter().map(|&i| Key::composite("K", i as u64)).collect();
    let wk: Vec<Key> = writes.iter().map(|&i| Key::composite("K", i as u64)).collect();
    rwset_from_keys(&rk, Version::GENESIS, &wk, &Value::from_i64(1))
}

fn main() {
    // Table 3: six transactions over ten unique keys.
    let sets = [
        tx(&[0, 1], &[2]),    // T0
        tx(&[3, 4, 5], &[0]), // T1
        tx(&[6, 7], &[3, 9]), // T2
        tx(&[2, 8], &[1, 4]), // T3
        tx(&[9], &[5, 6, 8]), // T4
        tx(&[], &[7]),        // T5
    ];
    let refs: Vec<&ReadWriteSet> = sets.iter().collect();

    println!("=== Step 1: conflict graph (paper Figure 3) ===");
    let cg = ConflictGraph::build(&refs);
    for (from, to) in cg.edges() {
        println!("  T{from} -> T{to}   (T{from} writes a key T{to} read)");
    }

    println!("\n=== Step 2: strongly connected subgraphs (Figure 4) ===");
    for scc in strongly_connected_components(&cg) {
        let names: Vec<String> = scc.iter().map(|i| format!("T{i}")).collect();
        println!("  {{{}}}", names.join(", "));
    }

    println!("\n=== Steps 3–5: abort cycle members, schedule the rest ===");
    let result = reorder(&refs, &ReorderConfig::default());
    let aborted: Vec<String> = result.aborted.iter().map(|i| format!("T{i}")).collect();
    let schedule: Vec<String> = result.schedule.iter().map(|i| format!("T{i}")).collect();
    println!("  cycles found:    {}", result.stats.cycles);
    println!("  early aborts:    {{{}}}  (Table 4's greedy choice)", aborted.join(", "));
    println!("  final schedule:  {}", schedule.join(" => "));

    let arrival: Vec<usize> = (0..refs.len()).collect();
    println!("\n=== Validation outcome comparison ===");
    println!("  arrival order:   {}/6 valid", count_valid_in_order(&refs, &arrival));
    println!(
        "  reordered:       {}/6 valid ({} aborted at order time)",
        count_valid_in_order(&refs, &result.schedule),
        result.aborted.len()
    );

    assert_eq!(result.schedule, vec![5, 1, 3, 4], "the paper's exact schedule");
    assert_eq!(result.aborted, vec![0, 2], "the paper's exact aborts");
    println!("\nMatches the paper: schedule T5 => T1 => T3 => T4, aborts {{T0, T2}}.");
}
