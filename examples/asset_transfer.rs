//! The paper's Appendix A running example, narrated step by step on the
//! deterministic synchronous harness: organizations A and B move money
//! between `BalA` and `BalB`; a malicious client tampers with a write set
//! and is caught; a stale transaction fails the serializability check.
//!
//! ```bash
//! cargo run --release --example asset_transfer
//! ```

use fabric_common::{Key, PipelineConfig, ValidationCode, Value, Version};
use fabricpp::sync::ProposeOutcome;
use fabricpp::{chaincode_fn, SyncNet};

fn main() {
    let transfer = chaincode_fn("transfer", |ctx, args| {
        let amount = i64::from_le_bytes(args.try_into().map_err(|_| "bad args")?);
        let a = ctx.get_i64(&Key::from("BalA")).map_err(|e| e.to_string())?.ok_or("no BalA")?;
        let b = ctx.get_i64(&Key::from("BalB")).map_err(|e| e.to_string())?.ok_or("no BalB")?;
        ctx.put_i64(Key::from("BalA"), a - amount);
        ctx.put_i64(Key::from("BalB"), b + amount);
        Ok(())
    });

    let genesis = vec![
        (Key::from("BalA"), Value::from_i64(100)),
        (Key::from("BalB"), Value::from_i64(50)),
    ];
    let mut net = SyncNet::new(&PipelineConfig::vanilla(), 2, 2, vec![transfer], &genesis)
        .expect("network");

    println!("=== Simulation phase (paper Fig. 12) ===");
    println!("Initial state: BalA = 100, BalB = 50 (both at {})", Version::GENESIS);

    // T7: the honest transfer of 30.
    let t7 = match net.propose(1, "transfer", 30i64.to_le_bytes().to_vec()) {
        ProposeOutcome::Endorsed(tx) => *tx,
        other => panic!("unexpected: {other:?}"),
    };
    println!(
        "T7 endorsed by {} peers; WS = {{BalA={}, BalB={}}}",
        t7.endorsements.len(),
        t7.rwset.writes.value_of(&Key::from("BalA")).unwrap().unwrap().as_i64().unwrap(),
        t7.rwset.writes.value_of(&Key::from("BalB")).unwrap().unwrap().as_i64().unwrap(),
    );

    // T8: the malicious client swaps in a tampered write set after
    // endorsement (BalA should have decreased!).
    let mut t8 = match net.propose(2, "transfer", 20i64.to_le_bytes().to_vec()) {
        ProposeOutcome::Endorsed(tx) => *tx,
        other => panic!("unexpected: {other:?}"),
    };
    t8.rwset = fabric_common::rwset::rwset_from_keys(
        &[Key::from("BalA"), Key::from("BalB")],
        Version::GENESIS,
        &[Key::from("BalA"), Key::from("BalB")],
        &Value::from_i64(120),
    );
    println!("T8 endorsed, then TAMPERED: client claims WS = {{BalA=120, BalB=120}}");

    // T9: another transfer, simulated against the same pre-T7 state.
    let t9 = match net.propose(3, "transfer", 50i64.to_le_bytes().to_vec()) {
        ProposeOutcome::Endorsed(tx) => *tx,
        other => panic!("unexpected: {other:?}"),
    };
    println!("T9 endorsed against the same (soon stale) state");

    println!("\n=== Ordering phase (paper Fig. 13): block = [T8, T7, T9] ===");
    net.submit(t8);
    net.submit(t7);
    net.submit(t9);

    println!("\n=== Validation & commit phase (paper Fig. 14) ===");
    let block = net.cut_block().expect("commit").expect("block");
    for (tx, code) in block.iter() {
        let verdict = match code {
            ValidationCode::Valid => "VALID",
            ValidationCode::EndorsementFailure => "INVALID (endorsement signature mismatch)",
            ValidationCode::MvccConflict => "INVALID (stale read version)",
            other => panic!("unexpected code {other:?}"),
        };
        println!("  {}: {verdict}", tx.id);
    }

    let store = net.reporting_peer().store();
    let bal_a = store.get(&Key::from("BalA")).unwrap().unwrap();
    let bal_b = store.get(&Key::from("BalB")).unwrap().unwrap();
    println!(
        "\nFinal state: BalA = {} ({}), BalB = {} ({})",
        bal_a.value.as_i64().unwrap(),
        bal_a.version,
        bal_b.value.as_i64().unwrap(),
        bal_b.version,
    );
    assert_eq!(bal_a.value.as_i64(), Some(70));
    assert_eq!(bal_b.value.as_i64(), Some(80));

    let ledger = net.reporting_peer().ledger();
    ledger.verify_chain().expect("chain audit");
    let (valid, invalid) = ledger.tx_totals();
    println!(
        "Ledger: height {}, {valid} valid + {invalid} invalid transactions recorded",
        ledger.height()
    );
}
