//! Root package of the Fabric++ reproduction workspace.
//!
//! Re-exports every workspace crate so the repository-level `examples/` and
//! `tests/` can exercise the full stack through a single dependency.

pub use fabric_chaos as chaos;
pub use fabric_common as common;
pub use fabric_consensus as consensus;
pub use fabric_ledger as ledger;
pub use fabric_net as net;
pub use fabric_ordering as ordering;
pub use fabric_peer as peer;
pub use fabric_reorder as reorder;
pub use fabric_statedb as statedb;
pub use fabric_telemetry as telemetry;
pub use fabric_trace as trace;
pub use fabric_workloads as workloads;
pub use fabricpp as fabric;
