#!/usr/bin/env bash
# Regenerates every table and figure of the paper's evaluation.
# Usage: FABRIC_SECONDS=5 ./run_experiments.sh [outdir]
set -u
OUT="${1:-results}"
mkdir -p "$OUT"
export FABRIC_SECONDS="${FABRIC_SECONDS:-5}"
BIN=target/release
cargo build --release -p fabric-bench

run() {
  name="$1"
  echo "=== $name (FABRIC_SECONDS=$FABRIC_SECONDS) ==="
  "$BIN/$name" > "$OUT/$name.csv" 2>"$OUT/$name.err" && rm -f "$OUT/$name.err"
  cat "$OUT/$name.csv"
}

run tables_1_2_example
run ablation_reorder
run fig15_microbench
run fig16_microbench
run fig01_motivation
run fig10_breakdown
run table08_caliper
run fig07_blocksize
run fig11_scaling
run fig08_smallbank
run fig09_custom_grid
run validation_scaling
run commit_scaling
echo "All experiments written to $OUT/"
