//! Differential property test: [`LatencyRecorder`]'s log-bucketed
//! percentiles against an exact sorted-vector oracle.
//!
//! The recorder's documented contract: `p50`/`p95`/`p99` are within 5%
//! *below* the exact percentile (one log-bucket width) and always inside
//! the exact `[min, max]` envelope — including after merging per-worker
//! recorders, the aggregation mode the hot paths rely on.

use std::time::Duration;

use fabric_common::LatencyRecorder;
use proptest::prelude::*;

/// Exact percentile matching the recorder's definition: the
/// `ceil(count * p)`-th smallest sample (1-indexed).
fn oracle_pct(sorted: &[u64], p: f64) -> u64 {
    let target = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[target.saturating_sub(1).min(sorted.len() - 1)]
}

/// Asserts one recorder against the exact oracle for every documented
/// percentile plus the envelope and ordering invariants.
fn check_against_oracle(r: &LatencyRecorder, samples: &[u64]) -> Result<(), TestCaseError> {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let s = r.summary();
    prop_assert_eq!(s.count, samples.len() as u64);
    prop_assert_eq!(s.min, Duration::from_micros(sorted[0]));
    prop_assert_eq!(s.max, Duration::from_micros(*sorted.last().unwrap()));
    let exact_avg = samples.iter().sum::<u64>() / samples.len() as u64;
    prop_assert_eq!(s.avg, Duration::from_micros(exact_avg));
    prop_assert!(!s.saturated);
    for (label, got, p) in [("p50", s.p50, 0.50), ("p95", s.p95, 0.95), ("p99", s.p99, 0.99)] {
        let got = got.as_micros() as u64;
        let exact = oracle_pct(&sorted, p);
        prop_assert!(
            got >= sorted[0] && got <= *sorted.last().unwrap(),
            "{label}={got} outside [min={}, max={}]",
            sorted[0],
            sorted.last().unwrap()
        );
        prop_assert!(got <= exact, "{label}={got} above exact {exact}");
        prop_assert!(
            (exact as f64) <= (got as f64) * 1.0501 + 1.0,
            "{label}={got} more than 5% below exact {exact}"
        );
    }
    prop_assert!(s.p50 <= s.p95 && s.p95 <= s.p99, "percentiles must be ordered");
    Ok(())
}

proptest! {
    /// Single recorder vs the oracle across wildly skewed magnitudes
    /// (1µs .. ~3h), including duplicate-heavy distributions.
    #[test]
    fn recorder_matches_sorted_oracle(
        samples in proptest::collection::vec(1u64..10_000_000_000, 1..400),
    ) {
        let r = LatencyRecorder::new();
        for &m in &samples {
            r.record(Duration::from_micros(m));
        }
        check_against_oracle(&r, &samples)?;
    }

    /// Merge-of-per-worker-recorders: samples dealt round-robin across
    /// `workers` private recorders, folded into one — the merged summary
    /// must satisfy the same oracle bounds as a single shared recorder.
    #[test]
    fn merged_per_worker_recorders_match_oracle(
        samples in proptest::collection::vec(1u64..10_000_000_000, 1..400),
        workers in 1usize..6,
    ) {
        let per_worker: Vec<LatencyRecorder> =
            (0..workers).map(|_| LatencyRecorder::new()).collect();
        for (i, &m) in samples.iter().enumerate() {
            per_worker[i % workers].record(Duration::from_micros(m));
        }
        let merged = LatencyRecorder::new();
        for w in &per_worker {
            merged.merge(w);
        }
        check_against_oracle(&merged, &samples)?;
    }

    /// Tight clusters (all samples within one or two buckets) are the edge
    /// the truncating-bound bug lived in: every reported percentile must
    /// still sit inside the exact envelope.
    #[test]
    fn tight_clusters_stay_in_envelope(base in 1u64..1000, spread in 0u64..3, n in 1usize..50) {
        let samples: Vec<u64> = (0..n).map(|i| base + (i as u64 % (spread + 1))).collect();
        let r = LatencyRecorder::new();
        for &m in &samples {
            r.record(Duration::from_micros(m));
        }
        check_against_oracle(&r, &samples)?;
    }
}
