//! Differential property test: [`LatencyRecorder`]'s log-bucketed
//! percentiles against an exact sorted-vector oracle.
//!
//! The recorder's documented contract: `p50`/`p95`/`p99` are within 5%
//! *below* the exact percentile (one log-bucket width) and always inside
//! the exact `[min, max]` envelope — including after merging per-worker
//! recorders, the aggregation mode the hot paths rely on.

use std::time::Duration;

use fabric_common::{LatencyBaseline, LatencyRecorder};
use proptest::prelude::*;

/// The recorder's log-bucket ratio (one bucket per 5% of magnitude) —
/// mirrored here so the boundary generator can aim samples exactly at
/// bucket edges without reaching into the crate's private bucket math.
const BUCKET_BASE: f64 = 1.05;

/// A strategy emitting samples pinned to log-bucket boundaries: for a
/// bucket index `k`, the values `ceil(1.05^k) - 1`, `ceil(1.05^k)`, and
/// `ceil(1.05^k) + 1` straddle the edge between bucket `k-1` and `k` —
/// the exact off-by-one territory where a truncating bound or an
/// inclusive/exclusive mix-up in `merge`'s bucket addition would hide.
fn boundary_samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec((0u32..420, 0i64..3), 1..300).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(k, off)| {
                let bound = BUCKET_BASE.powi(k as i32).ceil() as i64;
                (bound + off - 1).max(1) as u64
            })
            .collect()
    })
}

/// Exact percentile matching the recorder's definition: the
/// `ceil(count * p)`-th smallest sample (1-indexed).
fn oracle_pct(sorted: &[u64], p: f64) -> u64 {
    let target = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[target.saturating_sub(1).min(sorted.len() - 1)]
}

/// Asserts one recorder against the exact oracle for every documented
/// percentile plus the envelope and ordering invariants.
fn check_against_oracle(r: &LatencyRecorder, samples: &[u64]) -> Result<(), TestCaseError> {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let s = r.summary();
    prop_assert_eq!(s.count, samples.len() as u64);
    prop_assert_eq!(s.min, Duration::from_micros(sorted[0]));
    prop_assert_eq!(s.max, Duration::from_micros(*sorted.last().unwrap()));
    let exact_avg = samples.iter().sum::<u64>() / samples.len() as u64;
    prop_assert_eq!(s.avg, Duration::from_micros(exact_avg));
    prop_assert!(!s.saturated);
    for (label, got, p) in [("p50", s.p50, 0.50), ("p95", s.p95, 0.95), ("p99", s.p99, 0.99)] {
        let got = got.as_micros() as u64;
        let exact = oracle_pct(&sorted, p);
        prop_assert!(
            got >= sorted[0] && got <= *sorted.last().unwrap(),
            "{label}={got} outside [min={}, max={}]",
            sorted[0],
            sorted.last().unwrap()
        );
        prop_assert!(got <= exact, "{label}={got} above exact {exact}");
        prop_assert!(
            (exact as f64) <= (got as f64) * 1.0501 + 1.0,
            "{label}={got} more than 5% below exact {exact}"
        );
    }
    prop_assert!(s.p50 <= s.p95 && s.p95 <= s.p99, "percentiles must be ordered");
    Ok(())
}

proptest! {
    /// Single recorder vs the oracle across wildly skewed magnitudes
    /// (1µs .. ~3h), including duplicate-heavy distributions.
    #[test]
    fn recorder_matches_sorted_oracle(
        samples in proptest::collection::vec(1u64..10_000_000_000, 1..400),
    ) {
        let r = LatencyRecorder::new();
        for &m in &samples {
            r.record(Duration::from_micros(m));
        }
        check_against_oracle(&r, &samples)?;
    }

    /// Merge-of-per-worker-recorders: samples dealt round-robin across
    /// `workers` private recorders, folded into one — the merged summary
    /// must satisfy the same oracle bounds as a single shared recorder.
    #[test]
    fn merged_per_worker_recorders_match_oracle(
        samples in proptest::collection::vec(1u64..10_000_000_000, 1..400),
        workers in 1usize..6,
    ) {
        let per_worker: Vec<LatencyRecorder> =
            (0..workers).map(|_| LatencyRecorder::new()).collect();
        for (i, &m) in samples.iter().enumerate() {
            per_worker[i % workers].record(Duration::from_micros(m));
        }
        let merged = LatencyRecorder::new();
        for w in &per_worker {
            merged.merge(w);
        }
        check_against_oracle(&merged, &samples)?;
    }

    /// Tight clusters (all samples within one or two buckets) are the edge
    /// the truncating-bound bug lived in: every reported percentile must
    /// still sit inside the exact envelope.
    #[test]
    fn tight_clusters_stay_in_envelope(base in 1u64..1000, spread in 0u64..3, n in 1usize..50) {
        let samples: Vec<u64> = (0..n).map(|i| base + (i as u64 % (spread + 1))).collect();
        let r = LatencyRecorder::new();
        for &m in &samples {
            r.record(Duration::from_micros(m));
        }
        check_against_oracle(&r, &samples)?;
    }

    /// Bucket-boundary samples under merge: every sample sits on (or one
    /// microsecond off) a log-bucket edge, dealt across per-worker
    /// recorders and folded. A boundary sample landing in a different
    /// bucket on the merge path than on the direct-record path would
    /// break the oracle bounds here.
    #[test]
    fn merged_recorders_agree_at_bucket_boundaries(
        samples in boundary_samples(),
        workers in 1usize..6,
    ) {
        let per_worker: Vec<LatencyRecorder> =
            (0..workers).map(|_| LatencyRecorder::new()).collect();
        for (i, &m) in samples.iter().enumerate() {
            per_worker[i % workers].record(Duration::from_micros(m));
        }
        let merged = LatencyRecorder::new();
        for w in &per_worker {
            merged.merge(w);
        }
        check_against_oracle(&merged, &samples)?;
        // Differential: the merged recorder must report *identical*
        // summaries to a single recorder fed the same stream — merge is
        // bucket-wise addition, so there is no legal divergence at all.
        let single = LatencyRecorder::new();
        for &m in &samples {
            single.record(Duration::from_micros(m));
        }
        prop_assert_eq!(merged.summary(), single.summary());
    }

    /// `window_since` vs the oracle: samples recorded in chunks, a window
    /// snapshot taken after each chunk. Window counts must telescope to
    /// the total, the per-window sum must telescope exactly, and each
    /// window's quantiles must obey the same one-bucket error bound
    /// against that chunk's exact sorted oracle.
    #[test]
    fn window_since_matches_per_chunk_oracle(
        chunks in proptest::collection::vec(
            proptest::collection::vec(1u64..10_000_000_000, 1..60),
            1..8,
        ),
    ) {
        let r = LatencyRecorder::new();
        let mut base = LatencyBaseline::new();
        // Align the baseline (empty recorder): the first window must not
        // see pre-baseline samples.
        let zero = r.window_since(&mut base);
        prop_assert_eq!(zero.count, 0);

        let mut total_count = 0u64;
        let mut total_sum = 0u64;
        for chunk in &chunks {
            for &m in chunk {
                r.record(Duration::from_micros(m));
            }
            let w = r.window_since(&mut base);
            prop_assert_eq!(w.count, chunk.len() as u64);
            total_count += w.count;
            total_sum += w.sum_micros;
            prop_assert_eq!(w.sum_micros, chunk.iter().sum::<u64>());

            let mut sorted = chunk.clone();
            sorted.sort_unstable();
            for (label, got, p) in
                [("p50", w.p50_us, 0.50), ("p90", w.p90_us, 0.90), ("p99", w.p99_us, 0.99)]
            {
                let exact = oracle_pct(&sorted, p);
                // Window quantiles report the lower bound of the bucket
                // holding the exact sample: at most one microsecond above
                // (ceil of the bound) and one bucket width (5%) below.
                prop_assert!(got <= exact + 1, "{label}={got} above exact {exact}");
                prop_assert!(
                    (exact as f64) <= (got as f64) * 1.0501 + 1.0,
                    "{label}={got} more than one bucket below exact {exact}"
                );
            }
            prop_assert!(w.p50_us <= w.p90_us && w.p90_us <= w.p99_us);
        }
        // Telescoping: windows partition the stream with nothing counted
        // twice and nothing missed — the same invariant the telemetry
        // hub's soak gate relies on.
        let s = r.summary();
        prop_assert_eq!(s.count, total_count);
        let exact_total: u64 = chunks.iter().flatten().sum();
        prop_assert_eq!(total_sum, exact_total);
        // An idle window (no new samples) reads zero, not a repeat.
        let idle = r.window_since(&mut base);
        prop_assert_eq!(idle.count, 0);
        prop_assert_eq!(idle.sum_micros, 0);
    }
}
