//! Property-based tests over the substrate: canonical codec, read/write
//! sets, SHA-256 streaming, bitsets, and HMAC signatures.

use std::collections::BTreeSet;

use fabric_common::codec::{Decode, Decoder, Encode, Encoder};
use fabric_common::hash::{sha256, Sha256};
use fabric_common::rwset::{ReadWriteSet, RwSetBuilder};
use fabric_common::{BitSet, Key, SigningKey, Value, Version};
use proptest::prelude::*;

proptest! {
    /// Arbitrary scalar sequences survive an encode/decode round trip.
    #[test]
    fn codec_scalars_round_trip(items in proptest::collection::vec(
        prop_oneof![
            any::<u8>().prop_map(|v| (0u8, v as u64)),
            any::<u32>().prop_map(|v| (1u8, v as u64)),
            any::<u64>().prop_map(|v| (2u8, v)),
        ],
        0..50,
    )) {
        let mut enc = Encoder::new();
        for (tag, v) in &items {
            match tag {
                0 => { enc.put_u8(*v as u8); }
                1 => { enc.put_u32(*v as u32); }
                _ => { enc.put_u64(*v); }
            }
        }
        let buf = enc.into_bytes();
        let mut dec = Decoder::new(&buf);
        for (tag, v) in &items {
            let got = match tag {
                0 => dec.get_u8().unwrap() as u64,
                1 => dec.get_u32().unwrap() as u64,
                _ => dec.get_u64().unwrap(),
            };
            prop_assert_eq!(got, *v);
        }
        prop_assert!(dec.finish().is_ok());
    }

    /// Byte strings of arbitrary content and length round trip.
    #[test]
    fn codec_bytes_round_trip(chunks in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..200),
        0..20,
    )) {
        let mut enc = Encoder::new();
        for c in &chunks {
            enc.put_bytes(c);
        }
        let buf = enc.into_bytes();
        let mut dec = Decoder::new(&buf);
        for c in &chunks {
            prop_assert_eq!(dec.get_bytes().unwrap(), c.as_slice());
        }
        prop_assert!(dec.finish().is_ok());
    }

    /// Truncating an encoding at any point never panics, only errors
    /// (or legitimately decodes a prefix).
    #[test]
    fn codec_truncation_never_panics(
        payload in proptest::collection::vec(any::<u8>(), 0..100),
        cut in 0usize..100,
    ) {
        let mut enc = Encoder::new();
        enc.put_bytes(&payload).put_u64(42);
        let buf = enc.into_bytes();
        let cut = cut.min(buf.len());
        let mut dec = Decoder::new(&buf[..cut]);
        let _ = dec.get_bytes().and_then(|_| dec.get_u64());
    }

    /// The rwset builder produces sorted, deduplicated sets whose encoding
    /// round trips, for any interleaving of reads and writes.
    #[test]
    fn rwset_builder_invariants(ops in proptest::collection::vec(
        (any::<bool>(), 0u64..20, proptest::option::of(0u64..1000)),
        0..60,
    )) {
        let mut b = RwSetBuilder::new();
        for (is_read, key_id, payload) in &ops {
            let key = Key::composite("k", *key_id);
            if *is_read {
                b.record_read(key, payload.map(|p| Version::new(p, 0)));
            } else {
                b.record_write(key, payload.map(|p| Value::from_i64(p as i64)));
            }
        }
        let rw = b.build();

        // Sorted + unique keys on both sides.
        for entries in [
            rw.reads.keys().cloned().collect::<Vec<_>>(),
            rw.writes.keys().cloned().collect::<Vec<_>>(),
        ] {
            let mut sorted = entries.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(&entries, &sorted, "sorted and deduplicated");
        }

        // unique_keys equals the true union size.
        let union: BTreeSet<&Key> = rw.reads.keys().chain(rw.writes.keys()).collect();
        prop_assert_eq!(rw.unique_keys(), union.len());

        // Canonical encoding round trips.
        let bytes = rw.encode_to_vec();
        prop_assert_eq!(ReadWriteSet::decode_exact(&bytes).unwrap(), rw);
    }

    /// Streaming SHA-256 equals one-shot for any chunking of any message.
    #[test]
    fn sha256_streaming_equals_oneshot(
        msg in proptest::collection::vec(any::<u8>(), 0..2048),
        splits in proptest::collection::vec(1usize..128, 1..8),
    ) {
        let expect = sha256(&msg);
        let mut h = Sha256::new();
        let mut rest = msg.as_slice();
        let mut i = 0;
        while !rest.is_empty() {
            let n = splits[i % splits.len()].min(rest.len());
            let (a, b) = rest.split_at(n);
            h.update(a);
            rest = b;
            i += 1;
        }
        prop_assert_eq!(h.finalize(), expect);
    }

    /// Bitset intersection agrees with the brute-force definition.
    #[test]
    fn bitset_intersects_matches_bruteforce(
        a in proptest::collection::btree_set(0usize..256, 0..40),
        b in proptest::collection::btree_set(0usize..256, 0..40),
    ) {
        let mut ba = BitSet::new(256);
        for &i in &a {
            ba.set(i);
        }
        let mut bb = BitSet::new(256);
        for &i in &b {
            bb.set(i);
        }
        prop_assert_eq!(ba.intersects(&bb), !a.is_disjoint(&b));
        prop_assert_eq!(ba.count_ones(), a.len());
        prop_assert_eq!(ba.iter_ones().collect::<Vec<_>>(), a.into_iter().collect::<Vec<_>>());
    }

    /// Signatures verify for the signing key and fail for any other key or
    /// any modified message.
    #[test]
    fn signatures_bind_key_and_message(
        seed_a in proptest::collection::vec(any::<u8>(), 1..64),
        seed_b in proptest::collection::vec(any::<u8>(), 1..64),
        msg in proptest::collection::vec(any::<u8>(), 0..256),
        flip in 0usize..256,
    ) {
        let ka = SigningKey::from_seed(&seed_a);
        let sig = ka.sign(&msg);
        prop_assert!(ka.verify(&msg, &sig));
        if seed_a != seed_b {
            let kb = SigningKey::from_seed(&seed_b);
            prop_assert!(!kb.verify(&msg, &sig));
        }
        if !msg.is_empty() {
            let mut tampered = msg.clone();
            let idx = flip % tampered.len();
            tampered[idx] ^= 0x01;
            prop_assert!(!ka.verify(&tampered, &sig));
        }
    }

    /// Version ordering is exactly lexicographic on (block, tx).
    #[test]
    fn version_ordering_lexicographic(
        a in (any::<u32>(), any::<u16>()),
        b in (any::<u32>(), any::<u16>()),
    ) {
        let va = Version::new(a.0 as u64, a.1 as u32);
        let vb = Version::new(b.0 as u64, b.1 as u32);
        prop_assert_eq!(va.cmp(&vb), (a.0, a.1).cmp(&(b.0, b.1)));
    }
}
