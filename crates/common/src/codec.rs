//! Minimal canonical binary encoding.
//!
//! Endorsement signatures and block hashes must be computed over a *byte
//! string*, so every signed or hashed structure needs one unambiguous
//! encoding. This module provides a tiny length-prefixed little-endian
//! format: fixed-width integers plus `u32`-length-prefixed byte strings.
//! It is deliberately not a general serialization framework — it only has to
//! be *canonical* (equal values encode to equal bytes) and cheap.

use crate::error::{Error, Result};

/// Append-only encoder.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an encoder with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Encoder { buf: Vec::with_capacity(cap) }
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u32`-length-prefixed byte string.
    ///
    /// # Panics
    /// Panics if `bytes` is longer than `u32::MAX` (never the case for keys,
    /// values, or transactions in this system).
    pub fn put_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        let len = u32::try_from(bytes.len()).expect("byte string exceeds u32::MAX");
        self.put_u32(len);
        self.buf.extend_from_slice(bytes);
        self
    }

    /// Raw bytes encoded so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the encoder and returns the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing was encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Cursor-based decoder over a byte slice.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(Error::Codec(format!(
                "unexpected end of input: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a single byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `u32`-length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.get_u32()? as usize;
        self.take(len)
    }

    /// Bytes remaining after the cursor.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Returns an error if any input remains (catches trailing garbage).
    pub fn finish(&self) -> Result<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(Error::Codec(format!("{} trailing bytes", self.remaining())))
        }
    }
}

/// Types with a canonical binary encoding.
pub trait Encode {
    /// Appends the canonical encoding of `self` to `enc`.
    fn encode(&self, enc: &mut Encoder);

    /// Convenience: encode into a fresh buffer.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.into_bytes()
    }
}

/// Types decodable from the canonical binary encoding.
pub trait Decode: Sized {
    /// Decodes one value, advancing the cursor.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self>;

    /// Convenience: decode a value that must occupy the whole buffer.
    fn decode_exact(buf: &[u8]) -> Result<Self> {
        let mut dec = Decoder::new(buf);
        let v = Self::decode(&mut dec)?;
        dec.finish()?;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut enc = Encoder::new();
        enc.put_u8(7).put_u32(0xdead_beef).put_u64(u64::MAX).put_bytes(b"hello");
        let buf = enc.into_bytes();

        let mut dec = Decoder::new(&buf);
        assert_eq!(dec.get_u8().unwrap(), 7);
        assert_eq!(dec.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(dec.get_u64().unwrap(), u64::MAX);
        assert_eq!(dec.get_bytes().unwrap(), b"hello");
        assert!(dec.finish().is_ok());
    }

    #[test]
    fn truncated_input_errors() {
        let mut enc = Encoder::new();
        enc.put_bytes(b"abcdef");
        let buf = enc.into_bytes();
        // Cut the payload short.
        let mut dec = Decoder::new(&buf[..buf.len() - 2]);
        assert!(dec.get_bytes().is_err());
    }

    #[test]
    fn truncated_length_prefix_errors() {
        let mut dec = Decoder::new(&[0x01, 0x00]);
        assert!(dec.get_u32().is_err());
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut enc = Encoder::new();
        enc.put_u8(1);
        let mut buf = enc.into_bytes();
        buf.push(99);
        let mut dec = Decoder::new(&buf);
        dec.get_u8().unwrap();
        assert!(dec.finish().is_err());
        assert_eq!(dec.remaining(), 1);
    }

    #[test]
    fn empty_byte_string() {
        let mut enc = Encoder::new();
        enc.put_bytes(b"");
        let buf = enc.into_bytes();
        let mut dec = Decoder::new(&buf);
        assert_eq!(dec.get_bytes().unwrap(), b"");
        assert!(dec.finish().is_ok());
    }

    #[test]
    fn encoder_capacity_and_len() {
        let mut enc = Encoder::with_capacity(64);
        assert!(enc.is_empty());
        enc.put_u64(1);
        assert_eq!(enc.len(), 8);
        assert_eq!(enc.as_slice().len(), 8);
    }
}
