//! Dense key interning for the reordering hot path.
//!
//! Algorithm 1 touches every key of a batch several times: the ordering-phase
//! early abort hashes keys to find within-block version mismatches, the
//! unique-keys cut condition counts them, and the conflict-graph build hashes
//! them again to find write→read overlaps. A [`KeyTable`] assigns each
//! distinct [`Key`] of a batch a dense `u32` id **once**, so every later
//! stage works over integer ids (array indexing, no hashing, no cloning).
//!
//! The table is built to be *reused* across batches: [`KeyTable::clear`]
//! keeps the hash-map capacity, and [`Key`]s are refcounted byte strings, so
//! interning a warm table performs no heap allocation in the steady state —
//! the property the reorderer's scratch-arena test asserts.

use std::collections::HashMap;

use crate::ids::Key;

/// Interns [`Key`]s of one batch to dense ids `0..len()`.
///
/// Ids are assigned in first-seen order, which makes the assignment
/// deterministic for a fixed iteration order over the batch.
#[derive(Debug, Default, Clone)]
pub struct KeyTable {
    map: HashMap<Key, u32>,
}

impl KeyTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forgets all interned keys but keeps the allocated capacity, so a
    /// table reused across batches stops allocating once it has seen a
    /// batch of maximal key cardinality.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Returns the dense id of `key`, assigning the next free id on first
    /// sight. Cloning the key into the table is a refcount bump.
    pub fn intern(&mut self, key: &Key) -> u32 {
        if let Some(&id) = self.map.get(key) {
            return id;
        }
        let id = u32::try_from(self.map.len()).expect("more than u32::MAX unique keys in a batch");
        self.map.insert(key.clone(), id);
        id
    }

    /// The id of `key` if it has been interned.
    pub fn get(&self, key: &Key) -> Option<u32> {
        self.map.get(key).copied()
    }

    /// Number of distinct keys interned since the last [`clear`](Self::clear).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no key has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Current capacity of the backing map (scratch-reuse diagnostics).
    pub fn capacity(&self) -> usize {
        self.map.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u64) -> Key {
        Key::composite("K", i)
    }

    #[test]
    fn ids_are_dense_and_first_seen_ordered() {
        let mut t = KeyTable::new();
        assert_eq!(t.intern(&k(7)), 0);
        assert_eq!(t.intern(&k(3)), 1);
        assert_eq!(t.intern(&k(7)), 0, "re-interning returns the same id");
        assert_eq!(t.intern(&k(9)), 2);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(&k(3)), Some(1));
        assert_eq!(t.get(&k(100)), None);
    }

    #[test]
    fn clear_resets_ids_but_keeps_capacity() {
        let mut t = KeyTable::new();
        for i in 0..100 {
            t.intern(&k(i));
        }
        let cap = t.capacity();
        assert!(cap >= 100);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.capacity(), cap, "clear must not release capacity");
        assert_eq!(t.intern(&k(42)), 0, "ids restart from zero");
    }

    #[test]
    fn deterministic_assignment() {
        let keys: Vec<Key> = (0..50).map(|i| k(i * 3 % 17)).collect();
        let mut a = KeyTable::new();
        let mut b = KeyTable::new();
        let ids_a: Vec<u32> = keys.iter().map(|key| a.intern(key)).collect();
        let ids_b: Vec<u32> = keys.iter().map(|key| b.intern(key)).collect();
        assert_eq!(ids_a, ids_b);
    }
}
