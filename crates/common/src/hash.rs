//! From-scratch SHA-256 (FIPS 180-4).
//!
//! The paper observes that Fabric's throughput is "largely dominated by
//! cryptographic signature computations, network communication, and trust
//! validation" (§3, point d). To keep that cost profile in the simulator we
//! compute *real* hashes and MACs per transaction rather than stubbing them,
//! and we implement the primitive in-tree because the exercise forbids
//! external crypto crates. The implementation is the straightforward
//! streaming construction and is validated against the NIST/standard test
//! vectors below.

use std::fmt;


/// A 256-bit digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The all-zero digest, used as the previous-hash of the genesis block.
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Returns the digest as a byte slice.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Lower-case hex string of the digest.
    pub fn to_hex(&self) -> String {
        crate::ids::hex(&self.0)
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}…)", &self.to_hex()[..12])
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// ```
/// use fabric_common::hash::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// assert_eq!(
///     h.finalize().to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
/// );
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 { state: H0, len: 0, buf: [0u8; 64], buf_len: 0 }
    }

    /// Feeds `data` into the hash.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let mut arr = [0u8; 64];
            arr.copy_from_slice(block);
            self.compress(&arr);
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Convenience: update and return self (builder style).
    pub fn chain(mut self, data: &[u8]) -> Self {
        self.update(data);
        self
    }

    /// Consumes the hasher and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.len.wrapping_mul(8);
        // Append 0x80 then zero-pad to 56 mod 64, then the 64-bit bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // `update` mutates len; the length bytes must not count, so we write
        // them into the buffer directly and compress.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> Digest {
    Sha256::new().chain(data).finalize()
}

/// SHA-256 over the concatenation of several slices (avoids a copy).
pub fn sha256_concat(parts: &[&[u8]]) -> Digest {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex_of(data: &[u8]) -> String {
        sha256(data).to_hex()
    }

    // Standard SHA-256 test vectors (FIPS 180-4 / NIST CAVP).
    #[test]
    fn empty_string() {
        assert_eq!(
            hex_of(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            hex_of(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            hex_of(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn four_block_message() {
        let msg = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn\
hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
        assert_eq!(
            hex_of(msg),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(
            hex_of(&msg),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn fifty_five_and_fifty_six_byte_boundary() {
        // 55 bytes: padding fits in one block; 56 bytes: needs an extra block.
        assert_eq!(
            hex_of(&[b'x'; 55]),
            sha256(&[b'x'; 55]).to_hex(),
        );
        // Cross-check chunked vs one-shot at the boundary lengths.
        for n in [54usize, 55, 56, 57, 63, 64, 65, 127, 128, 129] {
            let msg = vec![0xabu8; n];
            let mut h = Sha256::new();
            for chunk in msg.chunks(7) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), sha256(&msg), "length {n}");
        }
    }

    #[test]
    fn incremental_equals_oneshot_random_splits() {
        let msg: Vec<u8> = (0..4096u32).map(|i| (i.wrapping_mul(2654435761)) as u8).collect();
        let expect = sha256(&msg);
        for split in [1usize, 3, 63, 64, 65, 1000] {
            let mut h = Sha256::new();
            for chunk in msg.chunks(split) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), expect, "split {split}");
        }
    }

    #[test]
    fn concat_matches_oneshot() {
        let d1 = sha256_concat(&[b"hello ", b"world"]);
        let d2 = sha256(b"hello world");
        assert_eq!(d1, d2);
    }

    #[test]
    fn digest_display_and_zero() {
        assert_eq!(Digest::ZERO.to_hex(), "0".repeat(64));
        let d = sha256(b"abc");
        assert_eq!(d.to_string(), d.to_hex());
        assert!(format!("{d:?}").starts_with("Digest(ba7816bf8f01"));
    }
}
