//! Identifier and vocabulary types shared across the Fabric++ pipeline.
//!
//! Fabric attaches a *version number* to every value in the current state,
//! "composed of the ID of the transaction, that performed the update, as well
//! as the ID of the block that contains the transaction" (paper §5.2.1).
//! [`Version`] models exactly that pair; its ordering is the block-major,
//! tx-minor order in which updates become visible, which is what both the
//! validation-phase conflict check and the Fabric++ early-abort check compare.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;

/// Block sequence number within a channel's ledger. Block `0` is the genesis
/// block holding the initial state, matching Fabric's numbering.
pub type BlockNum = u64;

/// Position of a transaction inside its block.
pub type TxNum = u32;

macro_rules! u64_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// Returns the raw numeric id.
            #[inline]
            pub fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                Self(v)
            }
        }
    };
}

u64_id!(
    /// Globally unique transaction identifier. In real Fabric this is a hash
    /// of the proposal; in the simulator it is drawn from a process-wide
    /// monotonic counter (see [`TxId::next`]) so ids stay unique across
    /// channels and clients while remaining cheap to compare.
    TxId,
    "tx-"
);
u64_id!(
    /// Identifier of a peer node.
    PeerId,
    "peer-"
);
u64_id!(
    /// Identifier of an organization. Peers belong to exactly one org; the
    /// default endorsement policy requires one endorsement per involved org.
    OrgId,
    "org-"
);
u64_id!(
    /// Identifier of a client application firing transaction proposals.
    ClientId,
    "client-"
);
u64_id!(
    /// Identifier of a channel. Each channel has its own ordering service
    /// instance, ledger, and state (paper §6.6 scales the channel count).
    ChannelId,
    "channel-"
);

static NEXT_TX_ID: AtomicU64 = AtomicU64::new(1);

impl TxId {
    /// Draws the next process-wide unique transaction id.
    pub fn next() -> Self {
        TxId(NEXT_TX_ID.fetch_add(1, Ordering::Relaxed))
    }
}

/// A key in the current state (Fabric: a chaincode namespace key).
///
/// Keys are immutable byte strings; cloning is cheap (refcounted [`Bytes`]).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(Bytes);

impl Key {
    /// Creates a key from anything byte-like.
    pub fn new(bytes: impl Into<Bytes>) -> Self {
        Key(bytes.into())
    }

    /// Builds the conventional `"<table>:<id>"` composite key used by the
    /// bundled workloads (e.g. `checking:42`).
    pub fn composite(table: &str, id: u64) -> Self {
        let mut s = String::with_capacity(table.len() + 21);
        s.push_str(table);
        s.push(':');
        s.push_str(itoa_u64(id).as_str());
        Key(Bytes::from(s))
    }

    /// The raw bytes of the key.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length of the key in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the key is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match std::str::from_utf8(&self.0) {
            Ok(s) => write!(f, "Key({s:?})"),
            Err(_) => write!(f, "Key(0x{})", hex(&self.0)),
        }
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match std::str::from_utf8(&self.0) {
            Ok(s) => f.write_str(s),
            Err(_) => write!(f, "0x{}", hex(&self.0)),
        }
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Self {
        Key(Bytes::copy_from_slice(s.as_bytes()))
    }
}

impl From<String> for Key {
    fn from(s: String) -> Self {
        Key(Bytes::from(s))
    }
}

impl From<Vec<u8>> for Key {
    fn from(v: Vec<u8>) -> Self {
        Key(Bytes::from(v))
    }
}

/// A value in the current state. Like [`Key`], an immutable refcounted byte
/// string.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Value(Bytes);

impl Value {
    /// Creates a value from anything byte-like.
    pub fn new(bytes: impl Into<Bytes>) -> Self {
        Value(bytes.into())
    }

    /// Encodes a signed 64-bit integer value (used by the account-balance
    /// workloads).
    pub fn from_i64(v: i64) -> Self {
        Value(Bytes::copy_from_slice(&v.to_le_bytes()))
    }

    /// Decodes a value previously produced by [`Value::from_i64`].
    ///
    /// Returns `None` if the payload is not exactly 8 bytes.
    pub fn as_i64(&self) -> Option<i64> {
        let arr: [u8; 8] = self.0.as_ref().try_into().ok()?;
        Some(i64::from_le_bytes(arr))
    }

    /// The raw bytes of the value.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length of the value in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the value is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(i) = self.as_i64() {
            write!(f, "Value(i64:{i})")
        } else {
            match std::str::from_utf8(&self.0) {
                Ok(s) => write!(f, "Value({s:?})"),
                Err(_) => write!(f, "Value(0x{})", hex(&self.0)),
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value(Bytes::copy_from_slice(s.as_bytes()))
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value(Bytes::from(v))
    }
}

/// Fabric-style version number attached to every committed value:
/// the block that committed the writing transaction plus the transaction's
/// position inside that block.
///
/// The ordering is block-major: a version from a later block is newer than
/// any version from an earlier block; within a block the transaction number
/// decides. This is exactly the comparison the validation phase performs and
/// the one the Fabric++ simulation-phase early abort exploits
/// (`version.block > snapshot.last_block_num ⇒ stale read`, paper Figure 6).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct Version {
    /// Block that committed the write.
    pub block: BlockNum,
    /// Position of the writing transaction within that block.
    pub tx: TxNum,
}

impl Version {
    /// Creates a version.
    pub const fn new(block: BlockNum, tx: TxNum) -> Self {
        Version { block, tx }
    }

    /// The version carried by values written at genesis (initial state).
    pub const GENESIS: Version = Version { block: 0, tx: 0 };
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}.{}", self.block, self.tx)
    }
}

/// Lower-cased hex encoding of a byte slice (no allocation tricks; used only
/// on debug paths).
pub(crate) fn hex(bytes: &[u8]) -> String {
    const TABLE: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(TABLE[(b >> 4) as usize] as char);
        out.push(TABLE[(b & 0xf) as usize] as char);
    }
    out
}

/// Integer-to-decimal-string without pulling in the `itoa` crate.
fn itoa_u64(mut v: u64) -> String {
    if v == 0 {
        return "0".to_owned();
    }
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    while v > 0 {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
    }
    // Digits are ASCII by construction.
    std::str::from_utf8(&buf[i..]).expect("ascii digits").to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn tx_ids_are_unique_and_monotonic() {
        let a = TxId::next();
        let b = TxId::next();
        assert!(b.raw() > a.raw());
        let mut seen = HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(TxId::next()));
        }
    }

    #[test]
    fn tx_ids_unique_across_threads() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| (0..1000).map(|_| TxId::next()).collect::<Vec<_>>()))
            .collect();
        let mut all = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(all.insert(id), "duplicate TxId across threads");
            }
        }
    }

    #[test]
    fn version_ordering_is_block_major() {
        let v10 = Version::new(1, 0);
        let v15 = Version::new(1, 5);
        let v20 = Version::new(2, 0);
        assert!(v10 < v15);
        assert!(v15 < v20);
        assert!(Version::GENESIS < v10);
        assert_eq!(v10, Version::new(1, 0));
    }

    #[test]
    fn composite_keys_round_trip_display() {
        let k = Key::composite("checking", 42);
        assert_eq!(k.as_bytes(), b"checking:42");
        assert_eq!(k.to_string(), "checking:42");
        assert_eq!(Key::composite("savings", 0).as_bytes(), b"savings:0");
        let big = Key::composite("t", u64::MAX);
        assert_eq!(big.as_bytes(), format!("t:{}", u64::MAX).as_bytes());
    }

    #[test]
    fn value_i64_round_trip() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 123_456_789] {
            assert_eq!(Value::from_i64(v).as_i64(), Some(v));
        }
        assert_eq!(Value::new(vec![1, 2, 3]).as_i64(), None);
    }

    #[test]
    fn key_orders_lexicographically() {
        let a = Key::from("a");
        let b = Key::from("b");
        let ab = Key::from("ab");
        assert!(a < ab);
        assert!(ab < b);
    }

    #[test]
    fn display_formats() {
        assert_eq!(TxId(7).to_string(), "tx-7");
        assert_eq!(PeerId(3).to_string(), "peer-3");
        assert_eq!(Version::new(4, 2).to_string(), "v4.2");
        assert_eq!(format!("{:?}", Key::from("abc")), "Key(\"abc\")");
    }

    #[test]
    fn hex_encodes() {
        assert_eq!(hex(&[0x00, 0xff, 0x1a]), "00ff1a");
        assert_eq!(hex(&[]), "");
    }
}
