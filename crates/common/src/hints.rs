//! Dependency hints: the ordering service's conflict analysis, carried
//! through to commit instead of being discarded at seal time.
//!
//! The reorder stage (paper §5.1.1) interns every key touched by a batch
//! into dense `u32` ids and builds the full read-write conflict graph —
//! then historically threw both away once the schedule was fixed. A
//! [`DependencyHints`] value preserves that work for the block's journey
//! down the pipeline: the interned read/write id lists of every
//! transaction (aligned with the block's transaction order and, within a
//! transaction, with its read/write-set entry order) plus the dependency
//! edges, so the peer's lane scheduler can partition the block into
//! independent chains without re-hashing a single key.
//!
//! Hints are **process-local metadata**: they are never serialized into
//! the block's byte format, never signed, and never influence any
//! committed artifact. Every consumer must behave identically with hints
//! absent (recovery, archive catch-up, delayed delivery) by re-interning
//! from the block's read/write sets — the conformance matrix's
//! `commit_lanes` cells prove the equivalence byte-for-byte.

use std::sync::Arc;

/// Interned conflict metadata for one ordered block. See the module docs
/// for the lifecycle; construct with [`DependencyHintsBuilder`].
///
/// Rows are block positions (transaction `p` of the sealed block), key
/// ids are dense `u32`s in an id space private to this hint value
/// (`0..n_keys`, first-seen order over the sealing batch — the space may
/// include keys of early-aborted transactions that never made the block,
/// which consumers simply never look up).
#[derive(Debug, Clone, Default)]
pub struct DependencyHints {
    n_keys: u32,
    /// CSR offsets into `read_ids`, length `len + 1`.
    read_off: Vec<u32>,
    read_ids: Vec<u32>,
    /// CSR offsets into `write_ids`, length `len + 1`.
    write_off: Vec<u32>,
    write_ids: Vec<u32>,
    /// Write→read dependency edges as `(writer, reader)` block positions:
    /// the writer transaction writes a key the reader transaction reads.
    /// May be empty even when dependencies exist (the conflict-free seal
    /// fast path skips graph construction) — the lane partition therefore
    /// derives read-write unions from the CSR and uses edges only when
    /// present, reaching the same components either way.
    edges: Vec<(u32, u32)>,
}

impl DependencyHints {
    /// Number of transactions covered (must equal the block's
    /// transaction count for the hints to be usable).
    pub fn len(&self) -> usize {
        self.read_off.len().saturating_sub(1)
    }

    /// Whether the hints cover zero transactions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of the interned key-id space (`ids < n_keys`).
    pub fn n_keys(&self) -> u32 {
        self.n_keys
    }

    /// Interned read-key ids of block transaction `p`, in read-set entry
    /// order (1:1 with `block.txs[p].rwset.reads`).
    pub fn reads(&self, p: usize) -> &[u32] {
        &self.read_ids[self.read_off[p] as usize..self.read_off[p + 1] as usize]
    }

    /// Interned write-key ids of block transaction `p`, in write-set
    /// entry order (1:1 with `block.txs[p].rwset.writes`).
    pub fn writes(&self, p: usize) -> &[u32] {
        &self.write_ids[self.write_off[p] as usize..self.write_off[p + 1] as usize]
    }

    /// The carried `(writer, reader)` dependency edges in block
    /// positions. Possibly empty — see the field docs.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }
}

/// Incremental builder for [`DependencyHints`]: push one transaction per
/// block position in block order, then edges, then
/// [`DependencyHintsBuilder::finish`].
#[derive(Debug, Default)]
pub struct DependencyHintsBuilder {
    hints: DependencyHints,
}

impl DependencyHintsBuilder {
    /// Creates an empty builder with capacity for `txs` transactions.
    pub fn with_capacity(txs: usize) -> Self {
        let mut b = DependencyHintsBuilder::default();
        b.hints.read_off.reserve(txs + 1);
        b.hints.write_off.reserve(txs + 1);
        b.hints.read_off.push(0);
        b.hints.write_off.push(0);
        b
    }

    /// Appends the next block position's interned read and write ids.
    pub fn push_tx(&mut self, reads: &[u32], writes: &[u32]) {
        let h = &mut self.hints;
        h.read_ids.extend_from_slice(reads);
        h.write_ids.extend_from_slice(writes);
        h.read_off.push(h.read_ids.len() as u32);
        h.write_off.push(h.write_ids.len() as u32);
    }

    /// Appends one `(writer, reader)` dependency edge in block positions.
    pub fn push_edge(&mut self, writer: u32, reader: u32) {
        self.hints.edges.push((writer, reader));
    }

    /// Seals the hints with the interned id-space size. Panics (debug
    /// builds) if any pushed id or edge endpoint is out of range — these
    /// are internal invariants of the sealing path, not input validation.
    pub fn finish(mut self, n_keys: u32) -> Arc<DependencyHints> {
        self.hints.n_keys = n_keys;
        debug_assert!(self.hints.read_ids.iter().chain(&self.hints.write_ids).all(|&id| id < n_keys));
        debug_assert!({
            let n = self.hints.len() as u32;
            self.hints.edges.iter().all(|&(w, r)| w < n && r < n && w != r)
        });
        Arc::new(self.hints)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trips_csr_rows_and_edges() {
        let mut b = DependencyHintsBuilder::with_capacity(3);
        b.push_tx(&[0, 1], &[2]);
        b.push_tx(&[], &[0]);
        b.push_tx(&[2], &[]);
        b.push_edge(0, 2);
        b.push_edge(1, 0);
        let h = b.finish(3);
        assert_eq!(h.len(), 3);
        assert!(!h.is_empty());
        assert_eq!(h.n_keys(), 3);
        assert_eq!(h.reads(0), &[0, 1]);
        assert_eq!(h.writes(0), &[2]);
        assert_eq!(h.reads(1), &[] as &[u32]);
        assert_eq!(h.writes(1), &[0]);
        assert_eq!(h.reads(2), &[2]);
        assert_eq!(h.writes(2), &[] as &[u32]);
        assert_eq!(h.edges(), &[(0, 2), (1, 0)]);
    }

    #[test]
    fn empty_hints_cover_nothing() {
        let h = DependencyHintsBuilder::with_capacity(0).finish(0);
        assert_eq!(h.len(), 0);
        assert!(h.is_empty());
        assert_eq!(h.edges(), &[] as &[(u32, u32)]);
    }
}
