//! Transactions as they travel through the simulate–order–validate–commit
//! pipeline.
//!
//! A client first sends a [`TransactionProposal`] to the endorsement peers.
//! Each endorser simulates the chaincode, producing a [`ReadWriteSet`] and an
//! [`Endorsement`] (its signature over the canonical bytes). If all endorsers
//! returned identical sets, the client assembles the full [`Transaction`]
//! and submits it to the ordering service (paper §2.2.1, Appendix A.1).

use std::time::Instant;

use crate::codec::{Encode, Encoder};
use crate::crypto::{Signature, SignerRegistry};
use crate::ids::{ChannelId, ClientId, OrgId, PeerId, TxId};
use crate::rwset::ReadWriteSet;

/// What a client asks the endorsers to simulate: a chaincode invocation.
///
/// The `args` payload is opaque to the pipeline — only the chaincode
/// interprets it. `created_at` timestamps the proposal for end-to-end
/// latency measurement (paper Table 8).
#[derive(Debug, Clone)]
pub struct TransactionProposal {
    /// Unique transaction id, assigned by the client at proposal time.
    pub id: TxId,
    /// Channel the transaction belongs to.
    pub channel: ChannelId,
    /// Submitting client.
    pub client: ClientId,
    /// Name of the chaincode to invoke.
    pub chaincode: String,
    /// Opaque invocation arguments, interpreted by the chaincode.
    pub args: Vec<u8>,
    /// Proposal creation time (latency measurement anchor).
    pub created_at: Instant,
}

impl TransactionProposal {
    /// Creates a proposal stamped with the current time.
    pub fn new(
        channel: ChannelId,
        client: ClientId,
        chaincode: impl Into<String>,
        args: Vec<u8>,
    ) -> Self {
        Self::with_id(TxId::next(), channel, client, chaincode, args)
    }

    /// Creates a proposal with an explicit, caller-chosen transaction id.
    ///
    /// [`TransactionProposal::new`] draws ids from a process-global counter,
    /// which is fine for one pipeline but makes two *independent* in-process
    /// runs of the same workload produce different ids — and tx ids are part
    /// of every signing payload and block hash. Determinism-conformance
    /// harnesses (and any caller replaying a recorded workload) assign ids
    /// from their own deterministic sequence instead, so replica block
    /// streams can be compared byte for byte. Ids must be unique within a
    /// run; reusing the same sequence across separate networks is the point.
    pub fn with_id(
        id: TxId,
        channel: ChannelId,
        client: ClientId,
        chaincode: impl Into<String>,
        args: Vec<u8>,
    ) -> Self {
        TransactionProposal {
            id,
            channel,
            client,
            chaincode: chaincode.into(),
            args,
            created_at: Instant::now(),
        }
    }
}

/// One endorsement: which peer (of which org) signed, and the signature over
/// the canonical transaction bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Endorsement {
    /// The endorsing peer.
    pub peer: PeerId,
    /// The peer's organization (endorsement policies are org-granular).
    pub org: OrgId,
    /// HMAC-SHA256 signature over [`Transaction::signing_payload`].
    pub signature: Signature,
}

/// A fully endorsed transaction on its way to (or through) the ordering
/// service.
#[derive(Debug, Clone)]
pub struct Transaction {
    /// Unique transaction id (copied from the proposal).
    pub id: TxId,
    /// Channel the transaction belongs to.
    pub channel: ChannelId,
    /// Submitting client.
    pub client: ClientId,
    /// Invoked chaincode name.
    pub chaincode: String,
    /// The agreed read/write set computed during simulation.
    pub rwset: ReadWriteSet,
    /// Endorsements collected by the client.
    pub endorsements: Vec<Endorsement>,
    /// Proposal creation time (latency measurement anchor).
    pub created_at: Instant,
}

impl Transaction {
    /// The canonical byte string endorsers sign and validators verify:
    /// transaction id, channel, chaincode name, and the full read/write set.
    ///
    /// Any post-endorsement tampering with the read or write set changes
    /// this payload and therefore invalidates every honest signature —
    /// exactly how the paper's running example catches the malicious `T8`
    /// (Appendix A.3.1).
    pub fn signing_payload(
        id: TxId,
        channel: ChannelId,
        chaincode: &str,
        rwset: &ReadWriteSet,
    ) -> Vec<u8> {
        let mut enc = Encoder::with_capacity(64 + rwset.byte_size());
        enc.put_u64(id.raw());
        enc.put_u64(channel.raw());
        enc.put_bytes(chaincode.as_bytes());
        rwset.encode(&mut enc);
        enc.into_bytes()
    }

    /// This transaction's own signing payload.
    pub fn payload(&self) -> Vec<u8> {
        Self::signing_payload(self.id, self.channel, &self.chaincode, &self.rwset)
    }

    /// Verifies every endorsement signature against `registry`.
    ///
    /// Returns `false` if there are no endorsements at all: an unendorsed
    /// transaction never satisfies any policy.
    pub fn verify_endorsements(&self, registry: &SignerRegistry) -> bool {
        if self.endorsements.is_empty() {
            return false;
        }
        let payload = self.payload();
        self.endorsements
            .iter()
            .all(|e| registry.verify(e.peer, &[&payload], &e.signature))
    }

    /// The set of distinct organizations that endorsed, in ascending order.
    pub fn endorsing_orgs(&self) -> Vec<OrgId> {
        let mut orgs: Vec<OrgId> = self.endorsements.iter().map(|e| e.org).collect();
        orgs.sort_unstable();
        orgs.dedup();
        orgs
    }

    /// Approximate wire size of the transaction in bytes (batch-cutting
    /// condition (b) and network byte accounting).
    pub fn byte_size(&self) -> usize {
        // id + channel + client + chaincode + rwset + 40 bytes/endorsement.
        8 + 8 + 8 + self.chaincode.len() + self.rwset.byte_size() + self.endorsements.len() * 40
    }
}

/// The classification every transaction receives on its way through the
/// pipeline. Matches Fabric's validation codes where one exists, extended
/// with the Fabric++ early-abort outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValidationCode {
    /// Committed: endorsements valid and no serialization conflict.
    Valid,
    /// Aborted in the validation phase: a read-set version no longer matches
    /// the current state (classic MVCC conflict, paper §2.2.3).
    MvccConflict,
    /// Aborted in the validation phase: endorsement policy not satisfied or
    /// a signature failed verification (paper Appendix A.3.1).
    EndorsementFailure,
    /// Fabric++: aborted during *simulation* — a read observed a version
    /// from a block newer than the simulation snapshot (paper §5.2.1).
    EarlyAbortSimulation,
    /// Fabric++: aborted by the *orderer* because the transaction sat on a
    /// conflict cycle broken by the reordering mechanism (paper §5.1).
    EarlyAbortCycle,
    /// Fabric++: aborted by the *orderer* because two transactions in the
    /// same block read the same key at different versions; the one with the
    /// older version cannot commit (paper §5.2.2, incl. published
    /// correction).
    EarlyAbortVersionMismatch,
}

impl ValidationCode {
    /// Whether the transaction committed successfully.
    pub fn is_valid(self) -> bool {
        matches!(self, ValidationCode::Valid)
    }

    /// Whether the transaction was removed by a Fabric++ early-abort path
    /// (i.e. before the validation phase).
    pub fn is_early_abort(self) -> bool {
        matches!(
            self,
            ValidationCode::EarlyAbortSimulation
                | ValidationCode::EarlyAbortCycle
                | ValidationCode::EarlyAbortVersionMismatch
        )
    }

    /// Short machine-readable label used by the benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            ValidationCode::Valid => "valid",
            ValidationCode::MvccConflict => "mvcc_conflict",
            ValidationCode::EndorsementFailure => "endorsement_failure",
            ValidationCode::EarlyAbortSimulation => "early_abort_simulation",
            ValidationCode::EarlyAbortCycle => "early_abort_cycle",
            ValidationCode::EarlyAbortVersionMismatch => "early_abort_version_mismatch",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypto::SigningKey;
    use crate::ids::{Key, Value, Version};
    use crate::rwset::rwset_from_keys;

    fn sample_rwset() -> ReadWriteSet {
        rwset_from_keys(
            &[Key::from("balA"), Key::from("balB")],
            Version::new(3, 0),
            &[Key::from("balA")],
            &Value::from_i64(70),
        )
    }

    fn endorsed_tx(registry: &SignerRegistry, peers: &[(PeerId, OrgId)]) -> Transaction {
        let id = TxId::next();
        let channel = ChannelId(0);
        let rwset = sample_rwset();
        let payload = Transaction::signing_payload(id, channel, "transfer", &rwset);
        let endorsements = peers
            .iter()
            .map(|&(peer, org)| {
                let key = SigningKey::for_peer(peer, 42);
                registry.register(peer, key.clone());
                Endorsement { peer, org, signature: key.sign(&payload) }
            })
            .collect();
        Transaction {
            id,
            channel,
            client: ClientId(0),
            chaincode: "transfer".into(),
            rwset,
            endorsements,
            created_at: Instant::now(),
        }
    }

    #[test]
    fn endorsements_verify() {
        let reg = SignerRegistry::new();
        let tx = endorsed_tx(&reg, &[(PeerId(1), OrgId(1)), (PeerId(2), OrgId(2))]);
        assert!(tx.verify_endorsements(&reg));
        assert_eq!(tx.endorsing_orgs(), vec![OrgId(1), OrgId(2)]);
    }

    #[test]
    fn tampered_write_set_fails_verification() {
        let reg = SignerRegistry::new();
        let mut tx = endorsed_tx(&reg, &[(PeerId(1), OrgId(1))]);
        // The malicious client swaps in a different write set (paper's T8).
        tx.rwset = rwset_from_keys(
            &[Key::from("balA")],
            Version::new(3, 0),
            &[Key::from("balA")],
            &Value::from_i64(100),
        );
        assert!(!tx.verify_endorsements(&reg));
    }

    #[test]
    fn unendorsed_transaction_never_verifies() {
        let reg = SignerRegistry::new();
        let mut tx = endorsed_tx(&reg, &[(PeerId(1), OrgId(1))]);
        tx.endorsements.clear();
        assert!(!tx.verify_endorsements(&reg));
    }

    #[test]
    fn signature_from_unregistered_peer_fails() {
        let reg = SignerRegistry::new();
        let tx = endorsed_tx(&reg, &[(PeerId(1), OrgId(1))]);
        let empty_reg = SignerRegistry::new();
        assert!(!tx.verify_endorsements(&empty_reg));
    }

    #[test]
    fn endorsing_orgs_dedups() {
        let reg = SignerRegistry::new();
        let tx = endorsed_tx(
            &reg,
            &[(PeerId(1), OrgId(1)), (PeerId(3), OrgId(1)), (PeerId(2), OrgId(2))],
        );
        assert_eq!(tx.endorsing_orgs(), vec![OrgId(1), OrgId(2)]);
    }

    #[test]
    fn validation_code_predicates() {
        assert!(ValidationCode::Valid.is_valid());
        assert!(!ValidationCode::MvccConflict.is_valid());
        assert!(ValidationCode::EarlyAbortCycle.is_early_abort());
        assert!(ValidationCode::EarlyAbortSimulation.is_early_abort());
        assert!(ValidationCode::EarlyAbortVersionMismatch.is_early_abort());
        assert!(!ValidationCode::MvccConflict.is_early_abort());
        assert_eq!(ValidationCode::Valid.label(), "valid");
    }

    #[test]
    fn payload_changes_with_every_field() {
        let rw = sample_rwset();
        let base = Transaction::signing_payload(TxId(1), ChannelId(0), "cc", &rw);
        assert_ne!(base, Transaction::signing_payload(TxId(2), ChannelId(0), "cc", &rw));
        assert_ne!(base, Transaction::signing_payload(TxId(1), ChannelId(1), "cc", &rw));
        assert_ne!(base, Transaction::signing_payload(TxId(1), ChannelId(0), "cc2", &rw));
        let other_rw = rwset_from_keys(&[], Version::GENESIS, &[Key::from("x")], &Value::from_i64(1));
        assert_ne!(base, Transaction::signing_payload(TxId(1), ChannelId(0), "cc", &other_rw));
    }

    #[test]
    fn byte_size_grows_with_endorsements() {
        let reg = SignerRegistry::new();
        let tx1 = endorsed_tx(&reg, &[(PeerId(1), OrgId(1))]);
        let tx2 = endorsed_tx(&reg, &[(PeerId(1), OrgId(1)), (PeerId(2), OrgId(2))]);
        assert!(tx2.byte_size() > tx1.byte_size());
    }
}
