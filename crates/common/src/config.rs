//! Pipeline configuration shared between the ordering service and the peers.
//!
//! The defaults reproduce the paper's system parameters (Table 5):
//! at most 1024 transactions per block, at most 2 MB per block, at most one
//! second to form a block, and — the Fabric++ addition, §5.1.2 condition
//! (d) — at most 16384 unique keys accessed per block.

use std::time::Duration;

use crate::error::{Error, Result};

/// When the ordering service "cuts" a batch into a block (paper §5.1.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockCuttingConfig {
    /// Condition (a): the batch contains this many transactions (the paper's
    /// `BS` knob, default 1024 per Table 5).
    pub max_tx_count: usize,
    /// Condition (b): the batch reached this size in bytes (default 2 MB).
    pub max_block_bytes: usize,
    /// Condition (c): this much time passed since the first transaction of
    /// the batch arrived (default 1 s).
    pub max_batch_wait: Duration,
    /// Condition (d), Fabric++ only: the batch accesses this many unique
    /// keys (default 16384). `None` disables the condition (vanilla Fabric).
    pub max_unique_keys: Option<usize>,
}

impl Default for BlockCuttingConfig {
    fn default() -> Self {
        BlockCuttingConfig {
            max_tx_count: 1024,
            max_block_bytes: 2 * 1024 * 1024,
            max_batch_wait: Duration::from_secs(1),
            max_unique_keys: Some(16384),
        }
    }
}

impl BlockCuttingConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.max_tx_count == 0 {
            return Err(Error::Config("max_tx_count must be at least 1".into()));
        }
        if self.max_block_bytes == 0 {
            return Err(Error::Config("max_block_bytes must be at least 1".into()));
        }
        if self.max_unique_keys == Some(0) {
            return Err(Error::Config("max_unique_keys, when set, must be at least 1".into()));
        }
        Ok(())
    }
}

/// How the ordering service arranges transactions inside a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrderingPolicy {
    /// Vanilla Fabric: transactions stay in arrival order; the orderer never
    /// inspects read/write sets (paper §2.2.2).
    Arrival,
    /// Fabric++: conflict-graph reordering per Algorithm 1; transactions on
    /// unbreakable conflict cycles are aborted at order time (paper §5.1).
    Reorder,
}

/// Concurrency control protecting the peer's current state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConcurrencyMode {
    /// Vanilla Fabric: a coarse read/write lock over the whole state;
    /// simulation holds read locks, block validation takes the write lock,
    /// so the two phases serialize (paper §4.2.1).
    CoarseLock,
    /// Fabric++: lock-free fine-grained control; simulation runs in parallel
    /// with validation and checks each read's version block-id against the
    /// snapshot's last block (paper §5.2.1, Figure 6).
    FineGrained,
}

/// Cost model for the cryptographic work that dominates Fabric's
/// performance profile (paper §3 point (d) and the Figure 1 observation
/// that blank and meaningful transactions achieve the same throughput).
///
/// Real Fabric signs with ECDSA (hundreds of microseconds per operation);
/// our HMAC-SHA256 signatures cost ~1 µs, so endorsers and validators run
/// the MAC `sign_iterations` / `verify_iterations` times to restore the
/// CPU-cost *shape*. Setting both to 1 measures the raw pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// HMAC iterations per endorsement signature.
    pub sign_iterations: u32,
    /// HMAC iterations per signature verification.
    pub verify_iterations: u32,
    /// Simulated chaincode execution time per invocation (real Fabric runs
    /// chaincode in a Docker container; execution takes on the order of a
    /// millisecond). This window is also what gives the Fabric++
    /// simulation-phase early abort something to abort: a commit can land
    /// *during* the simulation.
    pub chaincode_delay: std::time::Duration,
}

impl Default for CostModel {
    fn default() -> Self {
        // ≈100–200 µs per signature op on commodity hardware: the ECDSA
        // ballpark of the paper's Xeon E5-2407 testbed.
        CostModel {
            sign_iterations: 64,
            verify_iterations: 64,
            chaincode_delay: std::time::Duration::from_millis(1),
        }
    }
}

impl CostModel {
    /// No amplification: every crypto operation runs exactly once and
    /// chaincode executes instantly.
    pub fn raw() -> Self {
        CostModel {
            sign_iterations: 1,
            verify_iterations: 1,
            chaincode_delay: std::time::Duration::ZERO,
        }
    }
}

/// Full pipeline configuration: which Fabric++ optimizations are active.
///
/// The four corners of this space are exactly the four bars of the paper's
/// Figure 10 breakdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Block ordering policy (arrival vs. reordered).
    pub ordering: OrderingPolicy,
    /// Concurrency mode of the peers' state (coarse vs. fine-grained).
    pub concurrency: ConcurrencyMode,
    /// Fabric++ early abort in the *simulation* phase: abort a simulation
    /// the moment a read observes a version newer than its snapshot.
    /// Requires [`ConcurrencyMode::FineGrained`].
    pub early_abort_simulation: bool,
    /// Fabric++ early abort in the *ordering* phase: drop a transaction
    /// whose read version for some key mismatches another transaction's
    /// read of the same key within the block (paper §5.2.2).
    pub early_abort_ordering: bool,
    /// Batch cutting thresholds.
    pub cutting: BlockCuttingConfig,
    /// Safety bound on Johnson cycle enumeration in the reorderer; beyond
    /// this many cycles the reorderer falls back to SCC-condensation
    /// cycle-breaking (see `fabric-reorder`).
    pub max_cycles: usize,
    /// Strongly connected components larger than this skip Johnson cycle
    /// enumeration and go straight to the SCC-condensation fallback: a
    /// dense component of this size holds far more elementary cycles than
    /// any budget, so enumerating first only burns orderer time.
    pub max_scc_for_enumeration: usize,
    /// Worker threads in the peers' endorsement-signature validation pool
    /// (Fabric's VSCC — pure CPU work over immutable bytes, so it
    /// parallelizes freely). Defaults to the host's available parallelism.
    /// A non-semantic knob: validation outcomes are identical at any
    /// setting, and the deterministic harnesses honour it (ChaosNet sizes
    /// its shared pool from it; the conformance harness varies it and
    /// asserts byte-identical runs). With `1` the pool checks inline on
    /// the calling thread.
    pub validation_workers: usize,
    /// Worker threads in the ordering service's reorder stage: the cutter
    /// keeps cutting batch `k+1` while these workers run Algorithm 1 on
    /// batch `k`; block numbering and hash chaining happen at a sequential
    /// emission step, so the block stream is byte-identical to the
    /// sequential path. Defaults to the host's available parallelism. A
    /// non-semantic knob: ChaosNet drives its single-orderer path through
    /// a pipeline sized from it (with `1`, preparing inline on the calling
    /// thread), and schedule digests are unchanged at any setting — the
    /// conformance harness asserts this byte-for-byte.
    pub reorder_workers: usize,
    /// Worker lanes in the peers' MVCC-validate/commit lane scheduler:
    /// transactions whose declared read/write sets are disjoint validate
    /// and apply concurrently on this many lanes, while dependency chains
    /// execute in block order within a lane. Defaults to the host's
    /// available parallelism; with `<= 1` the peer runs the sequential
    /// path unchanged. A non-semantic knob: validation codes, post-state,
    /// watermark, and block stream are byte-identical at any setting —
    /// the conformance matrix and the lane differential proptests assert
    /// this on both state engines.
    pub commit_lanes: usize,
}

/// The host's available parallelism (1 if it cannot be determined) — the
/// default for [`PipelineConfig::validation_workers`].
pub fn default_validation_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The host's available parallelism (1 if it cannot be determined) — the
/// default for [`PipelineConfig::reorder_workers`].
pub fn default_reorder_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The host's available parallelism (1 if it cannot be determined) — the
/// default for [`PipelineConfig::commit_lanes`].
pub fn default_commit_lanes() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Default bound on SCC size for Johnson cycle enumeration — the default
/// for [`PipelineConfig::max_scc_for_enumeration`].
pub const DEFAULT_MAX_SCC_FOR_ENUMERATION: usize = 128;

impl PipelineConfig {
    /// Vanilla Fabric v1.2: arrival order, coarse lock, no early abort,
    /// no unique-key cutting condition.
    pub fn vanilla() -> Self {
        PipelineConfig {
            ordering: OrderingPolicy::Arrival,
            concurrency: ConcurrencyMode::CoarseLock,
            early_abort_simulation: false,
            early_abort_ordering: false,
            cutting: BlockCuttingConfig { max_unique_keys: None, ..Default::default() },
            max_cycles: 4096,
            max_scc_for_enumeration: DEFAULT_MAX_SCC_FOR_ENUMERATION,
            validation_workers: default_validation_workers(),
            reorder_workers: default_reorder_workers(),
            commit_lanes: default_commit_lanes(),
        }
    }

    /// Full Fabric++: reordering plus both early-abort mechanisms.
    pub fn fabric_pp() -> Self {
        PipelineConfig {
            ordering: OrderingPolicy::Reorder,
            concurrency: ConcurrencyMode::FineGrained,
            early_abort_simulation: true,
            early_abort_ordering: true,
            cutting: BlockCuttingConfig::default(),
            max_cycles: 4096,
            max_scc_for_enumeration: DEFAULT_MAX_SCC_FOR_ENUMERATION,
            validation_workers: default_validation_workers(),
            reorder_workers: default_reorder_workers(),
            commit_lanes: default_commit_lanes(),
        }
    }

    /// Figure 10 middle bar: reordering only (no early abort anywhere else).
    pub fn reordering_only() -> Self {
        PipelineConfig {
            ordering: OrderingPolicy::Reorder,
            concurrency: ConcurrencyMode::CoarseLock,
            early_abort_simulation: false,
            early_abort_ordering: false,
            cutting: BlockCuttingConfig::default(),
            max_cycles: 4096,
            max_scc_for_enumeration: DEFAULT_MAX_SCC_FOR_ENUMERATION,
            validation_workers: default_validation_workers(),
            reorder_workers: default_reorder_workers(),
            commit_lanes: default_commit_lanes(),
        }
    }

    /// Figure 10 middle bar: early abort only (arrival order preserved).
    pub fn early_abort_only() -> Self {
        PipelineConfig {
            ordering: OrderingPolicy::Arrival,
            concurrency: ConcurrencyMode::FineGrained,
            early_abort_simulation: true,
            early_abort_ordering: true,
            cutting: BlockCuttingConfig::default(),
            max_cycles: 4096,
            max_scc_for_enumeration: DEFAULT_MAX_SCC_FOR_ENUMERATION,
            validation_workers: default_validation_workers(),
            reorder_workers: default_reorder_workers(),
            commit_lanes: default_commit_lanes(),
        }
    }

    /// Sets the block size (paper's `BS` knob) and returns `self`.
    pub fn with_block_size(mut self, bs: usize) -> Self {
        self.cutting.max_tx_count = bs;
        self
    }

    /// Sets the validation-pool worker count and returns `self`.
    pub fn with_validation_workers(mut self, workers: usize) -> Self {
        self.validation_workers = workers;
        self
    }

    /// Sets the reorder-stage worker count and returns `self`.
    pub fn with_reorder_workers(mut self, workers: usize) -> Self {
        self.reorder_workers = workers;
        self
    }

    /// Sets the SCC-size bound for cycle enumeration and returns `self`.
    pub fn with_max_scc_for_enumeration(mut self, bound: usize) -> Self {
        self.max_scc_for_enumeration = bound;
        self
    }

    /// Sets the commit lane-scheduler width and returns `self`.
    pub fn with_commit_lanes(mut self, lanes: usize) -> Self {
        self.commit_lanes = lanes;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        self.cutting.validate()?;
        if self.validation_workers == 0 {
            return Err(Error::Config("validation_workers must be at least 1".into()));
        }
        if self.early_abort_simulation && self.concurrency == ConcurrencyMode::CoarseLock {
            return Err(Error::Config(
                "early_abort_simulation requires ConcurrencyMode::FineGrained: \
                 under the coarse lock, simulation cannot observe concurrent commits"
                    .into(),
            ));
        }
        if self.max_cycles == 0 {
            return Err(Error::Config("max_cycles must be at least 1".into()));
        }
        if self.max_scc_for_enumeration == 0 {
            return Err(Error::Config("max_scc_for_enumeration must be at least 1".into()));
        }
        if self.reorder_workers == 0 {
            return Err(Error::Config("reorder_workers must be at least 1".into()));
        }
        if self.commit_lanes == 0 {
            return Err(Error::Config("commit_lanes must be at least 1".into()));
        }
        Ok(())
    }

    /// Human-readable mode label used in benchmark output.
    pub fn mode_label(&self) -> &'static str {
        match (self.ordering, self.early_abort_simulation || self.early_abort_ordering) {
            (OrderingPolicy::Arrival, false) => "fabric",
            (OrderingPolicy::Arrival, true) => "fabric++(early-abort)",
            (OrderingPolicy::Reorder, false) => "fabric++(reordering)",
            (OrderingPolicy::Reorder, true) => "fabric++",
        }
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self::fabric_pp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_table_5() {
        let c = BlockCuttingConfig::default();
        assert_eq!(c.max_tx_count, 1024);
        assert_eq!(c.max_block_bytes, 2 * 1024 * 1024);
        assert_eq!(c.max_batch_wait, Duration::from_secs(1));
        assert_eq!(c.max_unique_keys, Some(16384));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn vanilla_has_no_fabricpp_features() {
        let v = PipelineConfig::vanilla();
        assert_eq!(v.ordering, OrderingPolicy::Arrival);
        assert_eq!(v.concurrency, ConcurrencyMode::CoarseLock);
        assert!(!v.early_abort_simulation);
        assert!(!v.early_abort_ordering);
        assert_eq!(v.cutting.max_unique_keys, None);
        assert!(v.validate().is_ok());
        assert_eq!(v.mode_label(), "fabric");
    }

    #[test]
    fn fabric_pp_has_all_features() {
        let f = PipelineConfig::fabric_pp();
        assert_eq!(f.ordering, OrderingPolicy::Reorder);
        assert_eq!(f.concurrency, ConcurrencyMode::FineGrained);
        assert!(f.early_abort_simulation && f.early_abort_ordering);
        assert!(f.validate().is_ok());
        assert_eq!(f.mode_label(), "fabric++");
    }

    #[test]
    fn breakdown_modes_are_distinct() {
        let labels = [
            PipelineConfig::vanilla().mode_label(),
            PipelineConfig::reordering_only().mode_label(),
            PipelineConfig::early_abort_only().mode_label(),
            PipelineConfig::fabric_pp().mode_label(),
        ];
        let unique: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), 4);
        assert!(PipelineConfig::reordering_only().validate().is_ok());
        assert!(PipelineConfig::early_abort_only().validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = PipelineConfig::vanilla();
        c.cutting.max_tx_count = 0;
        assert!(c.validate().is_err());

        let mut c = PipelineConfig::vanilla();
        c.early_abort_simulation = true; // but coarse lock
        assert!(c.validate().is_err());

        let mut c = PipelineConfig::fabric_pp();
        c.max_cycles = 0;
        assert!(c.validate().is_err());

        let mut c = PipelineConfig::fabric_pp();
        c.cutting.max_unique_keys = Some(0);
        assert!(c.validate().is_err());

        let mut c = PipelineConfig::fabric_pp();
        c.cutting.max_block_bytes = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn with_block_size_sets_bs() {
        let c = PipelineConfig::fabric_pp().with_block_size(512);
        assert_eq!(c.cutting.max_tx_count, 512);
    }

    #[test]
    fn reorder_workers_default_and_knob() {
        let c = PipelineConfig::fabric_pp();
        assert_eq!(c.reorder_workers, default_reorder_workers());
        assert!(c.reorder_workers >= 1);
        assert_eq!(c.max_scc_for_enumeration, DEFAULT_MAX_SCC_FOR_ENUMERATION);
        let c = c.with_reorder_workers(4).with_max_scc_for_enumeration(64);
        assert_eq!(c.reorder_workers, 4);
        assert_eq!(c.max_scc_for_enumeration, 64);
        assert!(c.validate().is_ok());
        let zero = PipelineConfig::vanilla().with_reorder_workers(0);
        assert!(zero.validate().is_err());
        let zero = PipelineConfig::vanilla().with_max_scc_for_enumeration(0);
        assert!(zero.validate().is_err());
    }

    #[test]
    fn commit_lanes_default_and_knob() {
        let c = PipelineConfig::fabric_pp();
        assert_eq!(c.commit_lanes, default_commit_lanes());
        assert!(c.commit_lanes >= 1);
        let c = c.with_commit_lanes(4);
        assert_eq!(c.commit_lanes, 4);
        assert!(c.validate().is_ok());
        let zero = PipelineConfig::vanilla().with_commit_lanes(0);
        assert!(zero.validate().is_err());
    }

    #[test]
    fn validation_workers_default_and_knob() {
        let c = PipelineConfig::fabric_pp();
        assert_eq!(c.validation_workers, default_validation_workers());
        assert!(c.validation_workers >= 1);
        let c = c.with_validation_workers(4);
        assert_eq!(c.validation_workers, 4);
        assert!(c.validate().is_ok());
        let zero = PipelineConfig::vanilla().with_validation_workers(0);
        assert!(zero.validate().is_err());
    }
}
