//! Persistent worker lanes for dependency-aware parallel validation and
//! commit (paper §4.2 cost center; DESIGN.md §14).
//!
//! [`LanePool`] owns `lanes - 1` long-lived worker threads. [`LanePool::run`]
//! hands one shared [`LaneJob`] to every worker plus the calling thread
//! (which participates as lane 0) and returns once all lanes finish. Jobs
//! carry their own interior-mutable state, so the warm dispatch path is an
//! `Arc` refcount bump and a condvar broadcast — no thread spawn, no
//! allocation (the counting-allocator release test in `fabric-peer` holds
//! the whole lane-scheduled block cycle to zero steady-state allocations).
//!
//! With `lanes <= 1` the pool owns no threads at all and `run` simply
//! invokes the job inline — the sequential path, bit-identical by
//! construction.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// One unit of lane-parallel work, executed by every lane of a
/// [`LanePool`] concurrently.
///
/// The same job value is observed by all lanes; `run(lane)` must partition
/// the work internally (by lane index, or by racing on an atomic cursor).
/// State lives inside the job behind interior mutability — the pool only
/// guarantees that `run` has returned on every lane before
/// [`LanePool::run`] returns, and that the caller's writes to job state
/// before dispatch happen-before every lane's reads (the dispatch mutex
/// orders them).
pub trait LaneJob: Send + Sync {
    /// Executes this job's share of the work for `lane`
    /// (`0 <= lane < lanes`). Lane 0 is always the calling thread.
    fn run(&self, lane: usize);
}

struct Inner {
    /// The job being executed, present from dispatch until the caller
    /// reclaims it after the last lane finishes.
    job: Option<Arc<dyn LaneJob>>,
    /// Bumped once per dispatch; workers pick up a job when they observe
    /// a generation they have not executed yet.
    generation: u64,
    /// Worker lanes still running the current job.
    remaining: usize,
    /// Set when any worker lane's `run` panicked.
    panicked: bool,
    /// Set by `Drop` to terminate the worker loop.
    shutdown: bool,
}

struct Shared {
    inner: Mutex<Inner>,
    /// Signals workers that a new generation (or shutdown) is available.
    start: Condvar,
    /// Signals the dispatching caller that `remaining` reached zero.
    done: Condvar,
}

/// A pool of persistent worker lanes executing [`LaneJob`]s.
///
/// `run` is fully synchronous — at most one job is in flight at a time —
/// so a pool is typically owned by the single component that drives it
/// (the peer's commit path). Dropping the pool joins all workers.
pub struct LanePool {
    lanes: usize,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

/// Ignores mutex poisoning: workers run jobs under `catch_unwind`, so a
/// panic can never unwind while the dispatch lock is held; poisoning is
/// unreachable in practice but must not cascade if it ever happens.
fn lock(m: &Mutex<Inner>) -> MutexGuard<'_, Inner> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl LanePool {
    /// Creates a pool of `lanes` lanes (clamped to at least 1), spawning
    /// `lanes - 1` worker threads; lane 0 is the thread calling
    /// [`LanePool::run`].
    pub fn new(lanes: usize) -> Self {
        let lanes = lanes.max(1);
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                job: None,
                generation: 0,
                remaining: 0,
                panicked: false,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (1..lanes)
            .map(|lane| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("commit-lane-{lane}"))
                    .spawn(move || worker_loop(&shared, lane))
                    .expect("spawn commit lane")
            })
            .collect();
        LanePool { lanes, shared, workers }
    }

    /// The number of lanes (including the caller's lane 0).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Executes `job` on every lane and returns when all lanes finish.
    ///
    /// The caller participates as lane 0. If any lane's `run` panics, the
    /// remaining lanes still finish and the panic is re-raised here — the
    /// pool itself stays usable.
    pub fn run(&self, job: &Arc<dyn LaneJob>) {
        if self.lanes == 1 {
            job.run(0);
            return;
        }
        {
            let mut g = lock(&self.shared.inner);
            g.job = Some(Arc::clone(job));
            g.generation += 1;
            g.remaining = self.lanes - 1;
            g.panicked = false;
            self.shared.start.notify_all();
        }
        let lane0 = catch_unwind(AssertUnwindSafe(|| job.run(0)));
        let workers_panicked = {
            let mut g = lock(&self.shared.inner);
            while g.remaining > 0 {
                g = self.shared.done.wait(g).unwrap_or_else(PoisonError::into_inner);
            }
            g.job = None;
            g.panicked
        };
        if let Err(payload) = lane0 {
            std::panic::resume_unwind(payload);
        }
        if workers_panicked {
            panic!("lane job panicked on a worker lane");
        }
    }
}

fn worker_loop(shared: &Shared, lane: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut g = lock(&shared.inner);
            loop {
                if g.shutdown {
                    return;
                }
                if g.generation != seen {
                    seen = g.generation;
                    break Arc::clone(g.job.as_ref().expect("dispatched generation has a job"));
                }
                g = shared.start.wait(g).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let ok = catch_unwind(AssertUnwindSafe(|| job.run(lane))).is_ok();
        drop(job);
        let mut g = lock(&shared.inner);
        if !ok {
            g.panicked = true;
        }
        g.remaining -= 1;
        if g.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

impl Drop for LanePool {
    fn drop(&mut self) {
        {
            let mut g = lock(&self.shared.inner);
            g.shutdown = true;
            self.shared.start.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for LanePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LanePool({} lanes)", self.lanes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct CountJob {
        per_lane: Vec<AtomicUsize>,
        total: AtomicUsize,
    }

    impl CountJob {
        fn new(lanes: usize) -> Self {
            CountJob {
                per_lane: (0..lanes).map(|_| AtomicUsize::new(0)).collect(),
                total: AtomicUsize::new(0),
            }
        }
    }

    impl LaneJob for CountJob {
        fn run(&self, lane: usize) {
            self.per_lane[lane].fetch_add(1, Ordering::Relaxed);
            self.total.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn every_lane_runs_exactly_once_per_dispatch() {
        for lanes in [1, 2, 4] {
            let pool = LanePool::new(lanes);
            assert_eq!(pool.lanes(), lanes);
            let count = Arc::new(CountJob::new(lanes));
            let job: Arc<dyn LaneJob> = count.clone();
            for round in 1..=3 {
                pool.run(&job);
                assert_eq!(count.total.load(Ordering::Relaxed), lanes * round);
                for lane in 0..lanes {
                    assert_eq!(count.per_lane[lane].load(Ordering::Relaxed), round);
                }
            }
        }
    }

    #[test]
    fn zero_lanes_clamps_to_one() {
        let pool = LanePool::new(0);
        assert_eq!(pool.lanes(), 1);
        let count = Arc::new(CountJob::new(1));
        let job: Arc<dyn LaneJob> = count.clone();
        pool.run(&job);
        assert_eq!(count.total.load(Ordering::Relaxed), 1);
    }

    struct PanicJob {
        victim: usize,
    }

    impl LaneJob for PanicJob {
        fn run(&self, lane: usize) {
            if lane == self.victim {
                panic!("lane {lane} exploding on purpose");
            }
        }
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = LanePool::new(2);
        let bad: Arc<dyn LaneJob> = Arc::new(PanicJob { victim: 1 });
        assert!(catch_unwind(AssertUnwindSafe(|| pool.run(&bad))).is_err());
        // The pool is still serviceable after a panicked job.
        let count = Arc::new(CountJob::new(2));
        let job: Arc<dyn LaneJob> = count.clone();
        pool.run(&job);
        assert_eq!(count.total.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn caller_lane_panic_propagates() {
        let pool = LanePool::new(2);
        let bad: Arc<dyn LaneJob> = Arc::new(PanicJob { victim: 0 });
        assert!(catch_unwind(AssertUnwindSafe(|| pool.run(&bad))).is_err());
        let count = Arc::new(CountJob::new(2));
        let job: Arc<dyn LaneJob> = count.clone();
        pool.run(&job);
        assert_eq!(count.total.load(Ordering::Relaxed), 2);
    }
}
