//! Endorsement signatures: HMAC-SHA256 over canonical transaction bytes.
//!
//! Real Fabric endorsers sign proposal responses with ECDSA keys whose
//! certificates are distributed through the Membership Service Provider.
//! The validation phase (paper §2.2.3, Appendix A.3.1) recomputes the
//! signature input from the received read/write set and rejects the
//! transaction if any endorser signature does not match — this is how the
//! tampered `T8` in the paper's running example is caught.
//!
//! Inside a closed simulator the properties that matter are:
//!
//! 1. a signature binds a specific endorser to the *exact* bytes it endorsed,
//! 2. any mutation of the read/write set after endorsement is detected, and
//! 3. signing and verifying cost real CPU per transaction (the paper's §3
//!    point (d): crypto dominates Fabric's performance profile).
//!
//! HMAC-SHA256 with a per-peer secret held in a [`SignerRegistry`] (the
//! simulator's stand-in for the MSP) provides all three. The substitution is
//! recorded in DESIGN.md §5.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::hash::{Digest, Sha256};
use crate::ids::PeerId;

/// A 256-bit MAC tag acting as an endorsement signature.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature(pub [u8; 32]);

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signature({}…)", crate::ids::hex(&self.0[..6]))
    }
}

/// A peer's signing key (HMAC secret).
#[derive(Clone)]
pub struct SigningKey {
    key: [u8; 64],
}

impl fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SigningKey(<secret>)")
    }
}

const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

impl SigningKey {
    /// Derives a signing key from arbitrary seed material.
    ///
    /// Seeds longer than the HMAC block size are hashed first, per RFC 2104.
    pub fn from_seed(seed: &[u8]) -> Self {
        let mut key = [0u8; 64];
        if seed.len() <= 64 {
            key[..seed.len()].copy_from_slice(seed);
        } else {
            let d = crate::hash::sha256(seed);
            key[..32].copy_from_slice(d.as_bytes());
        }
        SigningKey { key }
    }

    /// Derives the deterministic signing key the simulator assigns to `peer`.
    pub fn for_peer(peer: PeerId, network_seed: u64) -> Self {
        let mut seed = Vec::with_capacity(24);
        seed.extend_from_slice(b"fabricpp-msp");
        seed.extend_from_slice(&network_seed.to_le_bytes());
        seed.extend_from_slice(&peer.raw().to_le_bytes());
        SigningKey::from_seed(&seed)
    }

    /// HMAC-SHA256 over `msg`.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        Signature(self.mac(msg).0)
    }

    /// Signs a message given as multiple slices (avoids concatenation).
    pub fn sign_parts(&self, parts: &[&[u8]]) -> Signature {
        let mut inner = Sha256::new();
        let mut ik = [0u8; 64];
        for (i, b) in self.key.iter().enumerate() {
            ik[i] = b ^ IPAD;
        }
        inner.update(&ik);
        for p in parts {
            inner.update(p);
        }
        let inner_digest = inner.finalize();
        Signature(self.outer(inner_digest).0)
    }

    /// Iterated signature: `s₀ = HMAC(parts)`, `sᵢ₊₁ = HMAC(sᵢ)`, returning
    /// `s_{iterations-1}`.
    ///
    /// Used with the [`crate::config::CostModel`] to give each signing
    /// operation the CPU cost of the ECDSA operations that dominate real
    /// Fabric (paper §3 point (d)); `iterations = 1` is a plain HMAC.
    pub fn sign_iterated(&self, parts: &[&[u8]], iterations: u32) -> Signature {
        let mut sig = self.sign_parts(parts);
        for _ in 1..iterations.max(1) {
            sig = self.sign_parts(&[&sig.0]);
        }
        sig
    }

    /// Verifies a signature produced by [`SigningKey::sign_iterated`] with
    /// the same iteration count (recomputing the full chain, so
    /// verification costs what signing costs).
    pub fn verify_iterated(&self, parts: &[&[u8]], sig: &Signature, iterations: u32) -> bool {
        constant_time_eq(&self.sign_iterated(parts, iterations).0, &sig.0)
    }

    /// Verifies `sig` over `msg`.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        constant_time_eq(&self.mac(msg).0, &sig.0)
    }

    /// Verifies a signature produced by [`SigningKey::sign_parts`].
    pub fn verify_parts(&self, parts: &[&[u8]], sig: &Signature) -> bool {
        constant_time_eq(&self.sign_parts(parts).0, &sig.0)
    }

    fn mac(&self, msg: &[u8]) -> Digest {
        self.sign_parts(&[msg]).into_digest()
    }

    fn outer(&self, inner: Digest) -> Digest {
        let mut ok = [0u8; 64];
        for (i, b) in self.key.iter().enumerate() {
            ok[i] = b ^ OPAD;
        }
        Sha256::new().chain(&ok).chain(inner.as_bytes()).finalize()
    }
}

impl Signature {
    fn into_digest(self) -> Digest {
        Digest(self.0)
    }
}

/// Comparison that does not short-circuit on the first mismatching byte.
fn constant_time_eq(a: &[u8; 32], b: &[u8; 32]) -> bool {
    let mut diff = 0u8;
    for i in 0..32 {
        diff |= a[i] ^ b[i];
    }
    diff == 0
}

/// The simulator's stand-in for Fabric's MSP: maps each peer to its signing
/// key so validators can recompute endorsement signatures.
///
/// Cloning is cheap (shared `Arc`); registration typically happens once at
/// network construction time.
#[derive(Clone, Default)]
pub struct SignerRegistry {
    keys: Arc<RwLock<HashMap<PeerId, SigningKey>>>,
}

impl SignerRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) the signing key for `peer`.
    pub fn register(&self, peer: PeerId, key: SigningKey) {
        self.keys.write().insert(peer, key);
    }

    /// Returns the signing key of `peer`, if registered.
    pub fn key_of(&self, peer: PeerId) -> Option<SigningKey> {
        self.keys.read().get(&peer).cloned()
    }

    /// Verifies that `sig` is `peer`'s signature over `parts`.
    ///
    /// Unknown peers verify as `false` (an endorsement from a peer outside
    /// the MSP is never acceptable).
    pub fn verify(&self, peer: PeerId, parts: &[&[u8]], sig: &Signature) -> bool {
        match self.key_of(peer) {
            Some(key) => key.verify_parts(parts, sig),
            None => false,
        }
    }

    /// Verifies an iterated signature (see [`SigningKey::sign_iterated`]).
    pub fn verify_iterated(
        &self,
        peer: PeerId,
        parts: &[&[u8]],
        sig: &Signature,
        iterations: u32,
    ) -> bool {
        match self.key_of(peer) {
            Some(key) => key.verify_iterated(parts, sig, iterations),
            None => false,
        }
    }

    /// Number of registered peers.
    pub fn len(&self) -> usize {
        self.keys.read().len()
    }

    /// Whether no peer is registered.
    pub fn is_empty(&self) -> bool {
        self.keys.read().is_empty()
    }
}

impl fmt::Debug for SignerRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SignerRegistry({} peers)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex_sig(key: &[u8], msg: &[u8]) -> String {
        crate::ids::hex(&SigningKey::from_seed(key).sign(msg).0)
    }

    // RFC 4231 HMAC-SHA256 test vectors.
    #[test]
    fn rfc4231_case_1() {
        assert_eq!(
            hex_sig(&[0x0b; 20], b"Hi There"),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        assert_eq!(
            hex_sig(b"Jefe", b"what do ya want for nothing?"),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        assert_eq!(
            hex_sig(&[0xaa; 20], &[0xdd; 50]),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        // Key longer than block size must be hashed first.
        assert_eq!(
            hex_sig(
                &[0xaa; 131],
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            ),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn sign_parts_equals_sign_concat() {
        let k = SigningKey::from_seed(b"some key");
        let whole = k.sign(b"hello world");
        let parts = k.sign_parts(&[b"hello", b" ", b"world"]);
        assert_eq!(whole, parts);
        assert!(k.verify_parts(&[b"hello world"], &whole));
    }

    #[test]
    fn verification_rejects_tampering() {
        let k = SigningKey::from_seed(b"endorser-key");
        let sig = k.sign(b"WS = {BalA=70, BalB=80}");
        assert!(k.verify(b"WS = {BalA=70, BalB=80}", &sig));
        // The paper's running example: client swaps in a tampered write set.
        assert!(!k.verify(b"WS = {BalA=100, BalB=120}", &sig));
    }

    #[test]
    fn verification_rejects_wrong_key() {
        let honest = SigningKey::for_peer(PeerId(1), 42);
        let attacker = SigningKey::for_peer(PeerId(2), 42);
        let sig = attacker.sign(b"msg");
        assert!(!honest.verify(b"msg", &sig));
    }

    #[test]
    fn per_peer_keys_are_deterministic_and_distinct() {
        let a1 = SigningKey::for_peer(PeerId(1), 7);
        let a2 = SigningKey::for_peer(PeerId(1), 7);
        let b = SigningKey::for_peer(PeerId(2), 7);
        let other_net = SigningKey::for_peer(PeerId(1), 8);
        assert_eq!(a1.sign(b"m"), a2.sign(b"m"));
        assert_ne!(a1.sign(b"m"), b.sign(b"m"));
        assert_ne!(a1.sign(b"m"), other_net.sign(b"m"));
    }

    #[test]
    fn registry_verifies_known_rejects_unknown() {
        let reg = SignerRegistry::new();
        let key = SigningKey::for_peer(PeerId(9), 1);
        reg.register(PeerId(9), key.clone());
        let sig = key.sign_parts(&[b"payload"]);
        assert!(reg.verify(PeerId(9), &[b"payload"], &sig));
        assert!(!reg.verify(PeerId(10), &[b"payload"], &sig));
        assert!(!reg.verify(PeerId(9), &[b"other"], &sig));
        assert_eq!(reg.len(), 1);
        assert!(!reg.is_empty());
    }

    #[test]
    fn iterated_signatures_round_trip() {
        let k = SigningKey::from_seed(b"iter");
        let sig1 = k.sign_iterated(&[b"payload"], 1);
        assert_eq!(sig1, k.sign_parts(&[b"payload"]), "one iteration = plain HMAC");
        let sig16 = k.sign_iterated(&[b"payload"], 16);
        assert_ne!(sig1, sig16);
        assert!(k.verify_iterated(&[b"payload"], &sig16, 16));
        assert!(!k.verify_iterated(&[b"payload"], &sig16, 15));
        assert!(!k.verify_iterated(&[b"other"], &sig16, 16));
        // Zero clamps to one.
        assert_eq!(k.sign_iterated(&[b"p"], 0), k.sign_iterated(&[b"p"], 1));
    }

    #[test]
    fn registry_verify_iterated() {
        let reg = SignerRegistry::new();
        let key = SigningKey::for_peer(PeerId(4), 1);
        reg.register(PeerId(4), key.clone());
        let sig = key.sign_iterated(&[b"m"], 8);
        assert!(reg.verify_iterated(PeerId(4), &[b"m"], &sig, 8));
        assert!(!reg.verify_iterated(PeerId(5), &[b"m"], &sig, 8));
    }

    #[test]
    fn constant_time_eq_works() {
        let a = [7u8; 32];
        let mut b = a;
        assert!(constant_time_eq(&a, &b));
        b[31] ^= 1;
        assert!(!constant_time_eq(&a, &b));
    }
}
