//! Network-wide subsystem gauges: shared atomic cells that pipeline
//! stages *write* on their hot paths and the telemetry layer *reads* at
//! window close.
//!
//! The paper's evaluation localizes bottlenecks by watching each pipeline
//! stage over time (Figs. 10–11); these cells are the stage-side half of
//! that instrument. Every write is a single relaxed atomic store or add —
//! no locks, no allocation — so attaching the handle to a subsystem is
//! observation-only: a run with gauges wired is byte-identical to one
//! without (the determinism conformance harness proves this for whole
//! pipelines).
//!
//! Two kinds of cell live here:
//!
//! * **counters** (monotone: endorsements, VSCC batches, consensus
//!   messages/heights/view-changes) — the telemetry layer turns these
//!   into per-window deltas via [`GaugeStats::since`];
//! * **gauges** (instantaneous: cutter queue depth, configured
//!   validation workers) — sampled as-is at window close.
//!
//! Store-side gauges (memtable size, GC floor, live snapshot pins) live
//! on [`crate::metrics::StoreCounters`] instead, next to the engine
//! counters the engines already carry.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cheap-to-clone handle to the shared gauge cells (one per network).
#[derive(Clone, Debug, Default)]
pub struct SubsystemGauges {
    inner: Arc<GaugesInner>,
}

#[derive(Debug, Default)]
struct GaugesInner {
    cutter_queue_txs: AtomicU64,
    endorsements: AtomicU64,
    vscc_batches_started: AtomicU64,
    vscc_batches_done: AtomicU64,
    validation_workers: AtomicU64,
    consensus_msgs: AtomicU64,
    consensus_view_changes: AtomicU64,
    consensus_heights: AtomicU64,
}

impl SubsystemGauges {
    /// Creates zeroed cells.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the batch cutter's current queue depth (transactions buffered
    /// and not yet cut). The orderer loop stores this after every push /
    /// timeout poll, so a window close reads the most recent depth.
    pub fn set_cutter_queue(&self, txs: u64) {
        self.inner.cutter_queue_txs.store(txs, Ordering::Relaxed);
    }

    /// Counts one endorsement simulation (any peer, success or early
    /// abort). Network-wide: with `k` endorsing orgs every proposal bumps
    /// this `k` times.
    pub fn record_endorsement(&self) {
        self.inner.endorsements.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one endorsement-signature batch handed to the validation
    /// pool. In-flight batches = started − done; a batch abandoned by a
    /// crashed peer never finishes and stays visibly in flight.
    pub fn record_vscc_batch_started(&self) {
        self.inner.vscc_batches_started.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one endorsement-signature batch joined (`wait` returned).
    pub fn record_vscc_batch_done(&self) {
        self.inner.vscc_batches_done.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the validation pool's configured worker count (a static
    /// gauge, set once at build).
    pub fn set_validation_workers(&self, n: u64) {
        self.inner.validation_workers.store(n, Ordering::Relaxed);
    }

    /// Counts one inter-replica consensus message put on the wire.
    pub fn record_consensus_msg(&self) {
        self.inner.consensus_msgs.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts `n` view changes burned deciding one consensus height (the
    /// decided view number: 0 when the first leader's proposal went
    /// through).
    pub fn record_view_changes(&self, n: u64) {
        self.inner.consensus_view_changes.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts one decided consensus height.
    pub fn record_consensus_height(&self) {
        self.inner.consensus_heights.fetch_add(1, Ordering::Relaxed);
    }

    /// Immutable snapshot of every cell.
    pub fn snapshot(&self) -> GaugeStats {
        GaugeStats {
            cutter_queue_txs: self.inner.cutter_queue_txs.load(Ordering::Relaxed),
            endorsements: self.inner.endorsements.load(Ordering::Relaxed),
            vscc_batches_started: self.inner.vscc_batches_started.load(Ordering::Relaxed),
            vscc_batches_done: self.inner.vscc_batches_done.load(Ordering::Relaxed),
            validation_workers: self.inner.validation_workers.load(Ordering::Relaxed),
            consensus_msgs: self.inner.consensus_msgs.load(Ordering::Relaxed),
            consensus_view_changes: self.inner.consensus_view_changes.load(Ordering::Relaxed),
            consensus_heights: self.inner.consensus_heights.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time view of [`SubsystemGauges`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GaugeStats {
    /// Transactions buffered in the batch cutter (instantaneous).
    pub cutter_queue_txs: u64,
    /// Endorsement simulations run, network-wide (counter).
    pub endorsements: u64,
    /// Endorsement-signature batches handed to the validation pool
    /// (counter).
    pub vscc_batches_started: u64,
    /// Endorsement-signature batches joined (counter).
    pub vscc_batches_done: u64,
    /// Configured validation-pool workers (static gauge).
    pub validation_workers: u64,
    /// Inter-replica consensus messages sent (counter; 0 under the
    /// single-orderer backends).
    pub consensus_msgs: u64,
    /// View changes burned across decided heights (counter).
    pub consensus_view_changes: u64,
    /// Consensus heights decided (counter).
    pub consensus_heights: u64,
}

impl GaugeStats {
    /// Difference `self - earlier` on the counter cells; instantaneous
    /// gauges (`cutter_queue_txs`, `validation_workers`) are carried over
    /// from `self` as-is. Saturating, like the other stats diffs.
    pub fn since(&self, earlier: &GaugeStats) -> GaugeStats {
        GaugeStats {
            cutter_queue_txs: self.cutter_queue_txs,
            endorsements: self.endorsements.saturating_sub(earlier.endorsements),
            vscc_batches_started: self
                .vscc_batches_started
                .saturating_sub(earlier.vscc_batches_started),
            vscc_batches_done: self
                .vscc_batches_done
                .saturating_sub(earlier.vscc_batches_done),
            validation_workers: self.validation_workers,
            consensus_msgs: self.consensus_msgs.saturating_sub(earlier.consensus_msgs),
            consensus_view_changes: self
                .consensus_view_changes
                .saturating_sub(earlier.consensus_view_changes),
            consensus_heights: self
                .consensus_heights
                .saturating_sub(earlier.consensus_heights),
        }
    }

    /// Signature batches currently in flight (started − done).
    pub fn vscc_inflight(&self) -> u64 {
        self.vscc_batches_started.saturating_sub(self.vscc_batches_done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_diff() {
        let g = SubsystemGauges::new();
        g.record_endorsement();
        g.record_endorsement();
        g.record_vscc_batch_started();
        g.record_consensus_msg();
        g.record_view_changes(2);
        g.record_consensus_height();
        g.set_cutter_queue(17);
        g.set_validation_workers(4);
        let a = g.snapshot();
        assert_eq!(a.endorsements, 2);
        assert_eq!(a.vscc_inflight(), 1);
        assert_eq!(a.cutter_queue_txs, 17);

        g.record_endorsement();
        g.record_vscc_batch_done();
        g.set_cutter_queue(3);
        let b = g.snapshot();
        let d = b.since(&a);
        assert_eq!(d.endorsements, 1);
        assert_eq!(d.vscc_batches_done, 1);
        // Instantaneous gauges carry the latest value, not a delta.
        assert_eq!(d.cutter_queue_txs, 3);
        assert_eq!(d.validation_workers, 4);
        assert_eq!(b.vscc_inflight(), 0);
    }

    #[test]
    fn clones_share_cells() {
        let g = SubsystemGauges::new();
        let h = g.clone();
        h.record_consensus_msg();
        assert_eq!(g.snapshot().consensus_msgs, 1);
    }
}
