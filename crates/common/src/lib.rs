//! # fabric-common
//!
//! Shared substrate for the Fabric++ reproduction (Sharma et al., SIGMOD'19:
//! *Blurring the Lines between Blockchains and Database Systems*).
//!
//! This crate provides the vocabulary types and low-level machinery that every
//! other crate in the workspace builds on:
//!
//! * [`ids`] — identifiers for transactions, blocks, peers, organizations,
//!   channels, and clients, plus the Fabric-style [`ids::Version`]
//!   `(block, tx)` pair attached to every committed value.
//! * [`rwset`] — read and write sets captured during chaincode simulation,
//!   with a canonical byte encoding used for endorsement signatures.
//! * [`hash`] — a from-scratch FIPS 180-4 SHA-256 implementation (no external
//!   crypto dependencies; validated against the standard test vectors).
//! * [`crypto`] — HMAC-SHA256 based endorsement signatures and the signer
//!   registry standing in for Fabric's X.509 MSP (see DESIGN.md §5 for why
//!   this substitution preserves the behaviour the paper measures).
//! * [`bitset`] — the dynamic bit-vectors used by the reordering mechanism's
//!   conflict detection (paper §5.1.1 step 1).
//! * [`codec`] — minimal length-prefixed binary encoding helpers.
//! * [`intern`] — dense `u32` key interning shared by the ordering-phase
//!   early abort and the reorderer's conflict-graph build.
//! * [`metrics`] — atomic throughput counters and a latency recorder that
//!   reproduces the min/max/avg latency rows of the paper's Table 8.
//! * [`gauges`] — shared subsystem gauge cells (cutter queue, validation
//!   pool, consensus wire) sampled per window by the telemetry layer.
//! * [`config`] — block-cutting and pipeline configuration shared between the
//!   ordering service and the peers.
//! * [`error`] — the common error type.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod codec;
pub mod config;
pub mod crypto;
pub mod error;
pub mod gauges;
pub mod hash;
pub mod hints;
pub mod ids;
pub mod intern;
pub mod lanes;
pub mod metrics;
pub mod rwset;
pub mod tx;

pub use bitset::BitSet;
pub use config::{
    default_commit_lanes, default_reorder_workers, default_validation_workers, BlockCuttingConfig,
    ConcurrencyMode, CostModel, OrderingPolicy, PipelineConfig, DEFAULT_MAX_SCC_FOR_ENUMERATION,
};
pub use crypto::{Signature, SignerRegistry, SigningKey};
pub use error::{Error, Result};
pub use hash::{sha256, Digest};
pub use hints::{DependencyHints, DependencyHintsBuilder};
pub use ids::{BlockNum, ChannelId, ClientId, Key, OrgId, PeerId, TxId, TxNum, Value, Version};
pub use intern::KeyTable;
pub use lanes::{LaneJob, LanePool};
pub use gauges::{GaugeStats, SubsystemGauges};
pub use metrics::{
    LatencyBaseline, LatencyRecorder, LatencySummary, Phase, PhaseSummary, PhaseTimers,
    StoreCounters, StoreStats, TxCounters, TxStats, WindowLatency,
};
pub use rwset::{ReadSet, ReadWriteSet, WriteSet};
pub use tx::{Endorsement, Transaction, TransactionProposal, ValidationCode};
