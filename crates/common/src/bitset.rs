//! Dynamic bit-vectors for the reordering mechanism's conflict detection.
//!
//! The paper builds the conflict graph by interpreting each transaction's
//! read and write accesses over the block's unique keys "as bit-vectors" and
//! AND-ing them pairwise (§5.1.1, step 1): a non-zero
//! `vec_w(Ti) & vec_r(Tj)` means `Ti` writes a key that `Tj` read. This
//! module provides exactly that primitive: a compact word-packed bitset with
//! a fast `intersects` test.

/// A fixed-capacity bitset packed into `u64` words.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    nbits: usize,
}

impl BitSet {
    /// Creates a bitset able to hold `nbits` bits, all zero.
    pub fn new(nbits: usize) -> Self {
        BitSet { words: vec![0u64; nbits.div_ceil(64)], nbits }
    }

    /// Capacity in bits.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.nbits
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= capacity()`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.nbits, "bit {i} out of range (capacity {})", self.nbits);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= capacity()`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.nbits, "bit {i} out of range (capacity {})", self.nbits);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Tests bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= capacity()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.nbits, "bit {i} out of range (capacity {})", self.nbits);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Whether `self & other` is non-zero — the paper's conflict test.
    ///
    /// Capacities may differ; the comparison covers the common prefix.
    #[inline]
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }

    /// Zeroes the whole set, keeping capacity.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Grows the capacity to at least `nbits` bits (new bits zero). A
    /// no-op when the set is already large enough, so a bitset reused
    /// across batches stops allocating once it has seen the largest batch
    /// — the same steady-state contract as [`crate::KeyTable::clear`].
    pub fn grow(&mut self, nbits: usize) {
        if nbits > self.nbits {
            self.words.resize(nbits.div_ceil(64), 0);
            self.nbits = nbits;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = BitSet::new(130);
        assert!(!b.get(0));
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(128));
        b.clear(63);
        assert!(!b.get(63));
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_set_panics() {
        BitSet::new(10).set(10);
    }

    #[test]
    fn intersects_matches_paper_conflict_test() {
        // T0 reads {K0, K1}; T3 writes {K1, K4} → conflict.
        let mut reads = BitSet::new(10);
        reads.set(0);
        reads.set(1);
        let mut writes = BitSet::new(10);
        writes.set(1);
        writes.set(4);
        assert!(writes.intersects(&reads));

        // T5 reads nothing → no conflict with anything.
        let empty = BitSet::new(10);
        assert!(!writes.intersects(&empty));
        assert!(!empty.intersects(&writes));
    }

    #[test]
    fn intersects_across_word_boundary() {
        let mut a = BitSet::new(200);
        let mut b = BitSet::new(200);
        a.set(150);
        assert!(!a.intersects(&b));
        b.set(150);
        assert!(a.intersects(&b));
    }

    #[test]
    fn intersects_with_different_capacities() {
        let mut a = BitSet::new(64);
        let mut b = BitSet::new(256);
        a.set(10);
        b.set(10);
        assert!(a.intersects(&b));
        b.clear(10);
        b.set(200); // beyond a's capacity
        assert!(!a.intersects(&b));
    }

    #[test]
    fn iter_ones_ascending() {
        let mut b = BitSet::new(300);
        for i in [0usize, 5, 63, 64, 65, 255, 299] {
            b.set(i);
        }
        let ones: Vec<usize> = b.iter_ones().collect();
        assert_eq!(ones, vec![0, 5, 63, 64, 65, 255, 299]);
    }

    #[test]
    fn clear_all_and_empty() {
        let mut b = BitSet::new(100);
        assert!(b.is_empty());
        b.set(42);
        assert!(!b.is_empty());
        b.clear_all();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), 100);
    }

    #[test]
    fn grow_extends_capacity_and_preserves_bits() {
        let mut b = BitSet::new(10);
        b.set(3);
        b.grow(200);
        assert_eq!(b.capacity(), 200);
        assert!(b.get(3), "grow preserves existing bits");
        b.set(199);
        assert!(b.get(199));
        // Shrinking requests are no-ops.
        b.grow(50);
        assert_eq!(b.capacity(), 200);
        assert!(b.get(199));
        // Growing within the same word count keeps the words allocation.
        let mut c = BitSet::new(1);
        c.grow(64);
        assert_eq!(c.capacity(), 64);
        c.set(63);
        assert!(c.get(63));
    }

    #[test]
    fn zero_capacity_is_fine() {
        let b = BitSet::new(0);
        assert!(b.is_empty());
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.iter_ones().count(), 0);
    }
}
