//! Common error type for the workspace.

use std::fmt;
use std::io;

/// Result alias using [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the Fabric++ reproduction crates.
#[derive(Debug)]
pub enum Error {
    /// A canonical-encoding decode failure (truncated or malformed input).
    Codec(String),
    /// An I/O error from a persistent component (file ledger, LSM engine).
    Io(io::Error),
    /// Data failed an integrity check (checksum, hash chain, signature).
    Corruption(String),
    /// A component was used in a way its state does not allow
    /// (e.g. committing block `n+2` before block `n+1`).
    InvalidState(String),
    /// Configuration rejected at construction time.
    Config(String),
    /// A channel/component shut down while work was still queued.
    Shutdown(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Codec(msg) => write!(f, "codec error: {msg}"),
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Corruption(msg) => write!(f, "corruption detected: {msg}"),
            Error::InvalidState(msg) => write!(f, "invalid state: {msg}"),
            Error::Config(msg) => write!(f, "invalid configuration: {msg}"),
            Error::Shutdown(msg) => write!(f, "component shut down: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_variants() {
        assert_eq!(Error::Codec("bad".into()).to_string(), "codec error: bad");
        assert!(Error::Corruption("x".into()).to_string().contains("corruption"));
        assert!(Error::InvalidState("y".into()).to_string().contains("invalid state"));
        assert!(Error::Config("z".into()).to_string().contains("configuration"));
        assert!(Error::Shutdown("w".into()).to_string().contains("shut down"));
    }

    #[test]
    fn io_error_source_chain() {
        let inner = io::Error::new(io::ErrorKind::NotFound, "gone");
        let err = Error::from(inner);
        assert!(err.source().is_some());
        assert!(err.to_string().contains("gone"));
    }
}
