//! Throughput counters and latency recording.
//!
//! The paper's primary metric is "the throughput of valid/successful and
//! invalid/failed transactions, that make it through the system" (§6);
//! Table 8 additionally reports minimum, maximum, and average end-to-end
//! latency as measured by Caliper. [`TxCounters`] and [`LatencyRecorder`]
//! provide exactly those measurements, safe to update from every pipeline
//! thread concurrently.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::tx::ValidationCode;

/// Atomic per-outcome transaction counters; cheap to clone (shared).
#[derive(Clone, Debug, Default)]
pub struct TxCounters {
    inner: Arc<CountersInner>,
}

#[derive(Debug, Default)]
struct CountersInner {
    submitted: AtomicU64,
    valid: AtomicU64,
    mvcc_conflict: AtomicU64,
    endorsement_failure: AtomicU64,
    early_abort_simulation: AtomicU64,
    early_abort_cycle: AtomicU64,
    early_abort_version_mismatch: AtomicU64,
}

impl TxCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts a proposal submitted by a client.
    pub fn record_submitted(&self) {
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts the final outcome of one transaction.
    pub fn record_outcome(&self, code: ValidationCode) {
        let ctr = match code {
            ValidationCode::Valid => &self.inner.valid,
            ValidationCode::MvccConflict => &self.inner.mvcc_conflict,
            ValidationCode::EndorsementFailure => &self.inner.endorsement_failure,
            ValidationCode::EarlyAbortSimulation => &self.inner.early_abort_simulation,
            ValidationCode::EarlyAbortCycle => &self.inner.early_abort_cycle,
            ValidationCode::EarlyAbortVersionMismatch => {
                &self.inner.early_abort_version_mismatch
            }
        };
        ctr.fetch_add(1, Ordering::Relaxed);
    }

    /// Immutable snapshot of the current counts.
    pub fn snapshot(&self) -> TxStats {
        TxStats {
            submitted: self.inner.submitted.load(Ordering::Relaxed),
            valid: self.inner.valid.load(Ordering::Relaxed),
            mvcc_conflict: self.inner.mvcc_conflict.load(Ordering::Relaxed),
            endorsement_failure: self.inner.endorsement_failure.load(Ordering::Relaxed),
            early_abort_simulation: self.inner.early_abort_simulation.load(Ordering::Relaxed),
            early_abort_cycle: self.inner.early_abort_cycle.load(Ordering::Relaxed),
            early_abort_version_mismatch: self
                .inner
                .early_abort_version_mismatch
                .load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time view of [`TxCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TxStats {
    /// Proposals fired by clients.
    pub submitted: u64,
    /// Transactions committed as valid.
    pub valid: u64,
    /// Aborted in validation: stale read version.
    pub mvcc_conflict: u64,
    /// Aborted in validation: endorsement policy / signature failure.
    pub endorsement_failure: u64,
    /// Fabric++: aborted during simulation (stale read observed live).
    pub early_abort_simulation: u64,
    /// Fabric++: aborted by the reorderer (conflict-cycle member).
    pub early_abort_cycle: u64,
    /// Fabric++: aborted by the orderer (within-block version mismatch).
    pub early_abort_version_mismatch: u64,
}

impl TxStats {
    /// All aborted transactions regardless of where they died.
    pub fn aborted(&self) -> u64 {
        self.mvcc_conflict
            + self.endorsement_failure
            + self.early_abort_simulation
            + self.early_abort_cycle
            + self.early_abort_version_mismatch
    }

    /// Transactions that reached a final outcome.
    pub fn finished(&self) -> u64 {
        self.valid + self.aborted()
    }

    /// Successful transactions per second over `elapsed`.
    pub fn valid_tps(&self, elapsed: Duration) -> f64 {
        per_second(self.valid, elapsed)
    }

    /// Aborted transactions per second over `elapsed`.
    pub fn aborted_tps(&self, elapsed: Duration) -> f64 {
        per_second(self.aborted(), elapsed)
    }

    /// Difference `self - earlier`, for interval measurements. Saturating:
    /// an out-of-order snapshot pair (e.g. racing samplers) clamps to zero
    /// instead of panicking in debug / wrapping in release.
    pub fn since(&self, earlier: &TxStats) -> TxStats {
        TxStats {
            submitted: self.submitted.saturating_sub(earlier.submitted),
            valid: self.valid.saturating_sub(earlier.valid),
            mvcc_conflict: self.mvcc_conflict.saturating_sub(earlier.mvcc_conflict),
            endorsement_failure: self
                .endorsement_failure
                .saturating_sub(earlier.endorsement_failure),
            early_abort_simulation: self
                .early_abort_simulation
                .saturating_sub(earlier.early_abort_simulation),
            early_abort_cycle: self.early_abort_cycle.saturating_sub(earlier.early_abort_cycle),
            early_abort_version_mismatch: self
                .early_abort_version_mismatch
                .saturating_sub(earlier.early_abort_version_mismatch),
        }
    }
}

fn per_second(count: u64, elapsed: Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs <= 0.0 {
        0.0
    } else {
        count as f64 / secs
    }
}

/// Records end-to-end transaction latencies and summarizes them
/// (min/max/avg as in the paper's Table 8, plus percentiles).
///
/// Internally a log-bucketed histogram (~4% relative error per bucket) plus
/// exact min/max/sum, so recording is O(1) and memory is constant.
#[derive(Clone, Debug)]
pub struct LatencyRecorder {
    inner: Arc<Mutex<LatencyInner>>,
}

#[derive(Debug)]
struct LatencyInner {
    /// Bucket i counts samples with micros in [1.05^i, 1.05^(i+1)).
    buckets: Vec<u64>,
    count: u64,
    sum_micros: u64,
    min_micros: u64,
    max_micros: u64,
    /// Whether `sum_micros` overflowed and was clamped to `u64::MAX`; once
    /// set, the arithmetic average is meaningless and the summary caps it
    /// at the exact maximum instead of reporting `u64::MAX / count`.
    saturated: bool,
}

const BUCKET_BASE: f64 = 1.05;
/// ~1.05^600 μs ≈ 5.3e12 μs ≈ 61 days: comfortably covers any run.
const NUM_BUCKETS: usize = 600;

fn bucket_of(micros: u64) -> usize {
    if micros <= 1 {
        return 0;
    }
    let idx = (micros as f64).ln() / BUCKET_BASE.ln();
    (idx as usize).min(NUM_BUCKETS - 1)
}

/// Smallest integer micros value that [`bucket_of`] maps into bucket `idx`:
/// the ceiling of the bucket's real-valued start `1.05^idx`. Truncating
/// instead (the historical bug) reported values *below* the bucket — a
/// single 2µs sample landed in bucket 14 (start ≈ 1.98) and came back as
/// p50 = 1µs, under the recorder's own exact minimum.
fn bucket_lower_bound(idx: usize) -> u64 {
    (BUCKET_BASE.powi(idx as i32).ceil() as u64).max(1)
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        LatencyRecorder {
            inner: Arc::new(Mutex::new(LatencyInner {
                buckets: vec![0; NUM_BUCKETS],
                count: 0,
                sum_micros: 0,
                min_micros: u64::MAX,
                max_micros: 0,
                saturated: false,
            })),
        }
    }

    /// Records one latency sample.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let mut g = self.inner.lock();
        g.buckets[bucket_of(micros)] += 1;
        g.count += 1;
        match g.sum_micros.checked_add(micros) {
            Some(sum) => g.sum_micros = sum,
            None => {
                g.sum_micros = u64::MAX;
                g.saturated = true;
            }
        }
        g.min_micros = g.min_micros.min(micros);
        g.max_micros = g.max_micros.max(micros);
    }

    /// Folds everything `other` has recorded into `self` (bucket-wise sum
    /// plus count/sum addition and min/max combination).
    ///
    /// This is what lets per-worker recorders stay private to their thread
    /// on hot paths — e.g. one recorder per validation-pool worker — and be
    /// aggregated once at reporting time instead of serializing every
    /// `record` through one shared `Mutex`. Merging a recorder with itself
    /// (same shared handle) doubles its contents, consistent with the sum
    /// semantics.
    pub fn merge(&self, other: &LatencyRecorder) {
        // Snapshot `other` first so merging a recorder into itself (or two
        // clones of the same handle) cannot deadlock on the shared lock.
        let (buckets, count, sum_micros, min_micros, max_micros, saturated) = {
            let g = other.inner.lock();
            (g.buckets.clone(), g.count, g.sum_micros, g.min_micros, g.max_micros, g.saturated)
        };
        if count == 0 {
            return;
        }
        let mut g = self.inner.lock();
        for (dst, src) in g.buckets.iter_mut().zip(buckets.iter()) {
            *dst += src;
        }
        g.count += count;
        g.saturated |= saturated;
        match g.sum_micros.checked_add(sum_micros) {
            Some(sum) => g.sum_micros = sum,
            None => {
                g.sum_micros = u64::MAX;
                g.saturated = true;
            }
        }
        g.min_micros = g.min_micros.min(min_micros);
        g.max_micros = g.max_micros.max(max_micros);
    }

    /// Interval quantiles: summarizes only what was recorded since the
    /// last call with the same `base`, then advances `base` to the
    /// current contents. The first call on a fresh
    /// [`LatencyBaseline`] covers everything recorded so far.
    ///
    /// This is the telemetry layer's per-window view: the baseline keeps
    /// a full copy of the bucket array, so the interval histogram is the
    /// element-wise difference and quantiles over it carry the same ~5%
    /// bucket error as [`LatencyRecorder::summary`]. Unlike `summary`,
    /// no exact per-interval min/max exists (the recorder only tracks
    /// lifetime extremes), so interval quantiles are reported on the
    /// bucket grid unclamped.
    ///
    /// Allocation-free: the baseline's bucket array is allocated once at
    /// construction and updated in place, so calling this on a hot
    /// (per-window) path performs no heap allocation.
    pub fn window_since(&self, base: &mut LatencyBaseline) -> WindowLatency {
        let g = self.inner.lock();
        let count = g.count.saturating_sub(base.count);
        let sum_micros = if g.saturated {
            u64::MAX
        } else {
            g.sum_micros.saturating_sub(base.sum_micros)
        };
        let pct = |p: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let target = ((count as f64) * p).ceil() as u64;
            let mut seen = 0u64;
            for (i, (&cur, &old)) in g.buckets.iter().zip(base.buckets.iter()).enumerate() {
                seen += cur.saturating_sub(old);
                if seen >= target {
                    return bucket_lower_bound(i);
                }
            }
            bucket_lower_bound(NUM_BUCKETS - 1)
        };
        let out = WindowLatency {
            count,
            sum_micros,
            p50_us: pct(0.50),
            p90_us: pct(0.90),
            p99_us: pct(0.99),
        };
        base.buckets.copy_from_slice(&g.buckets);
        base.count = g.count;
        base.sum_micros = g.sum_micros;
        out
    }

    /// Summarizes everything recorded so far.
    pub fn summary(&self) -> LatencySummary {
        let g = self.inner.lock();
        if g.count == 0 {
            return LatencySummary::default();
        }
        let pct = |p: f64| -> Duration {
            let target = ((g.count as f64) * p).ceil() as u64;
            let mut seen = 0u64;
            for (i, &c) in g.buckets.iter().enumerate() {
                seen += c;
                if seen >= target {
                    // The target sample lies inside bucket i, so its bucket
                    // lower bound is within one bucket width (~5%) below it
                    // — but the bound is a grid point, not an observed
                    // value, so clamp into the exact [min, max] envelope.
                    let v = bucket_lower_bound(i).clamp(g.min_micros, g.max_micros);
                    return Duration::from_micros(v);
                }
            }
            Duration::from_micros(g.max_micros)
        };
        // A saturated sum has no meaningful quotient; cap the average at the
        // exact maximum (the true average can never exceed it) and flag it.
        let avg = if g.saturated { g.max_micros } else { g.sum_micros / g.count };
        LatencySummary {
            count: g.count,
            min: Duration::from_micros(g.min_micros),
            max: Duration::from_micros(g.max_micros),
            avg: Duration::from_micros(avg),
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            saturated: g.saturated,
        }
    }
}

/// Mutable cursor for [`LatencyRecorder::window_since`]: a full copy of
/// the recorder's bucket array as of the previous window close, plus the
/// matching count/sum. One heap allocation at construction, none after.
#[derive(Debug, Clone)]
pub struct LatencyBaseline {
    buckets: Vec<u64>,
    count: u64,
    sum_micros: u64,
}

impl LatencyBaseline {
    /// A baseline at zero: the first `window_since` against it covers the
    /// recorder's whole history.
    pub fn new() -> Self {
        LatencyBaseline { buckets: vec![0; NUM_BUCKETS], count: 0, sum_micros: 0 }
    }
}

impl Default for LatencyBaseline {
    fn default() -> Self {
        Self::new()
    }
}

/// Quantiles over one interval of a [`LatencyRecorder`] (see
/// [`LatencyRecorder::window_since`]). Values are bucket-grid
/// microseconds (~5% relative error), unclamped: no exact per-interval
/// min/max exists to clamp into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowLatency {
    /// Samples recorded in the interval.
    pub count: u64,
    /// Sum of the interval's sample micros (`u64::MAX` when the
    /// underlying recorder's lifetime sum saturated).
    pub sum_micros: u64,
    /// Approximate median, microseconds.
    pub p50_us: u64,
    /// Approximate 90th percentile, microseconds.
    pub p90_us: u64,
    /// Approximate 99th percentile, microseconds.
    pub p99_us: u64,
}

impl WindowLatency {
    /// Arithmetic mean of the interval, microseconds (0 when empty;
    /// meaningless when the recorder's sum saturated).
    pub fn avg_us(&self) -> u64 {
        self.sum_micros.checked_div(self.count).unwrap_or(0)
    }
}

/// Summary statistics over recorded latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Exact minimum.
    pub min: Duration,
    /// Exact maximum.
    pub max: Duration,
    /// Exact average.
    pub avg: Duration,
    /// Approximate median (within 5% below the exact value, clamped into
    /// `[min, max]`).
    pub p50: Duration,
    /// Approximate 95th percentile (same error bound as `p50`).
    pub p95: Duration,
    /// Approximate 99th percentile (same error bound as `p50`).
    pub p99: Duration,
    /// Whether the latency sum overflowed: `avg` is then capped at `max`
    /// rather than reporting the quotient of a saturated sum.
    pub saturated: bool,
}

/// Atomic state-store access counters; cheap to clone (shared), updated by
/// the engine on every batched read/commit.
///
/// These exist to make the batched state-access contract *observable*: one
/// multi-get batch per block on the validation path, at most one shard-lock
/// acquisition per shard per block on the in-memory commit path, and one WAL
/// record (with one flush) per block on the LSM commit path. Tests and the
/// bench harness assert against snapshots of these counters instead of
/// instrumenting the hot path ad hoc.
#[derive(Clone, Debug, Default)]
pub struct StoreCounters {
    inner: Arc<StoreCountersInner>,
}

#[derive(Debug, Default)]
struct StoreCountersInner {
    multi_get_batches: AtomicU64,
    multi_get_keys: AtomicU64,
    point_gets: AtomicU64,
    blocks_applied: AtomicU64,
    shard_lock_acquisitions: AtomicU64,
    wal_records: AtomicU64,
    wal_fsyncs: AtomicU64,
    commit_ticket_acquisitions: AtomicU64,
    snapshot_pins: AtomicU64,
    snapshot_read_batches: AtomicU64,
    snapshot_read_keys: AtomicU64,
    gc_trimmed_versions: AtomicU64,
    lanes_used: AtomicU64,
    chain_serializations: AtomicU64,
    // Instantaneous engine gauges, refreshed by the engines at block
    // apply; kept out of `StoreStats` so `since`/`merge` stay pure
    // counter arithmetic. The telemetry layer samples these at window
    // close.
    gauge_memtable_bytes: AtomicU64,
    gauge_gc_floor: AtomicU64,
    gauge_live_pins: AtomicU64,
}

impl StoreCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one batched version lookup over `keys` keys.
    pub fn record_multi_get(&self, keys: u64) {
        self.inner.multi_get_batches.fetch_add(1, Ordering::Relaxed);
        self.inner.multi_get_keys.fetch_add(keys, Ordering::Relaxed);
    }

    /// Counts one single-key point lookup.
    pub fn record_point_get(&self) {
        self.inner.point_gets.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one committed block that took `shard_locks` write-lock
    /// acquisitions to install.
    pub fn record_block_applied(&self, shard_locks: u64) {
        self.inner.blocks_applied.fetch_add(1, Ordering::Relaxed);
        self.inner.shard_lock_acquisitions.fetch_add(shard_locks, Ordering::Relaxed);
    }

    /// Counts one group-commit WAL record (`fsynced` when the append also
    /// hit the disk with `sync_data`).
    pub fn record_wal_record(&self, fsynced: bool) {
        self.inner.wal_records.fetch_add(1, Ordering::Relaxed);
        if fsynced {
            self.inner.wal_fsyncs.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one commit-ticket acquisition (the per-engine commit lock
    /// taken to install a block, flush, or compact). The lockless
    /// endorsement contract is that *reads never bump this*: snapshot
    /// reads-at-height proceed while a committer holds the ticket.
    pub fn record_commit_ticket(&self) {
        self.inner.commit_ticket_acquisitions.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one snapshot pin registration (`pin_snapshot`).
    pub fn record_snapshot_pin(&self) {
        self.inner.snapshot_pins.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one at-height read batch over `keys` keys (point gets at a
    /// height count as a batch of one; range scans count their result
    /// size).
    pub fn record_snapshot_read(&self, keys: u64) {
        self.inner.snapshot_read_batches.fetch_add(1, Ordering::Relaxed);
        self.inner.snapshot_read_keys.fetch_add(keys, Ordering::Relaxed);
    }

    /// Counts `n` superseded versions trimmed from version chains by the
    /// epoch GC.
    pub fn record_gc_trimmed(&self, n: u64) {
        self.inner.gc_trimmed_versions.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts one lane-scheduled block commit: `lanes` lanes actually
    /// occupied (at most the configured width, at most the number of
    /// dependency components) and `chains` dependency chains of two or
    /// more transactions that had to serialize within their lane.
    pub fn record_lane_commit(&self, lanes: u64, chains: u64) {
        self.inner.lanes_used.fetch_add(lanes, Ordering::Relaxed);
        self.inner.chain_serializations.fetch_add(chains, Ordering::Relaxed);
    }

    /// Refreshes the instantaneous memtable-size gauge (LSM engine; bytes
    /// buffered and not yet flushed).
    pub fn set_memtable_bytes(&self, bytes: u64) {
        self.inner.gauge_memtable_bytes.store(bytes, Ordering::Relaxed);
    }

    /// Refreshes the instantaneous GC-floor gauge: the lowest block height
    /// whose versions the engine must still retain for pinned snapshots.
    pub fn set_gc_floor(&self, block: u64) {
        self.inner.gauge_gc_floor.store(block, Ordering::Relaxed);
    }

    /// Refreshes the instantaneous live-snapshot-pin gauge.
    pub fn set_live_pins(&self, pins: u64) {
        self.inner.gauge_live_pins.store(pins, Ordering::Relaxed);
    }

    /// Latest memtable-size gauge (bytes; 0 for non-LSM engines).
    pub fn memtable_bytes(&self) -> u64 {
        self.inner.gauge_memtable_bytes.load(Ordering::Relaxed)
    }

    /// Latest GC-floor gauge (block height).
    pub fn gc_floor(&self) -> u64 {
        self.inner.gauge_gc_floor.load(Ordering::Relaxed)
    }

    /// Latest live-snapshot-pin gauge.
    pub fn live_pins(&self) -> u64 {
        self.inner.gauge_live_pins.load(Ordering::Relaxed)
    }

    /// Immutable snapshot of the current counts.
    pub fn snapshot(&self) -> StoreStats {
        StoreStats {
            multi_get_batches: self.inner.multi_get_batches.load(Ordering::Relaxed),
            multi_get_keys: self.inner.multi_get_keys.load(Ordering::Relaxed),
            point_gets: self.inner.point_gets.load(Ordering::Relaxed),
            blocks_applied: self.inner.blocks_applied.load(Ordering::Relaxed),
            shard_lock_acquisitions: self
                .inner
                .shard_lock_acquisitions
                .load(Ordering::Relaxed),
            wal_records: self.inner.wal_records.load(Ordering::Relaxed),
            wal_fsyncs: self.inner.wal_fsyncs.load(Ordering::Relaxed),
            commit_ticket_acquisitions: self
                .inner
                .commit_ticket_acquisitions
                .load(Ordering::Relaxed),
            snapshot_pins: self.inner.snapshot_pins.load(Ordering::Relaxed),
            snapshot_read_batches: self.inner.snapshot_read_batches.load(Ordering::Relaxed),
            snapshot_read_keys: self.inner.snapshot_read_keys.load(Ordering::Relaxed),
            gc_trimmed_versions: self.inner.gc_trimmed_versions.load(Ordering::Relaxed),
            lanes_used: self.inner.lanes_used.load(Ordering::Relaxed),
            chain_serializations: self.inner.chain_serializations.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time view of [`StoreCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Batched version prefetches (multi-get calls).
    pub multi_get_batches: u64,
    /// Total keys probed across all batched prefetches.
    pub multi_get_keys: u64,
    /// Single-key point lookups (`get`).
    pub point_gets: u64,
    /// Blocks installed via the batched commit path.
    pub blocks_applied: u64,
    /// Shard write-lock acquisitions across all committed blocks (in-memory
    /// engine; at most `shards` per block under the batched contract).
    pub shard_lock_acquisitions: u64,
    /// Group-commit WAL records written (LSM engine; exactly one per block).
    pub wal_records: u64,
    /// WAL records that were additionally fsynced (`sync_writes` mode).
    pub wal_fsyncs: u64,
    /// Commit-ticket (per-engine commit lock) acquisitions: block installs,
    /// LSM flushes, and compactions. Snapshot reads must never bump this.
    pub commit_ticket_acquisitions: u64,
    /// Snapshot pins registered (`pin_snapshot` calls).
    pub snapshot_pins: u64,
    /// At-height read batches served off version chains.
    pub snapshot_read_batches: u64,
    /// Total keys resolved across all at-height read batches.
    pub snapshot_read_keys: u64,
    /// Superseded versions trimmed from chains by the epoch GC.
    pub gc_trimmed_versions: u64,
    /// Lanes occupied across all lane-scheduled block commits (bounded by
    /// the configured `commit_lanes` per block; `0` on sequential paths).
    pub lanes_used: u64,
    /// Dependency chains of two or more transactions that serialized
    /// within a lane, across all lane-scheduled block commits.
    pub chain_serializations: u64,
}

impl StoreStats {
    /// Field-wise sum, for aggregating stats across several stores (e.g.
    /// one reporting peer per channel).
    pub fn merge(&self, other: &StoreStats) -> StoreStats {
        StoreStats {
            multi_get_batches: self.multi_get_batches + other.multi_get_batches,
            multi_get_keys: self.multi_get_keys + other.multi_get_keys,
            point_gets: self.point_gets + other.point_gets,
            blocks_applied: self.blocks_applied + other.blocks_applied,
            shard_lock_acquisitions: self.shard_lock_acquisitions
                + other.shard_lock_acquisitions,
            wal_records: self.wal_records + other.wal_records,
            wal_fsyncs: self.wal_fsyncs + other.wal_fsyncs,
            commit_ticket_acquisitions: self.commit_ticket_acquisitions
                + other.commit_ticket_acquisitions,
            snapshot_pins: self.snapshot_pins + other.snapshot_pins,
            snapshot_read_batches: self.snapshot_read_batches + other.snapshot_read_batches,
            snapshot_read_keys: self.snapshot_read_keys + other.snapshot_read_keys,
            gc_trimmed_versions: self.gc_trimmed_versions + other.gc_trimmed_versions,
            lanes_used: self.lanes_used + other.lanes_used,
            chain_serializations: self.chain_serializations + other.chain_serializations,
        }
    }

    /// Difference `self - earlier`, for interval measurements. Saturating:
    /// an out-of-order snapshot pair (e.g. racing samplers) clamps to zero
    /// instead of panicking in debug / wrapping in release.
    pub fn since(&self, earlier: &StoreStats) -> StoreStats {
        StoreStats {
            multi_get_batches: self.multi_get_batches.saturating_sub(earlier.multi_get_batches),
            multi_get_keys: self.multi_get_keys.saturating_sub(earlier.multi_get_keys),
            point_gets: self.point_gets.saturating_sub(earlier.point_gets),
            blocks_applied: self.blocks_applied.saturating_sub(earlier.blocks_applied),
            shard_lock_acquisitions: self
                .shard_lock_acquisitions
                .saturating_sub(earlier.shard_lock_acquisitions),
            wal_records: self.wal_records.saturating_sub(earlier.wal_records),
            wal_fsyncs: self.wal_fsyncs.saturating_sub(earlier.wal_fsyncs),
            commit_ticket_acquisitions: self
                .commit_ticket_acquisitions
                .saturating_sub(earlier.commit_ticket_acquisitions),
            snapshot_pins: self.snapshot_pins.saturating_sub(earlier.snapshot_pins),
            snapshot_read_batches: self
                .snapshot_read_batches
                .saturating_sub(earlier.snapshot_read_batches),
            snapshot_read_keys: self
                .snapshot_read_keys
                .saturating_sub(earlier.snapshot_read_keys),
            gc_trimmed_versions: self
                .gc_trimmed_versions
                .saturating_sub(earlier.gc_trimmed_versions),
            lanes_used: self.lanes_used.saturating_sub(earlier.lanes_used),
            chain_serializations: self
                .chain_serializations
                .saturating_sub(earlier.chain_serializations),
        }
    }
}

/// One stage of the SOVC pipeline, for per-phase timing (paper §2.2 names
/// the phases; §4.2/§5.2 argue about where each one's time goes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Simulation + signing of one proposal on one endorser.
    Endorse,
    /// Batch ordering end to end: early abort + reordering + block
    /// formation and emission.
    Order,
    /// The Algorithm-1 reordering step alone (conflict graph, SCCs, cycle
    /// enumeration, cycle breaking, schedule) — a sub-phase of
    /// [`Phase::Order`], split out so reorder cost is visible separately
    /// from batch assembly and block sealing.
    Reorder,
    /// Endorsement-signature checking of one block (Fabric's VSCC) —
    /// measured from block arrival to the last signature verified, so
    /// under the parallel validation pool it reflects the pool's wall
    /// time, not the summed per-core work.
    ValidateVscc,
    /// MVCC serializability check of one block (under the state gate).
    ValidateMvcc,
    /// The parallel-lane portion of the MVCC check alone — from handing
    /// the partitioned block to the lane workers to the last lane joining
    /// — a sub-phase of [`Phase::ValidateMvcc`], recorded only when the
    /// lane scheduler is engaged (`commit_lanes > 1`).
    MvccLanes,
    /// Batch-applying one block's writes + ledger append.
    Commit,
    /// The parallel-lane portion of write application alone — a
    /// sub-phase of [`Phase::Commit`], recorded only when the lane
    /// scheduler drives the store's lane-aware apply path.
    ApplyLanes,
}

/// Per-phase latency histograms for the whole pipeline: one
/// [`LatencyRecorder`] per [`Phase`]. Cheap to clone (shared recorders);
/// safe to record from any thread.
///
/// Wired to the *reporting* peer (endorse/validate/commit) and each
/// channel's orderer (order), mirroring how [`TxCounters`] avoids
/// multiplying network-wide numbers by the peer count.
#[derive(Clone, Debug, Default)]
pub struct PhaseTimers {
    endorse: LatencyRecorder,
    order: LatencyRecorder,
    reorder: LatencyRecorder,
    validate_vscc: LatencyRecorder,
    validate_mvcc: LatencyRecorder,
    mvcc_lanes: LatencyRecorder,
    commit: LatencyRecorder,
    apply_lanes: LatencyRecorder,
}

impl PhaseTimers {
    /// Creates empty per-phase recorders.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample for `phase`.
    pub fn record(&self, phase: Phase, took: Duration) {
        self.recorder(phase).record(took);
    }

    /// The recorder backing `phase`.
    pub fn recorder(&self, phase: Phase) -> &LatencyRecorder {
        match phase {
            Phase::Endorse => &self.endorse,
            Phase::Order => &self.order,
            Phase::Reorder => &self.reorder,
            Phase::ValidateVscc => &self.validate_vscc,
            Phase::ValidateMvcc => &self.validate_mvcc,
            Phase::MvccLanes => &self.mvcc_lanes,
            Phase::Commit => &self.commit,
            Phase::ApplyLanes => &self.apply_lanes,
        }
    }

    /// Folds every phase `other` has recorded into `self` (bucket-wise sum
    /// via [`LatencyRecorder::merge`]). Lets per-worker `PhaseTimers` stay
    /// thread-private on hot paths and aggregate at reporting time.
    pub fn merge(&self, other: &PhaseTimers) {
        for phase in [
            Phase::Endorse,
            Phase::Order,
            Phase::Reorder,
            Phase::ValidateVscc,
            Phase::ValidateMvcc,
            Phase::MvccLanes,
            Phase::Commit,
            Phase::ApplyLanes,
        ] {
            self.recorder(phase).merge(other.recorder(phase));
        }
    }

    /// Summarizes every phase recorded so far.
    pub fn summary(&self) -> PhaseSummary {
        PhaseSummary {
            endorse: self.endorse.summary(),
            order: self.order.summary(),
            reorder: self.reorder.summary(),
            validate_vscc: self.validate_vscc.summary(),
            validate_mvcc: self.validate_mvcc.summary(),
            mvcc_lanes: self.mvcc_lanes.summary(),
            commit: self.commit.summary(),
            apply_lanes: self.apply_lanes.summary(),
        }
    }
}

/// Point-in-time summaries of every [`PhaseTimers`] histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseSummary {
    /// Per-proposal simulation + signing.
    pub endorse: LatencySummary,
    /// Per-batch ordering (early abort + reorder + block formation).
    pub order: LatencySummary,
    /// Per-batch Algorithm-1 reordering alone (sub-phase of `order`).
    pub reorder: LatencySummary,
    /// Per-block endorsement-signature checking (VSCC).
    pub validate_vscc: LatencySummary,
    /// Per-block MVCC check.
    pub validate_mvcc: LatencySummary,
    /// Per-block parallel-lane MVCC portion (sub-phase of
    /// `validate_mvcc`; empty on sequential paths).
    pub mvcc_lanes: LatencySummary,
    /// Per-block write application + ledger append.
    pub commit: LatencySummary,
    /// Per-block parallel-lane apply portion (sub-phase of `commit`;
    /// empty on sequential paths).
    pub apply_lanes: LatencySummary,
}

impl PhaseSummary {
    /// `(label, summary)` rows in pipeline order, for table printing.
    pub fn rows(&self) -> [(&'static str, LatencySummary); 8] {
        [
            ("endorse", self.endorse),
            ("order", self.order),
            ("order-reorder", self.reorder),
            ("validate-vscc", self.validate_vscc),
            ("validate-mvcc", self.validate_mvcc),
            ("validate-mvcc-lanes", self.mvcc_lanes),
            ("commit", self.commit),
            ("commit-apply-lanes", self.apply_lanes),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_outcomes() {
        let c = TxCounters::new();
        c.record_submitted();
        c.record_submitted();
        c.record_outcome(ValidationCode::Valid);
        c.record_outcome(ValidationCode::MvccConflict);
        c.record_outcome(ValidationCode::EarlyAbortCycle);
        let s = c.snapshot();
        assert_eq!(s.submitted, 2);
        assert_eq!(s.valid, 1);
        assert_eq!(s.mvcc_conflict, 1);
        assert_eq!(s.early_abort_cycle, 1);
        assert_eq!(s.aborted(), 2);
        assert_eq!(s.finished(), 3);
    }

    #[test]
    fn counters_shared_across_clones() {
        let c = TxCounters::new();
        let c2 = c.clone();
        c2.record_outcome(ValidationCode::Valid);
        assert_eq!(c.snapshot().valid, 1);
    }

    #[test]
    fn counters_concurrent_updates() {
        let c = TxCounters::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.record_outcome(ValidationCode::Valid);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.snapshot().valid, 8000);
    }

    #[test]
    fn store_counters_track_batches_and_commits() {
        let c = StoreCounters::new();
        c.record_multi_get(128);
        c.record_multi_get(0);
        c.record_point_get();
        c.record_block_applied(7);
        c.record_wal_record(false);
        c.record_wal_record(true);
        let s = c.snapshot();
        assert_eq!(s.multi_get_batches, 2);
        assert_eq!(s.multi_get_keys, 128);
        assert_eq!(s.point_gets, 1);
        assert_eq!(s.blocks_applied, 1);
        assert_eq!(s.shard_lock_acquisitions, 7);
        assert_eq!(s.wal_records, 2);
        assert_eq!(s.wal_fsyncs, 1);
    }

    #[test]
    fn store_counters_shared_across_clones_and_since() {
        let c = StoreCounters::new();
        let c2 = c.clone();
        c2.record_block_applied(3);
        let a = c.snapshot();
        assert_eq!(a.blocks_applied, 1);
        c.record_block_applied(2);
        c.record_multi_get(5);
        let d = c.snapshot().since(&a);
        assert_eq!(d.blocks_applied, 1);
        assert_eq!(d.shard_lock_acquisitions, 2);
        assert_eq!(d.multi_get_batches, 1);
        assert_eq!(d.multi_get_keys, 5);
    }

    #[test]
    fn store_counters_track_lane_commits() {
        let c = StoreCounters::new();
        c.record_lane_commit(4, 2);
        c.record_lane_commit(1, 0);
        let a = c.snapshot();
        assert_eq!(a.lanes_used, 5);
        assert_eq!(a.chain_serializations, 2);
        c.record_lane_commit(3, 1);
        let d = c.snapshot().since(&a);
        assert_eq!(d.lanes_used, 3);
        assert_eq!(d.chain_serializations, 1);
        let m = a.merge(&d);
        assert_eq!(m.lanes_used, 8);
        assert_eq!(m.chain_serializations, 3);
    }

    #[test]
    fn phase_timers_cover_lane_subphases() {
        let t = PhaseTimers::new();
        t.record(Phase::MvccLanes, Duration::from_millis(1));
        t.record(Phase::ApplyLanes, Duration::from_millis(2));
        let u = PhaseTimers::new();
        u.merge(&t);
        let s = u.summary();
        assert_eq!(s.mvcc_lanes.count, 1);
        assert_eq!(s.apply_lanes.count, 1);
        let rows = s.rows();
        assert_eq!(rows.len(), 8);
        assert!(rows.iter().any(|(l, _)| *l == "validate-mvcc-lanes"));
        assert!(rows.iter().any(|(l, _)| *l == "commit-apply-lanes"));
    }

    #[test]
    fn tps_computation() {
        let s = TxStats { valid: 100, mvcc_conflict: 50, ..Default::default() };
        assert!((s.valid_tps(Duration::from_secs(10)) - 10.0).abs() < 1e-9);
        assert!((s.aborted_tps(Duration::from_secs(10)) - 5.0).abs() < 1e-9);
        assert_eq!(s.valid_tps(Duration::ZERO), 0.0);
    }

    #[test]
    fn stats_since_subtracts() {
        let a = TxStats { submitted: 10, valid: 5, ..Default::default() };
        let b = TxStats { submitted: 25, valid: 9, mvcc_conflict: 3, ..Default::default() };
        let d = b.since(&a);
        assert_eq!(d.submitted, 15);
        assert_eq!(d.valid, 4);
        assert_eq!(d.mvcc_conflict, 3);
    }

    #[test]
    fn stats_since_saturates_on_out_of_order_snapshots() {
        let newer = TxStats { submitted: 10, valid: 5, ..Default::default() };
        let older = TxStats { submitted: 3, valid: 2, mvcc_conflict: 1, ..Default::default() };
        // Arguments swapped: every field clamps to zero instead of wrapping.
        let d = older.since(&newer);
        assert_eq!(d.submitted, 0);
        assert_eq!(d.valid, 0);
        assert_eq!(d.mvcc_conflict, 1);

        let s_new = StoreStats { multi_get_batches: 4, wal_records: 2, ..Default::default() };
        let s_old = StoreStats { multi_get_batches: 9, point_gets: 1, ..Default::default() };
        let d = s_new.since(&s_old);
        assert_eq!(d.multi_get_batches, 0);
        assert_eq!(d.wal_records, 2);
        assert_eq!(d.point_gets, 0);
    }

    #[test]
    fn latency_merge_sums_buckets_and_combines_extremes() {
        let a = LatencyRecorder::new();
        let b = LatencyRecorder::new();
        a.record(Duration::from_millis(10));
        a.record(Duration::from_millis(30));
        b.record(Duration::from_millis(1));
        b.record(Duration::from_millis(100));
        a.merge(&b);
        let s = a.summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, Duration::from_millis(1));
        assert_eq!(s.max, Duration::from_millis(100));
        assert_eq!(s.avg, Duration::from_micros((10_000 + 30_000 + 1_000 + 100_000) / 4));
        // Percentile mass moved over too: b stays untouched.
        assert_eq!(b.summary().count, 2);
    }

    #[test]
    fn latency_merge_empty_and_self() {
        let a = LatencyRecorder::new();
        a.record(Duration::from_millis(5));
        a.merge(&LatencyRecorder::new()); // empty other: no-op, min intact
        let s = a.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.min, Duration::from_millis(5));

        a.merge(&a); // self-merge must not deadlock; doubles the contents
        let s = a.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.min, Duration::from_millis(5));
        assert_eq!(s.max, Duration::from_millis(5));
    }

    #[test]
    fn phase_timers_merge_folds_every_phase() {
        let a = PhaseTimers::new();
        let b = PhaseTimers::new();
        a.record(Phase::Endorse, Duration::from_millis(2));
        b.record(Phase::Endorse, Duration::from_millis(4));
        b.record(Phase::Commit, Duration::from_millis(8));
        a.merge(&b);
        let s = a.summary();
        assert_eq!(s.endorse.count, 2);
        assert_eq!(s.endorse.max, Duration::from_millis(4));
        assert_eq!(s.commit.count, 1);
        assert_eq!(s.order.count, 0);
    }

    #[test]
    fn latency_exact_min_max_avg() {
        let r = LatencyRecorder::new();
        r.record(Duration::from_millis(10));
        r.record(Duration::from_millis(20));
        r.record(Duration::from_millis(30));
        let s = r.summary();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, Duration::from_millis(10));
        assert_eq!(s.max, Duration::from_millis(30));
        assert_eq!(s.avg, Duration::from_millis(20));
    }

    #[test]
    fn latency_percentiles_approximate() {
        let r = LatencyRecorder::new();
        for i in 1..=1000u64 {
            r.record(Duration::from_micros(i * 100)); // 0.1ms .. 100ms
        }
        let s = r.summary();
        let p50 = s.p50.as_micros() as f64;
        let p95 = s.p95.as_micros() as f64;
        // Within the ±5% bucket error plus slack.
        assert!((p50 - 50_000.0).abs() / 50_000.0 < 0.10, "p50={p50}");
        assert!((p95 - 95_000.0).abs() / 95_000.0 < 0.10, "p95={p95}");
        assert!(s.p99 >= s.p95 && s.p95 >= s.p50);
    }

    #[test]
    fn empty_recorder_summary_is_zero() {
        let s = LatencyRecorder::new().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.avg, Duration::ZERO);
    }

    #[test]
    fn percentiles_never_report_below_min_single_sample() {
        // Regression: 2µs lands in bucket 14 (1.05^14 ≈ 1.98); the old
        // truncating lower bound reported p50 = 1µs < min = 2µs.
        let r = LatencyRecorder::new();
        r.record(Duration::from_micros(2));
        let s = r.summary();
        assert_eq!(s.min, Duration::from_micros(2));
        assert_eq!(s.p50, Duration::from_micros(2), "p50 below the exact minimum");
        assert_eq!(s.p95, Duration::from_micros(2));
        assert_eq!(s.p99, Duration::from_micros(2));
        assert!(!s.saturated);
    }

    #[test]
    fn percentiles_stay_inside_min_max_two_samples() {
        let r = LatencyRecorder::new();
        r.record(Duration::from_micros(2));
        r.record(Duration::from_micros(3));
        let s = r.summary();
        assert_eq!(s.min, Duration::from_micros(2));
        assert_eq!(s.max, Duration::from_micros(3));
        for p in [s.p50, s.p95, s.p99] {
            assert!(p >= s.min && p <= s.max, "percentile {p:?} outside [min, max]");
        }
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
    }

    #[test]
    fn bucket_lower_bound_consistent_with_bucket_of() {
        // The bound of a sample's bucket never exceeds the sample, and the
        // sample is within one bucket width (~5%) above the bound: that is
        // the whole percentile error contract.
        // (Samples beyond the last bucket's start — ~61 days — are capped
        // into it and only promise `<= max`, so stay below that here.)
        for m in (0u64..2_000).chain([10_000, 123_456, 10_000_000, 4_000_000_000_000]) {
            let lb = bucket_lower_bound(bucket_of(m));
            assert!(lb <= m.max(1), "bound {lb} above sample {m}");
            assert!((m as f64) < (lb as f64) * BUCKET_BASE + 1.0, "sample {m} > bound {lb} + 5%");
        }
        // A single recorded sample therefore always reports itself.
        for micros in [2u64, 3, 5, 10, 97, 1000, 123_456] {
            let r = LatencyRecorder::new();
            r.record(Duration::from_micros(micros));
            assert_eq!(r.summary().p50, Duration::from_micros(micros));
        }
    }

    #[test]
    fn saturated_sum_caps_avg_and_flags() {
        let r = LatencyRecorder::new();
        r.record(Duration::from_micros(u64::MAX)); // sum = u64::MAX exactly
        assert!(!r.summary().saturated, "one sample fits");
        r.record(Duration::from_micros(u64::MAX)); // overflow
        let s = r.summary();
        assert!(s.saturated, "overflowed sum must be flagged");
        assert_eq!(s.avg, s.max, "avg capped at the exact maximum");
    }

    #[test]
    fn merge_propagates_saturation() {
        let poisoned = LatencyRecorder::new();
        poisoned.record(Duration::from_micros(u64::MAX));
        poisoned.record(Duration::from_micros(u64::MAX));
        assert!(poisoned.summary().saturated);

        let clean = LatencyRecorder::new();
        clean.record(Duration::from_millis(1));
        clean.merge(&poisoned);
        let s = clean.summary();
        assert!(s.saturated, "merging a saturated recorder taints the target");
        assert_eq!(s.avg, s.max);

        // Merging two large-but-unsaturated sums can overflow at merge time.
        let a = LatencyRecorder::new();
        let b = LatencyRecorder::new();
        a.record(Duration::from_micros(u64::MAX));
        b.record(Duration::from_micros(u64::MAX));
        assert!(!a.summary().saturated && !b.summary().saturated);
        a.merge(&b);
        assert!(a.summary().saturated, "overflow during merge must be flagged");
    }

    #[test]
    fn bucket_function_monotonic() {
        let mut last = 0;
        for micros in [0u64, 1, 2, 10, 100, 1000, 10_000, 1_000_000, u64::MAX / 2] {
            let b = bucket_of(micros);
            assert!(b >= last);
            last = b;
        }
        assert!(bucket_of(u64::MAX) < NUM_BUCKETS);
    }
}
