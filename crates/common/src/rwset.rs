//! Read and write sets captured during chaincode simulation.
//!
//! During the simulation phase "each endorser builds up a read set and a
//! write set during simulation to capture the effects" (paper §2.2.1).
//! The read set records, per key, the *version* observed; the write set
//! records, per key, the value to install. These sets travel inside the
//! transaction through ordering and validation and are the sole input of
//! both the serializability conflict check and the reordering mechanism.
//!
//! Semantics mirror Fabric v1.2:
//! * the read set keeps the **first** version observed per key (reads are
//!   repeatable within one simulation — later reads see the pending write
//!   via read-your-own-writes, which does not touch the read set);
//! * the write set keeps the **last** value written per key;
//! * a read of an absent key records a `None` version so that a
//!   concurrent create still conflicts.

use crate::codec::{Decode, Decoder, Encode, Encoder};
use crate::error::{Error, Result};
use crate::ids::{Key, Value, Version};

/// A single recorded read: the key and the version observed at simulation
/// time (`None` if the key did not exist).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadEntry {
    /// The key that was read.
    pub key: Key,
    /// The version observed, or `None` when the key was absent.
    pub version: Option<Version>,
}

/// A single recorded write: the key and the new value (`None` = delete).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteEntry {
    /// The key being written.
    pub key: Key,
    /// The new value, or `None` to delete the key.
    pub value: Option<Value>,
}

/// The read set of one simulated transaction, ordered by key.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReadSet {
    entries: Vec<ReadEntry>,
}

/// The write set of one simulated transaction, ordered by key.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WriteSet {
    entries: Vec<WriteEntry>,
}

impl ReadSet {
    /// Recorded entries, sorted by key.
    pub fn entries(&self) -> &[ReadEntry] {
        &self.entries
    }

    /// Number of keys read.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was read.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The version recorded for `key`, if it was read.
    /// Returns `Some(None)` for a recorded read of an absent key.
    pub fn version_of(&self, key: &Key) -> Option<Option<Version>> {
        self.entries
            .binary_search_by(|e| e.key.cmp(key))
            .ok()
            .map(|i| self.entries[i].version)
    }

    /// Whether `key` appears in the read set.
    pub fn reads(&self, key: &Key) -> bool {
        self.entries.binary_search_by(|e| e.key.cmp(key)).is_ok()
    }

    /// Iterates over the keys read.
    pub fn keys(&self) -> impl Iterator<Item = &Key> {
        self.entries.iter().map(|e| &e.key)
    }
}

impl WriteSet {
    /// Recorded entries, sorted by key.
    pub fn entries(&self) -> &[WriteEntry] {
        &self.entries
    }

    /// Number of keys written.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was written.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The pending value for `key`, if it was written.
    /// Returns `Some(None)` for a delete.
    pub fn value_of(&self, key: &Key) -> Option<Option<&Value>> {
        self.entries
            .binary_search_by(|e| e.key.cmp(key))
            .ok()
            .map(|i| self.entries[i].value.as_ref())
    }

    /// Whether `key` appears in the write set.
    pub fn writes(&self, key: &Key) -> bool {
        self.entries.binary_search_by(|e| e.key.cmp(key)).is_ok()
    }

    /// Iterates over the keys written.
    pub fn keys(&self) -> impl Iterator<Item = &Key> {
        self.entries.iter().map(|e| &e.key)
    }
}

/// The combined effect of one simulation: read set plus write set.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReadWriteSet {
    /// Keys read with observed versions.
    pub reads: ReadSet,
    /// Keys written with new values.
    pub writes: WriteSet,
}

impl ReadWriteSet {
    /// Total number of *unique* keys touched (read ∪ write). This is the
    /// quantity bounded by the Fabric++ batch-cutting condition (d)
    /// (paper §5.1.2).
    pub fn unique_keys(&self) -> usize {
        // Both sides are sorted; merge-count the union.
        let r = self.reads.entries();
        let w = self.writes.entries();
        let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
        while i < r.len() && j < w.len() {
            n += 1;
            match r[i].key.cmp(&w[j].key) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        n + (r.len() - i) + (w.len() - j)
    }

    /// Approximate wire size of the set in bytes (used by batch cutting
    /// condition (b) and by the network byte accounting).
    pub fn byte_size(&self) -> usize {
        let mut n = 8;
        for e in self.reads.entries() {
            n += e.key.len() + 12;
        }
        for e in self.writes.entries() {
            n += e.key.len() + e.value.as_ref().map_or(0, Value::len) + 4;
        }
        n
    }

    /// Whether this transaction's writes conflict with `later`'s reads:
    /// the paper's `Ti ⇝ Tj` edge ("Ti writes to a key that is read by Tj",
    /// §5.1). If true, a serializable schedule must order `later` *before*
    /// `self`.
    pub fn writes_conflict_with_reads_of(&self, later: &ReadWriteSet) -> bool {
        // Merge-scan both sorted sides.
        let w = self.writes.entries();
        let r = later.reads.entries();
        let (mut i, mut j) = (0usize, 0usize);
        while i < w.len() && j < r.len() {
            match w[i].key.cmp(&r[j].key) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }
}

/// Incrementally records reads and writes during a simulation, then freezes
/// into a [`ReadWriteSet`].
///
/// Implements Fabric's read-your-own-writes: a read of a key this
/// transaction already wrote returns the pending value and records nothing
/// in the read set.
#[derive(Debug, Default)]
pub struct RwSetBuilder {
    reads: Vec<ReadEntry>,
    writes: Vec<WriteEntry>,
}

impl RwSetBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `key` was read at `version` (`None` = key absent).
    /// Only the first read of each key is recorded.
    pub fn record_read(&mut self, key: Key, version: Option<Version>) {
        if !self.reads.iter().any(|e| e.key == key) {
            self.reads.push(ReadEntry { key, version });
        }
    }

    /// Records a write of `value` to `key`; a later write to the same key
    /// replaces the earlier one.
    pub fn record_write(&mut self, key: Key, value: Option<Value>) {
        if let Some(e) = self.writes.iter_mut().find(|e| e.key == key) {
            e.value = value;
        } else {
            self.writes.push(WriteEntry { key, value });
        }
    }

    /// The pending write for `key`, if any (read-your-own-writes lookup).
    pub fn pending_write(&self, key: &Key) -> Option<Option<&Value>> {
        self.writes
            .iter()
            .find(|e| &e.key == key)
            .map(|e| e.value.as_ref())
    }

    /// All pending writes with keys in `[start, end)` (range-scan
    /// read-your-own-writes). Deletes appear with `None`.
    pub fn pending_writes_in_range(
        &self,
        start: &Key,
        end: &Key,
    ) -> Vec<(Key, Option<Value>)> {
        self.writes
            .iter()
            .filter(|e| &e.key >= start && &e.key < end)
            .map(|e| (e.key.clone(), e.value.clone()))
            .collect()
    }

    /// Freezes the builder into a canonical (key-sorted) [`ReadWriteSet`].
    pub fn build(mut self) -> ReadWriteSet {
        self.reads.sort_by(|a, b| a.key.cmp(&b.key));
        self.writes.sort_by(|a, b| a.key.cmp(&b.key));
        ReadWriteSet {
            reads: ReadSet { entries: self.reads },
            writes: WriteSet { entries: self.writes },
        }
    }
}

/// Convenience constructor used pervasively by tests and micro-benchmarks:
/// builds a [`ReadWriteSet`] from plain key lists, reading every key at
/// `read_version` and writing `value` to every write key.
pub fn rwset_from_keys(
    read_keys: &[Key],
    read_version: Version,
    write_keys: &[Key],
    value: &Value,
) -> ReadWriteSet {
    let mut b = RwSetBuilder::new();
    for k in read_keys {
        b.record_read(k.clone(), Some(read_version));
    }
    for k in write_keys {
        b.record_write(k.clone(), Some(value.clone()));
    }
    b.build()
}

// ---------------------------------------------------------------------------
// Canonical encoding (input to endorsement signatures and block hashes)
// ---------------------------------------------------------------------------

impl Encode for ReadWriteSet {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.reads.entries.len() as u32);
        for e in &self.reads.entries {
            enc.put_bytes(e.key.as_bytes());
            match e.version {
                Some(v) => {
                    enc.put_u8(1);
                    enc.put_u64(v.block);
                    enc.put_u32(v.tx);
                }
                None => {
                    enc.put_u8(0);
                }
            }
        }
        enc.put_u32(self.writes.entries.len() as u32);
        for e in &self.writes.entries {
            enc.put_bytes(e.key.as_bytes());
            match &e.value {
                Some(v) => {
                    enc.put_u8(1);
                    enc.put_bytes(v.as_bytes());
                }
                None => {
                    enc.put_u8(0);
                }
            }
        }
    }
}

impl Decode for ReadWriteSet {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let nr = dec.get_u32()? as usize;
        if nr > 1 << 24 {
            return Err(Error::Codec(format!("implausible read-set size {nr}")));
        }
        let mut reads = Vec::with_capacity(nr);
        for _ in 0..nr {
            let key = Key::new(dec.get_bytes()?.to_vec());
            let version = match dec.get_u8()? {
                0 => None,
                1 => {
                    let block = dec.get_u64()?;
                    let tx = dec.get_u32()?;
                    Some(Version::new(block, tx))
                }
                t => return Err(Error::Codec(format!("bad version tag {t}"))),
            };
            reads.push(ReadEntry { key, version });
        }
        let nw = dec.get_u32()? as usize;
        if nw > 1 << 24 {
            return Err(Error::Codec(format!("implausible write-set size {nw}")));
        }
        let mut writes = Vec::with_capacity(nw);
        for _ in 0..nw {
            let key = Key::new(dec.get_bytes()?.to_vec());
            let value = match dec.get_u8()? {
                0 => None,
                1 => Some(Value::new(dec.get_bytes()?.to_vec())),
                t => return Err(Error::Codec(format!("bad value tag {t}"))),
            };
            writes.push(WriteEntry { key, value });
        }
        Ok(ReadWriteSet {
            reads: ReadSet { entries: reads },
            writes: WriteSet { entries: writes },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::from(s)
    }
    fn v(s: &str) -> Value {
        Value::from(s)
    }

    #[test]
    fn builder_records_first_read_last_write() {
        let mut b = RwSetBuilder::new();
        b.record_read(k("a"), Some(Version::new(1, 0)));
        b.record_read(k("a"), Some(Version::new(2, 0))); // ignored
        b.record_write(k("a"), Some(v("x")));
        b.record_write(k("a"), Some(v("y"))); // replaces
        let rw = b.build();
        assert_eq!(rw.reads.version_of(&k("a")), Some(Some(Version::new(1, 0))));
        assert_eq!(rw.writes.value_of(&k("a")), Some(Some(&v("y"))));
        assert_eq!(rw.reads.len(), 1);
        assert_eq!(rw.writes.len(), 1);
    }

    #[test]
    fn builder_sorts_by_key() {
        let mut b = RwSetBuilder::new();
        for key in ["z", "a", "m"] {
            b.record_read(k(key), None);
            b.record_write(k(key), Some(v("1")));
        }
        let rw = b.build();
        let read_keys: Vec<_> = rw.reads.keys().map(|k| k.to_string()).collect();
        assert_eq!(read_keys, ["a", "m", "z"]);
        let write_keys: Vec<_> = rw.writes.keys().map(|k| k.to_string()).collect();
        assert_eq!(write_keys, ["a", "m", "z"]);
    }

    #[test]
    fn read_of_absent_key_is_recorded() {
        let mut b = RwSetBuilder::new();
        b.record_read(k("ghost"), None);
        let rw = b.build();
        assert_eq!(rw.reads.version_of(&k("ghost")), Some(None));
        assert!(rw.reads.reads(&k("ghost")));
        assert!(!rw.reads.reads(&k("other")));
    }

    #[test]
    fn pending_write_supports_read_your_own_writes() {
        let mut b = RwSetBuilder::new();
        assert_eq!(b.pending_write(&k("a")), None);
        b.record_write(k("a"), Some(v("new")));
        assert_eq!(b.pending_write(&k("a")), Some(Some(&v("new"))));
        b.record_write(k("a"), None); // delete
        assert_eq!(b.pending_write(&k("a")), Some(None));
    }

    #[test]
    fn unique_keys_counts_union() {
        let rw = rwset_from_keys(
            &[k("a"), k("b"), k("c")],
            Version::GENESIS,
            &[k("b"), k("c"), k("d")],
            &v("1"),
        );
        assert_eq!(rw.unique_keys(), 4);
        assert_eq!(ReadWriteSet::default().unique_keys(), 0);
    }

    #[test]
    fn conflict_detection_is_write_into_read() {
        // Paper §5.1: Ti ⇝ Tj iff Ti writes a key read by Tj.
        let t_writer = rwset_from_keys(&[], Version::GENESIS, &[k("k1")], &v("2"));
        let t_reader = rwset_from_keys(&[k("k1")], Version::GENESIS, &[k("k2")], &v("2"));
        assert!(t_writer.writes_conflict_with_reads_of(&t_reader));
        assert!(!t_reader.writes_conflict_with_reads_of(&t_writer));
        // No self-conflict key overlap.
        let t_other = rwset_from_keys(&[k("k9")], Version::GENESIS, &[k("k8")], &v("2"));
        assert!(!t_writer.writes_conflict_with_reads_of(&t_other));
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut b = RwSetBuilder::new();
        b.record_read(k("bal:A"), Some(Version::new(3, 7)));
        b.record_read(k("missing"), None);
        b.record_write(k("bal:A"), Some(v("70")));
        b.record_write(k("dead"), None);
        let rw = b.build();
        let bytes = rw.encode_to_vec();
        let back = ReadWriteSet::decode_exact(&bytes).unwrap();
        assert_eq!(rw, back);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(ReadWriteSet::decode_exact(&[0xff; 3]).is_err());
        // Valid-looking header but truncated body.
        let mut enc = Encoder::new();
        enc.put_u32(1).put_bytes(b"key");
        assert!(ReadWriteSet::decode_exact(enc.as_slice()).is_err());
    }

    #[test]
    fn canonical_encoding_is_deterministic() {
        // Same logical content recorded in different orders encodes equally.
        let mut b1 = RwSetBuilder::new();
        b1.record_read(k("a"), Some(Version::new(1, 0)));
        b1.record_read(k("b"), Some(Version::new(1, 1)));
        let mut b2 = RwSetBuilder::new();
        b2.record_read(k("b"), Some(Version::new(1, 1)));
        b2.record_read(k("a"), Some(Version::new(1, 0)));
        assert_eq!(b1.build().encode_to_vec(), b2.build().encode_to_vec());
    }

    #[test]
    fn byte_size_is_plausible() {
        let rw = rwset_from_keys(&[k("abc")], Version::GENESIS, &[k("de")], &v("xyz"));
        assert!(rw.byte_size() >= 3 + 2 + 3);
    }
}
