//! The ordering service proper: policy application and block formation.
//!
//! Takes cut batches from the [`crate::BatchCutter`], optionally performs
//! the Fabric++ ordering-phase early abort and the Algorithm-1 reordering,
//! then forms a hash-chained [`Block`]. "It treats the transactions in a
//! black box fashion and does not inspect the transaction semantics" in
//! vanilla mode (paper Appendix A.2); in Fabric++ mode it does exactly the
//! opposite — that inspection is the point.
//!
//! The service is split into two stages so the reordering work can leave
//! the critical ordering path (see [`crate::pipeline`]):
//!
//! * [`BatchPrep::prepare`] — pure per-batch work (early abort, Algorithm
//!   1, schedule application). Stateless across batches, safe to run on
//!   worker threads, and allocation-free on a warm
//!   [`PrepScratch`] via [`BatchPrep::prepare_with`].
//! * [`OrderingService::seal`] — the sequential step: abort counters,
//!   empty-block suppression, block numbering and hash chaining.
//!
//! [`OrderingService::order_batch`] is exactly `prepare` + `seal` inline,
//! which is what the deterministic harnesses (sync/chaos) keep calling —
//! their block streams and schedule digests are untouched by the pipeline.

use std::sync::Arc;
use std::time::{Duration, Instant};

use fabric_common::rwset::ReadWriteSet;
use fabric_common::{
    DependencyHints, DependencyHintsBuilder, Digest, OrderingPolicy, PipelineConfig, Transaction,
    TxCounters, ValidationCode,
};
use fabric_ledger::Block;
use fabric_reorder::{reorder_with, ReorderConfig, ReorderOutput, ReorderScratch, ReorderStats};
use fabric_trace::{EventKind, TraceSink};

use crate::early_abort::{split_version_mismatches_traced, EarlyAbortScratch};

/// A block ready for distribution plus the transactions the orderer
/// removed from the pipeline (Fabric++ early aborts).
#[derive(Debug)]
pub struct OrderedBlock {
    /// The block to distribute to all peers.
    pub block: Block,
    /// Transactions aborted at order time, with their abort codes.
    pub early_aborted: Vec<(Transaction, ValidationCode)>,
    /// Reordering diagnostics (zeros under the arrival policy).
    pub reorder_stats: ReorderStats,
    /// The reorderer's conflict analysis carried forward for the peer's
    /// lane scheduler (see [`fabric_common::hints`]). Process-local and
    /// advisory: `None` under the arrival policy and on every rebuild
    /// path (recovery, delayed delivery), and never serialized — the
    /// block's byte format is identical with or without it.
    pub hints: Option<Arc<DependencyHints>>,
}

/// Reusable per-worker scratch for [`BatchPrep::prepare_with`]: the early
/// abort's interned newest-version table plus the reorderer's arena.
#[derive(Debug, Default)]
pub struct PrepScratch {
    early: EarlyAbortScratch,
    reorder: ReorderScratch,
    out: ReorderOutput,
    /// Original batch index → block position of the latest schedule.
    pos_of: Vec<u32>,
    /// Survivor-graph edges in original indices, before remapping.
    edges: Vec<(u32, u32)>,
}

/// The outcome of the per-batch stage, ready to be sealed into a block.
#[derive(Debug)]
pub struct BatchPlan {
    /// Surviving transactions in final (possibly reordered) block order.
    pub ordered: Vec<Transaction>,
    /// Transactions aborted at order time, with their abort codes.
    pub early_aborted: Vec<(Transaction, ValidationCode)>,
    /// Reordering diagnostics (zeros under the arrival policy).
    pub stats: ReorderStats,
    /// Time spent inside Algorithm 1 proper.
    pub reorder_elapsed: Duration,
    /// Time spent in the rest of the stage (early abort, partitioning).
    pub prepare_elapsed: Duration,
    /// Conflict analysis for the lane scheduler; see
    /// [`OrderedBlock::hints`]. Built exactly once per prepared batch and
    /// shared by reference from seal to commit.
    pub hints: Option<Arc<DependencyHints>>,
}

/// The stateless per-batch stage of the ordering service: early abort and
/// reordering, but no chain state. Cloneable so every reorder worker can
/// own one.
#[derive(Debug, Clone)]
pub struct BatchPrep {
    policy: OrderingPolicy,
    early_abort_ordering: bool,
    reorder_cfg: ReorderConfig,
    sink: TraceSink,
}

impl BatchPrep {
    /// Builds the stage from the pipeline configuration. All of
    /// [`ReorderConfig`] is plumbed from the config's knobs; cycle
    /// enumeration stays single-threaded here (the pipeline grants
    /// enumeration threads to its workers explicitly).
    pub fn new(cfg: &PipelineConfig) -> Self {
        BatchPrep {
            policy: cfg.ordering,
            early_abort_ordering: cfg.early_abort_ordering,
            reorder_cfg: ReorderConfig {
                max_cycles: cfg.max_cycles,
                max_scc_for_enumeration: cfg.max_scc_for_enumeration,
                enumeration_threads: 1,
            },
            sink: TraceSink::disabled(),
        }
    }

    /// Attaches a flight-recorder sink; order-phase aborts emit their
    /// provenance events through it. Clones of this stage (the reorder
    /// workers) share the same ring.
    pub fn with_trace(mut self, sink: TraceSink) -> Self {
        self.sink = sink;
        self
    }

    /// Grants this stage `threads` for parallel SCC cycle enumeration
    /// (identical output for any value; see
    /// [`ReorderConfig::enumeration_threads`]).
    pub fn with_enumeration_threads(mut self, threads: usize) -> Self {
        self.reorder_cfg.enumeration_threads = threads.max(1);
        self
    }

    /// The reorder configuration this stage runs with.
    pub fn reorder_config(&self) -> &ReorderConfig {
        &self.reorder_cfg
    }

    /// Runs the per-batch stage with a one-shot scratch.
    pub fn prepare(&self, batch: Vec<Transaction>) -> BatchPlan {
        let mut scratch = PrepScratch::default();
        self.prepare_with(batch, &mut scratch)
    }

    /// Runs the per-batch stage on a reusable `scratch` (the hot path of
    /// the reorder workers): within-block version-mismatch aborts if
    /// enabled, then — under [`OrderingPolicy::Reorder`] — conflict-cycle
    /// aborts plus serializable reordering.
    ///
    /// The plan is a pure function of `(self, batch)`; scratch state never
    /// leaks into the result.
    pub fn prepare_with(&self, batch: Vec<Transaction>, scratch: &mut PrepScratch) -> BatchPlan {
        let t_start = Instant::now();
        let mut early_aborted: Vec<(Transaction, ValidationCode)> = Vec::new();

        let survivors = if self.early_abort_ordering {
            let (survivors, mismatched) =
                split_version_mismatches_traced(batch, &mut scratch.early, &self.sink);
            early_aborted.extend(
                mismatched
                    .into_iter()
                    .map(|tx| (tx, ValidationCode::EarlyAbortVersionMismatch)),
            );
            survivors
        } else {
            batch
        };

        let mut stats = ReorderStats::default();
        let mut reorder_elapsed = Duration::ZERO;
        let mut hints = None;
        let ordered = match self.policy {
            OrderingPolicy::Arrival => survivors,
            OrderingPolicy::Reorder => {
                let sets: Vec<&ReadWriteSet> = survivors.iter().map(|t| &t.rwset).collect();
                let t_reorder = Instant::now();
                reorder_with(&sets, &self.reorder_cfg, &mut scratch.reorder, &mut scratch.out);
                reorder_elapsed = t_reorder.elapsed();
                stats = scratch.out.stats;
                hints = Some(build_hints(scratch));
                // Partition: move aborted out, arrange the rest by schedule.
                let mut slots: Vec<Option<Transaction>> =
                    survivors.into_iter().map(Some).collect();
                for (&i, info) in scratch.out.aborted.iter().zip(&scratch.out.abort_sccs) {
                    let tx = slots[i].take().expect("abort index unique");
                    if self.sink.is_enabled() {
                        self.sink.emit(EventKind::TxEarlyAbortCycle {
                            tx: tx.id,
                            scc: info.scc,
                            scc_size: info.size,
                            fallback: stats.fallback_used,
                        });
                    }
                    early_aborted.push((tx, ValidationCode::EarlyAbortCycle));
                }
                scratch
                    .out
                    .schedule
                    .iter()
                    .map(|&i| slots[i].take().expect("schedule index unique"))
                    .collect()
            }
        };

        BatchPlan {
            ordered,
            early_aborted,
            stats,
            reorder_elapsed,
            prepare_elapsed: t_start.elapsed().saturating_sub(reorder_elapsed),
            hints,
        }
    }
}

/// Packages the reorderer's conflict analysis — the interned read/write
/// ids of every scheduled transaction (in block order) and the survivor
/// graph's dependency edges (remapped to block positions) — as the
/// [`DependencyHints`] the lane scheduler consumes at commit. Called once
/// per prepared batch, immediately after [`reorder_with`], while the
/// arena still holds that batch.
fn build_hints(scratch: &mut PrepScratch) -> Arc<DependencyHints> {
    let PrepScratch { reorder, out, pos_of, edges, .. } = scratch;
    let interned = reorder.interned();
    let mut b = DependencyHintsBuilder::with_capacity(out.schedule.len());
    for &i in &out.schedule {
        b.push_tx(interned.reads(i), interned.writes(i));
    }
    pos_of.clear();
    pos_of.resize(interned.len(), u32::MAX);
    for (pos, &i) in out.schedule.iter().enumerate() {
        pos_of[i] = pos as u32;
    }
    edges.clear();
    reorder.survivor_edges_into(out, edges);
    for &(w, r) in edges.iter() {
        b.push_edge(pos_of[w as usize], pos_of[r as usize]);
    }
    b.finish(interned.n_keys() as u32)
}

/// Stateful ordering service for one channel: consumes batches, emits
/// chained blocks.
pub struct OrderingService {
    prep: BatchPrep,
    next_block: u64,
    prev_hash: Digest,
    counters: Option<TxCounters>,
    sink: TraceSink,
}

impl OrderingService {
    /// Creates the service for a fresh chain (next block = 0, the genesis
    /// block of the channel's transaction chain).
    pub fn new(cfg: &PipelineConfig) -> Self {
        OrderingService {
            prep: BatchPrep::new(cfg),
            next_block: 0,
            prev_hash: Digest::ZERO,
            counters: None,
            sink: TraceSink::disabled(),
        }
    }

    /// Attaches outcome counters; early aborts will be recorded on them.
    pub fn with_counters(mut self, counters: TxCounters) -> Self {
        self.counters = Some(counters);
        self
    }

    /// Attaches a flight-recorder sink: sealed blocks emit
    /// [`EventKind::BlockSealed`] here, and the per-batch stage (and every
    /// worker clone taken via [`batch_prep`](Self::batch_prep) afterwards)
    /// emits order-phase abort provenance.
    pub fn with_trace(mut self, sink: TraceSink) -> Self {
        self.prep = self.prep.with_trace(sink.clone());
        self.sink = sink;
        self
    }

    /// Starts the chain after an existing prefix (e.g. a genesis block that
    /// was installed out-of-band).
    pub fn resume_at(mut self, next_block: u64, prev_hash: Digest) -> Self {
        self.next_block = next_block;
        self.prev_hash = prev_hash;
        self
    }

    /// Number of the next block this service will emit.
    pub fn next_block_num(&self) -> u64 {
        self.next_block
    }

    /// A clone of the per-batch stage, for running it off-thread (the
    /// reorder pipeline); [`seal`](Self::seal) then applies the results
    /// here in cut order.
    pub fn batch_prep(&self) -> BatchPrep {
        self.prep.clone()
    }

    /// The sequential emission step: records early-abort counters, then
    /// forms the hash-chained block.
    ///
    /// Returns `None` when no transaction survives (empty batch, or early
    /// abort / cycle-breaking killed every member): empty blocks would
    /// consume block numbers, skew block-fill stats, and cost every peer a
    /// commit for nothing. Early-abort counters are still recorded; the
    /// chain position (`next_block`, `prev_hash`) is left untouched.
    ///
    /// Sealing plans in cut order reproduces the sequential
    /// [`order_batch`](Self::order_batch) block stream byte for byte: the
    /// plan is a pure function of the batch, and numbering/chaining happen
    /// only here.
    pub fn seal(&mut self, plan: BatchPlan) -> Option<OrderedBlock> {
        let BatchPlan { ordered, early_aborted, stats, reorder_elapsed, hints, .. } = plan;
        if let Some(c) = &self.counters {
            for (_, code) in &early_aborted {
                c.record_outcome(*code);
            }
        }
        if ordered.is_empty() {
            return None;
        }
        let block = Block::build(self.next_block, self.prev_hash, ordered);
        self.next_block += 1;
        self.prev_hash = block.header.hash();
        if self.sink.is_enabled() {
            self.sink.emit(EventKind::BlockSealed {
                block: block.header.number,
                txs: block.txs.len() as u32,
                early_aborted: early_aborted.len() as u32,
                sccs: stats.nontrivial_sccs as u32,
                cycles: stats.cycles as u32,
                fallback: stats.fallback_used,
                reorder_us: reorder_elapsed.as_micros() as u64,
            });
        }
        Some(OrderedBlock { block, early_aborted, reorder_stats: stats, hints })
    }

    /// Orders one cut batch into a block: [`BatchPrep::prepare`] +
    /// [`seal`](Self::seal) inline. The deterministic harnesses call this
    /// directly, bypassing the pipeline entirely.
    ///
    /// Under [`OrderingPolicy::Arrival`] the batch order is preserved
    /// verbatim. Under [`OrderingPolicy::Reorder`] the Fabric++ machinery
    /// runs: (optionally) within-block version-mismatch aborts, then
    /// conflict-cycle aborts plus serializable reordering.
    pub fn order_batch(&mut self, batch: Vec<Transaction>) -> Option<OrderedBlock> {
        let plan = self.prep.prepare(batch);
        self.seal(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_common::rwset::RwSetBuilder;
    use fabric_common::{ChannelId, ClientId, Key, TxId, Value, Version};
    use std::time::Instant;

    fn mk_tx(reads: &[(u64, Version)], writes: &[u64]) -> Transaction {
        let mut b = RwSetBuilder::new();
        for (k, v) in reads {
            b.record_read(Key::composite("K", *k), Some(*v));
        }
        for k in writes {
            b.record_write(Key::composite("K", *k), Some(Value::from_i64(1)));
        }
        Transaction {
            id: TxId::next(),
            channel: ChannelId(0),
            client: ClientId(0),
            chaincode: "cc".into(),
            rwset: b.build(),
            endorsements: vec![],
            created_at: Instant::now(),
        }
    }

    fn g() -> Version {
        Version::GENESIS
    }

    #[test]
    fn arrival_policy_preserves_order() {
        let mut svc = OrderingService::new(&PipelineConfig::vanilla());
        let txs: Vec<Transaction> = (0..5).map(|i| mk_tx(&[(i, g())], &[i + 100])).collect();
        let ids: Vec<TxId> = txs.iter().map(|t| t.id).collect();
        let ob = svc.order_batch(txs).expect("non-empty batch forms a block");
        assert_eq!(ob.block.txs.iter().map(|t| t.id).collect::<Vec<_>>(), ids);
        assert!(ob.early_aborted.is_empty());
        assert_eq!(ob.reorder_stats, ReorderStats::default());
    }

    #[test]
    fn blocks_are_hash_chained() {
        let mut svc = OrderingService::new(&PipelineConfig::vanilla());
        let b0 = svc.order_batch(vec![mk_tx(&[(0, g())], &[1])]).expect("block");
        let b1 = svc.order_batch(vec![mk_tx(&[(2, g())], &[3])]).expect("block");
        assert_eq!(b0.block.header.number, 0);
        assert_eq!(b0.block.header.prev_hash, Digest::ZERO);
        assert_eq!(b1.block.header.number, 1);
        assert_eq!(b1.block.header.prev_hash, b0.block.header.hash());
        assert_eq!(svc.next_block_num(), 2);
    }

    #[test]
    fn reorder_policy_produces_serializable_block() {
        // Table 1 scenario: writer of k1 arrives first, readers after.
        let mut svc = OrderingService::new(&PipelineConfig::fabric_pp());
        let writer = mk_tx(&[], &[1]);
        let writer_id = writer.id;
        let readers: Vec<Transaction> =
            (0..3).map(|i| mk_tx(&[(1, g())], &[10 + i])).collect();
        let mut batch = vec![writer];
        batch.extend(readers);
        let ob = svc.order_batch(batch).expect("non-empty batch forms a block");
        assert_eq!(ob.block.txs.len(), 4);
        assert!(ob.early_aborted.is_empty());
        // Writer must now be last.
        assert_eq!(ob.block.txs.last().unwrap().id, writer_id);
    }

    #[test]
    fn cycle_members_early_aborted_with_code() {
        let mut svc = OrderingService::new(&PipelineConfig::fabric_pp());
        // 2-cycle: T0 reads K0 writes K1; T1 reads K1 writes K0.
        let t0 = mk_tx(&[(0, g())], &[1]);
        let t1 = mk_tx(&[(1, g())], &[0]);
        let t0_id = t0.id;
        let ob = svc.order_batch(vec![t0, t1]).expect("one survivor forms a block");
        assert_eq!(ob.block.txs.len(), 1);
        assert_eq!(ob.early_aborted.len(), 1);
        assert_eq!(ob.early_aborted[0].0.id, t0_id);
        assert_eq!(ob.early_aborted[0].1, ValidationCode::EarlyAbortCycle);
        assert_eq!(ob.reorder_stats.cycles, 1);
    }

    #[test]
    fn version_mismatch_aborted_before_reordering() {
        let mut svc = OrderingService::new(&PipelineConfig::fabric_pp());
        let old = mk_tx(&[(5, Version::new(1, 0))], &[6]);
        let new = mk_tx(&[(5, Version::new(2, 0))], &[7]);
        let old_id = old.id;
        let new_id = new.id;
        let ob = svc.order_batch(vec![old, new]).expect("survivors form a block");
        assert_eq!(ob.block.txs.len(), 1);
        assert_eq!(ob.block.txs[0].id, new_id);
        assert_eq!(ob.early_aborted.len(), 1);
        assert_eq!(ob.early_aborted[0].0.id, old_id);
        assert_eq!(ob.early_aborted[0].1, ValidationCode::EarlyAbortVersionMismatch);
    }

    #[test]
    fn vanilla_never_inspects_semantics() {
        // Even with version mismatches and cycles, vanilla ships everything.
        let mut svc = OrderingService::new(&PipelineConfig::vanilla());
        let batch = vec![
            mk_tx(&[(5, Version::new(1, 0))], &[6]),
            mk_tx(&[(5, Version::new(2, 0))], &[7]),
            mk_tx(&[(0, g())], &[1]),
            mk_tx(&[(1, g())], &[0]),
        ];
        let ob = svc.order_batch(batch).expect("non-empty batch forms a block");
        assert_eq!(ob.block.txs.len(), 4);
        assert!(ob.early_aborted.is_empty());
    }

    #[test]
    fn counters_record_early_aborts() {
        let counters = TxCounters::new();
        let mut svc =
            OrderingService::new(&PipelineConfig::fabric_pp()).with_counters(counters.clone());
        let batch = vec![
            mk_tx(&[(5, Version::new(1, 0))], &[6]),
            mk_tx(&[(5, Version::new(2, 0))], &[7]),
            mk_tx(&[(0, g())], &[1]),
            mk_tx(&[(1, g())], &[0]),
        ];
        svc.order_batch(batch);
        let s = counters.snapshot();
        assert_eq!(s.early_abort_version_mismatch, 1);
        assert_eq!(s.early_abort_cycle, 1);
    }

    #[test]
    fn traced_order_batch_emits_abort_provenance_then_seal() {
        let sink = TraceSink::bounded(64);
        let mut svc =
            OrderingService::new(&PipelineConfig::fabric_pp()).with_trace(sink.clone());
        let batch = vec![
            mk_tx(&[(5, Version::new(1, 0))], &[6]), // stale → version abort
            mk_tx(&[(5, Version::new(2, 0))], &[7]),
            mk_tx(&[(0, g())], &[1]), // 2-cycle with the next → cycle abort
            mk_tx(&[(1, g())], &[0]),
        ];
        let ob = svc.order_batch(batch).expect("survivors form a block");
        let events = sink.drain();
        let labels: Vec<&str> = events.iter().map(|e| e.kind.label()).collect();
        assert!(labels.contains(&"early_abort_version"));
        assert!(labels.contains(&"early_abort_cycle"));
        assert_eq!(*labels.last().unwrap(), "block_sealed");
        match &events.last().unwrap().kind {
            EventKind::BlockSealed { block, txs, early_aborted, .. } => {
                assert_eq!(*block, ob.block.header.number);
                assert_eq!(*txs, ob.block.txs.len() as u32);
                assert_eq!(*early_aborted, 2);
            }
            other => panic!("expected BlockSealed, got {other:?}"),
        }
    }

    #[test]
    fn untraced_order_batch_matches_traced_block_stream() {
        // Tracing must be observation-only: identical batches produce
        // byte-identical blocks with and without a sink attached.
        let mk_batch = || {
            vec![
                mk_tx(&[(5, Version::new(1, 0))], &[6]),
                mk_tx(&[(5, Version::new(2, 0))], &[7]),
                mk_tx(&[(0, g())], &[1]),
                mk_tx(&[(1, g())], &[0]),
            ]
        };
        let mut plain = OrderingService::new(&PipelineConfig::fabric_pp());
        let mut traced = OrderingService::new(&PipelineConfig::fabric_pp())
            .with_trace(TraceSink::bounded(64));
        // Same TxIds in both runs: clone the batch.
        let batch = mk_batch();
        let cloned = batch.clone();
        let a = plain.order_batch(batch).expect("block");
        let b = traced.order_batch(cloned).expect("block");
        assert_eq!(a.block.header.hash(), b.block.header.hash());
        assert_eq!(
            a.early_aborted.iter().map(|(t, c)| (t.id, *c)).collect::<Vec<_>>(),
            b.early_aborted.iter().map(|(t, c)| (t.id, *c)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn arrival_policy_carries_no_hints() {
        let mut svc = OrderingService::new(&PipelineConfig::vanilla());
        let ob = svc.order_batch(vec![mk_tx(&[(0, g())], &[1])]).expect("block");
        assert!(ob.hints.is_none());
    }

    #[test]
    fn reorder_policy_attaches_aligned_dependency_hints() {
        // Table 1 scenario plus a 2-cycle: the sealed block carries hints
        // whose CSR rows align 1:1 with the block's transactions and whose
        // edges name real write→read conflicts in block positions.
        let mut svc = OrderingService::new(&PipelineConfig::fabric_pp());
        let mut batch = vec![mk_tx(&[], &[1])];
        batch.extend((0..3).map(|i| mk_tx(&[(1, g())], &[10 + i])));
        batch.push(mk_tx(&[(20, g())], &[21]));
        batch.push(mk_tx(&[(21, g())], &[20]));
        let ob = svc.order_batch(batch).expect("block");
        let hints = ob.hints.as_ref().expect("reorder policy carries hints");
        assert_eq!(hints.len(), ob.block.txs.len());
        for (p, tx) in ob.block.txs.iter().enumerate() {
            assert_eq!(hints.reads(p).len(), tx.rwset.reads.len());
            assert_eq!(hints.writes(p).len(), tx.rwset.writes.len());
            // Same row ↔ same rwset: equal keys must intern to equal ids.
            for (id, key) in hints.reads(p).iter().zip(tx.rwset.reads.keys()) {
                for (id2, key2) in hints.writes(p).iter().zip(tx.rwset.writes.keys()) {
                    assert_eq!(id == id2, key == key2);
                }
            }
        }
        assert!(!hints.edges().is_empty(), "writer→reader conflicts exist");
        for &(w, r) in hints.edges() {
            let wset = &ob.block.txs[w as usize].rwset.writes;
            let rset = &ob.block.txs[r as usize].rwset.reads;
            assert!(
                wset.keys().any(|k| rset.reads(k)),
                "edge ({w},{r}) must name a real write→read conflict"
            );
        }
    }

    #[test]
    fn hints_survive_cycle_aborts_with_block_positions() {
        // One 2-cycle (one abort) plus a dependent pair: edge endpoints
        // must be positions in the *sealed block*, not batch indices.
        let mut svc = OrderingService::new(&PipelineConfig::fabric_pp());
        let batch = vec![
            mk_tx(&[(0, g())], &[1]), // cycle member (aborted)
            mk_tx(&[(1, g())], &[0]), // cycle member (survives)
            mk_tx(&[], &[5]),         // writer
            mk_tx(&[(5, g())], &[6]), // reader of the writer
        ];
        let ob = svc.order_batch(batch).expect("block");
        assert_eq!(ob.early_aborted.len(), 1);
        let hints = ob.hints.as_ref().expect("hints");
        assert_eq!(hints.len(), ob.block.txs.len());
        let n = hints.len() as u32;
        for &(w, r) in hints.edges() {
            assert!(w < n && r < n);
            let wset = &ob.block.txs[w as usize].rwset.writes;
            let rset = &ob.block.txs[r as usize].rwset.reads;
            assert!(wset.keys().any(|k| rset.reads(k)));
        }
    }

    #[test]
    fn empty_batch_forms_no_block() {
        let mut svc = OrderingService::new(&PipelineConfig::fabric_pp());
        assert!(svc.order_batch(vec![]).is_none());
        assert_eq!(svc.next_block_num(), 0, "suppressed batch consumes no block number");
        // The chain continues as if the empty batch never happened.
        let ob = svc.order_batch(vec![mk_tx(&[(0, g())], &[1])]).expect("block");
        assert_eq!(ob.block.header.number, 0);
        assert_eq!(ob.block.header.prev_hash, Digest::ZERO);
    }

    #[test]
    fn fully_early_aborted_batch_forms_no_block() {
        // Both members of a 2-cycle where each also read a stale version:
        // early abort kills everything, so no block may be shipped — but the
        // abort counters must still be recorded.
        let counters = TxCounters::new();
        let mut svc =
            OrderingService::new(&PipelineConfig::fabric_pp()).with_counters(counters.clone());
        // Cross-stale reads: each tx reads the newest version of one key but
        // a stale version of the other, so the mismatch rule dooms both.
        let stale_a = mk_tx(&[(0, Version::new(2, 0)), (1, Version::new(1, 0))], &[10]);
        let stale_b = mk_tx(&[(1, Version::new(2, 0)), (0, Version::new(1, 0))], &[11]);
        assert!(svc.order_batch(vec![stale_a, stale_b]).is_none());
        assert_eq!(svc.next_block_num(), 0);
        let s = counters.snapshot();
        assert_eq!(s.early_abort_version_mismatch, 2, "every killed tx is still counted");
    }

    #[test]
    fn resume_at_continues_chain() {
        let mut svc = OrderingService::new(&PipelineConfig::vanilla());
        let b0 = svc.order_batch(vec![mk_tx(&[(0, g())], &[1])]).expect("block");
        let mut resumed = OrderingService::new(&PipelineConfig::vanilla())
            .resume_at(1, b0.block.header.hash());
        let b1 = resumed.order_batch(vec![mk_tx(&[(2, g())], &[3])]).expect("block");
        assert_eq!(b1.block.header.number, 1);
        assert_eq!(b1.block.header.prev_hash, b0.block.header.hash());
    }

    #[test]
    fn reordering_only_mode_skips_version_mismatch_abort() {
        let mut svc = OrderingService::new(&PipelineConfig::reordering_only());
        let old = mk_tx(&[(5, Version::new(1, 0))], &[6]);
        let new = mk_tx(&[(5, Version::new(2, 0))], &[7]);
        let ob = svc.order_batch(vec![old, new]).expect("survivors form a block");
        // No within-block version abort in reordering-only mode.
        assert_eq!(ob.block.txs.len(), 2);
        assert!(ob.early_aborted.is_empty());
    }
}
