//! The two-stage ordering pipeline: cut batches flow through a pool of
//! reorder workers while the cutter keeps cutting, and prepared plans are
//! re-serialized into cut order before the sequential sealing step.
//!
//! The paper's Algorithm 1 sits on the orderer's critical path: while a
//! batch is being reordered, the next batch cannot be cut into a block.
//! But the per-batch stage ([`BatchPrep::prepare`]) is a pure function of
//! the batch — only numbering and hash chaining need the chain state. So
//! the pipeline runs `prepare` on worker threads and hands plans back to
//! the caller strictly in submission order; sealing them in that order
//! reproduces the sequential block stream byte for byte (the differential
//! tests below and the `reorder_scaling --smoke` CI gate assert exactly
//! this).
//!
//! Determinism contract: prepared plans are a pure function of the
//! submitted batch and come back strictly in submission order, so worker
//! count is a non-semantic knob. [`ReorderPipeline::sequential`] (and any
//! `workers <= 1` pipeline) prepares inline on the caller's thread with
//! zero scheduling freedom. The chaos harness drives its single-orderer
//! path through a pipeline sized from `reorder_workers`, and the
//! conformance harness asserts runs are byte-identical across worker
//! counts — chaos schedule digests are unchanged by this subsystem.

use std::collections::BTreeMap;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use fabric_common::{default_reorder_workers, Transaction};

use crate::cutter::CutReason;
use crate::orderer::{BatchPlan, BatchPrep, PrepScratch};
#[cfg(doc)]
use crate::orderer::OrderingService;

/// One cut batch after the per-batch stage, carrying everything the
/// sequential sealing step and the stats recorders need.
#[derive(Debug)]
pub struct PreparedBatch {
    /// The prepared plan, ready for [`OrderingService::seal`].
    pub plan: BatchPlan,
    /// Why the cutter cut this batch.
    pub reason: CutReason,
    /// Batch size at cut time (before early aborts), for fill stats.
    pub batch_len: usize,
}

type Job = (u64, Vec<Transaction>, CutReason);

enum Mode {
    /// Prepare inline on the caller's thread, eagerly. Zero scheduling
    /// freedom: used when `reorder_workers <= 1` and by deterministic
    /// harness configurations.
    Sequential { prep: BatchPrep, scratch: Box<PrepScratch> },
    Threaded {
        jobs: Option<Sender<Job>>,
        done: Receiver<(u64, PreparedBatch)>,
        workers: usize,
        handles: Vec<JoinHandle<()>>,
    },
}

/// A pool of reorder workers plus the in-order reassembly buffer.
///
/// Usage: [`submit`](Self::submit) each cut batch as soon as the cutter
/// produces it, then [`try_collect`](Self::try_collect) (non-blocking) or
/// [`drain`](Self::drain) (blocking, for shutdown) to receive
/// [`PreparedBatch`]es **strictly in submission order** — a batch whose
/// reordering outlasts several later cuts is held until its turn.
///
/// Dropping the pipeline disconnects the job channel and joins the
/// workers; in-flight plans are discarded.
pub struct ReorderPipeline {
    mode: Mode,
    next_submit: u64,
    next_emit: u64,
    ready: BTreeMap<u64, PreparedBatch>,
}

impl ReorderPipeline {
    /// A pipeline that prepares on the calling thread (deterministic
    /// mode). Submission order trivially equals emission order.
    pub fn sequential(prep: BatchPrep) -> Self {
        ReorderPipeline {
            mode: Mode::Sequential { prep, scratch: Box::default() },
            next_submit: 0,
            next_emit: 0,
            ready: BTreeMap::new(),
        }
    }

    /// A pipeline with `workers` persistent reorder threads (`0` =
    /// available parallelism, matching
    /// [`PipelineConfig::reorder_workers`](fabric_common::PipelineConfig)'s
    /// default). `workers <= 1` degenerates to
    /// [`sequential`](Self::sequential): one worker buys no overlap, so
    /// the inline mode's determinism is preferable.
    pub fn new(prep: BatchPrep, workers: usize) -> Self {
        let workers = if workers == 0 { default_reorder_workers() } else { workers };
        if workers <= 1 {
            return Self::sequential(prep);
        }
        let (job_tx, job_rx) = unbounded::<Job>();
        let (done_tx, done_rx) = unbounded::<(u64, PreparedBatch)>();
        let handles = (0..workers)
            .map(|i| {
                let job_rx = job_rx.clone();
                let done_tx = done_tx.clone();
                let prep = prep.clone();
                std::thread::Builder::new()
                    .name(format!("reorder-{i}"))
                    .spawn(move || {
                        let mut scratch = PrepScratch::default();
                        while let Ok((seq, batch, reason)) = job_rx.recv() {
                            let batch_len = batch.len();
                            let plan = prep.prepare_with(batch, &mut scratch);
                            // The collector may already be gone (pipeline
                            // dropped mid-flight) — fine.
                            let _ = done_tx.send((seq, PreparedBatch { plan, reason, batch_len }));
                        }
                    })
                    .expect("spawn reorder worker")
            })
            .collect();
        ReorderPipeline {
            mode: Mode::Threaded { jobs: Some(job_tx), done: done_rx, workers, handles },
            next_submit: 0,
            next_emit: 0,
            ready: BTreeMap::new(),
        }
    }

    /// Number of worker threads (1 for the sequential mode).
    pub fn workers(&self) -> usize {
        match &self.mode {
            Mode::Sequential { .. } => 1,
            Mode::Threaded { workers, .. } => *workers,
        }
    }

    /// Batches submitted but not yet emitted (0 in sequential mode right
    /// after any collect).
    pub fn in_flight(&self) -> usize {
        (self.next_submit - self.next_emit) as usize
    }

    /// Hands one cut batch to the workers (or prepares it inline in
    /// sequential mode). Returns immediately in threaded mode.
    pub fn submit(&mut self, batch: Vec<Transaction>, reason: CutReason) {
        let seq = self.next_submit;
        self.next_submit += 1;
        match &mut self.mode {
            Mode::Sequential { prep, scratch } => {
                let batch_len = batch.len();
                let plan = prep.prepare_with(batch, scratch);
                self.ready.insert(seq, PreparedBatch { plan, reason, batch_len });
            }
            Mode::Threaded { jobs, .. } => {
                let jobs = jobs.as_ref().expect("job channel lives until drop");
                jobs.send((seq, batch, reason)).expect("workers outlive the pipeline handle");
            }
        }
    }

    /// Collects every plan that is ready **and** next in submission order,
    /// without blocking. A finished batch behind an unfinished earlier one
    /// is buffered, not returned.
    pub fn try_collect(&mut self) -> Vec<PreparedBatch> {
        if let Mode::Threaded { done, .. } = &self.mode {
            loop {
                match done.try_recv() {
                    Ok((seq, prepared)) => {
                        self.ready.insert(seq, prepared);
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => break,
                }
            }
        }
        self.pop_contiguous()
    }

    /// Blocks until every submitted batch is prepared, then returns all
    /// remaining plans in submission order (shutdown path).
    pub fn drain(&mut self) -> Vec<PreparedBatch> {
        if let Mode::Threaded { done, .. } = &self.mode {
            while self.ready.len() < self.in_flight() {
                let (seq, prepared) =
                    done.recv().expect("reorder worker died with jobs in flight");
                self.ready.insert(seq, prepared);
            }
        }
        let out = self.pop_contiguous();
        debug_assert_eq!(self.next_emit, self.next_submit, "drain leaves nothing in flight");
        out
    }

    fn pop_contiguous(&mut self) -> Vec<PreparedBatch> {
        let mut out = Vec::new();
        while let Some(prepared) = self.ready.remove(&self.next_emit) {
            self.next_emit += 1;
            out.push(prepared);
        }
        out
    }
}

impl Drop for ReorderPipeline {
    fn drop(&mut self) {
        if let Mode::Threaded { jobs, handles, .. } = &mut self.mode {
            drop(jobs.take()); // disconnect → workers drain and exit
            for h in handles.drain(..) {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orderer::OrderingService;
    use fabric_common::rwset::RwSetBuilder;
    use fabric_common::{
        ChannelId, ClientId, Digest, Key, OrderingPolicy, PipelineConfig, TxId, Value, Version,
    };
    use std::time::Instant;

    fn mk_tx(reads: &[(u64, u64)], writes: &[u64]) -> Transaction {
        let mut b = RwSetBuilder::new();
        for &(k, ver) in reads {
            b.record_read(Key::composite("K", k), Some(Version::new(ver, 0)));
        }
        for &k in writes {
            b.record_write(Key::composite("K", k), Some(Value::from_i64(1)));
        }
        Transaction {
            id: TxId::next(),
            channel: ChannelId(0),
            client: ClientId(0),
            chaincode: "cc".into(),
            rwset: b.build(),
            endorsements: vec![],
            created_at: Instant::now(),
        }
    }

    fn cfg() -> PipelineConfig {
        PipelineConfig::fabric_pp()
    }

    /// Conflict-heavy batches exercising early abort, cycles, and
    /// reordering; deterministic content so both runs see identical input.
    fn batches(count: u64, size: u64) -> Vec<Vec<Transaction>> {
        (0..count)
            .map(|b| {
                (0..size)
                    .map(|i| {
                        let k = b * 7 + i;
                        mk_tx(
                            &[(k % 11, 1 + (i + b) % 3)],
                            &[(k + 1) % 11, 100 + k % 5],
                        )
                    })
                    .collect()
            })
            .collect()
    }

    /// Runs batches through `order_batch` (the sequential reference) and
    /// through a pipeline + `seal`, and asserts byte-identical blocks.
    fn assert_differential(workers: usize, count: u64, size: u64) {
        let config = cfg();
        let input = batches(count, size);

        let mut seq_service = OrderingService::new(&config);
        let seq_blocks: Vec<_> =
            input.clone().into_iter().filter_map(|b| seq_service.order_batch(b)).collect();

        let mut pipe_service = OrderingService::new(&config);
        let mut pipeline = ReorderPipeline::new(pipe_service.batch_prep(), workers);
        for batch in input {
            pipeline.submit(batch, CutReason::TxCount);
        }
        let mut pipe_blocks = Vec::new();
        for prepared in pipeline.drain() {
            if let Some(ob) = pipe_service.seal(prepared.plan) {
                pipe_blocks.push(ob);
            }
        }

        assert_eq!(seq_blocks.len(), pipe_blocks.len());
        for (s, p) in seq_blocks.iter().zip(&pipe_blocks) {
            assert_eq!(s.block.header.number, p.block.header.number);
            assert_eq!(s.block.header.hash(), p.block.header.hash(), "hash chain must match");
            assert_eq!(
                s.block.txs.iter().map(|t| t.id).collect::<Vec<_>>(),
                p.block.txs.iter().map(|t| t.id).collect::<Vec<_>>()
            );
            assert_eq!(
                s.early_aborted.iter().map(|(t, c)| (t.id, *c)).collect::<Vec<_>>(),
                p.early_aborted.iter().map(|(t, c)| (t.id, *c)).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn sequential_pipeline_matches_order_batch() {
        assert_differential(1, 12, 16);
    }

    #[test]
    fn threaded_pipeline_matches_order_batch() {
        for workers in [2, 4, 8] {
            assert_differential(workers, 16, 24);
        }
    }

    #[test]
    fn zero_workers_uses_available_parallelism() {
        let pipeline = ReorderPipeline::new(BatchPrep::new(&cfg()), 0);
        assert_eq!(pipeline.workers(), default_reorder_workers().max(1));
    }

    #[test]
    fn one_worker_degenerates_to_sequential() {
        let mut pipeline = ReorderPipeline::new(BatchPrep::new(&cfg()), 1);
        assert_eq!(pipeline.workers(), 1);
        pipeline.submit(batches(1, 4).remove(0), CutReason::Timeout);
        let got = pipeline.try_collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].reason, CutReason::Timeout);
        assert_eq!(got[0].batch_len, 4);
        assert_eq!(pipeline.in_flight(), 0);
    }

    #[test]
    fn slow_batch_holds_later_finished_batches() {
        // Regression for the emission-order contract: batch 0's reorder
        // outlasts the cuts of batches 1 and 2 (it is much larger), yet
        // plans must come out 0, 1, 2 and the sealed chain must match the
        // sequential service. With 4 workers the small batches certainly
        // finish first; the reassembly buffer must hold them.
        let config = cfg();
        let big: Vec<Transaction> = batches(1, 120).remove(0);
        let small1 = batches(2, 3).remove(1);
        let small2 = batches(3, 2).remove(2);
        let input = vec![big, small1, small2];

        let mut seq_service = OrderingService::new(&config);
        let seq_nums: Vec<_> = input
            .clone()
            .into_iter()
            .filter_map(|b| seq_service.order_batch(b))
            .map(|ob| (ob.block.header.number, ob.block.header.hash()))
            .collect();

        let mut service = OrderingService::new(&config);
        let mut pipeline = ReorderPipeline::new(service.batch_prep(), 4);
        let reasons = [CutReason::TxCount, CutReason::Bytes, CutReason::Flush];
        for (batch, reason) in input.into_iter().zip(reasons) {
            pipeline.submit(batch, reason);
        }
        let prepared = pipeline.drain();
        assert_eq!(
            prepared.iter().map(|p| p.reason).collect::<Vec<_>>(),
            reasons.to_vec(),
            "plans emitted in cut order, not completion order"
        );
        let got: Vec<_> = prepared
            .into_iter()
            .filter_map(|p| service.seal(p.plan))
            .map(|ob| (ob.block.header.number, ob.block.header.hash()))
            .collect();
        assert_eq!(got, seq_nums);
    }

    #[test]
    fn try_collect_is_nonblocking_and_eventually_complete() {
        let service = OrderingService::new(&cfg());
        let mut pipeline = ReorderPipeline::new(service.batch_prep(), 2);
        for batch in batches(6, 8) {
            pipeline.submit(batch, CutReason::TxCount);
        }
        let mut collected = 0;
        while collected < 6 {
            collected += pipeline.try_collect().len();
            std::thread::yield_now();
        }
        assert_eq!(pipeline.in_flight(), 0);
        assert!(pipeline.try_collect().is_empty());
    }

    #[test]
    fn arrival_policy_passes_through_unreordered() {
        let mut config = cfg();
        config.ordering = OrderingPolicy::Arrival;
        config.early_abort_ordering = false;
        let input = batches(4, 6);
        let mut service = OrderingService::new(&config).resume_at(5, Digest::ZERO);
        let mut pipeline = ReorderPipeline::new(service.batch_prep(), 3);
        for batch in input.clone() {
            pipeline.submit(batch, CutReason::TxCount);
        }
        for (prepared, original) in pipeline.drain().into_iter().zip(input) {
            let ob = service.seal(prepared.plan).expect("non-empty");
            assert_eq!(
                ob.block.txs.iter().map(|t| t.id).collect::<Vec<_>>(),
                original.iter().map(|t| t.id).collect::<Vec<_>>()
            );
        }
        assert_eq!(service.next_block_num(), 9);
    }
}
