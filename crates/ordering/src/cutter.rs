//! Batch cutting (paper §5.1.2).
//!
//! "When the ordering service receives the transactions in form of a
//! constant stream, it decides based on multiple criteria when to 'cut' a
//! batch of transactions to finalize it and to form the block." Vanilla
//! conditions: (a) transaction count, (b) byte size, (c) elapsed time since
//! the batch's first transaction. Fabric++ adds (d): the batch accesses a
//! bounded number of unique keys, keeping the reordering mechanism's
//! conflict-graph construction cheap.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use fabric_common::{BlockCuttingConfig, Key, Transaction};

/// Why a batch was cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CutReason {
    /// Condition (a): transaction-count threshold reached.
    TxCount,
    /// Condition (b): byte-size threshold reached.
    Bytes,
    /// Condition (c): batch timeout expired.
    Timeout,
    /// Condition (d), Fabric++: unique-key threshold reached.
    UniqueKeys,
    /// Explicit flush at shutdown (remaining transactions).
    Flush,
}

impl CutReason {
    /// The flight-recorder mirror of this reason (`fabric-trace` cannot
    /// depend on this crate, so the enum lives twice).
    pub fn trace_kind(self) -> fabric_trace::CutKind {
        match self {
            CutReason::TxCount => fabric_trace::CutKind::TxCount,
            CutReason::Bytes => fabric_trace::CutKind::Bytes,
            CutReason::Timeout => fabric_trace::CutKind::Timeout,
            CutReason::UniqueKeys => fabric_trace::CutKind::UniqueKeys,
            CutReason::Flush => fabric_trace::CutKind::Flush,
        }
    }
}

/// Accumulates incoming transactions and signals when to form a block.
pub struct BatchCutter {
    cfg: BlockCuttingConfig,
    buf: Vec<Transaction>,
    bytes: usize,
    unique_keys: HashSet<Key>,
    first_arrival: Option<Instant>,
}

impl BatchCutter {
    /// Creates a cutter with the given thresholds.
    pub fn new(cfg: BlockCuttingConfig) -> Self {
        BatchCutter {
            cfg,
            buf: Vec::new(),
            bytes: 0,
            unique_keys: HashSet::new(),
            first_arrival: None,
        }
    }

    /// Adds a transaction; returns any finished batches this push produced,
    /// oldest first.
    ///
    /// Fabric cutter semantics (`blockcutter.Ordered`): if appending the
    /// transaction would push the pending batch past `max_block_bytes`, the
    /// pending batch is cut *first* and the transaction starts a fresh one —
    /// no emitted batch ever exceeds the byte cap unless it is a single
    /// oversized transaction, which becomes its own block. Up to two batches
    /// can therefore come back from one push.
    ///
    /// `now` stamps the batch's first arrival for the timeout condition; it
    /// is injected (rather than read internally) so deterministic harnesses
    /// drive the same clock through `push` and [`poll_timeout`].
    ///
    /// [`poll_timeout`]: BatchCutter::poll_timeout
    pub fn push(&mut self, tx: Transaction, now: Instant) -> Vec<(Vec<Transaction>, CutReason)> {
        let mut cuts = Vec::new();
        let size = tx.byte_size();
        if !self.buf.is_empty() && self.bytes + size > self.cfg.max_block_bytes {
            cuts.push((self.take(), CutReason::Bytes));
        }

        if self.first_arrival.is_none() {
            self.first_arrival = Some(now);
        }
        self.bytes += size;
        if self.cfg.max_unique_keys.is_some() {
            for k in tx.rwset.reads.keys().chain(tx.rwset.writes.keys()) {
                self.unique_keys.insert(k.clone());
            }
        }
        self.buf.push(tx);

        if self.buf.len() >= self.cfg.max_tx_count {
            cuts.push((self.take(), CutReason::TxCount));
        } else if self.bytes >= self.cfg.max_block_bytes {
            // Only reachable when the batch is a single oversized tx: any
            // merely-full batch was pre-cut above before it could overflow.
            cuts.push((self.take(), CutReason::Bytes));
        } else if let Some(limit) = self.cfg.max_unique_keys {
            if self.unique_keys.len() >= limit {
                cuts.push((self.take(), CutReason::UniqueKeys));
            }
        }
        cuts
    }

    /// Checks condition (c): cut if the batch is non-empty and older than
    /// the configured wait.
    pub fn poll_timeout(&mut self, now: Instant) -> Option<(Vec<Transaction>, CutReason)> {
        match self.first_arrival {
            Some(t0) if now.duration_since(t0) >= self.cfg.max_batch_wait && !self.buf.is_empty() => {
                Some((self.take(), CutReason::Timeout))
            }
            _ => None,
        }
    }

    /// Time remaining until the pending batch times out (`None` if empty).
    pub fn time_to_timeout(&self, now: Instant) -> Option<Duration> {
        self.first_arrival.map(|t0| {
            let deadline = t0 + self.cfg.max_batch_wait;
            deadline.saturating_duration_since(now)
        })
    }

    /// Flushes whatever is buffered (shutdown path).
    pub fn flush(&mut self) -> Option<(Vec<Transaction>, CutReason)> {
        if self.buf.is_empty() {
            None
        } else {
            Some((self.take(), CutReason::Flush))
        }
    }

    /// Number of buffered transactions.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    fn take(&mut self) -> Vec<Transaction> {
        self.bytes = 0;
        self.unique_keys.clear();
        self.first_arrival = None;
        std::mem::take(&mut self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_common::rwset::rwset_from_keys;
    use fabric_common::{ChannelId, ClientId, TxId, Value, Version};

    fn tx(nkeys: usize, start: u64) -> Transaction {
        let reads: Vec<Key> = (0..nkeys).map(|i| Key::composite("k", start + i as u64)).collect();
        Transaction {
            id: TxId::next(),
            channel: ChannelId(0),
            client: ClientId(0),
            chaincode: "cc".into(),
            rwset: rwset_from_keys(&reads, Version::GENESIS, &[], &Value::from_i64(0)),
            endorsements: vec![],
            created_at: Instant::now(),
        }
    }

    fn cfg() -> BlockCuttingConfig {
        BlockCuttingConfig {
            max_tx_count: 4,
            max_block_bytes: 1 << 20,
            max_batch_wait: Duration::from_millis(50),
            max_unique_keys: Some(100),
        }
    }

    /// Pushes and asserts at most one batch came out, mirroring the old
    /// single-cut API for the tests where byte pre-cuts cannot happen.
    fn push_one(c: &mut BatchCutter, t: Transaction) -> Option<(Vec<Transaction>, CutReason)> {
        let mut cuts = c.push(t, Instant::now());
        assert!(cuts.len() <= 1, "expected at most one cut");
        cuts.pop()
    }

    #[test]
    fn cuts_on_tx_count() {
        let mut c = BatchCutter::new(cfg());
        assert!(push_one(&mut c, tx(1, 0)).is_none());
        assert!(push_one(&mut c, tx(1, 1)).is_none());
        assert!(push_one(&mut c, tx(1, 2)).is_none());
        let (batch, reason) = push_one(&mut c, tx(1, 3)).expect("fourth tx cuts");
        assert_eq!(batch.len(), 4);
        assert_eq!(reason, CutReason::TxCount);
        assert!(c.is_empty());
    }

    #[test]
    fn cuts_on_bytes() {
        let mut config = cfg();
        config.max_block_bytes = 200;
        let mut c = BatchCutter::new(config);
        let mut cut = None;
        for i in 0..10 {
            if let Some(r) = push_one(&mut c, tx(3, i * 10)) {
                cut = Some(r);
                break;
            }
        }
        let (batch, reason) = cut.expect("bytes threshold must trip before count");
        assert_eq!(reason, CutReason::Bytes);
        let total: usize = batch.iter().map(|t| t.byte_size()).sum();
        assert!(total <= 200, "emitted batch exceeds the byte cap: {total}");
    }

    #[test]
    fn byte_cap_never_exceeded() {
        // Regression: the old cutter appended before checking the cap, so a
        // cut batch could overshoot by up to one tx. Every emitted batch must
        // now respect the cap (unless it is a single oversized tx).
        let mut config = cfg();
        config.max_tx_count = 1000;
        config.max_unique_keys = None;
        config.max_block_bytes = 300;
        let mut c = BatchCutter::new(config);
        let mut emitted = 0;
        for i in 0..50 {
            // Varying sizes so batches fill unevenly against the cap.
            for (batch, _) in c.push(tx(1 + (i as usize % 5), i * 10), Instant::now()) {
                emitted += 1;
                let total: usize = batch.iter().map(|t| t.byte_size()).sum();
                assert!(
                    total <= 300 || batch.len() == 1,
                    "batch of {} txs totals {total} bytes > cap 300",
                    batch.len()
                );
            }
        }
        assert!(emitted > 0, "workload must actually trip the byte condition");
    }

    #[test]
    fn oversized_single_tx_becomes_own_block() {
        let mut config = cfg();
        config.max_block_bytes = 100; // smaller than any test tx
        let mut c = BatchCutter::new(config);
        let big = tx(5, 0);
        assert!(big.byte_size() > 100);
        let cuts = c.push(big, Instant::now());
        assert_eq!(cuts.len(), 1);
        let (batch, reason) = &cuts[0];
        assert_eq!(batch.len(), 1);
        assert_eq!(*reason, CutReason::Bytes);
        assert!(c.is_empty());
    }

    #[test]
    fn overflowing_tx_cuts_pending_batch_first() {
        let mut config = cfg();
        config.max_tx_count = 1000;
        config.max_unique_keys = None;
        let small = tx(1, 0);
        config.max_block_bytes = small.byte_size() * 2 + 1; // fits two small txs
        let mut c = BatchCutter::new(config);
        assert!(c.push(small, Instant::now()).is_empty());
        assert!(c.push(tx(1, 1), Instant::now()).is_empty());
        // Third tx would overflow → pending pair is cut, tx starts new batch.
        let cuts = c.push(tx(1, 2), Instant::now());
        assert_eq!(cuts.len(), 1);
        assert_eq!(cuts[0].0.len(), 2);
        assert_eq!(cuts[0].1, CutReason::Bytes);
        assert_eq!(c.len(), 1, "incoming tx seeds the next batch");
    }

    #[test]
    fn oversized_tx_flushes_pending_then_forms_own_block() {
        let mut config = cfg();
        config.max_tx_count = 1000;
        config.max_unique_keys = None;
        let small = tx(1, 0);
        let big = tx(50, 100);
        config.max_block_bytes = small.byte_size() + 10; // big tx alone overflows
        assert!(big.byte_size() > config.max_block_bytes);
        let mut c = BatchCutter::new(config);
        assert!(c.push(small, Instant::now()).is_empty());
        let cuts = c.push(big, Instant::now());
        assert_eq!(cuts.len(), 2, "pending batch cut, then oversized tx own block");
        assert_eq!(cuts[0].0.len(), 1);
        assert_eq!(cuts[1].0.len(), 1);
        assert_eq!(cuts[1].1, CutReason::Bytes);
        assert!(c.is_empty());
    }

    #[test]
    fn cuts_on_unique_keys() {
        let mut config = cfg();
        config.max_tx_count = 1000;
        config.max_unique_keys = Some(10);
        let mut c = BatchCutter::new(config);
        assert!(push_one(&mut c, tx(4, 0)).is_none()); // keys 0..4 → 4 unique
        assert!(push_one(&mut c, tx(4, 2)).is_none()); // keys 2..6 → 6 unique
        let (batch, reason) = push_one(&mut c, tx(4, 6)).expect("keys 6..10 → 10 unique");
        assert_eq!(reason, CutReason::UniqueKeys);
        assert_eq!(batch.len(), 3);
    }

    #[test]
    fn unique_keys_disabled_in_vanilla() {
        let mut config = cfg();
        config.max_tx_count = 1000;
        config.max_unique_keys = None;
        let mut c = BatchCutter::new(config);
        for i in 0..200 {
            assert!(push_one(&mut c, tx(4, i * 4)).is_none(), "no cut without the condition");
        }
        assert_eq!(c.len(), 200);
    }

    #[test]
    fn timeout_cut() {
        let mut c = BatchCutter::new(cfg());
        push_one(&mut c, tx(1, 0));
        let now = Instant::now();
        assert!(c.poll_timeout(now).is_none(), "not yet");
        let later = now + Duration::from_millis(60);
        let (batch, reason) = c.poll_timeout(later).expect("timeout passed");
        assert_eq!(reason, CutReason::Timeout);
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn push_uses_injected_clock_for_timeout() {
        // Regression: `push` used to stamp `first_arrival` with an internal
        // `Instant::now()` while `poll_timeout` took an injected now — split
        // clocks made timeout cuts non-replayable. Driving both through the
        // same synthetic clock must now behave exactly.
        let mut c = BatchCutter::new(cfg());
        let t0 = Instant::now();
        assert!(c.push(tx(1, 0), t0).is_empty());
        assert!(c.poll_timeout(t0 + Duration::from_millis(49)).is_none());
        assert_eq!(c.time_to_timeout(t0).unwrap(), Duration::from_millis(50));
        let (batch, reason) =
            c.poll_timeout(t0 + Duration::from_millis(50)).expect("deadline reached exactly");
        assert_eq!(reason, CutReason::Timeout);
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn timeout_on_empty_buffer_never_fires() {
        let mut c = BatchCutter::new(cfg());
        assert!(c.poll_timeout(Instant::now() + Duration::from_secs(10)).is_none());
        assert!(c.time_to_timeout(Instant::now()).is_none());
    }

    #[test]
    fn time_to_timeout_counts_down() {
        let mut c = BatchCutter::new(cfg());
        push_one(&mut c, tx(1, 0));
        let after = Instant::now();
        let remaining = c.time_to_timeout(after).unwrap();
        assert!(remaining <= Duration::from_millis(50));
        let expired = c.time_to_timeout(after + Duration::from_secs(1)).unwrap();
        assert_eq!(expired, Duration::ZERO);
    }

    #[test]
    fn flush_returns_remainder() {
        let mut c = BatchCutter::new(cfg());
        assert!(c.flush().is_none());
        push_one(&mut c, tx(1, 0));
        push_one(&mut c, tx(1, 1));
        let (batch, reason) = c.flush().unwrap();
        assert_eq!(reason, CutReason::Flush);
        assert_eq!(batch.len(), 2);
        assert!(c.flush().is_none());
    }

    #[test]
    fn state_resets_between_batches() {
        let mut c = BatchCutter::new(cfg());
        for i in 0..4 {
            push_one(&mut c, tx(1, i));
        }
        // New batch: thresholds start fresh.
        assert!(push_one(&mut c, tx(1, 100)).is_none());
        assert_eq!(c.len(), 1);
    }
}
