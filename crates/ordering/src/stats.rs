//! Ordering-service telemetry: block cut reasons, fill levels, reordering
//! cost. Useful for explaining throughput results (e.g. Figure 7: small
//! blocksizes cut on count; large ones cut on the batch timeout).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use fabric_reorder::ReorderStats;

use crate::cutter::CutReason;

/// Shared, thread-safe orderer counters (cheap to clone).
#[derive(Clone, Debug, Default)]
pub struct OrdererStats {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    cut_tx_count: AtomicU64,
    cut_bytes: AtomicU64,
    cut_timeout: AtomicU64,
    cut_unique_keys: AtomicU64,
    cut_flush: AtomicU64,
    txs_ordered: AtomicU64,
    blocks: AtomicU64,
    reorder_nanos: AtomicU64,
    fallbacks: AtomicU64,
    nontrivial_sccs: AtomicU64,
    empty_suppressed: AtomicU64,
}

impl OrdererStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one cut batch.
    pub fn record_cut(&self, reason: CutReason, batch_len: usize) {
        let ctr = match reason {
            CutReason::TxCount => &self.inner.cut_tx_count,
            CutReason::Bytes => &self.inner.cut_bytes,
            CutReason::Timeout => &self.inner.cut_timeout,
            CutReason::UniqueKeys => &self.inner.cut_unique_keys,
            CutReason::Flush => &self.inner.cut_flush,
        };
        ctr.fetch_add(1, Ordering::Relaxed);
        self.inner.blocks.fetch_add(1, Ordering::Relaxed);
        self.inner.txs_ordered.fetch_add(batch_len as u64, Ordering::Relaxed);
    }

    /// Records a cut batch whose survivors all early-aborted, so no block
    /// was formed (the orderer suppresses empty blocks).
    pub fn record_empty_suppressed(&self) {
        self.inner.empty_suppressed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one reordering pass: wall-clock spent in Algorithm 1 plus
    /// the pass's diagnostics (fallback engagement, conflict-cycle
    /// structure).
    pub fn record_reorder(&self, took: Duration, stats: &ReorderStats) {
        self.inner
            .reorder_nanos
            .fetch_add(took.as_nanos().min(u128::from(u64::MAX)) as u64, Ordering::Relaxed);
        if stats.fallback_used {
            self.inner.fallbacks.fetch_add(1, Ordering::Relaxed);
        }
        self.inner.nontrivial_sccs.fetch_add(stats.nontrivial_sccs as u64, Ordering::Relaxed);
    }

    /// Folds `other`'s counters into `self` (element-wise add), mirroring
    /// `PhaseTimers::merge`. Replicated-ordering runs keep one live
    /// `OrdererStats` per leader and merge them into a single aggregate so
    /// `empty_suppressed`/`fallbacks`/`nontrivial_sccs` report totals across
    /// leader changes. `other` is read with a snapshot, so merging a stats
    /// handle into itself would double it — callers merge distinct replicas.
    pub fn merge(&self, other: &OrdererStats) {
        let o = other.snapshot();
        self.inner.cut_tx_count.fetch_add(o.cut_tx_count, Ordering::Relaxed);
        self.inner.cut_bytes.fetch_add(o.cut_bytes, Ordering::Relaxed);
        self.inner.cut_timeout.fetch_add(o.cut_timeout, Ordering::Relaxed);
        self.inner.cut_unique_keys.fetch_add(o.cut_unique_keys, Ordering::Relaxed);
        self.inner.cut_flush.fetch_add(o.cut_flush, Ordering::Relaxed);
        self.inner.txs_ordered.fetch_add(o.txs_ordered, Ordering::Relaxed);
        self.inner.blocks.fetch_add(o.blocks, Ordering::Relaxed);
        self.inner
            .reorder_nanos
            .fetch_add(o.reorder_time.as_nanos().min(u128::from(u64::MAX)) as u64, Ordering::Relaxed);
        self.inner.fallbacks.fetch_add(o.fallbacks, Ordering::Relaxed);
        self.inner.nontrivial_sccs.fetch_add(o.nontrivial_sccs, Ordering::Relaxed);
        self.inner.empty_suppressed.fetch_add(o.empty_suppressed, Ordering::Relaxed);
    }

    /// Point-in-time snapshot.
    pub fn snapshot(&self) -> OrdererStatsSnapshot {
        OrdererStatsSnapshot {
            cut_tx_count: self.inner.cut_tx_count.load(Ordering::Relaxed),
            cut_bytes: self.inner.cut_bytes.load(Ordering::Relaxed),
            cut_timeout: self.inner.cut_timeout.load(Ordering::Relaxed),
            cut_unique_keys: self.inner.cut_unique_keys.load(Ordering::Relaxed),
            cut_flush: self.inner.cut_flush.load(Ordering::Relaxed),
            txs_ordered: self.inner.txs_ordered.load(Ordering::Relaxed),
            blocks: self.inner.blocks.load(Ordering::Relaxed),
            reorder_time: Duration::from_nanos(self.inner.reorder_nanos.load(Ordering::Relaxed)),
            fallbacks: self.inner.fallbacks.load(Ordering::Relaxed),
            nontrivial_sccs: self.inner.nontrivial_sccs.load(Ordering::Relaxed),
            empty_suppressed: self.inner.empty_suppressed.load(Ordering::Relaxed),
        }
    }
}

/// Immutable view of [`OrdererStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OrdererStatsSnapshot {
    /// Blocks cut by condition (a): transaction count.
    pub cut_tx_count: u64,
    /// Blocks cut by condition (b): byte size.
    pub cut_bytes: u64,
    /// Blocks cut by condition (c): batch timeout.
    pub cut_timeout: u64,
    /// Blocks cut by Fabric++'s condition (d): unique keys.
    pub cut_unique_keys: u64,
    /// Blocks flushed at shutdown.
    pub cut_flush: u64,
    /// Transactions that entered blocks (before order-phase aborts).
    pub txs_ordered: u64,
    /// Total blocks formed.
    pub blocks: u64,
    /// Cumulative time spent in the reordering mechanism.
    pub reorder_time: Duration,
    /// Reordering passes that hit the enumeration bound.
    pub fallbacks: u64,
    /// Total non-trivial strongly connected components (conflict cycles)
    /// seen across all reordering passes.
    pub nontrivial_sccs: u64,
    /// Cut batches fully emptied by early abort (no block emitted).
    pub empty_suppressed: u64,
}

impl OrdererStatsSnapshot {
    /// Average transactions per block (0 when no blocks were cut).
    pub fn avg_block_fill(&self) -> f64 {
        if self.blocks == 0 {
            0.0
        } else {
            self.txs_ordered as f64 / self.blocks as f64
        }
    }

    /// Element-wise sum (aggregating multiple channels).
    pub fn merge(&self, other: &OrdererStatsSnapshot) -> OrdererStatsSnapshot {
        OrdererStatsSnapshot {
            cut_tx_count: self.cut_tx_count + other.cut_tx_count,
            cut_bytes: self.cut_bytes + other.cut_bytes,
            cut_timeout: self.cut_timeout + other.cut_timeout,
            cut_unique_keys: self.cut_unique_keys + other.cut_unique_keys,
            cut_flush: self.cut_flush + other.cut_flush,
            txs_ordered: self.txs_ordered + other.txs_ordered,
            blocks: self.blocks + other.blocks,
            reorder_time: self.reorder_time + other.reorder_time,
            fallbacks: self.fallbacks + other.fallbacks,
            nontrivial_sccs: self.nontrivial_sccs + other.nontrivial_sccs,
            empty_suppressed: self.empty_suppressed + other.empty_suppressed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_cut_reasons_and_fill() {
        let s = OrdererStats::new();
        s.record_cut(CutReason::TxCount, 100);
        s.record_cut(CutReason::Timeout, 20);
        s.record_cut(CutReason::UniqueKeys, 60);
        let snap = s.snapshot();
        assert_eq!(snap.cut_tx_count, 1);
        assert_eq!(snap.cut_timeout, 1);
        assert_eq!(snap.cut_unique_keys, 1);
        assert_eq!(snap.blocks, 3);
        assert_eq!(snap.txs_ordered, 180);
        assert!((snap.avg_block_fill() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn records_reorder_time_fallbacks_and_sccs() {
        let s = OrdererStats::new();
        let clean = ReorderStats { edges: 3, nontrivial_sccs: 2, cycles: 2, fallback_used: false };
        let fell_back =
            ReorderStats { edges: 90, nontrivial_sccs: 5, cycles: 0, fallback_used: true };
        s.record_reorder(Duration::from_millis(5), &clean);
        s.record_reorder(Duration::from_millis(7), &fell_back);
        let snap = s.snapshot();
        assert_eq!(snap.reorder_time, Duration::from_millis(12));
        assert_eq!(snap.fallbacks, 1);
        assert_eq!(snap.nontrivial_sccs, 7);
    }

    #[test]
    fn merge_sums_everything() {
        let a = OrdererStats::new();
        a.record_cut(CutReason::Flush, 5);
        let b = OrdererStats::new();
        b.record_cut(CutReason::Bytes, 7);
        let st = ReorderStats { edges: 1, nontrivial_sccs: 4, cycles: 0, fallback_used: true };
        b.record_reorder(Duration::from_millis(1), &st);
        let m = a.snapshot().merge(&b.snapshot());
        assert_eq!(m.blocks, 2);
        assert_eq!(m.txs_ordered, 12);
        assert_eq!(m.cut_flush, 1);
        assert_eq!(m.cut_bytes, 1);
        assert_eq!(m.fallbacks, 1);
        assert_eq!(m.nontrivial_sccs, 4);
    }

    #[test]
    fn empty_suppressions_counted_and_merged() {
        let a = OrdererStats::new();
        a.record_empty_suppressed();
        a.record_empty_suppressed();
        let snap = a.snapshot();
        assert_eq!(snap.empty_suppressed, 2);
        assert_eq!(snap.blocks, 0, "suppressed cuts form no block");
        let b = OrdererStats::new();
        b.record_empty_suppressed();
        assert_eq!(snap.merge(&b.snapshot()).empty_suppressed, 3);
    }

    #[test]
    fn live_merge_folds_per_leader_counters() {
        // Two leaders' stats handles fold into one aggregate, the shape a
        // replicated run uses after leader changes split the counters.
        let agg = OrdererStats::new();
        let leader_a = OrdererStats::new();
        leader_a.record_cut(CutReason::TxCount, 10);
        leader_a.record_empty_suppressed();
        let st = ReorderStats { edges: 2, nontrivial_sccs: 3, cycles: 1, fallback_used: true };
        leader_a.record_reorder(Duration::from_millis(4), &st);
        let leader_b = OrdererStats::new();
        leader_b.record_cut(CutReason::Timeout, 6);
        leader_b.record_empty_suppressed();
        agg.merge(&leader_a);
        agg.merge(&leader_b);
        let snap = agg.snapshot();
        assert_eq!(snap.blocks, 2);
        assert_eq!(snap.txs_ordered, 16);
        assert_eq!(snap.cut_tx_count, 1);
        assert_eq!(snap.cut_timeout, 1);
        assert_eq!(snap.empty_suppressed, 2);
        assert_eq!(snap.fallbacks, 1);
        assert_eq!(snap.nontrivial_sccs, 3);
        assert_eq!(snap.reorder_time, Duration::from_millis(4));
        // Equivalent to snapshot-level merging.
        assert_eq!(snap, leader_a.snapshot().merge(&leader_b.snapshot()));
    }

    #[test]
    fn empty_snapshot_fill_is_zero() {
        assert_eq!(OrdererStats::new().snapshot().avg_block_fill(), 0.0);
    }

    #[test]
    fn clones_share_state() {
        let a = OrdererStats::new();
        let b = a.clone();
        b.record_cut(CutReason::TxCount, 1);
        assert_eq!(a.snapshot().blocks, 1);
    }
}
