//! Ordering-phase early abort: within-block version mismatches
//! (paper §5.2.2).
//!
//! "As Fabric performs commits at the granularity of whole blocks, two
//! transactions within the same block, that read the same key, must read
//! the same version of that key." If `T6` read `k` at `v1` and `T7` read
//! `k` at `v2`, a commit from an earlier block changed `k` between the two
//! simulations — and per the paper's published correction it is the
//! transaction holding the **older** version whose read is stale and which
//! must be aborted. Only the transactions reading the *newest* observed
//! version of every key they read have a chance to commit, so all others
//! leave the pipeline at order time.

use fabric_common::{KeyTable, Transaction, TxId, Version};
use fabric_trace::{EventKind, TraceSink};

/// Reusable scratch for [`split_version_mismatches_with`]: the key-interning
/// table and the per-key newest-version column it indexes. All buffers keep
/// their capacity across batches, so a warm worker's early abort stays off
/// the allocator.
#[derive(Debug, Default)]
pub struct EarlyAbortScratch {
    table: KeyTable,
    /// Newest version observed per interned key id. `None` is itself a
    /// legal observation (absent read), so presence is tracked by id range:
    /// [`KeyTable::intern`] hands out dense first-seen ids, so a new id is
    /// always exactly `newest.len()`.
    newest: Vec<Option<Version>>,
    /// First in-batch transaction that read `newest[id]` — the conflicting
    /// witness named in the abort-provenance trace event.
    newest_tx: Vec<TxId>,
    doomed: Vec<bool>,
}

/// Splits `batch` into (survivors, early-aborted) by the within-block
/// version-mismatch rule. Order within each group is preserved.
///
/// Reads of absent keys (`version: None`) participate too: an absent read
/// mismatches any versioned read of the same key, and `None` is treated as
/// older than any version (a key that now exists was created after the
/// absent-read simulation).
pub fn split_version_mismatches(
    batch: Vec<Transaction>,
) -> (Vec<Transaction>, Vec<Transaction>) {
    split_version_mismatches_with(batch, &mut EarlyAbortScratch::default())
}

/// [`split_version_mismatches`] on a reusable `scratch` (the reorder
/// workers' hot path). Keys are interned to dense ids once; the
/// newest-version table is a flat column over those ids instead of a
/// per-batch hash map. Identical output to the one-shot form for every
/// batch: interning preserves `Key` equality, so "same key" resolves to
/// "same id".
pub fn split_version_mismatches_with(
    batch: Vec<Transaction>,
    scratch: &mut EarlyAbortScratch,
) -> (Vec<Transaction>, Vec<Transaction>) {
    split_version_mismatches_traced(batch, scratch, &TraceSink::disabled())
}

/// [`split_version_mismatches_with`] with abort provenance: every doomed
/// transaction emits one [`EventKind::TxEarlyAbortVersion`] naming the
/// first offending key, the stale version it read, the newest version the
/// batch observed, and the in-batch transaction witnessing that newest
/// version. A disabled `sink` makes this exactly
/// [`split_version_mismatches_with`] — same decisions, no emission work.
pub fn split_version_mismatches_traced(
    batch: Vec<Transaction>,
    scratch: &mut EarlyAbortScratch,
    sink: &TraceSink,
) -> (Vec<Transaction>, Vec<Transaction>) {
    let EarlyAbortScratch { table, newest, newest_tx, doomed } = scratch;
    table.clear();
    newest.clear();
    newest_tx.clear();

    // Newest version observed per key across the whole batch.
    for tx in &batch {
        for e in tx.rwset.reads.entries() {
            let id = table.intern(&e.key) as usize;
            if id == newest.len() {
                newest.push(e.version);
                newest_tx.push(tx.id);
            } else if newer(e.version, newest[id]) {
                newest[id] = e.version;
                newest_tx[id] = tx.id;
            }
        }
    }
    doomed.clear();
    doomed.extend(batch.iter().map(|tx| {
        let bad = tx.rwset.reads.entries().iter().find(|e| {
            let id = table.get(&e.key).expect("key interned in first pass") as usize;
            newest[id] != e.version
        });
        if let Some(e) = bad {
            if sink.is_enabled() {
                let id = table.get(&e.key).expect("key interned in first pass") as usize;
                sink.emit(EventKind::TxEarlyAbortVersion {
                    tx: tx.id,
                    key: e.key.clone(),
                    expected: newest[id]
                        .expect("a version strictly newer than a mismatch is never absent"),
                    observed: e.version,
                    conflicting: newest_tx[id],
                });
            }
        }
        bad.is_some()
    }));

    let mut survivors = Vec::with_capacity(batch.len());
    let mut aborted = Vec::new();
    for (tx, dead) in batch.into_iter().zip(doomed.iter().copied()) {
        if dead {
            aborted.push(tx);
        } else {
            survivors.push(tx);
        }
    }
    (survivors, aborted)
}

/// Whether `a` is strictly newer than `b`, with "absent" older than any
/// version.
fn newer(a: Option<Version>, b: Option<Version>) -> bool {
    match (a, b) {
        (Some(va), Some(vb)) => va > vb,
        (Some(_), None) => true,
        (None, _) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_common::rwset::RwSetBuilder;
    use fabric_common::{ChannelId, ClientId, Key, TxId, Value};
    use std::time::Instant;

    fn tx_reading(reads: &[(&str, Option<Version>)]) -> Transaction {
        let mut b = RwSetBuilder::new();
        for (k, v) in reads {
            b.record_read(Key::from(*k), *v);
        }
        b.record_write(Key::from("out"), Some(Value::from_i64(1)));
        Transaction {
            id: TxId::next(),
            channel: ChannelId(0),
            client: ClientId(0),
            chaincode: "cc".into(),
            rwset: b.build(),
            endorsements: vec![],
            created_at: Instant::now(),
        }
    }

    fn v(block: u64) -> Option<Version> {
        Some(Version::new(block, 0))
    }

    #[test]
    fn paper_example_older_reader_aborted() {
        // T6 read k at v1 (older), T7 read k at v2 (newer): per the
        // correction, T6 is the invalid one.
        let t6 = tx_reading(&[("k", v(1))]);
        let t7 = tx_reading(&[("k", v(2))]);
        let t6_id = t6.id;
        let t7_id = t7.id;
        let (survivors, aborted) = split_version_mismatches(vec![t6, t7]);
        assert_eq!(survivors.len(), 1);
        assert_eq!(survivors[0].id, t7_id);
        assert_eq!(aborted.len(), 1);
        assert_eq!(aborted[0].id, t6_id);
    }

    #[test]
    fn traced_split_names_key_versions_and_witness() {
        // The recorded abort must say exactly why T6 died: key k, stale
        // read v1, newest in batch v2, witnessed by T7.
        let t6 = tx_reading(&[("k", v(1))]);
        let t7 = tx_reading(&[("k", v(2))]);
        let t6_id = t6.id;
        let t7_id = t7.id;
        let sink = TraceSink::bounded(16);
        let (survivors, aborted) = split_version_mismatches_traced(
            vec![t6, t7],
            &mut EarlyAbortScratch::default(),
            &sink,
        );
        assert_eq!(survivors.len(), 1);
        assert_eq!(aborted.len(), 1);
        let events = sink.drain();
        assert_eq!(events.len(), 1);
        match &events[0].kind {
            EventKind::TxEarlyAbortVersion { tx, key, expected, observed, conflicting } => {
                assert_eq!(*tx, t6_id);
                assert_eq!(key.to_string(), "k");
                assert_eq!(*expected, Version::new(2, 0));
                assert_eq!(*observed, Some(Version::new(1, 0)));
                assert_eq!(*conflicting, t7_id);
            }
            other => panic!("expected TxEarlyAbortVersion, got {other:?}"),
        }
    }

    #[test]
    fn traced_split_absent_read_reported_as_none() {
        let absent = tx_reading(&[("k", None)]);
        let versioned = tx_reading(&[("k", v(4))]);
        let absent_id = absent.id;
        let versioned_id = versioned.id;
        let sink = TraceSink::bounded(16);
        let (_, aborted) = split_version_mismatches_traced(
            vec![absent, versioned],
            &mut EarlyAbortScratch::default(),
            &sink,
        );
        assert_eq!(aborted.len(), 1);
        let events = sink.drain();
        match &events[0].kind {
            EventKind::TxEarlyAbortVersion { tx, expected, observed, conflicting, .. } => {
                assert_eq!(*tx, absent_id);
                assert_eq!(*expected, Version::new(4, 0));
                assert_eq!(*observed, None);
                assert_eq!(*conflicting, versioned_id);
            }
            other => panic!("expected TxEarlyAbortVersion, got {other:?}"),
        }
    }

    #[test]
    fn matching_versions_all_survive() {
        let a = tx_reading(&[("k", v(3)), ("m", v(1))]);
        let b = tx_reading(&[("k", v(3))]);
        let c = tx_reading(&[("m", v(1))]);
        let (survivors, aborted) = split_version_mismatches(vec![a, b, c]);
        assert_eq!(survivors.len(), 3);
        assert!(aborted.is_empty());
    }

    #[test]
    fn order_preserved_in_both_groups() {
        let txs = vec![
            tx_reading(&[("k", v(2))]), // survives
            tx_reading(&[("k", v(1))]), // aborted
            tx_reading(&[("q", v(5))]), // survives
            tx_reading(&[("k", v(1))]), // aborted
            tx_reading(&[("k", v(2))]), // survives
        ];
        let ids: Vec<TxId> = txs.iter().map(|t| t.id).collect();
        let (survivors, aborted) = split_version_mismatches(txs);
        assert_eq!(
            survivors.iter().map(|t| t.id).collect::<Vec<_>>(),
            vec![ids[0], ids[2], ids[4]]
        );
        assert_eq!(aborted.iter().map(|t| t.id).collect::<Vec<_>>(), vec![ids[1], ids[3]]);
    }

    #[test]
    fn absent_read_is_older_than_any_version() {
        let absent = tx_reading(&[("k", None)]);
        let versioned = tx_reading(&[("k", v(1))]);
        let versioned_id = versioned.id;
        let (survivors, aborted) = split_version_mismatches(vec![absent, versioned]);
        assert_eq!(survivors.len(), 1);
        assert_eq!(survivors[0].id, versioned_id);
        assert_eq!(aborted.len(), 1);
    }

    #[test]
    fn two_absent_reads_agree() {
        let a = tx_reading(&[("ghost", None)]);
        let b = tx_reading(&[("ghost", None)]);
        let (survivors, aborted) = split_version_mismatches(vec![a, b]);
        assert_eq!(survivors.len(), 2);
        assert!(aborted.is_empty());
    }

    #[test]
    fn mismatch_on_any_key_dooms_the_tx() {
        let a = tx_reading(&[("k", v(2)), ("m", v(1))]);
        let b = tx_reading(&[("k", v(2)), ("m", v(2))]); // newer m
        let b_id = b.id;
        let (survivors, aborted) = split_version_mismatches(vec![a, b]);
        assert_eq!(survivors.len(), 1);
        assert_eq!(survivors[0].id, b_id);
        assert_eq!(aborted.len(), 1);
    }

    #[test]
    fn tx_version_ordering_within_block_counts() {
        // Same block, different tx positions: (5, 1) is newer than (5, 0).
        let old = tx_reading(&[("k", Some(Version::new(5, 0)))]);
        let new = tx_reading(&[("k", Some(Version::new(5, 1)))]);
        let new_id = new.id;
        let (survivors, aborted) = split_version_mismatches(vec![old, new]);
        assert_eq!(survivors[0].id, new_id);
        assert_eq!(aborted.len(), 1);
    }

    #[test]
    fn empty_batch() {
        let (s, a) = split_version_mismatches(vec![]);
        assert!(s.is_empty() && a.is_empty());
    }

    #[test]
    fn interned_split_matches_hashmap_oracle_on_random_batches() {
        // Differential against the obvious HashMap formulation the interned
        // implementation replaced, over randomized batches with repeated
        // keys and mixed absent/present versions.
        use std::collections::HashMap;
        let mut scratch = EarlyAbortScratch::default();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let n = (rng() % 24) as usize;
            let batch: Vec<Transaction> = (0..n)
                .map(|_| {
                    let reads: Vec<(String, Option<Version>)> = (0..(rng() % 4))
                        .map(|_| {
                            let key = format!("k{}", rng() % 6);
                            let ver = match rng() % 4 {
                                0 => None,
                                v => Some(Version::new(v, (rng() % 3) as u32)),
                            };
                            (key, ver)
                        })
                        .collect();
                    let refs: Vec<(&str, Option<Version>)> =
                        reads.iter().map(|(k, v)| (k.as_str(), *v)).collect();
                    tx_reading(&refs)
                })
                .collect();

            let mut newest: HashMap<&Key, Option<Version>> = HashMap::new();
            for tx in &batch {
                for e in tx.rwset.reads.entries() {
                    newest
                        .entry(&e.key)
                        .and_modify(|cur| {
                            if newer(e.version, *cur) {
                                *cur = e.version;
                            }
                        })
                        .or_insert(e.version);
                }
            }
            let expect_doomed: Vec<bool> = batch
                .iter()
                .map(|tx| tx.rwset.reads.entries().iter().any(|e| newest[&e.key] != e.version))
                .collect();
            let expect_aborted: Vec<TxId> = batch
                .iter()
                .zip(&expect_doomed)
                .filter(|(_, &d)| d)
                .map(|(t, _)| t.id)
                .collect();

            let (_, aborted) = split_version_mismatches_with(batch, &mut scratch);
            assert_eq!(aborted.iter().map(|t| t.id).collect::<Vec<_>>(), expect_aborted);
        }
    }

    #[test]
    fn warm_scratch_matches_one_shot_across_varied_batches() {
        // One warm scratch replaying batches of different shapes and key
        // sets must decide exactly like a fresh run each time — stale
        // interned ids or leftover newest entries would show up here.
        let mut scratch = EarlyAbortScratch::default();
        let make = |shapes: &[&[(&str, Option<Version>)]]| -> Vec<Transaction> {
            shapes.iter().map(|reads| tx_reading(reads)).collect()
        };
        let batches: Vec<Vec<Transaction>> = vec![
            make(&[&[("k", v(1))], &[("k", v(2))], &[("q", v(5))]]),
            make(&[&[("k", v(7))], &[("z", None)], &[("z", v(1))]]),
            make(&[&[("fresh", v(3)), ("other", v(3))]]),
            vec![],
            make(&[&[("k", v(2))], &[("k", v(2))]]),
        ];
        for batch in batches {
            let cloned: Vec<Transaction> = batch.clone();
            let (s1, a1) = split_version_mismatches(batch);
            let (s2, a2) = split_version_mismatches_with(cloned, &mut scratch);
            assert_eq!(
                s1.iter().map(|t| t.id).collect::<Vec<_>>(),
                s2.iter().map(|t| t.id).collect::<Vec<_>>()
            );
            assert_eq!(
                a1.iter().map(|t| t.id).collect::<Vec<_>>(),
                a2.iter().map(|t| t.id).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn write_only_transactions_never_aborted_here() {
        let mut b = RwSetBuilder::new();
        b.record_write(Key::from("w"), Some(Value::from_i64(9)));
        let tx = Transaction {
            id: TxId::next(),
            channel: ChannelId(0),
            client: ClientId(0),
            chaincode: "cc".into(),
            rwset: b.build(),
            endorsements: vec![],
            created_at: Instant::now(),
        };
        let reader = tx_reading(&[("k", v(1))]);
        let (survivors, aborted) = split_version_mismatches(vec![tx, reader]);
        assert_eq!(survivors.len(), 2);
        assert!(aborted.is_empty());
    }
}
