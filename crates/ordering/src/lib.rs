//! # fabric-ordering
//!
//! The ordering service: the trusted component that receives endorsed
//! transactions from clients, groups them into blocks, and distributes the
//! blocks to all peers (paper §2.2.2).
//!
//! * [`cutter`] — batch cutting. Vanilla Fabric cuts on (a) transaction
//!   count, (b) byte size, (c) elapsed time; Fabric++ adds (d) unique keys
//!   accessed, bounding the reordering cost (paper §5.1.2).
//! * [`early_abort`] — the Fabric++ ordering-phase early abort: two
//!   transactions in one block that read the same key at *different*
//!   versions cannot both commit; the one holding the older version is
//!   dropped before the block ships (paper §5.2.2 with the published
//!   correction).
//! * [`orderer`] — the [`orderer::OrderingService`]: applies the configured
//!   policy (arrival order vs. Algorithm-1 reordering), performs the
//!   order-phase early aborts, and emits hash-chained [`fabric_ledger::Block`]s.
//!   Split into a stateless per-batch stage ([`orderer::BatchPrep`]) and a
//!   sequential sealing step so the reordering can leave the critical path.
//! * [`pipeline`] — the two-stage ordering pipeline: a
//!   [`pipeline::ReorderPipeline`] worker pool runs Algorithm 1 on batch
//!   *k* while the cutter keeps cutting batch *k+1*; plans re-serialize
//!   into cut order before sealing, so the block stream is byte-identical
//!   to the sequential path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cutter;
pub mod early_abort;
pub mod orderer;
pub mod pipeline;
pub mod stats;

pub use cutter::{BatchCutter, CutReason};
pub use early_abort::EarlyAbortScratch;
pub use orderer::{BatchPlan, BatchPrep, OrderedBlock, OrderingService, PrepScratch};
pub use pipeline::{PreparedBatch, ReorderPipeline};
pub use stats::{OrdererStats, OrdererStatsSnapshot};
