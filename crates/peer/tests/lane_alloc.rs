//! Asserts the lane scheduler's allocation contract: once warm (partition
//! tables, atomic cells, probe list, and the store's lane-apply scratch
//! all at capacity), a full block cycle — dependency partition, lane
//! validation, and lane-parallel commit via
//! [`StateStore::apply_write_batch_lanes`] — performs **zero heap
//! allocations** in release builds. The whole steady-state path runs on
//! reused scratch: key clones are refcount bumps, lane dispatch reuses
//! the persistent pool, and chain inserts stay within trimmed capacity.
//! Debug builds get a small bound for the standard library's debug
//! machinery.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use fabric_common::rwset::RwSetBuilder;
use fabric_common::{
    ChannelId, ClientId, Digest, Key, Transaction, TxId, Value, Version,
};
use fabric_ledger::Block;
use fabric_peer::LaneScheduler;
use fabric_statedb::{CommitWrite, MemStateDb, StateStore, WriteBatch, WriteRef};
use fabric_trace::TraceSink;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn key(i: u64) -> Key {
    Key::composite("K", i)
}

const TXS: usize = 128;

/// Block `number` of the steady workload. Every block has the same shape
/// so scratch capacities stop growing after the first few cycles:
/// - reads target keys `0..96`, which no transaction ever writes, pinned
///   at their genesis versions — always valid against the store;
/// - writes target keys `128..256`, two per transaction, so committed
///   chains keep turning over (and trimming) block after block;
/// - every `t % 8 == 5` transaction additionally reads a key written by
///   transaction `t - 1`, forcing a same-chain in-block conflict each
///   block (the fail-slot path stays hot);
/// - the caller fails endorsement for every `t % 16 == 3` transaction.
fn make_block(number: u64) -> Block {
    let transactions: Vec<Transaction> = (0..TXS)
        .map(|t| {
            let mut b = RwSetBuilder::new();
            for r in 0..4u64 {
                b.record_read(key((t as u64 * 7 + r * 31) % 96), Some(Version::GENESIS));
            }
            if t % 8 == 5 {
                // Written in-block by transaction t - 1: chained conflict.
                b.record_read(key(128 + ((t as u64 - 1) * 2) % 128), Some(Version::GENESIS));
            }
            for w in 0..2u64 {
                b.record_write(
                    key(128 + (t as u64 * 2 + w) % 128),
                    Some(Value::from_i64((number * 1000 + t as u64) as i64)),
                );
            }
            Transaction {
                id: TxId::next(),
                channel: ChannelId(0),
                client: ClientId(0),
                chaincode: "cc".into(),
                rwset: b.build(),
                endorsements: vec![],
                created_at: Instant::now(),
            }
        })
        .collect();
    Block::build(number, Digest::ZERO, transactions)
}

#[test]
fn steady_state_lane_block_cycle_does_not_allocate() {
    let store = MemStateDb::with_shards(8);
    let genesis: Vec<CommitWrite> =
        (0..256).map(|i| CommitWrite::put(key(i), Value::from_i64(0), 0)).collect();
    store.apply_block(0, &genesis).unwrap();

    let blocks: Vec<Block> = (1..=12).map(make_block).collect();
    let endorsement_ok: Vec<bool> = (0..TXS).map(|t| t % 16 != 3).collect();
    let sched = LaneScheduler::new(4);
    let sink = TraceSink::disabled();
    let mut codes = Vec::new();
    let mut batch = WriteBatch::new(0);

    let mut cycle = |i: usize| {
        let block = &blocks[i];
        sched
            .validate(block, &store, &endorsement_ok, None, &mut codes, &sink)
            .unwrap();
        batch.block = block.header.number;
        batch.writes.clear();
        for (p, tx) in block.txs.iter().enumerate() {
            if codes[p].is_valid() {
                for e in tx.rwset.writes.entries() {
                    batch.writes.push(WriteRef {
                        key: &e.key,
                        value: e.value.as_ref(),
                        tx: p as u32,
                    });
                }
            }
        }
        store.apply_write_batch_lanes(&batch, sched.pool()).unwrap();
        codes.iter().filter(|c| c.is_valid()).count()
    };

    // Warm-up: partition tables, atomic cells, probe list, codes vec, the
    // store's lane-apply scratch, and per-key chain capacity (retained
    // depth is reached after 4 committed versions) all go steady.
    let mut mix = 0;
    for i in 0..4 {
        mix = cycle(i);
    }
    assert!(mix > 0 && mix < TXS, "both outcomes exercised");

    let before = allocations();
    for i in 4..12 {
        assert_eq!(cycle(i), mix, "code mix is shape-stable across blocks");
    }
    let allocated = allocations() - before;

    assert_eq!(store.last_committed_block(), 12);
    if cfg!(debug_assertions) {
        assert!(allocated < 10_000, "{allocated} allocations in debug steady state");
    } else {
        assert_eq!(
            allocated, 0,
            "warm lane validation + lane commit must not allocate"
        );
    }
}
