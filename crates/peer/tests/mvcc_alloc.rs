//! Asserts the MVCC validation hot path's allocation contract: with a warm
//! [`MvccScratch`] (key interner, probe list, version table, write bitset
//! all at capacity), validating block after block over a steady working
//! set performs **zero heap allocations** in release builds — the entire
//! phase runs on the reused scratch plus the store's own prefetch
//! machinery. Debug builds get a small bound for the standard library's
//! debug machinery.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use fabric_common::rwset::RwSetBuilder;
use fabric_common::{
    ChannelId, ClientId, Digest, Key, Transaction, TxId, Value, Version,
};
use fabric_ledger::Block;
use fabric_peer::validator::{mvcc_validate_into, MvccScratch};
use fabric_statedb::{CommitWrite, MemStateDb, StateStore};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn key(i: u64) -> Key {
    Key::composite("K", i)
}

/// A block of `txs` transactions, each reading 4 and writing 2 keys from a
/// fixed 256-key working set (reads claim genesis versions, so against a
/// static store every transaction without an in-block conflict is valid).
fn make_block(txs: usize) -> Block {
    let transactions: Vec<Transaction> = (0..txs)
        .map(|t| {
            let mut b = RwSetBuilder::new();
            for r in 0..4u64 {
                b.record_read(key((t as u64 * 7 + r * 31) % 256), Some(Version::GENESIS));
            }
            for w in 0..2u64 {
                b.record_write(
                    key((t as u64 * 13 + w * 97) % 256),
                    Some(Value::from_i64(t as i64)),
                );
            }
            Transaction {
                id: TxId::next(),
                channel: ChannelId(0),
                client: ClientId(0),
                chaincode: "cc".into(),
                rwset: b.build(),
                endorsements: vec![],
                created_at: Instant::now(),
            }
        })
        .collect();
    Block::build(1, Digest::ZERO, transactions)
}

#[test]
fn steady_state_mvcc_validation_does_not_allocate() {
    let store = MemStateDb::with_shards(8);
    let genesis: Vec<CommitWrite> =
        (0..256).map(|i| CommitWrite::put(key(i), Value::from_i64(0), 0)).collect();
    store.apply_block(0, &genesis).unwrap();

    let block = make_block(128);
    let endorsement_ok = vec![true; block.txs.len()];
    let mut scratch = MvccScratch::new();
    let mut codes = Vec::new();

    // Warm-up: interner, probe list, version table, bitset, codes vec all
    // reach steady capacity.
    for _ in 0..4 {
        mvcc_validate_into(&block, &store, &endorsement_ok, &mut scratch, &mut codes).unwrap();
    }
    let mix_before: usize = codes.iter().filter(|c| c.is_valid()).count();
    assert!(mix_before > 0 && mix_before < block.txs.len(), "both outcomes exercised");

    let before = allocations();
    for _ in 0..8 {
        mvcc_validate_into(&block, &store, &endorsement_ok, &mut scratch, &mut codes).unwrap();
    }
    let allocated = allocations() - before;

    assert_eq!(codes.len(), block.txs.len());
    assert_eq!(codes.iter().filter(|c| c.is_valid()).count(), mix_before);
    if cfg!(debug_assertions) {
        assert!(allocated < 10_000, "{allocated} allocations in debug steady state");
    } else {
        assert_eq!(allocated, 0, "warm MVCC validation must not allocate");
    }
}
