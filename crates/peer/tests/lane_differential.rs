//! Randomized differential test for the dependency-aware lane path: on
//! random blocks (random read/write sets, stale and absent claims,
//! deletes, endorsement failures), [`LaneScheduler::validate`] +
//! [`StateStore::apply_write_batch_lanes`] at 1/2/4/8 lanes must be
//! bit-identical to the sequential production path
//! ([`mvcc_validate_traced`] + [`StateStore::apply_write_batch`]) —
//! validation codes, the traced conflict-provenance event stream,
//! post-state (values AND versions), and the commit watermark — on both
//! the in-memory engine and the LSM engine.
//!
//! Hints are deliberately absent here (the scheduler rebuilds the
//! dependency partition from the raw read/write sets), matching the
//! recovery/catch-up path; hint-carrying agreement is pinned by the
//! scheduler's unit tests and the conformance lane cells.

use std::sync::Arc;
use std::time::Instant;

use fabric_common::rwset::RwSetBuilder;
use fabric_common::{
    ChannelId, ClientId, Digest, Key, TxId, ValidationCode, Value, Version,
};
use fabric_ledger::Block;
use fabric_peer::validator::{mvcc_validate_traced, MvccScratch};
use fabric_peer::LaneScheduler;
use fabric_statedb::{
    CommitWrite, LsmConfig, LsmStateDb, MemStateDb, StateStore, WriteBatch, WriteRef,
};
use fabric_trace::TraceSink;
use proptest::prelude::*;

const LANE_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// How a generated read claims its version, resolved at runtime against
/// the sequential store's pre-block state (all replicas are identical at
/// that point, so one resolution serves every lane count).
#[derive(Debug, Clone, Copy)]
enum ReadClaim {
    /// Claim whatever the store currently holds — a fresh read.
    Current,
    /// Claim the key is absent.
    Absent,
    /// Claim a version from the far future — always stale.
    Bogus,
}

#[derive(Debug, Clone)]
struct GenTx {
    reads: Vec<(u8, ReadClaim)>,
    /// `None` value deletes the key.
    writes: Vec<(u8, Option<i64>)>,
    endorsed: bool,
}

fn key(id: u8) -> Key {
    Key::composite("k", id as u64)
}

fn claim_strategy() -> impl Strategy<Value = ReadClaim> {
    prop_oneof![
        4 => Just(ReadClaim::Current),
        1 => Just(ReadClaim::Absent),
        1 => Just(ReadClaim::Bogus),
    ]
}

fn tx_strategy() -> impl Strategy<Value = GenTx> {
    (
        proptest::collection::vec((0u8..12, claim_strategy()), 0..5),
        proptest::collection::vec(
            (0u8..12, proptest::option::of(any::<i64>())),
            0..4,
        ),
        any::<bool>(),
    )
        .prop_map(|(reads, writes, endorsed)| GenTx { reads, writes, endorsed })
}

fn blocks_strategy() -> impl Strategy<Value = Vec<Vec<GenTx>>> {
    proptest::collection::vec(proptest::collection::vec(tx_strategy(), 0..8), 1..6)
}

/// Materializes one generated block against `state` (the sequential
/// store's pre-block snapshot).
fn build_block(
    block_num: u64,
    gen_txs: &[GenTx],
    state: &dyn StateStore,
) -> (Block, Vec<bool>) {
    let mut endorsement_ok = Vec::with_capacity(gen_txs.len());
    let txs: Vec<fabric_common::Transaction> = gen_txs
        .iter()
        .map(|g| {
            endorsement_ok.push(g.endorsed);
            let mut b = RwSetBuilder::new();
            for (id, claim) in &g.reads {
                let version = match claim {
                    ReadClaim::Current => state.get(&key(*id)).unwrap().map(|vv| vv.version),
                    ReadClaim::Absent => None,
                    ReadClaim::Bogus => Some(Version::new(9_999, 0)),
                };
                b.record_read(key(*id), version);
            }
            for (id, val) in &g.writes {
                b.record_write(key(*id), val.map(Value::from_i64));
            }
            fabric_common::Transaction {
                id: TxId::next(),
                channel: ChannelId(0),
                client: ClientId(0),
                chaincode: "cc".into(),
                rwset: b.build(),
                endorsements: vec![],
                created_at: Instant::now(),
            }
        })
        .collect();
    (Block::build(block_num, Digest::ZERO, txs), endorsement_ok)
}

/// The write batch of a validated block, in block order.
fn batch_of<'a>(block: &'a Block, codes: &[ValidationCode]) -> WriteBatch<'a> {
    let mut batch = WriteBatch::new(block.header.number);
    for (p, tx) in block.txs.iter().enumerate() {
        if codes[p].is_valid() {
            for e in tx.rwset.writes.entries() {
                batch.push(WriteRef { key: &e.key, value: e.value.as_ref(), tx: p as u32 });
            }
        }
    }
    batch
}

fn seed_genesis(store: &dyn StateStore) {
    let genesis: Vec<CommitWrite> =
        (0u8..8).map(|i| CommitWrite::put(key(i), Value::from_i64(i as i64), 0)).collect();
    store.apply_block(0, &genesis).unwrap();
}

fn post_state(store: &dyn StateStore) -> Vec<(Key, fabric_statedb::VersionedValue)> {
    store.scan_range(&key(0), &Key::composite("k", 255)).unwrap()
}

/// Drives `gen_blocks` through the sequential path on `seq_store` and the
/// lane path on each `(scheduler, store)` replica, block by block,
/// asserting bit-identical codes, traced events, post-state, and
/// watermark after every block.
fn run_differential(
    gen_blocks: &[Vec<GenTx>],
    seq_store: Arc<dyn StateStore>,
    lane_replicas: &[(LaneScheduler, Arc<dyn StateStore>)],
) -> std::result::Result<(), TestCaseError> {
    seed_genesis(seq_store.as_ref());
    for (_, store) in lane_replicas {
        seed_genesis(store.as_ref());
    }

    let mut scratch = MvccScratch::new();
    let seq_sink = TraceSink::enabled();
    for (i, gen_txs) in gen_blocks.iter().enumerate() {
        let block_num = (i + 1) as u64;
        let (block, endorsement_ok) = build_block(block_num, gen_txs, seq_store.as_ref());

        let mut seq_codes = Vec::new();
        mvcc_validate_traced(
            &block,
            seq_store.as_ref(),
            &endorsement_ok,
            &mut scratch,
            &mut seq_codes,
            &seq_sink,
        )
        .unwrap();
        seq_store.apply_write_batch(&batch_of(&block, &seq_codes)).unwrap();
        let seq_events: Vec<String> =
            seq_sink.drain().iter().map(|e| format!("{:?}", e.kind)).collect();
        let seq_scan = post_state(seq_store.as_ref());

        for (sched, store) in lane_replicas {
            let lane_sink = TraceSink::enabled();
            let mut lane_codes = Vec::new();
            let occ = sched
                .validate(&block, store.as_ref(), &endorsement_ok, None, &mut lane_codes, &lane_sink)
                .unwrap();
            prop_assert_eq!(
                &lane_codes,
                &seq_codes,
                "block {} codes at {} lanes",
                block_num,
                sched.lanes()
            );
            let lane_events: Vec<String> =
                lane_sink.drain().iter().map(|e| format!("{:?}", e.kind)).collect();
            prop_assert_eq!(
                &lane_events,
                &seq_events,
                "block {} events at {} lanes",
                block_num,
                sched.lanes()
            );
            prop_assert!(occ.chain_serializations as usize <= block.txs.len());

            store.apply_write_batch_lanes(&batch_of(&block, &lane_codes), sched.pool()).unwrap();
            prop_assert_eq!(
                store.last_committed_block(),
                seq_store.last_committed_block()
            );
            let lane_scan = post_state(store.as_ref());
            prop_assert_eq!(
                &lane_scan,
                &seq_scan,
                "block {} post-state at {} lanes",
                block_num,
                sched.lanes()
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]
    #[test]
    fn lane_path_matches_sequential_on_memdb(gen_blocks in blocks_strategy()) {
        let replicas: Vec<(LaneScheduler, Arc<dyn StateStore>)> = LANE_COUNTS
            .iter()
            .map(|&n| {
                (LaneScheduler::new(n), Arc::new(MemStateDb::with_shards(4)) as Arc<dyn StateStore>)
            })
            .collect();
        run_differential(&gen_blocks, Arc::new(MemStateDb::new()), &replicas)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]
    #[test]
    fn lane_path_matches_sequential_on_lsm(gen_blocks in blocks_strategy()) {
        let base = std::env::temp_dir().join(format!(
            "fabric-lane-diff-{}-{:x}",
            std::process::id(),
            case_suffix(&gen_blocks),
        ));
        let _ = std::fs::remove_dir_all(&base);
        let cfg = LsmConfig { memtable_max_bytes: 512, ..LsmConfig::default() };
        let replicas: Vec<(LaneScheduler, Arc<dyn StateStore>)> = [2usize, 8]
            .iter()
            .map(|&n| {
                let db = LsmStateDb::open(base.join(format!("l{n}")), cfg.clone()).unwrap();
                (LaneScheduler::new(n), Arc::new(db) as Arc<dyn StateStore>)
            })
            .collect();
        let seq = LsmStateDb::open(base.join("seq"), cfg).unwrap();
        let outcome = run_differential(&gen_blocks, Arc::new(seq), &replicas);
        let _ = std::fs::remove_dir_all(&base);
        outcome?;
    }
}

/// Stable per-case directory suffix derived from the generated input.
fn case_suffix(blocks: &[Vec<GenTx>]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in blocks {
        h ^= 1 + b.len() as u64;
        h = h.wrapping_mul(0x100000001b3);
        for t in b {
            h ^= (t.reads.len() as u64) << 8 | t.writes.len() as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}
