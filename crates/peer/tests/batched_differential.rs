//! Randomized differential test: the batched validate/commit hot path
//! (`mvcc_validate`'s single multi-get prefetch + `commit_block`'s
//! zero-copy `WriteBatch`) against a naive per-key sequential oracle.
//! Codes, post-state (values AND versions), and watermarks must be
//! bit-identical — on both the in-memory engine and the LSM engine.
//!
//! Also pins the prefetch contract down with store counters: exactly one
//! batched version prefetch per block, one probe per *distinct* read key
//! (a hot key read by fifty transactions is fetched once), and zero
//! per-read-entry point gets.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

use fabric_common::rwset::RwSetBuilder;
use fabric_common::{
    ChannelId, ClientId, Digest, Key, Result, TxId, ValidationCode, Value, Version,
};
use fabric_ledger::{Block, CommittedBlock, Ledger};
use fabric_peer::committer::commit_block;
use fabric_peer::validator::mvcc_validate;
use fabric_statedb::{CommitWrite, LsmConfig, LsmStateDb, MemStateDb, StateStore};
use proptest::prelude::*;

/// How a generated read claims its version, resolved at runtime against
/// the oracle's current state (both stores are identical at that point).
#[derive(Debug, Clone, Copy)]
enum ReadClaim {
    /// Claim whatever the store currently holds — a fresh read.
    Current,
    /// Claim the key is absent.
    Absent,
    /// Claim a version from the far future — always stale.
    Bogus,
}

#[derive(Debug, Clone)]
struct GenTx {
    reads: Vec<(u8, ReadClaim)>,
    writes: Vec<(u8, i64)>,
    endorsed: bool,
}

fn key(id: u8) -> Key {
    Key::composite("k", id as u64)
}

fn claim_strategy() -> impl Strategy<Value = ReadClaim> {
    prop_oneof![
        4 => Just(ReadClaim::Current),
        1 => Just(ReadClaim::Absent),
        1 => Just(ReadClaim::Bogus),
    ]
}

fn tx_strategy() -> impl Strategy<Value = GenTx> {
    (
        proptest::collection::vec((0u8..12, claim_strategy()), 0..5),
        proptest::collection::vec((0u8..12, any::<i64>()), 0..4),
        any::<bool>(),
    )
        .prop_map(|(reads, writes, endorsed)| GenTx { reads, writes, endorsed })
}

fn blocks_strategy() -> impl Strategy<Value = Vec<Vec<GenTx>>> {
    proptest::collection::vec(proptest::collection::vec(tx_strategy(), 0..6), 1..6)
}

/// Materializes a generated transaction, resolving `Current` claims
/// against `state` (the pre-block store, identical on both sides).
fn build_tx(gen: &GenTx, state: &dyn StateStore) -> Transaction2 {
    let mut b = RwSetBuilder::new();
    for (id, claim) in &gen.reads {
        let version = match claim {
            ReadClaim::Current => state.get(&key(*id)).unwrap().map(|vv| vv.version),
            ReadClaim::Absent => None,
            ReadClaim::Bogus => Some(Version::new(9_999, 0)),
        };
        b.record_read(key(*id), version);
    }
    for (id, val) in &gen.writes {
        b.record_write(key(*id), Some(Value::from_i64(*val)));
    }
    Transaction2 { rwset: b.build(), endorsed: gen.endorsed }
}

struct Transaction2 {
    rwset: fabric_common::rwset::ReadWriteSet,
    endorsed: bool,
}

fn to_fabric_tx(t: &Transaction2) -> fabric_common::Transaction {
    fabric_common::Transaction {
        id: TxId::next(),
        channel: ChannelId(0),
        client: ClientId(0),
        chaincode: "cc".into(),
        rwset: t.rwset.clone(),
        endorsements: vec![],
        created_at: Instant::now(),
    }
}

/// The naive reference: per-read-entry `store.get`, `HashSet` of in-block
/// writes — exactly the pre-batching algorithm.
fn oracle_mvcc_validate(
    block: &Block,
    store: &dyn StateStore,
    endorsement_ok: &[bool],
) -> Result<Vec<ValidationCode>> {
    let mut codes = Vec::with_capacity(block.txs.len());
    let mut written_in_block: HashSet<&Key> = HashSet::new();
    for (tx, &endorsed) in block.txs.iter().zip(endorsement_ok) {
        if !endorsed {
            codes.push(ValidationCode::EndorsementFailure);
            continue;
        }
        let mut valid = true;
        for e in tx.rwset.reads.entries() {
            if written_in_block.contains(&e.key) {
                valid = false;
                break;
            }
            if store.get(&e.key)?.map(|vv| vv.version) != e.version {
                valid = false;
                break;
            }
        }
        if valid {
            for e in tx.rwset.writes.entries() {
                written_in_block.insert(&e.key);
            }
            codes.push(ValidationCode::Valid);
        } else {
            codes.push(ValidationCode::MvccConflict);
        }
    }
    Ok(codes)
}

/// The naive commit: clone every key/value into owned `CommitWrite`s,
/// clone the committed block into the ledger.
fn oracle_commit(
    block: Block,
    codes: Vec<ValidationCode>,
    store: &dyn StateStore,
    ledger: &Ledger,
) -> Result<()> {
    let committed = CommittedBlock::new(block, codes)?;
    let mut writes: Vec<CommitWrite> = Vec::new();
    for (tx_num, (tx, code)) in committed.iter().enumerate() {
        if !code.is_valid() {
            continue;
        }
        for e in tx.rwset.writes.entries() {
            writes.push(CommitWrite {
                key: e.key.clone(),
                value: e.value.clone(),
                tx: tx_num as u32,
            });
        }
    }
    store.apply_block(committed.block.header.number, &writes)?;
    ledger.append(committed)?;
    Ok(())
}

fn genesis_ledger() -> Ledger {
    let ledger = Ledger::new();
    ledger
        .append(CommittedBlock::new(Block::build(0, Digest::ZERO, vec![]), vec![]).unwrap())
        .unwrap();
    ledger
}

/// Runs the full differential over `gen_blocks` with the batched side on
/// `batched_store`; the oracle always runs on a fresh `MemStateDb`.
fn run_differential(
    gen_blocks: &[Vec<GenTx>],
    batched_store: Arc<dyn StateStore>,
) -> std::result::Result<(), TestCaseError> {
    let initial: Vec<(Key, Value)> =
        (0u8..8).map(|i| (key(i), Value::from_i64(i as i64))).collect();
    let oracle_store = MemStateDb::new();
    let genesis: Vec<CommitWrite> =
        initial.iter().map(|(k, v)| CommitWrite::put(k.clone(), v.clone(), 0)).collect();
    oracle_store.apply_block(0, &genesis).unwrap();
    batched_store.apply_block(0, &genesis).unwrap();

    let batched_ledger = genesis_ledger();
    let oracle_ledger = genesis_ledger();

    for (i, gen_txs) in gen_blocks.iter().enumerate() {
        let block_num = (i + 1) as u64;
        let built: Vec<Transaction2> =
            gen_txs.iter().map(|g| build_tx(g, &oracle_store)).collect();
        let endorsement_ok: Vec<bool> = built.iter().map(|t| t.endorsed).collect();
        let txs: Vec<fabric_common::Transaction> = built.iter().map(to_fabric_tx).collect();
        let block = Block::build(block_num, batched_ledger.tip_hash(), txs);
        prop_assert_eq!(oracle_ledger.tip_hash(), batched_ledger.tip_hash());

        let batched_codes =
            mvcc_validate(&block, batched_store.as_ref(), &endorsement_ok).unwrap();
        let oracle_codes =
            oracle_mvcc_validate(&block, &oracle_store, &endorsement_ok).unwrap();
        prop_assert_eq!(&batched_codes, &oracle_codes, "block {} codes", block_num);

        let committed =
            commit_block(block.clone(), batched_codes, batched_store.as_ref(), &batched_ledger)
                .unwrap();
        prop_assert_eq!(&committed.validity, &oracle_codes);
        oracle_commit(block, oracle_codes, &oracle_store, &oracle_ledger).unwrap();

        // Post-state must agree bit for bit: watermark, values, versions.
        prop_assert_eq!(
            batched_store.last_committed_block(),
            oracle_store.last_committed_block()
        );
        let lo = key(0);
        let hi = Key::composite("k", 255);
        let batched_scan = batched_store.scan_range(&lo, &hi).unwrap();
        let oracle_scan = oracle_store.scan_range(&lo, &hi).unwrap();
        prop_assert_eq!(batched_scan, oracle_scan, "block {} post-state", block_num);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]
    #[test]
    fn batched_path_matches_naive_oracle_on_memdb(gen_blocks in blocks_strategy()) {
        run_differential(&gen_blocks, Arc::new(MemStateDb::with_shards(4)))?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]
    #[test]
    fn batched_path_matches_naive_oracle_on_lsm(gen_blocks in blocks_strategy()) {
        let dir = std::env::temp_dir().join(format!(
            "fabric-batched-diff-{}-{:x}",
            std::process::id(),
            suffix(&gen_blocks),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = LsmConfig { memtable_max_bytes: 512, ..LsmConfig::default() };
        let db = Arc::new(LsmStateDb::open(&dir, cfg).unwrap());
        let outcome = run_differential(&gen_blocks, db);
        let _ = std::fs::remove_dir_all(&dir);
        outcome?;
    }
}

/// Stable per-case directory suffix derived from the generated input.
fn suffix(blocks: &[Vec<GenTx>]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in blocks {
        h ^= 1 + b.len() as u64;
        h = h.wrapping_mul(0x100000001b3);
        for t in b {
            h ^= 17 + t.reads.len() as u64 * 3 + t.writes.len() as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

#[test]
fn hot_key_is_prefetched_exactly_once_per_block() {
    // Fifty transactions all read the same hot key (plus a couple of cold
    // ones): the prefetch table must be consulted, not the store — one
    // multi-get batch, one probe per DISTINCT key, zero point gets.
    let store = MemStateDb::with_shards(4);
    let genesis: Vec<CommitWrite> = (0u8..3)
        .map(|i| CommitWrite::put(key(i), Value::from_i64(i as i64), 0))
        .collect();
    store.apply_block(0, &genesis).unwrap();

    let txs: Vec<fabric_common::Transaction> = (0..50)
        .map(|i| {
            let mut b = RwSetBuilder::new();
            b.record_read(key(0), Some(Version::GENESIS)); // the hot key
            if i % 2 == 0 {
                b.record_read(key(1), Some(Version::GENESIS));
            } else {
                b.record_read(key(2), Some(Version::GENESIS));
            }
            b.record_write(Key::composite("out", i), Some(Value::from_i64(i as i64)));
            to_fabric_tx(&Transaction2 { rwset: b.build(), endorsed: true })
        })
        .collect();
    let block = Block::build(1, Digest::ZERO, txs);
    let endorsement_ok = vec![true; 50];

    let base = store.counters().snapshot();
    let codes = mvcc_validate(&block, &store, &endorsement_ok).unwrap();
    let stats = store.counters().snapshot().since(&base);

    assert!(codes.iter().all(|c| c.is_valid()), "all readers see genesis: {codes:?}");
    assert_eq!(stats.multi_get_batches, 1, "exactly one batched prefetch per block");
    assert_eq!(
        stats.multi_get_keys, 3,
        "100 read entries over 3 distinct keys = 3 probes, hot key fetched once"
    );
    assert_eq!(stats.point_gets, 0, "no per-read-entry store.get on the hot path");
}

#[test]
fn empty_and_unendorsed_blocks_still_issue_one_prefetch() {
    // The contract is per-block, not per-read: even a block with nothing
    // to probe performs its single (empty) batched prefetch and no point
    // gets.
    let store = MemStateDb::with_shards(4);
    store.apply_block(0, &[]).unwrap();

    let base = store.counters().snapshot();
    let block = Block::build(1, Digest::ZERO, vec![]);
    mvcc_validate(&block, &store, &[]).unwrap();
    let stats = store.counters().snapshot().since(&base);
    assert_eq!(stats.multi_get_batches, 1);
    assert_eq!(stats.multi_get_keys, 0);
    assert_eq!(stats.point_gets, 0);

    // An unendorsed transaction's reads are never probed at all.
    let mut b = RwSetBuilder::new();
    b.record_read(key(7), Some(Version::GENESIS));
    let tx = to_fabric_tx(&Transaction2 { rwset: b.build(), endorsed: false });
    let block = Block::build(1, Digest::ZERO, vec![tx]);
    let base = store.counters().snapshot();
    let codes = mvcc_validate(&block, &store, &[false]).unwrap();
    let stats = store.counters().snapshot().since(&base);
    assert_eq!(codes, vec![ValidationCode::EndorsementFailure]);
    assert_eq!(stats.multi_get_batches, 1);
    assert_eq!(stats.multi_get_keys, 0);
    assert_eq!(stats.point_gets, 0);
}
