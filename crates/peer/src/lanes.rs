//! Dependency-aware parallel intra-block validation: the lane scheduler.
//!
//! The sequential MVCC pass ([`crate::validator::mvcc_validate_traced`])
//! walks the block in order because a transaction's fate can depend on the
//! in-block writes of *earlier valid* transactions. But most transactions
//! in a well-reordered block touch disjoint keys — their validation order
//! is immaterial. This module partitions a block into **dependency
//! chains** (connected components of the read/write conflict relation),
//! validates independent chains concurrently on the [`LanePool`]'s worker
//! lanes, and keeps block order *within* each chain — which is exactly the
//! order sensitivity the sequential pass has, so the outcome is
//! bit-identical (same codes, same traced conflict provenance, same store
//! read traffic) while conflict-free spans of the block validate in
//! parallel.
//!
//! ## Hints: reusing the orderer's conflict analysis
//!
//! When the block arrives with [`DependencyHints`] (sealed locally by the
//! reorder stage and carried through the process — never serialized), the
//! partition reuses the orderer's interned key ids and dependency edges
//! instead of re-hashing a single key. Without hints (recovery, archive
//! catch-up, delayed delivery) the scheduler re-interns from the block's
//! read/write sets; both paths produce the same components and the same
//! validation output — the conformance matrix's `commit_lanes` cells and
//! the differential proptests prove the equivalence byte for byte.
//!
//! ## Why components, not just non-adjacent transactions
//!
//! Two rules force transactions into one chain:
//!
//! * a reader shares a chain with **every** writer of the key it reads:
//!   the in-block write bit (and the conflicting-writer witness for traced
//!   runs) must evolve in block order relative to that reader;
//! * co-writers of a key share a chain: the witness (`written_by`) must
//!   name the *latest* earlier valid writer, exactly as the sequential
//!   scan would.
//!
//! Union-find over the block's interned key ids applies both rules in two
//! linear passes. Components never share a key between a reader and a
//! writer or between two writers, so per-key state needs no cross-lane
//! ordering — plain relaxed atomics suffice, and the [`LanePool`] join
//! publishes everything before the caller reads the results.
//!
//! The bounded state is scratch, reused block after block: a warm
//! scheduler validates without allocating (pinned by the counting
//! allocator in `tests/lane_alloc.rs`).

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use fabric_common::{
    DependencyHints, Key, KeyTable, LaneJob, LanePool, Result, TxId, ValidationCode, Version,
};
use fabric_ledger::Block;
use fabric_statedb::StateStore;
use fabric_trace::{EventKind, TraceSink};

/// Dense `u8` encoding of the three codes the MVCC phase can produce.
const CODE_VALID: u8 = 0;
const CODE_CONFLICT: u8 = 1;
const CODE_ENDORSEMENT: u8 = 2;

/// Why a transaction's first offending read failed (trace provenance).
const CAUSE_IN_BLOCK: u8 = 1;
const CAUSE_STORE_VERSION: u8 = 2;

fn code_of(raw: u8) -> ValidationCode {
    match raw {
        CODE_VALID => ValidationCode::Valid,
        CODE_CONFLICT => ValidationCode::MvccConflict,
        _ => ValidationCode::EndorsementFailure,
    }
}

/// Occupancy facts of one lane-scheduled block, for
/// [`fabric_common::StoreCounters::record_lane_commit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneOccupancy {
    /// Distinct lanes that claimed at least one chain.
    pub lanes_used: u64,
    /// Transactions that had to wait behind a same-chain predecessor
    /// (`Σ max(0, chain_len - 1)` over all chains).
    pub chain_serializations: u64,
}

/// The lane scheduler: a persistent [`LanePool`] plus the reusable shared
/// block state its lanes operate on. One per peer, engaged when
/// `commit_lanes > 1`.
pub struct LaneScheduler {
    pool: LanePool,
    job: Arc<MvccLaneJob>,
    /// The same job, pre-coerced once so dispatch never allocates.
    shared: Arc<dyn LaneJob>,
    /// Serializes whole-block use of the shared state (blocks arrive in
    /// order; this guards against misuse, it is never contended in the
    /// pipeline).
    gate: Mutex<()>,
}

impl LaneScheduler {
    /// Creates a scheduler with `lanes` worker lanes (clamped to ≥ 1).
    pub fn new(lanes: usize) -> Self {
        let job = Arc::new(MvccLaneJob::default());
        let shared: Arc<dyn LaneJob> = Arc::clone(&job) as Arc<dyn LaneJob>;
        LaneScheduler { pool: LanePool::new(lanes), job, shared, gate: Mutex::new(()) }
    }

    /// Number of lanes (including the dispatching caller).
    pub fn lanes(&self) -> usize {
        self.pool.lanes()
    }

    /// The underlying pool, shared with the commit phase's lane apply.
    pub fn pool(&self) -> &LanePool {
        &self.pool
    }

    /// Lane-parallel MVCC validation of `block`: partitions into
    /// dependency chains (from `hints` when they cover the block, else by
    /// re-interning the read/write sets), prefetches the store versions
    /// with the same single batched read as the sequential pass, runs the
    /// chains on the lanes, and writes one [`ValidationCode`] per
    /// transaction into `codes` — bit-identical to
    /// [`crate::validator::mvcc_validate_traced`], including the traced
    /// conflict events, which are emitted in block order after the join.
    pub fn validate(
        &self,
        block: &Block,
        store: &dyn StateStore,
        endorsement_ok: &[bool],
        hints: Option<&DependencyHints>,
        codes: &mut Vec<ValidationCode>,
        sink: &TraceSink,
    ) -> Result<LaneOccupancy> {
        let _serial = self.gate.lock();
        {
            let mut st = self.job.state.write();
            st.fill(block, endorsement_ok, hints, self.pool.lanes());
            // Split borrow: the prefetch fills `fetched` from `probe_keys`.
            let LaneState { probe_keys, fetched, .. } = &mut *st;
            store.multi_get_versions_into(probe_keys, fetched)?;
        }
        if !block.txs.is_empty() {
            self.pool.run(&self.shared);
        }
        let st = self.job.state.read();
        st.collect(block, codes, sink);
        Ok(st.occupancy())
    }
}

impl std::fmt::Debug for LaneScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LaneScheduler({} lanes)", self.pool.lanes())
    }
}

/// The shared job: lanes read the filled [`LaneState`] and race on the
/// chain cursor; all per-transaction and per-key cells are atomics whose
/// cross-lane disjointness is guaranteed by the partition.
#[derive(Default)]
struct MvccLaneJob {
    state: RwLock<LaneState>,
}

impl LaneJob for MvccLaneJob {
    fn run(&self, lane: usize) {
        self.state.read().run_lane(lane);
    }
}

/// Reusable per-block state. Everything keeps its capacity across blocks.
///
/// Local key ids are dense `u32`s: read keys first (`0..probe_len`, in
/// first-seen scan order over endorsed transactions — the exact id/probe
/// correspondence of [`crate::validator::MvccScratch`]), write-only keys
/// after. The hint path maps the orderer's interned ids onto this space
/// with one table lookup per entry; the rebuild path hashes through the
/// [`KeyTable`].
#[derive(Default)]
struct LaneState {
    /// Transactions in the block.
    n: usize,
    lanes: usize,
    /// `Σ max(0, chain_len - 1)` of the current partition.
    chains_serialized: u64,
    endorsed: Vec<bool>,
    /// Per-transaction CSR rows of local read ids / declared versions,
    /// aligned with the read-set entry order.
    read_off: Vec<u32>,
    read_ids: Vec<u32>,
    read_vers: Vec<Option<Version>>,
    /// Per-transaction CSR rows of local write ids.
    write_off: Vec<u32>,
    write_ids: Vec<u32>,
    /// Raw [`TxId`] per block position (the traced conflict witness).
    tx_raw: Vec<u64>,
    /// Rebuild-path interner (unused when hints cover the block).
    keys: KeyTable,
    /// Hint-id → local-id map (hint path only).
    hint_map: Vec<u32>,
    /// Distinct read keys in local-id order; the block's whole store read.
    probe_keys: Vec<Key>,
    probe_len: usize,
    /// Current store version per read-key id (one batched prefetch).
    fetched: Vec<Option<Version>>,
    /// Union-find scratch over block positions.
    parent: Vec<u32>,
    root_of: Vec<u32>,
    /// First writer per local key id (`u32::MAX` = none).
    first_writer: Vec<u32>,
    /// Root position → dense chain id (`u32::MAX` = unassigned).
    comp_of: Vec<u32>,
    /// Chain CSR: `comp_txs[comp_off[c]..comp_off[c+1]]` are chain `c`'s
    /// transactions in block order.
    comp_off: Vec<u32>,
    comp_txs: Vec<u32>,
    /// Next unclaimed chain.
    cursor: AtomicUsize,
    /// Per-transaction outcome (`CODE_*`), each written by exactly one lane.
    codes: Vec<AtomicU8>,
    /// In-block write bitset over local key ids, one bit per key. A key's
    /// bit is only touched by its own chain's lane; `fetch_or` keeps
    /// unrelated keys sharing a word safe.
    written: Vec<AtomicU64>,
    /// Latest earlier valid writer per local key id (raw [`TxId`]).
    written_by: Vec<AtomicU64>,
    /// First offending read of a conflicted transaction: entry index,
    /// cause, and (for in-block conflicts) the witness writer, captured at
    /// conflict time. Read only when the code says conflict.
    fail_read: Vec<AtomicU32>,
    fail_cause: Vec<AtomicU8>,
    fail_writer: Vec<AtomicU64>,
    /// Per-lane "claimed at least one chain" flags.
    lane_hits: Vec<AtomicU64>,
}

/// Whether `hints` structurally cover `block`: one row per transaction,
/// row lengths matching the read/write sets entry for entry. Hints that
/// fail this (they never should — it would mean a seal/delivery mismatch)
/// are ignored and the block is re-interned.
fn hints_cover(h: &DependencyHints, block: &Block) -> bool {
    h.len() == block.txs.len()
        && block.txs.iter().enumerate().all(|(p, tx)| {
            h.reads(p).len() == tx.rwset.reads.entries().len()
                && h.writes(p).len() == tx.rwset.writes.entries().len()
        })
}

fn find(parent: &mut [u32], mut x: u32) -> u32 {
    while parent[x as usize] != x {
        let grand = parent[parent[x as usize] as usize];
        parent[x as usize] = grand;
        x = grand;
    }
    x
}

fn union(parent: &mut [u32], a: u32, b: u32) {
    let ra = find(parent, a);
    let rb = find(parent, b);
    if ra != rb {
        // Attach the higher root under the lower: deterministic, and the
        // representative is always the chain's earliest-rooted position.
        let (hi, lo) = if ra > rb { (ra, rb) } else { (rb, ra) };
        parent[hi as usize] = lo;
    }
}

/// Grows an atomic vector to `n` elements (zero-initialized); existing
/// elements keep their values — callers reset what needs resetting.
fn grow_u64(v: &mut Vec<AtomicU64>, n: usize) {
    if v.len() < n {
        v.resize_with(n, || AtomicU64::new(0));
    }
}

impl LaneState {
    /// Rebuilds the whole state for `block`. Exclusive access (the caller
    /// holds the write lock); everything reuses warm capacity.
    fn fill(
        &mut self,
        block: &Block,
        endorsement_ok: &[bool],
        hints: Option<&DependencyHints>,
        lanes: usize,
    ) {
        let n = block.txs.len();
        self.n = n;
        self.lanes = lanes.max(1);
        self.endorsed.clear();
        self.endorsed.extend_from_slice(endorsement_ok);
        self.read_off.clear();
        self.read_off.push(0);
        self.write_off.clear();
        self.write_off.push(0);
        self.read_ids.clear();
        self.read_vers.clear();
        self.write_ids.clear();
        self.tx_raw.clear();
        self.probe_keys.clear();

        let hints = hints.filter(|h| hints_cover(h, block));
        let n_keys = match hints {
            Some(h) => self.intern_from_hints(block, endorsement_ok, h),
            None => self.intern_from_rwsets(block, endorsement_ok),
        };

        self.partition(endorsement_ok, hints, n_keys);

        // Atomic working cells: size for this block, reset what must be.
        if self.codes.len() < n {
            self.codes.resize_with(n, || AtomicU8::new(0));
        }
        if self.fail_read.len() < n {
            self.fail_read.resize_with(n, || AtomicU32::new(0));
        }
        if self.fail_cause.len() < n {
            self.fail_cause.resize_with(n, || AtomicU8::new(0));
        }
        grow_u64(&mut self.fail_writer, n);
        grow_u64(&mut self.written_by, n_keys);
        let words = n_keys.div_ceil(64);
        grow_u64(&mut self.written, words);
        for w in &self.written[..words] {
            w.store(0, Ordering::Relaxed);
        }
        grow_u64(&mut self.lane_hits, self.lanes);
        for h in &self.lane_hits[..self.lanes] {
            h.store(0, Ordering::Relaxed);
        }
        self.cursor.store(0, Ordering::Relaxed);
    }

    /// Hint path: one table lookup per entry, no hashing. Local ids are
    /// assigned in the same first-seen scan order as the rebuild path, so
    /// both paths produce identical probe lists and id spaces.
    fn intern_from_hints(
        &mut self,
        block: &Block,
        endorsement_ok: &[bool],
        h: &DependencyHints,
    ) -> usize {
        self.hint_map.clear();
        self.hint_map.resize(h.n_keys() as usize, u32::MAX);
        let mut next = 0u32;
        for (p, (tx, &ok)) in block.txs.iter().zip(endorsement_ok).enumerate() {
            if ok {
                for (e, &hid) in tx.rwset.reads.entries().iter().zip(h.reads(p)) {
                    let slot = &mut self.hint_map[hid as usize];
                    if *slot == u32::MAX {
                        *slot = next;
                        next += 1;
                        self.probe_keys.push(e.key.clone());
                    }
                    self.read_ids.push(*slot);
                    self.read_vers.push(e.version);
                }
            }
            self.read_off.push(self.read_ids.len() as u32);
            self.tx_raw.push(tx.id.raw());
        }
        self.probe_len = next as usize;
        for (p, &ok) in endorsement_ok.iter().enumerate() {
            if ok {
                for &hid in h.writes(p) {
                    let slot = &mut self.hint_map[hid as usize];
                    if *slot == u32::MAX {
                        *slot = next;
                        next += 1;
                    }
                    self.write_ids.push(*slot);
                }
            }
            self.write_off.push(self.write_ids.len() as u32);
        }
        next as usize
    }

    /// Rebuild path (no hints): intern reads then writes, exactly the
    /// sequential validator's two-pass scheme.
    fn intern_from_rwsets(&mut self, block: &Block, endorsement_ok: &[bool]) -> usize {
        self.keys.clear();
        for (tx, &ok) in block.txs.iter().zip(endorsement_ok) {
            if ok {
                for e in tx.rwset.reads.entries() {
                    let id = self.keys.intern(&e.key);
                    if id as usize == self.probe_keys.len() {
                        self.probe_keys.push(e.key.clone());
                    }
                    self.read_ids.push(id);
                    self.read_vers.push(e.version);
                }
            }
            self.read_off.push(self.read_ids.len() as u32);
            self.tx_raw.push(tx.id.raw());
        }
        self.probe_len = self.probe_keys.len();
        for (tx, &ok) in block.txs.iter().zip(endorsement_ok) {
            if ok {
                for e in tx.rwset.writes.entries() {
                    self.write_ids.push(self.keys.intern(&e.key));
                }
            }
            self.write_off.push(self.write_ids.len() as u32);
        }
        self.keys.len()
    }

    /// Union-find partition into dependency chains, then the chain CSR.
    ///
    /// Pass A unions co-writers of each key (through its first writer);
    /// pass B unions each reader with its key's writers — via the carried
    /// dependency edges when present (each edge names a writer→reader
    /// pair, and pass A already connected the co-writers), else by
    /// scanning the read rows against the first-writer table. Both forms
    /// produce identical components.
    fn partition(
        &mut self,
        endorsement_ok: &[bool],
        hints: Option<&DependencyHints>,
        n_keys: usize,
    ) {
        let n = self.n;
        let LaneState {
            parent,
            root_of,
            first_writer,
            comp_of,
            comp_off,
            comp_txs,
            read_off,
            read_ids,
            write_off,
            write_ids,
            ..
        } = self;
        parent.clear();
        parent.extend(0..n as u32);
        first_writer.clear();
        first_writer.resize(n_keys, u32::MAX);

        // Pass A: co-writers of a key share a chain.
        for (p, &ok) in endorsement_ok.iter().enumerate() {
            if !ok {
                continue;
            }
            for &id in &write_ids[write_off[p] as usize..write_off[p + 1] as usize] {
                let fw = &mut first_writer[id as usize];
                if *fw == u32::MAX {
                    *fw = p as u32;
                } else {
                    let w = *fw;
                    union(parent, p as u32, w);
                }
            }
        }

        // Pass B: each reader joins its key's writer component.
        match hints {
            Some(h) if !h.edges().is_empty() => {
                for &(w, r) in h.edges() {
                    union(parent, w, r);
                }
            }
            _ => {
                for (p, &ok) in endorsement_ok.iter().enumerate() {
                    if !ok {
                        continue;
                    }
                    for &id in &read_ids[read_off[p] as usize..read_off[p + 1] as usize] {
                        let fw = first_writer[id as usize];
                        if fw != u32::MAX {
                            union(parent, p as u32, fw);
                        }
                    }
                }
            }
        }

        // Dense chain ids in order of first appearance, then the CSR by
        // counting sort — block order within each chain.
        root_of.clear();
        comp_of.clear();
        comp_of.resize(n, u32::MAX);
        let mut ncomps = 0u32;
        for p in 0..n as u32 {
            let r = find(parent, p);
            root_of.push(r);
            let slot = &mut comp_of[r as usize];
            if *slot == u32::MAX {
                *slot = ncomps;
                ncomps += 1;
            }
        }
        comp_off.clear();
        comp_off.resize(ncomps as usize + 1, 0);
        for &r in root_of.iter() {
            comp_off[comp_of[r as usize] as usize + 1] += 1;
        }
        for c in 1..comp_off.len() {
            comp_off[c] += comp_off[c - 1];
        }
        comp_txs.clear();
        comp_txs.resize(n, 0);
        // Reuse root_of as the per-chain fill cursor (roots are consumed).
        let fill = root_of;
        fill.clear();
        fill.extend_from_slice(&comp_off[..ncomps as usize]);
        for p in 0..n as u32 {
            let c = comp_of[find(parent, p) as usize] as usize;
            comp_txs[fill[c] as usize] = p;
            fill[c] += 1;
        }
        self.chains_serialized = n as u64 - u64::from(ncomps);
    }

    /// One lane's share of the block: claim chains off the cursor until
    /// none remain, validating each chain's transactions in block order.
    fn run_lane(&self, lane: usize) {
        let ncomps = self.comp_off.len().saturating_sub(1);
        let mut claimed = false;
        loop {
            let c = self.cursor.fetch_add(1, Ordering::Relaxed);
            if c >= ncomps {
                break;
            }
            if !claimed {
                claimed = true;
                self.lane_hits[lane].store(1, Ordering::Relaxed);
            }
            for &p in &self.comp_txs[self.comp_off[c] as usize..self.comp_off[c + 1] as usize] {
                self.validate_tx(p as usize);
            }
        }
    }

    /// The per-transaction check, mirroring the sequential pass 2 exactly:
    /// first offending read decides (in-block write bit before store
    /// version), a valid transaction's writes update the bitset and the
    /// witness table.
    fn validate_tx(&self, p: usize) {
        if !self.endorsed[p] {
            self.codes[p].store(CODE_ENDORSEMENT, Ordering::Relaxed);
            return;
        }
        let ids = &self.read_ids[self.read_off[p] as usize..self.read_off[p + 1] as usize];
        let vers = &self.read_vers[self.read_off[p] as usize..self.read_off[p + 1] as usize];
        let mut valid = true;
        for (fi, (&id, ver)) in ids.iter().zip(vers).enumerate() {
            let id = id as usize;
            if self.written[id / 64].load(Ordering::Relaxed) & (1u64 << (id % 64)) != 0 {
                // An earlier transaction of this chain updated the key;
                // the witness is this-lane-local, captured now because a
                // later co-writer may overwrite it.
                valid = false;
                self.fail_read[p].store(fi as u32, Ordering::Relaxed);
                self.fail_writer[p]
                    .store(self.written_by[id].load(Ordering::Relaxed), Ordering::Relaxed);
                self.fail_cause[p].store(CAUSE_IN_BLOCK, Ordering::Relaxed);
                break;
            }
            if self.fetched[id] != *ver {
                valid = false;
                self.fail_read[p].store(fi as u32, Ordering::Relaxed);
                self.fail_cause[p].store(CAUSE_STORE_VERSION, Ordering::Relaxed);
                break;
            }
        }
        if valid {
            for &id in &self.write_ids[self.write_off[p] as usize..self.write_off[p + 1] as usize]
            {
                let id = id as usize;
                self.written_by[id].store(self.tx_raw[p], Ordering::Relaxed);
                self.written[id / 64].fetch_or(1u64 << (id % 64), Ordering::Relaxed);
            }
            self.codes[p].store(CODE_VALID, Ordering::Relaxed);
        } else {
            self.codes[p].store(CODE_CONFLICT, Ordering::Relaxed);
        }
    }

    /// Post-join: decode the codes in block order and, when tracing,
    /// replay the failure events exactly as the sequential scan would have
    /// emitted them (one event per failed transaction, block order).
    fn collect(&self, block: &Block, codes: &mut Vec<ValidationCode>, sink: &TraceSink) {
        codes.clear();
        let traced = sink.is_enabled();
        for p in 0..self.n {
            let code = code_of(self.codes[p].load(Ordering::Relaxed));
            if traced {
                match code {
                    ValidationCode::EndorsementFailure => sink.emit(EventKind::TxEndorsementFailed {
                        block: block.header.number,
                        tx: block.txs[p].id,
                    }),
                    ValidationCode::MvccConflict => {
                        let fi = self.fail_read[p].load(Ordering::Relaxed) as usize;
                        let e = &block.txs[p].rwset.reads.entries()[fi];
                        if self.fail_cause[p].load(Ordering::Relaxed) == CAUSE_IN_BLOCK {
                            sink.emit(EventKind::TxMvccConflict {
                                block: block.header.number,
                                tx: block.txs[p].id,
                                key: e.key.clone(),
                                expected: None,
                                observed: e.version,
                                writer: Some(TxId(self.fail_writer[p].load(Ordering::Relaxed))),
                            });
                        } else {
                            let id = self.read_ids[self.read_off[p] as usize + fi] as usize;
                            sink.emit(EventKind::TxMvccConflict {
                                block: block.header.number,
                                tx: block.txs[p].id,
                                key: e.key.clone(),
                                expected: self.fetched[id],
                                observed: e.version,
                                writer: None,
                            });
                        }
                    }
                    _ => {}
                }
            }
            codes.push(code);
        }
    }

    fn occupancy(&self) -> LaneOccupancy {
        let lanes_used = self.lane_hits[..self.lanes]
            .iter()
            .filter(|h| h.load(Ordering::Relaxed) != 0)
            .count() as u64;
        LaneOccupancy { lanes_used, chain_serializations: self.chains_serialized }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validator::mvcc_validate_traced;
    use fabric_common::rwset::RwSetBuilder;
    use fabric_common::{ChannelId, ClientId, Digest, Transaction, Value};
    use fabric_statedb::MemStateDb;
    use std::time::Instant;

    fn k(i: u64) -> Key {
        Key::composite("k", i)
    }

    /// A hand-built transaction reading `reads` (at the given versions)
    /// and blind-writing `writes`.
    fn tx(id: u64, reads: &[(u64, Option<Version>)], writes: &[u64]) -> Transaction {
        let mut b = RwSetBuilder::new();
        for &(key, ver) in reads {
            b.record_read(k(key), ver);
        }
        for &key in writes {
            b.record_write(k(key), Some(Value::from_i64(id as i64)));
        }
        Transaction {
            id: TxId(id),
            channel: ChannelId(0),
            client: ClientId(0),
            chaincode: "cc".into(),
            rwset: b.build(),
            endorsements: vec![],
            created_at: Instant::now(),
        }
    }

    fn store() -> MemStateDb {
        MemStateDb::with_genesis((0..32).map(|i| (k(i), Value::from_i64(0))))
    }

    fn g() -> Option<Version> {
        Some(Version::GENESIS)
    }

    /// Sequential vs lanes, untraced and traced, on one block.
    fn assert_differential(lanes: usize, txs: Vec<Transaction>, endorsed: Vec<bool>) {
        let block = Block::build(1, Digest::ZERO, txs);
        let db = store();

        let mut seq_codes = Vec::new();
        let seq_sink = TraceSink::enabled();
        let mut scratch = crate::validator::MvccScratch::new();
        mvcc_validate_traced(&block, &db, &endorsed, &mut scratch, &mut seq_codes, &seq_sink)
            .unwrap();

        let sched = LaneScheduler::new(lanes);
        let mut lane_codes = Vec::new();
        let lane_sink = TraceSink::enabled();
        let occ = sched
            .validate(&block, &db, &endorsed, None, &mut lane_codes, &lane_sink)
            .unwrap();
        assert_eq!(lane_codes, seq_codes, "codes diverge at {lanes} lanes");
        let seq_events: Vec<String> =
            seq_sink.drain().iter().map(|e| format!("{:?}", e.kind)).collect();
        let lane_events: Vec<String> =
            lane_sink.drain().iter().map(|e| format!("{:?}", e.kind)).collect();
        assert_eq!(lane_events, seq_events, "traced events diverge at {lanes} lanes");
        assert!(occ.lanes_used <= lanes as u64);
    }

    #[test]
    fn disjoint_transactions_match_sequential_on_every_lane_count() {
        for lanes in [1, 2, 4, 8] {
            let txs: Vec<Transaction> =
                (0..8).map(|i| tx(i + 1, &[(i, g())], &[i])).collect();
            assert_differential(lanes, txs, vec![true; 8]);
        }
    }

    #[test]
    fn dependency_chains_match_sequential() {
        for lanes in [2, 4] {
            // Chain A: 1 writes k0; 2 reads k0 (in-block conflict);
            // 3 writes k0 again; 4 reads k0 (conflict, witness = 3... but 3
            // is valid only if its own reads pass — it has none).
            // Chain B: 5 reads k9 at a WRONG version (store conflict).
            // Singleton: 6 unendorsed.
            let txs = vec![
                tx(1, &[], &[0]),
                tx(2, &[(0, g())], &[1]),
                tx(3, &[], &[0]),
                tx(4, &[(0, g())], &[2]),
                tx(5, &[(9, Some(Version::new(7, 7)))], &[9]),
                tx(6, &[(3, g())], &[3]),
            ];
            let endorsed = vec![true, true, true, true, true, false];
            assert_differential(lanes, txs, endorsed);
        }
    }

    #[test]
    fn partition_groups_readers_with_writers_and_co_writers() {
        let txs = vec![
            tx(1, &[], &[0]),          // writes k0
            tx(2, &[(0, g())], &[]),   // reads k0  → chain of 1
            tx(3, &[], &[0]),          // writes k0 → co-writer, same chain
            tx(4, &[(5, g())], &[6]),  // disjoint  → own chain
            tx(5, &[], &[]),           // empty     → own chain
        ];
        let block = Block::build(1, Digest::ZERO, txs);
        let db = store();
        let sched = LaneScheduler::new(2);
        let mut codes = Vec::new();
        let occ = sched
            .validate(&block, &db, &[true; 5], None, &mut codes, &TraceSink::disabled())
            .unwrap();
        // Chains: {1,2,3}, {4}, {5} → 5 txs - 3 chains = 2 serialized.
        assert_eq!(occ.chain_serializations, 2);
        assert_eq!(
            codes,
            vec![
                ValidationCode::Valid,
                ValidationCode::MvccConflict,
                ValidationCode::Valid,
                ValidationCode::Valid,
                ValidationCode::Valid,
            ]
        );
    }

    #[test]
    fn hints_and_rebuild_paths_agree() {
        // Build hints by hand over the same id space the rwsets imply.
        let txs = vec![
            tx(1, &[], &[0]),
            tx(2, &[(0, g())], &[1]),
            tx(3, &[(2, g())], &[2]),
        ];
        let block = Block::build(1, Digest::ZERO, txs);
        let db = store();

        let mut b = fabric_common::DependencyHintsBuilder::with_capacity(3);
        b.push_tx(&[], &[0]); // tx1: writes k0
        b.push_tx(&[0], &[1]); // tx2: reads k0, writes k1
        b.push_tx(&[2], &[2]); // tx3: reads k2, writes k2
        b.push_edge(0, 1); // tx1 writes what tx2 reads
        let hints = b.finish(3);

        let sched = LaneScheduler::new(4);
        let mut with_hints = Vec::new();
        let s1 = TraceSink::enabled();
        sched
            .validate(&block, &db, &[true; 3], Some(&hints), &mut with_hints, &s1)
            .unwrap();
        let mut without = Vec::new();
        let s2 = TraceSink::enabled();
        sched.validate(&block, &db, &[true; 3], None, &mut without, &s2).unwrap();
        assert_eq!(with_hints, without);
        let e1: Vec<String> = s1.drain().iter().map(|e| format!("{:?}", e.kind)).collect();
        let e2: Vec<String> = s2.drain().iter().map(|e| format!("{:?}", e.kind)).collect();
        assert_eq!(e1, e2);
        assert_eq!(
            with_hints,
            vec![ValidationCode::Valid, ValidationCode::MvccConflict, ValidationCode::Valid]
        );
    }

    #[test]
    fn malformed_hints_fall_back_to_rebuild() {
        let txs = vec![tx(1, &[(0, g())], &[0]), tx(2, &[(1, g())], &[1])];
        let block = Block::build(1, Digest::ZERO, txs);
        let db = store();
        // Hints for a different (1-tx) block: must be ignored.
        let mut b = fabric_common::DependencyHintsBuilder::with_capacity(1);
        b.push_tx(&[0], &[0]);
        let stale = b.finish(1);
        let sched = LaneScheduler::new(2);
        let mut codes = Vec::new();
        sched
            .validate(&block, &db, &[true; 2], Some(&stale), &mut codes, &TraceSink::disabled())
            .unwrap();
        assert_eq!(codes, vec![ValidationCode::Valid; 2]);
    }

    #[test]
    fn empty_block_is_a_no_op() {
        let block = Block::build(1, Digest::ZERO, vec![]);
        let db = store();
        let sched = LaneScheduler::new(4);
        let mut codes = vec![ValidationCode::Valid]; // stale content
        let occ = sched
            .validate(&block, &db, &[], None, &mut codes, &TraceSink::disabled())
            .unwrap();
        assert!(codes.is_empty());
        assert_eq!(occ.lanes_used, 0);
        assert_eq!(occ.chain_serializations, 0);
    }

    #[test]
    fn store_probe_traffic_matches_sequential() {
        // The lane path must issue the same single batched version read
        // over the same probe list (counters are part of the differential
        // contract).
        let txs = vec![
            tx(1, &[(0, g()), (1, g())], &[0]),
            tx(2, &[(1, g()), (2, g())], &[5]),
            tx(3, &[(0, g())], &[]),
        ];
        let endorsed = vec![true, true, true];
        let block = Block::build(1, Digest::ZERO, txs);

        let db_seq = store();
        let before = db_seq.counters().snapshot();
        let mut scratch = crate::validator::MvccScratch::new();
        let mut codes = Vec::new();
        mvcc_validate_traced(
            &block,
            &db_seq,
            &endorsed,
            &mut scratch,
            &mut codes,
            &TraceSink::disabled(),
        )
        .unwrap();
        let seq_stats = db_seq.counters().snapshot().since(&before);

        let db_lane = store();
        let before = db_lane.counters().snapshot();
        let sched = LaneScheduler::new(4);
        let mut lane_codes = Vec::new();
        sched
            .validate(&block, &db_lane, &endorsed, None, &mut lane_codes, &TraceSink::disabled())
            .unwrap();
        let lane_stats = db_lane.counters().snapshot().since(&before);
        assert_eq!(codes, lane_codes);
        assert_eq!(seq_stats.multi_get_batches, lane_stats.multi_get_batches);
        assert_eq!(seq_stats.multi_get_keys, lane_stats.multi_get_keys);
        assert_eq!(seq_stats.point_gets, lane_stats.point_gets);
    }
}
