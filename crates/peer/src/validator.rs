//! The validation phase (paper §2.2.3, Appendix A.3).
//!
//! Two checks per transaction, in order:
//!
//! 1. **Endorsement policy evaluation** — recompute every endorsement
//!    signature over the canonical transaction bytes and check that the
//!    endorsing organizations satisfy the policy. Catches tampered
//!    read/write sets and missing endorsements (the paper's malicious `T8`).
//! 2. **Serializability conflict check** — every read-set entry's version
//!    must match the current state *including the writes of earlier valid
//!    transactions in the same block* (commits happen at block granularity,
//!    so within-block conflicts invalidate later readers).

use std::collections::HashSet;

use fabric_common::{
    BitSet, CostModel, Key, KeyTable, OrgId, Result, SignerRegistry, Transaction, TxId,
    ValidationCode, Version,
};
use fabric_ledger::Block;
use fabric_statedb::StateStore;
use fabric_trace::{EventKind, TraceSink};

/// An endorsement policy expression, mirroring Fabric's policy language:
/// organization principals combined with `AND`, `OR`, and `OutOf` (K-of-N).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyExpr {
    /// Satisfied by an endorsement from this organization.
    Org(OrgId),
    /// All sub-expressions must be satisfied.
    And(Vec<PolicyExpr>),
    /// At least one sub-expression must be satisfied.
    Or(Vec<PolicyExpr>),
    /// At least `k` of the sub-expressions must be satisfied
    /// (Fabric's `OutOf(k, …)`).
    OutOf(usize, Vec<PolicyExpr>),
}

impl PolicyExpr {
    /// Evaluates the expression against the set of endorsing orgs.
    pub fn eval(&self, have: &HashSet<OrgId>) -> bool {
        match self {
            PolicyExpr::Org(o) => have.contains(o),
            PolicyExpr::And(subs) => subs.iter().all(|s| s.eval(have)),
            PolicyExpr::Or(subs) => subs.iter().any(|s| s.eval(have)),
            PolicyExpr::OutOf(k, subs) => {
                subs.iter().filter(|s| s.eval(have)).count() >= *k
            }
        }
    }
}

/// Which organizations must have endorsed a transaction.
///
/// The default constructor mirrors the paper's policy ("at least one peer
/// of each involved organization has to simulate the transaction proposal",
/// §2.2.1); [`EndorsementPolicy::from_expr`] accepts the full
/// AND/OR/K-of-N language of real Fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndorsementPolicy {
    expr: Option<PolicyExpr>,
    required_orgs: Vec<OrgId>,
}

impl EndorsementPolicy {
    /// Requires an endorsement from every org in `orgs`.
    pub fn require_orgs(mut orgs: Vec<OrgId>) -> Self {
        orgs.sort_unstable();
        orgs.dedup();
        EndorsementPolicy { expr: None, required_orgs: orgs }
    }

    /// Requires any single endorsement (testing convenience).
    pub fn any() -> Self {
        EndorsementPolicy { expr: None, required_orgs: Vec::new() }
    }

    /// Builds a policy from a full [`PolicyExpr`].
    pub fn from_expr(expr: PolicyExpr) -> Self {
        EndorsementPolicy { expr: Some(expr), required_orgs: Vec::new() }
    }

    /// The required organizations, ascending (empty for expression-based
    /// policies).
    pub fn required_orgs(&self) -> &[OrgId] {
        &self.required_orgs
    }

    /// Whether `tx`'s endorsing orgs satisfy this policy.
    ///
    /// A transaction with no endorsements at all never satisfies any
    /// policy: an unendorsed read/write set carries no trust whatsoever.
    pub fn satisfied_by(&self, tx: &Transaction) -> bool {
        if tx.endorsements.is_empty() {
            return false;
        }
        let have: HashSet<OrgId> = tx.endorsements.iter().map(|e| e.org).collect();
        match &self.expr {
            Some(expr) => expr.eval(&have),
            None => self.required_orgs.iter().all(|o| have.contains(o)),
        }
    }
}

/// Phase 1 of validation — endorsement-policy evaluation (Fabric's VSCC):
/// recompute every signature and check the endorsing orgs. Pure CPU work
/// over immutable transaction bytes; in Fabric v1.2 this runs *without*
/// holding the state lock, so the peer performs it before acquiring the
/// coarse gate.
///
/// Returns, per transaction, whether the endorsement check passed.
pub fn check_endorsements(
    block: &Block,
    registry: &SignerRegistry,
    policy: &EndorsementPolicy,
    cost: CostModel,
) -> Vec<bool> {
    block.txs.iter().map(|tx| check_endorsement(tx, registry, policy, cost)).collect()
}

/// The per-transaction unit of phase 1: policy evaluation plus signature
/// recomputation for one transaction. [`check_endorsements`] maps this over
/// a block sequentially; [`crate::ValidationPool`] chunks it across worker
/// threads — both must agree bit-for-bit.
pub fn check_endorsement(
    tx: &Transaction,
    registry: &SignerRegistry,
    policy: &EndorsementPolicy,
    cost: CostModel,
) -> bool {
    policy.satisfied_by(tx) && verify_signatures(tx, registry, cost)
}

/// Reusable working state for [`mvcc_validate_into`]: the key interner,
/// the deduped probe list, the prefetched version table, and the in-block
/// write bitset. All four retain their capacity across blocks, so a warm
/// validator runs the whole MVCC phase without allocating
/// (`tests/mvcc_alloc.rs` pins this down with a counting allocator).
#[derive(Default)]
pub struct MvccScratch {
    /// Dense key ids. Read keys are interned first (pass 1), so ids
    /// `0..probe_keys.len()` index both `probe_keys` and `fetched`; write
    /// keys interned in pass 2 extend the id space without disturbing that
    /// correspondence.
    keys: KeyTable,
    /// The block's distinct read keys, in id order.
    probe_keys: Vec<Key>,
    /// Pass-1 id of every read entry of every endorsed transaction, in
    /// scan order — pass 2 replays them instead of hashing each read key
    /// a second time.
    read_ids: Vec<u32>,
    /// Current store version per read-key id, filled by one batched
    /// multi-get.
    fetched: Vec<Option<Version>>,
    /// Key ids written by earlier *valid* transactions of this block.
    written: BitSet,
    /// Which valid transaction of this block wrote each key id — the
    /// conflicting witness for traced in-block MVCC conflicts. Maintained
    /// only when a sink is attached; entries are read only for ids whose
    /// `written` bit was set this block, so stale values are never seen.
    written_by: Vec<TxId>,
}

impl MvccScratch {
    /// Creates empty scratch state.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Phase 2 of validation — the MVCC serializability check against the
/// current state (Fabric's state validator). This is the part that must
/// be serial with commits (and, under the vanilla coarse lock, with
/// simulations).
///
/// `endorsement_ok` comes from [`check_endorsements`]; transactions that
/// failed it are marked [`ValidationCode::EndorsementFailure`] and do not
/// participate in the in-block write tracking.
///
/// Store access is batched: pass 1 dedupes the block's read keys, a single
/// [`StateStore::multi_get_versions_into`] call prefetches every current
/// version (one probe per *distinct* key, however many transactions read
/// it), and pass 2 — the sequential in-block dependency scan — runs
/// entirely against the cached table, tracking in-block writes in a dense
/// bitset keyed by interned id.
pub fn mvcc_validate_into(
    block: &Block,
    store: &dyn StateStore,
    endorsement_ok: &[bool],
    scratch: &mut MvccScratch,
    codes: &mut Vec<ValidationCode>,
) -> Result<()> {
    mvcc_validate_traced(block, store, endorsement_ok, scratch, codes, &TraceSink::disabled())
}

/// [`mvcc_validate_into`] with abort provenance: every transaction marked
/// [`ValidationCode::MvccConflict`] emits one
/// [`EventKind::TxMvccConflict`] naming the first offending read. A
/// conflict against an earlier valid transaction *in the same block*
/// carries `writer: Some(tx)` (and `expected: None` — the key's
/// post-commit version does not exist yet); a conflict against the store
/// carries the store's current version as `expected` and `writer: None`.
/// Endorsement failures emit [`EventKind::TxEndorsementFailed`].
///
/// A disabled `sink` makes this exactly [`mvcc_validate_into`]: same
/// codes, no witness bookkeeping.
pub fn mvcc_validate_traced(
    block: &Block,
    store: &dyn StateStore,
    endorsement_ok: &[bool],
    scratch: &mut MvccScratch,
    codes: &mut Vec<ValidationCode>,
    sink: &TraceSink,
) -> Result<()> {
    codes.clear();
    scratch.keys.clear();
    scratch.probe_keys.clear();
    scratch.read_ids.clear();
    scratch.written.clear_all();

    // Pass 1: dedupe read keys. Only reads are interned here, so a key is
    // new exactly when its id equals the probe list's length — ids and
    // probe positions stay in lockstep. The id of every read entry is
    // recorded in scan order so pass 2 never hashes a read key again.
    for (tx, &endorsed) in block.txs.iter().zip(endorsement_ok) {
        if !endorsed {
            continue;
        }
        for e in tx.rwset.reads.entries() {
            let id = scratch.keys.intern(&e.key);
            if id as usize == scratch.probe_keys.len() {
                scratch.probe_keys.push(e.key.clone());
            }
            scratch.read_ids.push(id);
        }
    }

    // The block's entire store read traffic: one batched prefetch.
    store.multi_get_versions_into(&scratch.probe_keys, &mut scratch.fetched)?;

    // Pass 2: sequential dependency scan against the cached version table.
    let traced = sink.is_enabled();
    let mut cursor = 0usize;
    for (tx, &endorsed) in block.txs.iter().zip(endorsement_ok) {
        if !endorsed {
            if traced {
                sink.emit(EventKind::TxEndorsementFailed {
                    block: block.header.number,
                    tx: tx.id,
                });
            }
            codes.push(ValidationCode::EndorsementFailure);
            continue;
        }
        let reads = tx.rwset.reads.entries();
        let ids = &scratch.read_ids[cursor..cursor + reads.len()];
        cursor += reads.len();
        let mut valid = true;
        for (e, &id) in reads.iter().zip(ids) {
            let id = id as usize;
            if id < scratch.written.capacity() && scratch.written.get(id) {
                // An earlier transaction in this very block updated the
                // key; this read's version necessarily predates it.
                valid = false;
                if traced {
                    sink.emit(EventKind::TxMvccConflict {
                        block: block.header.number,
                        tx: tx.id,
                        key: e.key.clone(),
                        expected: None,
                        observed: e.version,
                        writer: Some(scratch.written_by[id]),
                    });
                }
                break;
            }
            if scratch.fetched[id] != e.version {
                valid = false;
                if traced {
                    sink.emit(EventKind::TxMvccConflict {
                        block: block.header.number,
                        tx: tx.id,
                        key: e.key.clone(),
                        expected: scratch.fetched[id],
                        observed: e.version,
                        writer: None,
                    });
                }
                break;
            }
        }
        if valid {
            for e in tx.rwset.writes.entries() {
                let id = scratch.keys.intern(&e.key) as usize;
                if id >= scratch.written.capacity() {
                    scratch.written.grow(scratch.keys.len());
                }
                scratch.written.set(id);
                if traced {
                    if id >= scratch.written_by.len() {
                        scratch.written_by.resize(scratch.keys.len(), TxId(0));
                    }
                    scratch.written_by[id] = tx.id;
                }
            }
            codes.push(ValidationCode::Valid);
        } else {
            codes.push(ValidationCode::MvccConflict);
        }
    }
    Ok(())
}

/// Convenience wrapper over [`mvcc_validate_into`] with fresh scratch
/// state; pipeline callers that validate block after block hold a
/// long-lived [`MvccScratch`] instead.
pub fn mvcc_validate(
    block: &Block,
    store: &dyn StateStore,
    endorsement_ok: &[bool],
) -> Result<Vec<ValidationCode>> {
    let mut scratch = MvccScratch::new();
    let mut codes = Vec::with_capacity(block.txs.len());
    mvcc_validate_into(block, store, endorsement_ok, &mut scratch, &mut codes)?;
    Ok(codes)
}

/// Full validation: both phases back to back (single-threaded callers).
///
/// Returns one [`ValidationCode`] per transaction, parallel to
/// `block.txs`. Does not mutate the store — committing is the
/// [`crate::committer`]'s job.
pub fn validate_block(
    block: &Block,
    store: &dyn StateStore,
    registry: &SignerRegistry,
    policy: &EndorsementPolicy,
    cost: CostModel,
) -> Result<Vec<ValidationCode>> {
    let ok = check_endorsements(block, registry, policy, cost);
    mvcc_validate(block, store, &ok)
}

fn verify_signatures(tx: &Transaction, registry: &SignerRegistry, cost: CostModel) -> bool {
    let payload = tx.payload();
    tx.endorsements
        .iter()
        .all(|e| registry.verify_iterated(e.peer, &[&payload], &e.signature, cost.verify_iterations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_common::rwset::{rwset_from_keys, ReadWriteSet, RwSetBuilder};
    use fabric_common::{
        ChannelId, ClientId, Digest, Endorsement, PeerId, SigningKey, TxId, Value, Version,
    };
    use fabric_statedb::MemStateDb;
    use std::sync::Arc;
    use std::time::Instant;

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    struct Harness {
        store: Arc<MemStateDb>,
        registry: SignerRegistry,
        policy: EndorsementPolicy,
    }

    impl Harness {
        fn new() -> Self {
            let store = Arc::new(MemStateDb::with_genesis([
                (k("balA"), Value::from_i64(100)),
                (k("balB"), Value::from_i64(50)),
            ]));
            let registry = SignerRegistry::new();
            for p in 1..=4u64 {
                registry.register(PeerId(p), SigningKey::for_peer(PeerId(p), 9));
            }
            Harness {
                store,
                registry,
                policy: EndorsementPolicy::require_orgs(vec![OrgId(1), OrgId(2)]),
            }
        }

        /// Builds a correctly endorsed transaction with the given rwset.
        fn tx(&self, rwset: ReadWriteSet) -> Transaction {
            let id = TxId::next();
            let payload = Transaction::signing_payload(id, ChannelId(0), "cc", &rwset);
            let endorsements = [(PeerId(1), OrgId(1)), (PeerId(3), OrgId(2))]
                .iter()
                .map(|&(peer, org)| Endorsement {
                    peer,
                    org,
                    signature: SigningKey::for_peer(peer, 9).sign_iterated(&[&payload], 1),
                })
                .collect();
            Transaction {
                id,
                channel: ChannelId(0),
                client: ClientId(0),
                chaincode: "cc".into(),
                rwset,
                endorsements,
                created_at: Instant::now(),
            }
        }

        fn validate(&self, txs: Vec<Transaction>) -> Vec<ValidationCode> {
            let block = Block::build(1, Digest::ZERO, txs);
            validate_block(&block, self.store.as_ref(), &self.registry, &self.policy, CostModel::raw())
                .unwrap()
        }
    }

    fn transfer_rwset(read_version: Version) -> ReadWriteSet {
        rwset_from_keys(
            &[k("balA"), k("balB")],
            read_version,
            &[k("balA"), k("balB")],
            &Value::from_i64(75),
        )
    }

    #[test]
    fn valid_transaction_passes() {
        let h = Harness::new();
        let tx = h.tx(transfer_rwset(Version::GENESIS));
        assert_eq!(h.validate(vec![tx]), vec![ValidationCode::Valid]);
    }

    #[test]
    fn stale_read_version_fails_mvcc() {
        let h = Harness::new();
        let tx = h.tx(transfer_rwset(Version::new(5, 0)));
        assert_eq!(h.validate(vec![tx]), vec![ValidationCode::MvccConflict]);
    }

    #[test]
    fn tampered_write_set_fails_endorsement() {
        let h = Harness::new();
        let mut tx = h.tx(transfer_rwset(Version::GENESIS));
        // Malicious client swaps the write set after endorsement (the
        // paper's T8).
        tx.rwset = rwset_from_keys(
            &[k("balA"), k("balB")],
            Version::GENESIS,
            &[k("balA")],
            &Value::from_i64(1_000_000),
        );
        assert_eq!(h.validate(vec![tx]), vec![ValidationCode::EndorsementFailure]);
    }

    #[test]
    fn missing_org_fails_policy() {
        let h = Harness::new();
        let mut tx = h.tx(transfer_rwset(Version::GENESIS));
        // Drop the org-2 endorsement.
        tx.endorsements.retain(|e| e.org == OrgId(1));
        // Signatures still valid, but the policy wants both orgs.
        assert_eq!(h.validate(vec![tx]), vec![ValidationCode::EndorsementFailure]);
    }

    #[test]
    fn no_endorsements_fails() {
        let h = Harness::new();
        let mut tx = h.tx(transfer_rwset(Version::GENESIS));
        tx.endorsements.clear();
        assert_eq!(h.validate(vec![tx]), vec![ValidationCode::EndorsementFailure]);
        // Even under the anything-goes policy.
        let block = Block::build(1, Digest::ZERO, vec![{
            let mut t = h.tx(transfer_rwset(Version::GENESIS));
            t.endorsements.clear();
            t
        }]);
        let codes = validate_block(
            &block,
            h.store.as_ref(),
            &h.registry,
            &EndorsementPolicy::any(),
            CostModel::raw(),
        )
        .unwrap();
        assert_eq!(codes, vec![ValidationCode::EndorsementFailure]);
    }

    #[test]
    fn within_block_conflict_invalidates_later_reader() {
        // Paper Table 1: T1 writes k1; later transactions in the same block
        // read k1 at the old version → invalid.
        let h = Harness::new();
        let writer = h.tx(rwset_from_keys(
            &[],
            Version::GENESIS,
            &[k("balA")],
            &Value::from_i64(1),
        ));
        let reader = h.tx(rwset_from_keys(
            &[k("balA")],
            Version::GENESIS,
            &[k("other")],
            &Value::from_i64(2),
        ));
        assert_eq!(
            h.validate(vec![writer, reader]),
            vec![ValidationCode::Valid, ValidationCode::MvccConflict]
        );
    }

    #[test]
    fn reader_before_writer_both_valid() {
        // The conflict-free order of Table 2: reader first.
        let h = Harness::new();
        let writer = h.tx(rwset_from_keys(
            &[],
            Version::GENESIS,
            &[k("balA")],
            &Value::from_i64(1),
        ));
        let reader = h.tx(rwset_from_keys(
            &[k("balA")],
            Version::GENESIS,
            &[k("other")],
            &Value::from_i64(2),
        ));
        assert_eq!(
            h.validate(vec![reader, writer]),
            vec![ValidationCode::Valid, ValidationCode::Valid]
        );
    }

    #[test]
    fn invalid_transactions_do_not_poison_in_block_state() {
        // An invalid writer's writes must NOT count for later conflicts.
        let h = Harness::new();
        let bad_writer = h.tx(rwset_from_keys(
            &[k("balA")],
            Version::new(9, 9), // stale → invalid
            &[k("balB")],
            &Value::from_i64(1),
        ));
        let reader = h.tx(rwset_from_keys(
            &[k("balB")],
            Version::GENESIS,
            &[],
            &Value::from_i64(0),
        ));
        assert_eq!(
            h.validate(vec![bad_writer, reader]),
            vec![ValidationCode::MvccConflict, ValidationCode::Valid]
        );
    }

    #[test]
    fn read_of_absent_key_validates_against_absence() {
        let h = Harness::new();
        let mut b = RwSetBuilder::new();
        b.record_read(k("ghost"), None);
        b.record_write(k("out"), Some(Value::from_i64(1)));
        let tx_absent = h.tx(b.build());
        assert_eq!(h.validate(vec![tx_absent]), vec![ValidationCode::Valid]);

        // Claiming a version for an absent key fails.
        let mut b = RwSetBuilder::new();
        b.record_read(k("ghost"), Some(Version::GENESIS));
        let tx_wrong = h.tx(b.build());
        assert_eq!(h.validate(vec![tx_wrong]), vec![ValidationCode::MvccConflict]);
    }

    #[test]
    fn policy_predicates() {
        let p = EndorsementPolicy::require_orgs(vec![OrgId(2), OrgId(1), OrgId(2)]);
        assert_eq!(p.required_orgs(), &[OrgId(1), OrgId(2)]);
        let h = Harness::new();
        let tx = h.tx(transfer_rwset(Version::GENESIS));
        assert!(p.satisfied_by(&tx));
        let p3 = EndorsementPolicy::require_orgs(vec![OrgId(1), OrgId(2), OrgId(3)]);
        assert!(!p3.satisfied_by(&tx));
        assert!(EndorsementPolicy::any().satisfied_by(&tx));
    }

    #[test]
    fn policy_expressions_evaluate_correctly() {
        use PolicyExpr::*;
        let have: HashSet<OrgId> = [OrgId(1), OrgId(3)].into_iter().collect();

        assert!(Org(OrgId(1)).eval(&have));
        assert!(!Org(OrgId(2)).eval(&have));
        assert!(And(vec![Org(OrgId(1)), Org(OrgId(3))]).eval(&have));
        assert!(!And(vec![Org(OrgId(1)), Org(OrgId(2))]).eval(&have));
        assert!(Or(vec![Org(OrgId(2)), Org(OrgId(3))]).eval(&have));
        assert!(!Or(vec![Org(OrgId(2)), Org(OrgId(4))]).eval(&have));
        // 2-of-3.
        let two_of_three =
            OutOf(2, vec![Org(OrgId(1)), Org(OrgId(2)), Org(OrgId(3))]);
        assert!(two_of_three.eval(&have));
        let two_of_three_miss =
            OutOf(2, vec![Org(OrgId(1)), Org(OrgId(2)), Org(OrgId(4))]);
        assert!(!two_of_three_miss.eval(&have));
        // Nested: (org1 AND (org2 OR org3)).
        let nested = And(vec![Org(OrgId(1)), Or(vec![Org(OrgId(2)), Org(OrgId(3))])]);
        assert!(nested.eval(&have));
        // Degenerate forms.
        assert!(And(vec![]).eval(&have), "empty AND is vacuously true");
        assert!(!Or(vec![]).eval(&have), "empty OR is false");
        assert!(OutOf(0, vec![]).eval(&have), "0-of-0 is satisfied");
    }

    #[test]
    fn expression_policy_in_validation() {
        let h = Harness::new();
        // Policy: org1 AND (org2 OR org3). Our harness endorses with
        // orgs 1 and 2 → satisfied.
        let policy = EndorsementPolicy::from_expr(PolicyExpr::And(vec![
            PolicyExpr::Org(OrgId(1)),
            PolicyExpr::Or(vec![PolicyExpr::Org(OrgId(2)), PolicyExpr::Org(OrgId(3))]),
        ]));
        let tx = h.tx(transfer_rwset(Version::GENESIS));
        assert!(policy.satisfied_by(&tx));
        let block = Block::build(1, Digest::ZERO, vec![tx]);
        let codes =
            validate_block(&block, h.store.as_ref(), &h.registry, &policy, CostModel::raw())
                .unwrap();
        assert_eq!(codes, vec![ValidationCode::Valid]);

        // Policy requiring 2-of-(org3, org4, org5) is NOT satisfied.
        let strict = EndorsementPolicy::from_expr(PolicyExpr::OutOf(
            2,
            vec![
                PolicyExpr::Org(OrgId(3)),
                PolicyExpr::Org(OrgId(4)),
                PolicyExpr::Org(OrgId(5)),
            ],
        ));
        let tx = h.tx(transfer_rwset(Version::GENESIS));
        let block = Block::build(1, Digest::ZERO, vec![tx]);
        let codes =
            validate_block(&block, h.store.as_ref(), &h.registry, &strict, CostModel::raw())
                .unwrap();
        assert_eq!(codes, vec![ValidationCode::EndorsementFailure]);
    }

    #[test]
    fn expression_policy_rejects_unendorsed() {
        let h = Harness::new();
        // Even a vacuously-true expression rejects an unendorsed tx.
        let policy = EndorsementPolicy::from_expr(PolicyExpr::And(vec![]));
        let mut tx = h.tx(transfer_rwset(Version::GENESIS));
        tx.endorsements.clear();
        assert!(!policy.satisfied_by(&tx));
    }

    #[test]
    fn paper_appendix_a3_running_example() {
        // Block with T8 (tampered), T7 (fine), T9 (stale after T7 commits —
        // here within the same block, reading keys T7 writes).
        let h = Harness::new();
        let t7 = h.tx(transfer_rwset(Version::GENESIS));
        let mut t8 = h.tx(transfer_rwset(Version::GENESIS));
        t8.rwset = rwset_from_keys(
            &[k("balA"), k("balB")],
            Version::GENESIS,
            &[k("balA"), k("balB")],
            &Value::from_i64(120),
        );
        let t9 = h.tx(transfer_rwset(Version::GENESIS));
        let codes = h.validate(vec![t8, t7, t9]);
        assert_eq!(
            codes,
            vec![
                ValidationCode::EndorsementFailure, // T8: signature mismatch
                ValidationCode::Valid,              // T7
                ValidationCode::MvccConflict,       // T9: read what T7 wrote
            ]
        );
    }
}
