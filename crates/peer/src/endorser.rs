//! The simulation phase: endorsers execute proposals and sign the effects.
//!
//! "The endorsers now simulate the transaction proposal against a local
//! copy of the current state in parallel. […] each endorser builds up a
//! read set and a write set during simulation […] After simulation, each
//! endorser returns its read and write set to the client\[,\] along with […]
//! a cryptographic signature over the sets." (paper §2.2.1)
//!
//! Concurrency modes (paper §4.2.1 vs. §5.2.1):
//!
//! * **Coarse (vanilla)** — simulation holds a shared read lock over the
//!   entire state; block validation takes the write lock; the two phases
//!   serialize, and a simulation can never observe a concurrent commit.
//! * **Fine-grained (Fabric++)** — no lock; the simulation pins the last
//!   committed block and validates every read's version against it,
//!   aborting the proposal the moment a stale read is observed.

use std::sync::Arc;

use parking_lot::RwLock;

use fabric_common::rwset::ReadWriteSet;
use fabric_common::{
    ConcurrencyMode, CostModel, Endorsement, OrgId, PeerId, SigningKey, Transaction,
    TransactionProposal,
};
use fabric_statedb::{SnapshotView, StateStore};

use crate::chaincode::{ChaincodeRegistry, SimulationError, TxContext};

/// What an endorser returns to the client.
#[derive(Debug, Clone)]
pub struct EndorsementResponse {
    /// The effects the simulation computed.
    pub rwset: ReadWriteSet,
    /// The endorser's signature binding it to those effects.
    pub endorsement: Endorsement,
}

/// One endorsing peer's simulation engine.
pub struct Endorser {
    peer: PeerId,
    org: OrgId,
    key: SigningKey,
    store: Arc<dyn StateStore>,
    chaincodes: ChaincodeRegistry,
    /// Coarse state gate, shared with this peer's validator in
    /// [`ConcurrencyMode::CoarseLock`]; `None` under fine-grained control.
    gate: Option<Arc<RwLock<()>>>,
    /// Abort simulations on stale reads (Fabric++).
    early_abort: bool,
    cost: CostModel,
}

impl Endorser {
    /// Creates an endorser.
    ///
    /// `gate` must be the same lock the peer's validation phase takes in
    /// write mode when `mode` is [`ConcurrencyMode::CoarseLock`], and is
    /// ignored (may be `None`) under [`ConcurrencyMode::FineGrained`].
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        peer: PeerId,
        org: OrgId,
        key: SigningKey,
        store: Arc<dyn StateStore>,
        chaincodes: ChaincodeRegistry,
        mode: ConcurrencyMode,
        gate: Option<Arc<RwLock<()>>>,
        early_abort_simulation: bool,
        cost: CostModel,
    ) -> Self {
        let gate = match mode {
            ConcurrencyMode::CoarseLock => {
                Some(gate.expect("coarse-lock mode requires the shared state gate"))
            }
            ConcurrencyMode::FineGrained => None,
        };
        Endorser {
            peer,
            org,
            key,
            store,
            chaincodes,
            gate,
            early_abort: early_abort_simulation,
            cost,
        }
    }

    /// The endorsing peer's id.
    pub fn peer(&self) -> PeerId {
        self.peer
    }

    /// The endorsing peer's organization.
    pub fn org(&self) -> OrgId {
        self.org
    }

    /// Simulates `proposal` and signs the effects.
    pub fn simulate(
        &self,
        proposal: &TransactionProposal,
    ) -> Result<EndorsementResponse, SimulationError> {
        let cc = self.chaincodes.get(&proposal.chaincode).ok_or_else(|| {
            SimulationError::ChaincodeError(format!(
                "chaincode {:?} not deployed",
                proposal.chaincode
            ))
        })?;

        // Under the coarse lock the read guard spans the whole simulation
        // (paper §4.2.1: "it acquires a read lock on the entire current
        // state"); under fine-grained control there is nothing to lock.
        let _guard = self.gate.as_ref().map(|g| g.read());

        let snapshot = SnapshotView::pin(Arc::clone(&self.store));
        let mut ctx = TxContext::new(snapshot, self.early_abort);
        // A chaincode that can name its read set from the arguments alone
        // gets it resolved in one engine round trip before execution.
        if let Some(keys) = cc.declared_reads(&proposal.args) {
            ctx.prefetch(&keys)?;
        }
        // Model the chaincode-container execution time (paper §3(d)); this
        // is the window in which a concurrent commit can stale the snapshot.
        if !self.cost.chaincode_delay.is_zero() {
            std::thread::sleep(self.cost.chaincode_delay);
        }
        let invoked = cc.invoke(&mut ctx, &proposal.args);
        // A stale read in early-abort mode dooms the simulation no matter
        // how the chaincode mapped (or swallowed) the error it got back:
        // the structured abort outranks the string-typed chaincode result.
        if let Some(stale) = ctx.take_stale_abort() {
            return Err(stale);
        }
        invoked.map_err(SimulationError::ChaincodeError)?;
        let rwset = ctx.finish();

        let payload = Transaction::signing_payload(
            proposal.id,
            proposal.channel,
            &proposal.chaincode,
            &rwset,
        );
        let signature = self.key.sign_iterated(&[&payload], self.cost.sign_iterations);
        Ok(EndorsementResponse {
            rwset,
            endorsement: Endorsement { peer: self.peer, org: self.org, signature },
        })
    }
}

impl std::fmt::Debug for Endorser {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Endorser({}, {}, {})",
            self.peer,
            self.org,
            if self.gate.is_some() { "coarse" } else { "fine-grained" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaincode::Chaincode;
    use fabric_common::{ChannelId, ClientId, Key, SignerRegistry, Value};
    use fabric_statedb::{CommitWrite, MemStateDb};

    struct Incr;
    impl Chaincode for Incr {
        fn invoke(&self, ctx: &mut TxContext, args: &[u8]) -> Result<(), String> {
            let key = Key::new(args.to_vec());
            let cur = ctx.get_i64(&key).map_err(|e| e.to_string())?.unwrap_or(0);
            ctx.put_i64(key, cur + 1);
            Ok(())
        }
    }

    fn registry() -> ChaincodeRegistry {
        let mut r = ChaincodeRegistry::new();
        r.deploy("incr", Arc::new(Incr));
        r
    }

    fn db() -> Arc<MemStateDb> {
        Arc::new(MemStateDb::with_genesis([(Key::from("x"), Value::from_i64(10))]))
    }

    fn proposal(args: &[u8]) -> TransactionProposal {
        TransactionProposal::new(ChannelId(0), ClientId(0), "incr", args.to_vec())
    }

    fn fine_endorser(store: Arc<MemStateDb>, early_abort: bool) -> Endorser {
        Endorser::new(
            PeerId(1),
            OrgId(1),
            SigningKey::for_peer(PeerId(1), 7),
            store,
            registry(),
            ConcurrencyMode::FineGrained,
            None,
            early_abort,
            CostModel::raw(),
        )
    }

    #[test]
    fn simulation_returns_signed_effects() {
        let store = db();
        let e = fine_endorser(store, true);
        let p = proposal(b"x");
        let resp = e.simulate(&p).unwrap();
        assert_eq!(
            resp.rwset.writes.value_of(&Key::from("x")),
            Some(Some(&Value::from_i64(11)))
        );
        // Signature verifies against the canonical payload.
        let reg = SignerRegistry::new();
        reg.register(PeerId(1), SigningKey::for_peer(PeerId(1), 7));
        let payload = Transaction::signing_payload(p.id, p.channel, &p.chaincode, &resp.rwset);
        assert!(reg.verify_iterated(PeerId(1), &[&payload], &resp.endorsement.signature, 1));
        assert_eq!(resp.endorsement.peer, PeerId(1));
        assert_eq!(resp.endorsement.org, OrgId(1));
    }

    #[test]
    fn missing_chaincode_is_an_error() {
        let e = fine_endorser(db(), true);
        let p = TransactionProposal::new(ChannelId(0), ClientId(0), "nope", vec![]);
        assert!(matches!(e.simulate(&p), Err(SimulationError::ChaincodeError(_))));
    }

    #[test]
    fn two_endorsers_produce_identical_rwsets() {
        // Determinism: the client can only proceed if all endorsers agree.
        let store = db();
        let e1 = fine_endorser(Arc::clone(&store), true);
        let e2 = Endorser::new(
            PeerId(2),
            OrgId(2),
            SigningKey::for_peer(PeerId(2), 7),
            store,
            registry(),
            ConcurrencyMode::FineGrained,
            None,
            true,
            CostModel::raw(),
        );
        let p = proposal(b"x");
        let r1 = e1.simulate(&p).unwrap();
        let r2 = e2.simulate(&p).unwrap();
        assert_eq!(r1.rwset, r2.rwset);
        assert_ne!(r1.endorsement.signature, r2.endorsement.signature, "different keys");
    }

    #[test]
    fn stale_read_early_aborts_in_fabricpp_mode() {
        let store = db();
        // Pre-commit block 1 touching x... but the snapshot pins at sim
        // start, so instead: start simulation via a chaincode that first
        // observes, then we commit, then it reads again. Simpler: pin the
        // endorser's snapshot by racing — emulate with a wrapper chaincode
        // that commits mid-simulation.
        struct RacingRead {
            store: Arc<MemStateDb>,
        }
        impl Chaincode for RacingRead {
            fn invoke(&self, ctx: &mut TxContext, _args: &[u8]) -> Result<(), String> {
                // A concurrent validation phase commits block 1 while this
                // simulation is running.
                self.store
                    .apply_block(1, &[CommitWrite::put(Key::from("x"), Value::from_i64(99), 0)])
                    .unwrap();
                // Now the read observes block 1 > snapshot 0.
                match ctx.get(&Key::from("x")) {
                    Err(SimulationError::StaleRead { .. }) => Err("stale-as-expected".into()),
                    other => Err(format!("expected stale read, got {other:?}")),
                }
            }
        }
        let mut reg = ChaincodeRegistry::new();
        reg.deploy("race", Arc::new(RacingRead { store: Arc::clone(&store) }));
        let e = Endorser::new(
            PeerId(1),
            OrgId(1),
            SigningKey::for_peer(PeerId(1), 7),
            store,
            reg,
            ConcurrencyMode::FineGrained,
            None,
            true,
            CostModel::raw(),
        );
        let p = TransactionProposal::new(ChannelId(0), ClientId(0), "race", vec![]);
        // The chaincode flattened the abort to an opaque string, but the
        // endorser recovers the structured stale read with its provenance.
        match e.simulate(&p) {
            Err(SimulationError::StaleRead { key, snapshot_block, observed }) => {
                assert_eq!(key, Key::from("x"));
                assert_eq!(snapshot_block, 0);
                assert_eq!(observed, fabric_common::Version::new(1, 0));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn coarse_lock_blocks_concurrent_commit() {
        // Under the coarse gate, a writer cannot take the gate while a
        // simulation holds the read side.
        let store = db();
        let gate = Arc::new(RwLock::new(()));
        let gate2 = Arc::clone(&gate);

        struct GateProbe {
            gate: Arc<RwLock<()>>,
        }
        impl Chaincode for GateProbe {
            fn invoke(&self, ctx: &mut TxContext, _args: &[u8]) -> Result<(), String> {
                // While simulating, the write lock must be unavailable.
                if self.gate.try_write().is_some() {
                    return Err("gate was not held during simulation".into());
                }
                let _ = ctx.get(&Key::from("x"));
                Ok(())
            }
        }
        let mut reg = ChaincodeRegistry::new();
        reg.deploy("probe", Arc::new(GateProbe { gate: gate2 }));
        let e = Endorser::new(
            PeerId(1),
            OrgId(1),
            SigningKey::for_peer(PeerId(1), 7),
            store,
            reg,
            ConcurrencyMode::CoarseLock,
            Some(gate.clone()),
            false,
            CostModel::raw(),
        );
        let p = TransactionProposal::new(ChannelId(0), ClientId(0), "probe", vec![]);
        e.simulate(&p).unwrap();
        // After simulation the gate is free again.
        assert!(gate.try_write().is_some());
    }

    #[test]
    #[should_panic(expected = "coarse-lock mode requires")]
    fn coarse_without_gate_panics() {
        let _ = Endorser::new(
            PeerId(1),
            OrgId(1),
            SigningKey::for_peer(PeerId(1), 7),
            db(),
            registry(),
            ConcurrencyMode::CoarseLock,
            None,
            false,
            CostModel::raw(),
        );
    }

    #[test]
    fn cost_model_changes_signature() {
        let store = db();
        let cheap = fine_endorser(Arc::clone(&store), true);
        let costly = Endorser::new(
            PeerId(1),
            OrgId(1),
            SigningKey::for_peer(PeerId(1), 7),
            store,
            registry(),
            ConcurrencyMode::FineGrained,
            None,
            true,
            CostModel { sign_iterations: 32, verify_iterations: 32, ..CostModel::raw() },
        );
        let p = proposal(b"x");
        let r1 = cheap.simulate(&p).unwrap();
        let r2 = costly.simulate(&p).unwrap();
        assert_eq!(r1.rwset, r2.rwset);
        assert_ne!(r1.endorsement.signature, r2.endorsement.signature);
    }
}
