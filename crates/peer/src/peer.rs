//! One peer: state database, ledger, endorser, validation+commit loop.

use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

use fabric_common::{
    ConcurrencyMode, CostModel, DependencyHints, LatencyRecorder, OrgId, PeerId, Phase,
    PhaseTimers, Result, SignerRegistry, SigningKey, SubsystemGauges, TransactionProposal,
    TxCounters, ValidationCode,
};
use fabric_telemetry::TelemetryHub;
use fabric_ledger::{Block, CommittedBlock, Ledger};
use fabric_statedb::{CommitWrite, StateStore};
use fabric_trace::{EventKind, TraceSink};

use crate::chaincode::{ChaincodeRegistry, SimulationError};
use crate::committer::{commit_block_traced, commit_block_traced_lanes};
use crate::endorser::{EndorsementResponse, Endorser};
use crate::lanes::LaneScheduler;
use crate::validation_pool::{PendingChecks, ValidationPool};
use crate::validator::{EndorsementPolicy, MvccScratch};

/// A full peer node.
///
/// Holds the local state database copy and ledger, simulates proposals
/// (through its [`Endorser`]), and validates + commits incoming blocks.
/// Under [`ConcurrencyMode::CoarseLock`] the peer owns the read/write gate
/// that serializes simulation against validation (paper §4.2.1); under
/// [`ConcurrencyMode::FineGrained`] the gate is gone and the lock-free
/// version-check protocol applies (paper §5.2.1).
pub struct Peer {
    id: PeerId,
    org: OrgId,
    store: Arc<dyn StateStore>,
    ledger: Arc<Ledger>,
    registry: SignerRegistry,
    policy: EndorsementPolicy,
    endorser: Endorser,
    gate: Option<Arc<RwLock<()>>>,
    cost: CostModel,
    /// Endorsement-signature validation pool; defaults to the sequential
    /// same-thread mode (deterministic harnesses), replaced by a shared
    /// threaded pool in the threaded network runtime.
    pool: Arc<ValidationPool>,
    /// Outcome counters; populated only on the designated reporting peer so
    /// network-wide numbers are not multiplied by the peer count.
    counters: Option<TxCounters>,
    latency: Option<LatencyRecorder>,
    /// Per-phase timers; reporting peer only, like `counters`.
    timers: Option<PhaseTimers>,
    /// Long-lived MVCC working state: blocks arrive in order, so the
    /// validator's interner, probe list, prefetch table, and write bitset
    /// are reused block after block (steady-state allocation-free).
    mvcc_scratch: Mutex<MvccScratch>,
    /// Flight-recorder sink; disabled by default. Like `counters`, only the
    /// reporting peer should carry an enabled sink, so network-wide event
    /// streams are not multiplied by the peer count.
    sink: TraceSink,
    /// Dependency-aware lane scheduler for the MVCC + commit phases;
    /// `None` (sequential) unless `commit_lanes > 1` was configured. The
    /// lane count is never semantic: both paths produce byte-identical
    /// validation codes, post-state, and traced events.
    lanes: Option<LaneScheduler>,
    /// Shared subsystem gauges; disabled (`None`) by default. Endorsements
    /// bump the endorsement counter the telemetry layer windows over.
    gauges: Option<SubsystemGauges>,
    /// Telemetry hub advanced one tick per committed block; reporting peer
    /// only, like `counters` — logical time must not be multiplied by the
    /// peer count. Disabled hubs are a branch-and-return.
    telemetry: TelemetryHub,
}

impl Peer {
    /// Creates a peer.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: PeerId,
        org: OrgId,
        key: SigningKey,
        store: Arc<dyn StateStore>,
        chaincodes: ChaincodeRegistry,
        registry: SignerRegistry,
        policy: EndorsementPolicy,
        mode: ConcurrencyMode,
        early_abort_simulation: bool,
        cost: CostModel,
    ) -> Self {
        let gate = match mode {
            ConcurrencyMode::CoarseLock => Some(Arc::new(RwLock::new(()))),
            ConcurrencyMode::FineGrained => None,
        };
        let endorser = Endorser::new(
            id,
            org,
            key,
            Arc::clone(&store),
            chaincodes,
            mode,
            gate.clone(),
            early_abort_simulation,
            cost,
        );
        Peer {
            id,
            org,
            store,
            ledger: Arc::new(Ledger::new()),
            registry,
            policy,
            endorser,
            gate,
            cost,
            pool: Arc::new(ValidationPool::sequential()),
            counters: None,
            latency: None,
            timers: None,
            mvcc_scratch: Mutex::new(MvccScratch::new()),
            sink: TraceSink::disabled(),
            lanes: None,
            gauges: None,
            telemetry: TelemetryHub::disabled(),
        }
    }

    /// Rebuilds a peer around an already-recovered ledger and state —
    /// the restart half of a crash/restart cycle (see
    /// [`crate::recovery`]). Identical to [`Peer::new`] except that the
    /// ledger is taken as-is instead of starting empty, so the restored
    /// peer resumes processing at its pre-crash height.
    #[allow(clippy::too_many_arguments)]
    pub fn restore(
        id: PeerId,
        org: OrgId,
        key: SigningKey,
        store: Arc<dyn StateStore>,
        ledger: Ledger,
        chaincodes: ChaincodeRegistry,
        registry: SignerRegistry,
        policy: EndorsementPolicy,
        mode: ConcurrencyMode,
        early_abort_simulation: bool,
        cost: CostModel,
    ) -> Self {
        let mut peer = Peer::new(
            id,
            org,
            key,
            store,
            chaincodes,
            registry,
            policy,
            mode,
            early_abort_simulation,
            cost,
        );
        peer.ledger = Arc::new(ledger);
        peer
    }

    /// Marks this peer as the network's reporting peer: it records final
    /// transaction outcomes and commit latencies.
    pub fn with_reporting(mut self, counters: TxCounters, latency: LatencyRecorder) -> Self {
        self.counters = Some(counters);
        self.latency = Some(latency);
        self
    }

    /// Replaces the validation pool (the threaded runtime shares one pool
    /// across all peers — signature checking is stateless).
    pub fn with_validation_pool(mut self, pool: Arc<ValidationPool>) -> Self {
        self.pool = pool;
        self
    }

    /// Attaches per-phase timers; like [`Peer::with_reporting`], only the
    /// designated reporting peer gets them.
    pub fn with_phase_timers(mut self, timers: PhaseTimers) -> Self {
        self.timers = Some(timers);
        self
    }

    /// Attaches a flight-recorder sink: endorsements, per-block validation
    /// spans, MVCC-conflict provenance, and commit confirmations are
    /// recorded through it. Reporting peer only, like
    /// [`Peer::with_reporting`].
    pub fn with_trace(mut self, sink: TraceSink) -> Self {
        self.sink = sink;
        self
    }

    /// Attaches subsystem gauges: the peer bumps the endorsement counter
    /// per simulated proposal. Reporting peer only, like
    /// [`Peer::with_reporting`].
    pub fn with_gauges(mut self, gauges: SubsystemGauges) -> Self {
        self.gauges = Some(gauges);
        self
    }

    /// Attaches the telemetry hub: the peer advances the hub's logical
    /// clock by one tick per committed block. Reporting peer only, like
    /// [`Peer::with_reporting`] — windows are keyed to chain progress, not
    /// to per-replica duplicates of it.
    pub fn with_telemetry(mut self, hub: TelemetryHub) -> Self {
        self.telemetry = hub;
        self
    }

    /// Configures dependency-aware parallel validation + commit on `lanes`
    /// worker lanes (the `commit_lanes` pipeline knob). `lanes <= 1` keeps
    /// the sequential path; the result is byte-identical either way.
    pub fn with_commit_lanes(mut self, lanes: usize) -> Self {
        self.lanes = (lanes > 1).then(|| LaneScheduler::new(lanes));
        self
    }

    /// The peer's id.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// The peer's organization.
    pub fn org(&self) -> OrgId {
        self.org
    }

    /// The peer's ledger.
    pub fn ledger(&self) -> &Arc<Ledger> {
        &self.ledger
    }

    /// The peer's state database.
    pub fn store(&self) -> &Arc<dyn StateStore> {
        &self.store
    }

    /// Installs the genesis block: `initial` key/values become state block
    /// 0 and a block 0 carrying them as a bootstrap transaction anchors the
    /// ledger chain. Must be called exactly once, before any transaction
    /// block.
    ///
    /// The initial writes ride *inside* the genesis block (see
    /// [`genesis_transaction`]) so that the current state is a pure
    /// function of the ledger — a peer recovered from its block log alone
    /// (see [`crate::recovery`]) reproduces the bootstrap state too.
    pub fn install_genesis(
        &self,
        initial: &[(fabric_common::Key, fabric_common::Value)],
    ) -> Result<()> {
        let writes: Vec<CommitWrite> = initial
            .iter()
            .map(|(k, v)| CommitWrite::put(k.clone(), v.clone(), 0))
            .collect();
        self.store.apply_block(0, &writes)?;
        let genesis =
            Block::build(0, fabric_common::Digest::ZERO, vec![genesis_transaction(initial)]);
        self.ledger.append(CommittedBlock::new(genesis, vec![ValidationCode::Valid])?)?;
        Ok(())
    }

    /// Simulation-phase entry point: simulate `proposal` and endorse it.
    pub fn endorse(
        &self,
        proposal: &TransactionProposal,
    ) -> std::result::Result<EndorsementResponse, SimulationError> {
        let t0 = Instant::now();
        let resp = self.endorser.simulate(proposal);
        if let Some(t) = &self.timers {
            t.record(Phase::Endorse, t0.elapsed());
        }
        if let Some(g) = &self.gauges {
            if resp.is_ok() {
                g.record_endorsement();
            }
        }
        if self.sink.is_enabled() {
            match &resp {
                Ok(_) => self.sink.emit(EventKind::TxEndorsed {
                    tx: proposal.id,
                    peer: self.id,
                    dur_us: t0.elapsed().as_micros() as u64,
                }),
                Err(SimulationError::StaleRead { key, snapshot_block, observed }) => {
                    self.sink.emit(EventKind::TxEarlyAbortSimulation {
                        tx: proposal.id,
                        key: key.clone(),
                        snapshot_block: *snapshot_block,
                        observed: *observed,
                    })
                }
                Err(_) => {}
            }
        }
        resp
    }

    /// Validation + commit of one block from the ordering service.
    ///
    /// Blocks must arrive in order (the network layer guarantees this).
    ///
    /// Endorsement-signature checks (Fabric's VSCC) are pure CPU work over
    /// immutable bytes and run *before* the state gate is taken, as in
    /// Fabric v1.2; only the MVCC check + commit are serial with
    /// simulations under the vanilla coarse lock. Equivalent to
    /// [`Peer::begin_block_validation`] + [`Peer::commit_validated`] back to
    /// back — the threaded peer loop uses the split form to overlap block
    /// N+1's signature checks with block N's commit.
    pub fn process_block(&self, block: Block) -> Result<Arc<CommittedBlock>> {
        self.commit_validated(self.begin_block_validation(block))
    }

    /// [`Peer::process_block`] with the sealer's [`DependencyHints`]
    /// attached: when the peer runs commit lanes, the hints let it reuse
    /// the ordering service's conflict analysis instead of re-interning
    /// the block. Pass `None` where no hints survive (archive catch-up,
    /// recovery) — the scheduler rebuilds them and the result is
    /// identical.
    pub fn process_block_with_hints(
        &self,
        block: Block,
        hints: Option<Arc<DependencyHints>>,
    ) -> Result<Arc<CommittedBlock>> {
        self.commit_validated_with_hints(self.begin_block_validation(block), hints)
    }

    /// Starts phase-1 validation (endorsement signatures) of `block` on the
    /// peer's validation pool and returns without waiting.
    ///
    /// This touches no peer state — only the channel-wide signer registry
    /// and policy — so it may run for block N+1 while block N is still
    /// committing under the state gate.
    pub fn begin_block_validation(&self, block: Block) -> PendingBlock {
        let block = Arc::new(block);
        let checks = self.pool.check_endorsements(&block, &self.registry, &self.policy, self.cost);
        PendingBlock { block, checks, begun: Instant::now() }
    }

    /// Completes validation of a block started with
    /// [`Peer::begin_block_validation`]: join the signature checks, run the
    /// MVCC check under the state gate, commit.
    pub fn commit_validated(&self, pending: PendingBlock) -> Result<Arc<CommittedBlock>> {
        self.commit_validated_with_hints(pending, None)
    }

    /// [`Peer::commit_validated`] with optional sealer [`DependencyHints`]
    /// for the lane scheduler (ignored on the sequential path, where the
    /// block-order scan needs no partition).
    pub fn commit_validated_with_hints(
        &self,
        pending: PendingBlock,
        hints: Option<Arc<DependencyHints>>,
    ) -> Result<Arc<CommittedBlock>> {
        let PendingBlock { block, checks, begun } = pending;
        let endorsement_ok = checks.wait();
        if let Some(t) = &self.timers {
            // Wall time from block arrival to the last signature verified —
            // under the threaded pool this overlaps the previous commit, so
            // it measures the pipeline's exposed VSCC latency.
            t.record(Phase::ValidateVscc, begun.elapsed());
        }
        if self.sink.is_enabled() {
            self.sink.emit(EventKind::BlockVscc {
                block: block.header.number,
                txs: block.txs.len() as u32,
                failures: endorsement_ok.iter().filter(|ok| !**ok).count() as u32,
                dur_us: begun.elapsed().as_micros() as u64,
            });
        }

        // Vanilla: "the block has to wait for the validation, as it has to
        // acquire an exclusive write lock on the current state".
        let _guard = self.gate.as_ref().map(|g| g.write());

        let t0 = Instant::now();
        let mut codes = Vec::with_capacity(block.txs.len());
        if let Some(sched) = &self.lanes {
            let occ = sched.validate(
                &block,
                self.store.as_ref(),
                &endorsement_ok,
                hints.as_deref(),
                &mut codes,
                &self.sink,
            )?;
            self.store.counters().record_lane_commit(occ.lanes_used, occ.chain_serializations);
            if let Some(t) = &self.timers {
                // The whole MVCC phase ran on the lanes: the sub-phase and
                // the parent total coincide by construction.
                t.record(Phase::MvccLanes, t0.elapsed());
            }
        } else {
            crate::validator::mvcc_validate_traced(
                &block,
                self.store.as_ref(),
                &endorsement_ok,
                &mut self.mvcc_scratch.lock(),
                &mut codes,
                &self.sink,
            )?;
        }
        if let Some(t) = &self.timers {
            t.record(Phase::ValidateMvcc, t0.elapsed());
        }
        if self.sink.is_enabled() {
            let valid = codes.iter().filter(|c| c.is_valid()).count() as u32;
            self.sink.emit(EventKind::BlockMvcc {
                block: block.header.number,
                valid,
                invalid: codes.len() as u32 - valid,
                dur_us: t0.elapsed().as_micros() as u64,
            });
        }

        let block = Arc::try_unwrap(block).unwrap_or_else(|b| (*b).clone());
        let t0 = Instant::now();
        let committed = match &self.lanes {
            Some(sched) => commit_block_traced_lanes(
                block,
                codes,
                self.store.as_ref(),
                &self.ledger,
                &self.sink,
                sched.pool(),
                self.timers.as_ref(),
            )?,
            None => {
                commit_block_traced(block, codes, self.store.as_ref(), &self.ledger, &self.sink)?
            }
        };
        if let Some(t) = &self.timers {
            t.record(Phase::Commit, t0.elapsed());
        }

        if let Some(counters) = &self.counters {
            let now = Instant::now();
            for (tx, code) in committed.iter() {
                counters.record_outcome(code);
                if code == ValidationCode::Valid {
                    if let Some(lat) = &self.latency {
                        lat.record(now.duration_since(tx.created_at));
                    }
                }
            }
        }
        // Advance logical time last, after every counter for this block has
        // landed, so a window closing here sees the block's full effect.
        self.telemetry.on_block_committed(committed.block.header.number);
        Ok(committed)
    }
}

/// A block whose endorsement-signature checks are in flight on the
/// validation pool, awaiting [`Peer::commit_validated`].
///
/// Dropping it (e.g. the target peer is down) simply abandons the checks.
pub struct PendingBlock {
    block: Arc<Block>,
    checks: PendingChecks,
    begun: Instant,
}

impl PendingBlock {
    /// The block under validation.
    pub fn block(&self) -> &Block {
        &self.block
    }

    /// The block's number.
    pub fn number(&self) -> u64 {
        self.block.header.number
    }
}

/// The bootstrap transaction carried by the genesis block: a pure
/// write-set installing `initial`, under the reserved id `tx-0`
/// ([`fabric_common::TxId::next`] starts at 1, so the id never collides
/// with a real transaction).
///
/// Deterministic in `initial` — every peer bootstrapped with the same
/// key/values builds a byte-identical genesis block, so their chains agree
/// from block 0.
pub fn genesis_transaction(
    initial: &[(fabric_common::Key, fabric_common::Value)],
) -> fabric_common::Transaction {
    let mut b = fabric_common::rwset::RwSetBuilder::new();
    for (k, v) in initial {
        b.record_write(k.clone(), Some(v.clone()));
    }
    fabric_common::Transaction {
        id: fabric_common::TxId(0),
        channel: fabric_common::ChannelId(0),
        client: fabric_common::ClientId(0),
        chaincode: "genesis".into(),
        rwset: b.build(),
        endorsements: vec![],
        created_at: Instant::now(),
    }
}

impl std::fmt::Debug for Peer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Peer({}, {}, ledger height {})", self.id, self.org, self.ledger.height())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaincode::{Chaincode, TxContext};
    use fabric_common::{ChannelId, ClientId, Endorsement, Key, Transaction, TxId, Value};
    use fabric_statedb::MemStateDb;

    struct Transfer;
    impl Chaincode for Transfer {
        fn invoke(&self, ctx: &mut TxContext, args: &[u8]) -> Result2 {
            let amount = i64::from_le_bytes(args.try_into().map_err(|_| "bad args")?);
            let a = ctx.get_i64(&Key::from("balA")).map_err(|e| e.to_string())?.ok_or("no balA")?;
            let b = ctx.get_i64(&Key::from("balB")).map_err(|e| e.to_string())?.ok_or("no balB")?;
            ctx.put_i64(Key::from("balA"), a - amount);
            ctx.put_i64(Key::from("balB"), b + amount);
            Ok(())
        }
    }
    type Result2 = std::result::Result<(), String>;

    fn mk_peer(id: u64, org: u64, registry: &SignerRegistry) -> Peer {
        let key = SigningKey::for_peer(PeerId(id), 11);
        registry.register(PeerId(id), key.clone());
        let mut ccs = ChaincodeRegistry::new();
        ccs.deploy("transfer", Arc::new(Transfer));
        Peer::new(
            PeerId(id),
            OrgId(org),
            key,
            Arc::new(MemStateDb::new()),
            ccs,
            registry.clone(),
            EndorsementPolicy::require_orgs(vec![OrgId(1), OrgId(2)]),
            ConcurrencyMode::FineGrained,
            true,
            CostModel::raw(),
        )
    }

    fn genesis() -> Vec<(Key, Value)> {
        vec![
            (Key::from("balA"), Value::from_i64(100)),
            (Key::from("balB"), Value::from_i64(50)),
        ]
    }

    /// Full happy path over two orgs: the paper's running example in
    /// miniature.
    #[test]
    fn endorse_order_validate_commit_round_trip() {
        let registry = SignerRegistry::new();
        let peer_a = mk_peer(1, 1, &registry);
        let peer_b = mk_peer(2, 2, &registry);
        peer_a.install_genesis(&genesis()).unwrap();
        peer_b.install_genesis(&genesis()).unwrap();

        // Simulation phase on both endorsers.
        let proposal =
            TransactionProposal::new(ChannelId(0), ClientId(0), "transfer", 30i64.to_le_bytes().to_vec());
        let ra = peer_a.endorse(&proposal).unwrap();
        let rb = peer_b.endorse(&proposal).unwrap();
        assert_eq!(ra.rwset, rb.rwset, "deterministic chaincode");

        // Client assembles the transaction.
        let tx = Transaction {
            id: proposal.id,
            channel: proposal.channel,
            client: proposal.client,
            chaincode: proposal.chaincode.clone(),
            rwset: ra.rwset.clone(),
            endorsements: vec![ra.endorsement, rb.endorsement],
            created_at: proposal.created_at,
        };

        // Ordering phase: a block of one.
        let block = Block::build(1, peer_a.ledger().tip_hash(), vec![tx]);

        // Validation + commit on every peer.
        for peer in [&peer_a, &peer_b] {
            let committed = peer.process_block(block.clone()).unwrap();
            assert_eq!(committed.validity, vec![ValidationCode::Valid]);
            let bal_a = peer.store().get(&Key::from("balA")).unwrap().unwrap();
            assert_eq!(bal_a.value, Value::from_i64(70));
            assert_eq!(bal_a.version, fabric_common::Version::new(1, 0));
            assert_eq!(peer.ledger().height(), 2);
            peer.ledger().verify_chain().unwrap();
        }
    }

    #[test]
    fn reporting_peer_records_outcomes_and_latency() {
        let registry = SignerRegistry::new();
        let counters = TxCounters::new();
        let latency = LatencyRecorder::new();
        let peer = mk_peer(1, 1, &registry).with_reporting(counters.clone(), latency.clone());
        peer.install_genesis(&genesis()).unwrap();

        // A transaction with no endorsements: EndorsementFailure.
        let bad = Transaction {
            id: TxId::next(),
            channel: ChannelId(0),
            client: ClientId(0),
            chaincode: "transfer".into(),
            rwset: Default::default(),
            endorsements: vec![],
            created_at: Instant::now(),
        };
        let block = Block::build(1, peer.ledger().tip_hash(), vec![bad]);
        peer.process_block(block).unwrap();
        let s = counters.snapshot();
        assert_eq!(s.endorsement_failure, 1);
        assert_eq!(s.valid, 0);
        assert_eq!(latency.summary().count, 0, "latency only for valid txs");
    }

    #[test]
    fn non_reporting_peer_stays_silent() {
        let registry = SignerRegistry::new();
        let peer = mk_peer(1, 1, &registry);
        peer.install_genesis(&genesis()).unwrap();
        let block = Block::build(1, peer.ledger().tip_hash(), vec![]);
        peer.process_block(block).unwrap();
        // No counters attached — nothing to assert except absence of panic.
        assert_eq!(peer.ledger().height(), 2);
    }

    /// Crash/restart: a peer commits a block, "crashes", is rebuilt from
    /// its block log via [`crate::recovery`], and the restored peer keeps
    /// committing from its pre-crash height.
    #[test]
    fn restored_peer_resumes_from_recovered_state() {
        let registry = SignerRegistry::new();
        let peer_a = mk_peer(1, 1, &registry);
        let peer_b = mk_peer(2, 2, &registry);
        peer_a.install_genesis(&genesis()).unwrap();
        peer_b.install_genesis(&genesis()).unwrap();

        let mk_tx = |amount: i64| {
            let proposal = TransactionProposal::new(
                ChannelId(0),
                ClientId(0),
                "transfer",
                amount.to_le_bytes().to_vec(),
            );
            let ra = peer_a.endorse(&proposal).unwrap();
            let rb = peer_b.endorse(&proposal).unwrap();
            Transaction {
                id: proposal.id,
                channel: proposal.channel,
                client: proposal.client,
                chaincode: proposal.chaincode.clone(),
                rwset: ra.rwset.clone(),
                endorsements: vec![ra.endorsement, rb.endorsement],
                created_at: proposal.created_at,
            }
        };
        let block1 = Block::build(1, peer_a.ledger().tip_hash(), vec![mk_tx(30)]);
        for peer in [&peer_a, &peer_b] {
            peer.process_block(block1.clone()).unwrap();
        }

        // "Crash" peer_a and rebuild it from its committed blocks.
        let mut blocks = Vec::new();
        peer_a.ledger().for_each(|cb| blocks.push(cb.clone()));
        drop(peer_a);
        let rec = crate::recovery::rebuild(blocks, true).unwrap();
        let mut ccs = ChaincodeRegistry::new();
        ccs.deploy("transfer", Arc::new(Transfer));
        let key = SigningKey::for_peer(PeerId(1), 11);
        let restored = Peer::restore(
            PeerId(1),
            OrgId(1),
            key,
            rec.state.clone() as Arc<dyn fabric_statedb::StateStore>,
            rec.ledger,
            ccs,
            registry.clone(),
            EndorsementPolicy::require_orgs(vec![OrgId(1), OrgId(2)]),
            ConcurrencyMode::FineGrained,
            true,
            CostModel::raw(),
        );
        assert_eq!(restored.ledger().height(), 2);
        assert_eq!(
            restored.store().get(&Key::from("balA")).unwrap().unwrap().value,
            Value::from_i64(70)
        );

        // The restored peer processes the next block identically to the
        // peer that never crashed.
        let proposal2 = TransactionProposal::new(
            ChannelId(0),
            ClientId(0),
            "transfer",
            5i64.to_le_bytes().to_vec(),
        );
        let r1 = restored.endorse(&proposal2).unwrap();
        let r2 = peer_b.endorse(&proposal2).unwrap();
        let tx2 = Transaction {
            id: proposal2.id,
            channel: proposal2.channel,
            client: proposal2.client,
            chaincode: proposal2.chaincode.clone(),
            rwset: r1.rwset.clone(),
            endorsements: vec![r1.endorsement, r2.endorsement],
            created_at: proposal2.created_at,
        };
        let block2 = Block::build(2, restored.ledger().tip_hash(), vec![tx2]);
        for peer in [&restored, &peer_b] {
            let committed = peer.process_block(block2.clone()).unwrap();
            assert_eq!(committed.validity, vec![ValidationCode::Valid]);
        }
        assert_eq!(restored.ledger().tip_hash(), peer_b.ledger().tip_hash());
        assert_eq!(
            restored.store().get(&Key::from("balA")).unwrap().unwrap().value,
            Value::from_i64(65)
        );
        restored.ledger().verify_chain().unwrap();
    }

    /// The split begin/commit API on a threaded pool commits exactly what
    /// `process_block` on the default sequential pool does — including when
    /// two blocks' signature checks are launched back to back (the
    /// pipelining shape of the threaded peer loop).
    #[test]
    fn pipelined_validation_matches_process_block() {
        let registry = SignerRegistry::new();
        let seq_peer = mk_peer(1, 1, &registry);
        let pipe_peer = mk_peer(2, 2, &registry)
            .with_validation_pool(Arc::new(crate::ValidationPool::threaded(2)));
        seq_peer.install_genesis(&genesis()).unwrap();
        pipe_peer.install_genesis(&genesis()).unwrap();

        // Hand-endorsed transactions (independent of either peer's state so
        // both peers see byte-identical blocks): tx1 reads+writes balA at
        // genesis, tx2 blind-writes balB.
        let mk_tx = |rwset: fabric_common::rwset::ReadWriteSet| {
            let id = TxId::next();
            let payload = Transaction::signing_payload(id, ChannelId(0), "transfer", &rwset);
            let endorsements = [(PeerId(1), OrgId(1)), (PeerId(2), OrgId(2))]
                .iter()
                .map(|&(p, org)| Endorsement {
                    peer: p,
                    org,
                    signature: SigningKey::for_peer(p, 11).sign_iterated(&[&payload], 1),
                })
                .collect();
            Transaction {
                id,
                channel: ChannelId(0),
                client: ClientId(0),
                chaincode: "transfer".into(),
                rwset,
                endorsements,
                created_at: Instant::now(),
            }
        };
        let tx1 = mk_tx(fabric_common::rwset::rwset_from_keys(
            &[Key::from("balA")],
            fabric_common::Version::GENESIS,
            &[Key::from("balA")],
            &Value::from_i64(70),
        ));
        let tx2 = mk_tx(fabric_common::rwset::rwset_from_keys(
            &[],
            fabric_common::Version::GENESIS,
            &[Key::from("balB")],
            &Value::from_i64(80),
        ));
        let block1 = Block::build(1, seq_peer.ledger().tip_hash(), vec![tx1]);
        let c1 = seq_peer.process_block(block1.clone()).unwrap();
        assert_eq!(c1.validity, vec![ValidationCode::Valid]);
        let block2 = Block::build(2, seq_peer.ledger().tip_hash(), vec![tx2]);
        seq_peer.process_block(block2.clone()).unwrap();

        // Pipelined peer: launch both blocks' checks, then commit in order.
        let p1 = pipe_peer.begin_block_validation(block1);
        let p2 = pipe_peer.begin_block_validation(block2);
        assert_eq!(p1.number(), 1);
        assert_eq!(p2.block().header.number, 2);
        let c1 = pipe_peer.commit_validated(p1).unwrap();
        let c2 = pipe_peer.commit_validated(p2).unwrap();
        assert_eq!(c1.validity, vec![ValidationCode::Valid]);
        assert_eq!(c2.validity, vec![ValidationCode::Valid]);
        assert_eq!(pipe_peer.ledger().tip_hash(), seq_peer.ledger().tip_hash());
        assert_eq!(
            pipe_peer.store().get(&Key::from("balA")).unwrap().unwrap().value,
            seq_peer.store().get(&Key::from("balA")).unwrap().unwrap().value,
        );
    }

    /// A lane-configured peer processes the same block stream as a
    /// sequential peer and ends byte-identical: same validity codes, same
    /// chain tip, same state — the `commit_lanes` knob is non-semantic.
    #[test]
    fn lane_peer_matches_sequential_peer() {
        let registry = SignerRegistry::new();
        let seq_peer = mk_peer(1, 1, &registry);
        let lane_peer = mk_peer(2, 2, &registry).with_commit_lanes(4);
        seq_peer.install_genesis(&genesis()).unwrap();
        lane_peer.install_genesis(&genesis()).unwrap();

        let mk_tx = |rwset: fabric_common::rwset::ReadWriteSet| {
            let id = TxId::next();
            let payload = Transaction::signing_payload(id, ChannelId(0), "transfer", &rwset);
            let endorsements = [(PeerId(1), OrgId(1)), (PeerId(2), OrgId(2))]
                .iter()
                .map(|&(p, org)| Endorsement {
                    peer: p,
                    org,
                    signature: SigningKey::for_peer(p, 11).sign_iterated(&[&payload], 1),
                })
                .collect();
            Transaction {
                id,
                channel: ChannelId(0),
                client: ClientId(0),
                chaincode: "transfer".into(),
                rwset,
                endorsements,
                created_at: Instant::now(),
            }
        };
        // Two independent writers plus an intra-block conflict: tx3 reads
        // balA at the stale genesis version after tx1 wrote it.
        let tx1 = mk_tx(fabric_common::rwset::rwset_from_keys(
            &[Key::from("balA")],
            fabric_common::Version::GENESIS,
            &[Key::from("balA")],
            &Value::from_i64(70),
        ));
        let tx2 = mk_tx(fabric_common::rwset::rwset_from_keys(
            &[],
            fabric_common::Version::GENESIS,
            &[Key::from("balB")],
            &Value::from_i64(80),
        ));
        let tx3 = mk_tx(fabric_common::rwset::rwset_from_keys(
            &[Key::from("balA")],
            fabric_common::Version::GENESIS,
            &[Key::from("balB")],
            &Value::from_i64(99),
        ));
        let block = Block::build(1, seq_peer.ledger().tip_hash(), vec![tx1, tx2, tx3]);
        let c_seq = seq_peer.process_block(block.clone()).unwrap();
        let c_lane = lane_peer.process_block_with_hints(block, None).unwrap();
        assert_eq!(c_seq.validity, c_lane.validity);
        assert_eq!(
            c_seq.validity,
            vec![ValidationCode::Valid, ValidationCode::Valid, ValidationCode::MvccConflict]
        );
        assert_eq!(seq_peer.ledger().tip_hash(), lane_peer.ledger().tip_hash());
        for key in ["balA", "balB"] {
            assert_eq!(
                seq_peer.store().get(&Key::from(key)).unwrap(),
                lane_peer.store().get(&Key::from(key)).unwrap(),
            );
        }
        let stats = lane_peer.store().counters().snapshot();
        assert!(stats.lanes_used >= 1);
        // One chain: tx3 reads tx1's balA write, and tx2/tx3 co-write
        // balB — 3 txs in 1 chain → two serializations.
        assert_eq!(stats.chain_serializations, 2);
    }

    #[test]
    fn forged_endorsement_rejected_at_validation() {
        let registry = SignerRegistry::new();
        let peer = mk_peer(1, 1, &registry);
        peer.install_genesis(&genesis()).unwrap();

        let proposal =
            TransactionProposal::new(ChannelId(0), ClientId(0), "transfer", 10i64.to_le_bytes().to_vec());
        let resp = peer.endorse(&proposal).unwrap();
        // Forge: swap the write set but keep the signature.
        let forged_rwset = fabric_common::rwset::rwset_from_keys(
            &[Key::from("balA")],
            fabric_common::Version::GENESIS,
            &[Key::from("balA")],
            &Value::from_i64(1_000_000),
        );
        let tx = Transaction {
            id: proposal.id,
            channel: proposal.channel,
            client: proposal.client,
            chaincode: proposal.chaincode.clone(),
            rwset: forged_rwset,
            endorsements: vec![
                resp.endorsement,
                Endorsement {
                    peer: PeerId(99),
                    org: OrgId(2),
                    signature: fabric_common::Signature([0; 32]),
                },
            ],
            created_at: proposal.created_at,
        };
        let block = Block::build(1, peer.ledger().tip_hash(), vec![tx]);
        let committed = peer.process_block(block).unwrap();
        assert_eq!(committed.validity, vec![ValidationCode::EndorsementFailure]);
        // State untouched.
        assert_eq!(
            peer.store().get(&Key::from("balA")).unwrap().unwrap().value,
            Value::from_i64(100)
        );
    }
}
