//! The commit phase (paper §2.2.4).
//!
//! "Each peer appends the block, which contains both valid and invalid
//! transactions, to its local ledger. Additionally, each peer applies all
//! changes made by the valid transactions to its current state."

use std::sync::Arc;
use std::time::Instant;

use fabric_common::{Phase, PhaseTimers, Result, TxNum, ValidationCode};
use fabric_ledger::{CommittedBlock, Ledger};
use fabric_statedb::{StateStore, WriteBatch, WriteRef};
use fabric_trace::{EventKind, TraceSink};

/// Applies a validated block: valid writes into `store` (atomically, with
/// versions `(block, tx)`), the whole block into `ledger`.
///
/// The write batch borrows keys and values straight out of the block's
/// write sets — no per-entry clone — and the committed block itself is
/// moved into the ledger exactly once; the returned handle is a
/// reference-count bump on the ledger's copy.
pub fn commit_block(
    block: fabric_ledger::Block,
    codes: Vec<ValidationCode>,
    store: &dyn StateStore,
    ledger: &Ledger,
) -> Result<Arc<CommittedBlock>> {
    commit_block_traced(block, codes, store, ledger, &TraceSink::disabled())
}

/// [`commit_block`] with flight-recorder events: one
/// [`EventKind::TxCommitted`] per valid transaction once the block's
/// writes are durably applied, then one [`EventKind::BlockCommitted`]
/// span covering the whole apply+append. A disabled `sink` makes this
/// exactly [`commit_block`].
pub fn commit_block_traced(
    block: fabric_ledger::Block,
    codes: Vec<ValidationCode>,
    store: &dyn StateStore,
    ledger: &Ledger,
    sink: &TraceSink,
) -> Result<Arc<CommittedBlock>> {
    commit_block_inner(block, codes, ledger, sink, |batch| store.apply_write_batch(batch))
}

/// [`commit_block_traced`] with the state-database apply running on the
/// caller's [`fabric_common::LanePool`] via
/// [`StateStore::apply_write_batch_lanes`] —
/// same observable result (the lane count is never semantic), shard
/// installs spread over the persistent commit lanes for engines that
/// support it. When `timers` is attached, the state-apply portion is
/// recorded under the [`Phase::ApplyLanes`] sub-phase.
pub fn commit_block_traced_lanes(
    block: fabric_ledger::Block,
    codes: Vec<ValidationCode>,
    store: &dyn StateStore,
    ledger: &Ledger,
    sink: &TraceSink,
    pool: &fabric_common::LanePool,
    timers: Option<&PhaseTimers>,
) -> Result<Arc<CommittedBlock>> {
    commit_block_inner(block, codes, ledger, sink, |batch| {
        let t0 = Instant::now();
        let applied = store.apply_write_batch_lanes(batch, pool);
        if let Some(t) = timers {
            t.record(Phase::ApplyLanes, t0.elapsed());
        }
        applied
    })
}

fn commit_block_inner(
    block: fabric_ledger::Block,
    codes: Vec<ValidationCode>,
    ledger: &Ledger,
    sink: &TraceSink,
    apply: impl FnOnce(&WriteBatch<'_>) -> Result<()>,
) -> Result<Arc<CommittedBlock>> {
    let t_start = Instant::now();
    let committed = CommittedBlock::new(block, codes)?;

    let mut batch = WriteBatch::new(committed.block.header.number);
    for (tx_num, (tx, code)) in committed.iter().enumerate() {
        if !code.is_valid() {
            continue;
        }
        for e in tx.rwset.writes.entries() {
            batch.push(WriteRef { key: &e.key, value: e.value.as_ref(), tx: tx_num as TxNum });
        }
    }
    let writes = batch.len() as u32;
    apply(&batch)?;
    drop(batch);
    let handle = ledger.append(committed)?;
    if sink.is_enabled() {
        let number = handle.block.header.number;
        let mut valid = 0u32;
        for (tx, code) in handle.iter() {
            if code.is_valid() {
                valid += 1;
                sink.emit(EventKind::TxCommitted { block: number, tx: tx.id });
            }
        }
        sink.emit(EventKind::BlockCommitted {
            block: number,
            valid,
            invalid: handle.block.txs.len() as u32 - valid,
            writes,
            dur_us: t_start.elapsed().as_micros() as u64,
        });
    }
    Ok(handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_common::rwset::rwset_from_keys;
    use fabric_common::{ChannelId, ClientId, Key, Transaction, TxId, Value, Version};
    use fabric_ledger::Block;
    use fabric_statedb::MemStateDb;
    use std::sync::Arc;
    use std::time::Instant;

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    fn tx(write_key: &str, value: i64) -> Transaction {
        Transaction {
            id: TxId::next(),
            channel: ChannelId(0),
            client: ClientId(0),
            chaincode: "cc".into(),
            rwset: rwset_from_keys(
                &[],
                Version::GENESIS,
                &[k(write_key)],
                &Value::from_i64(value),
            ),
            endorsements: vec![],
            created_at: Instant::now(),
        }
    }

    fn setup() -> (Arc<MemStateDb>, Ledger) {
        let store = Arc::new(MemStateDb::with_genesis([(k("a"), Value::from_i64(0))]));
        let ledger = Ledger::new();
        // Genesis ledger block matching state block 0.
        let genesis = Block::build(0, fabric_common::Digest::ZERO, vec![]);
        ledger.append(CommittedBlock::new(genesis, vec![]).unwrap()).unwrap();
        (store, ledger)
    }

    #[test]
    fn valid_writes_applied_with_correct_versions() {
        let (store, ledger) = setup();
        let block = Block::build(1, ledger.tip_hash(), vec![tx("a", 10), tx("b", 20)]);
        let committed = commit_block(
            block,
            vec![ValidationCode::Valid, ValidationCode::Valid],
            store.as_ref(),
            &ledger,
        )
        .unwrap();
        assert_eq!(committed.valid_count(), 2);
        let a = store.get(&k("a")).unwrap().unwrap();
        assert_eq!(a.value, Value::from_i64(10));
        assert_eq!(a.version, Version::new(1, 0));
        let b = store.get(&k("b")).unwrap().unwrap();
        assert_eq!(b.version, Version::new(1, 1));
        assert_eq!(ledger.height(), 2);
    }

    #[test]
    fn invalid_writes_discarded() {
        let (store, ledger) = setup();
        let block = Block::build(1, ledger.tip_hash(), vec![tx("a", 99), tx("b", 20)]);
        commit_block(
            block,
            vec![ValidationCode::MvccConflict, ValidationCode::Valid],
            store.as_ref(),
            &ledger,
        )
        .unwrap();
        // a untouched, b written.
        assert_eq!(store.get(&k("a")).unwrap().unwrap().value, Value::from_i64(0));
        assert_eq!(store.get(&k("b")).unwrap().unwrap().value, Value::from_i64(20));
        // Ledger still records both transactions.
        assert_eq!(ledger.get(1).unwrap().block.txs.len(), 2);
        assert_eq!(ledger.tx_totals(), (1, 1));
    }

    #[test]
    fn later_write_in_block_wins() {
        let (store, ledger) = setup();
        let block = Block::build(1, ledger.tip_hash(), vec![tx("a", 1), tx("a", 2)]);
        commit_block(
            block,
            vec![ValidationCode::Valid, ValidationCode::Valid],
            store.as_ref(),
            &ledger,
        )
        .unwrap();
        let a = store.get(&k("a")).unwrap().unwrap();
        assert_eq!(a.value, Value::from_i64(2));
        assert_eq!(a.version, Version::new(1, 1));
    }

    #[test]
    fn empty_block_advances_both_stores() {
        let (store, ledger) = setup();
        let block = Block::build(1, ledger.tip_hash(), vec![]);
        commit_block(block, vec![], store.as_ref(), &ledger).unwrap();
        assert_eq!(store.last_committed_block(), 1);
        assert_eq!(ledger.height(), 2);
    }

    #[test]
    fn mismatched_codes_rejected() {
        let (store, ledger) = setup();
        let block = Block::build(1, ledger.tip_hash(), vec![tx("a", 1)]);
        assert!(commit_block(block, vec![], store.as_ref(), &ledger).is_err());
    }
}
