//! Parallel endorsement-signature validation (Fabric's VSCC phase).
//!
//! The paper (§2.2.3, §4.2) identifies validation as the peer's CPU-bound
//! stage, and signature recomputation is its embarrassingly parallel part:
//! each transaction's check touches only immutable transaction bytes and
//! the channel-wide signer registry, never peer state. Real Fabric shards
//! exactly this work across a `validatorPoolSize` worker pool; here the
//! [`ValidationPool`] chunks a block's transactions across persistent
//! worker threads and reassembles the per-tx `Vec<bool>` consumed by
//! [`crate::validator::mvcc_validate`] — bit-for-bit identical to the
//! sequential [`crate::validator::check_endorsements`] path (asserted by a
//! differential property test below).
//!
//! The pool also enables commit/validate *pipelining*: because signature
//! checks need no state, block N+1's checks can run while block N's writes
//! are applied under the state gate (see `crates/core`'s peer loop). The
//! deterministic harnesses ([`SyncNet`](../fabricpp), chaos) use
//! [`ValidationPool::sequential`], which computes eagerly on the caller's
//! thread so schedules and digests are unchanged.

use std::ops::Range;
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Sender};
use fabric_common::{default_validation_workers, CostModel, SignerRegistry, SubsystemGauges};
use fabric_ledger::Block;

use crate::validator::{check_endorsement, check_endorsements, EndorsementPolicy};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A persistent pool of validation workers shared by every peer of a
/// network (signature checking is stateless, so one pool serves all).
///
/// Dropping the pool disconnects the job channel and joins the workers.
pub struct ValidationPool {
    mode: Mode,
    gauges: Option<SubsystemGauges>,
}

enum Mode {
    /// Compute on the caller's thread, eagerly. Used by the deterministic
    /// single-threaded harnesses: no scheduling, no nondeterminism.
    Sequential,
    Threaded {
        jobs: Option<Sender<Job>>,
        workers: usize,
        handles: Vec<JoinHandle<()>>,
    },
}

impl ValidationPool {
    /// A pool that validates on the calling thread (deterministic mode).
    pub fn sequential() -> Self {
        ValidationPool { mode: Mode::Sequential, gauges: None }
    }

    /// Attaches telemetry gauges: every `check_endorsements` call bumps
    /// the VSCC started counter, every [`PendingChecks::wait`] the done
    /// counter, so the telemetry layer can report batches and in-flight
    /// depth per window. (A `PendingChecks` abandoned by a crashed peer
    /// never reports done — the batch stays visibly in flight.)
    pub fn with_gauges(mut self, gauges: SubsystemGauges) -> Self {
        self.gauges = Some(gauges);
        self
    }

    /// A pool with `workers` persistent threads (`0` = available
    /// parallelism, matching
    /// [`PipelineConfig::validation_workers`](fabric_common::PipelineConfig)'s
    /// default).
    pub fn threaded(workers: usize) -> Self {
        let workers = if workers == 0 { default_validation_workers() } else { workers };
        let (tx, rx) = unbounded::<Job>();
        let handles = (0..workers)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("vscc-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("spawn validation worker")
            })
            .collect();
        ValidationPool { mode: Mode::Threaded { jobs: Some(tx), workers, handles }, gauges: None }
    }

    /// Number of worker threads (1 for the sequential mode).
    pub fn workers(&self) -> usize {
        match &self.mode {
            Mode::Sequential => 1,
            Mode::Threaded { workers, .. } => *workers,
        }
    }

    /// Starts phase-1 validation of `block`: policy evaluation plus
    /// signature recomputation for every transaction, chunked across the
    /// workers. Returns immediately; [`PendingChecks::wait`] joins the
    /// results into the per-tx `Vec<bool>` for
    /// [`crate::validator::mvcc_validate`].
    pub fn check_endorsements(
        &self,
        block: &Arc<Block>,
        registry: &SignerRegistry,
        policy: &EndorsementPolicy,
        cost: CostModel,
    ) -> PendingChecks {
        let n = block.txs.len();
        if let Some(g) = &self.gauges {
            g.record_vscc_batch_started();
        }
        match &self.mode {
            Mode::Sequential => PendingChecks {
                len: n,
                inner: PendingInner::Ready(check_endorsements(block, registry, policy, cost)),
                gauges: self.gauges.clone(),
            },
            Mode::Threaded { jobs, workers, .. } => {
                if n == 0 {
                    return PendingChecks {
                        len: 0,
                        inner: PendingInner::Ready(Vec::new()),
                        gauges: self.gauges.clone(),
                    };
                }
                let jobs = jobs.as_ref().expect("job channel lives until drop");
                let ranges = chunk_ranges(n, *workers);
                let chunks = ranges.len();
                let (res_tx, res_rx) = unbounded::<(usize, Vec<bool>)>();
                for range in ranges {
                    let block = Arc::clone(block);
                    let registry = registry.clone();
                    let policy = policy.clone();
                    let res_tx = res_tx.clone();
                    let job: Job = Box::new(move || {
                        let out: Vec<bool> = block.txs[range.clone()]
                            .iter()
                            .map(|tx| check_endorsement(tx, &registry, &policy, cost))
                            .collect();
                        // The receiver may already be gone (pending checks
                        // dropped, e.g. peer crash mid-pipeline) — fine.
                        let _ = res_tx.send((range.start, out));
                    });
                    jobs.send(job).expect("workers outlive the pool handle");
                }
                PendingChecks {
                    len: n,
                    inner: PendingInner::Pending { chunks, results: res_rx },
                    gauges: self.gauges.clone(),
                }
            }
        }
    }
}

impl Drop for ValidationPool {
    fn drop(&mut self) {
        if let Mode::Threaded { jobs, handles, .. } = &mut self.mode {
            drop(jobs.take()); // disconnect → workers drain and exit
            for h in handles.drain(..) {
                let _ = h.join();
            }
        }
    }
}

/// In-flight phase-1 validation of one block. Dropping it abandons the
/// results (outstanding worker jobs finish and discard their sends).
pub struct PendingChecks {
    len: usize,
    inner: PendingInner,
    gauges: Option<SubsystemGauges>,
}

enum PendingInner {
    Ready(Vec<bool>),
    Pending {
        chunks: usize,
        results: crossbeam::channel::Receiver<(usize, Vec<bool>)>,
    },
}

impl PendingChecks {
    /// Blocks until every chunk is validated and reassembles the per-tx
    /// result vector (index-aligned with `block.txs`).
    pub fn wait(self) -> Vec<bool> {
        let out = match self.inner {
            PendingInner::Ready(v) => v,
            PendingInner::Pending { chunks, results } => {
                let mut out = vec![false; self.len];
                for _ in 0..chunks {
                    let (start, chunk) =
                        results.recv().expect("validation worker died with jobs in flight");
                    out[start..start + chunk.len()].copy_from_slice(&chunk);
                }
                out
            }
        };
        if let Some(g) = &self.gauges {
            g.record_vscc_batch_done();
        }
        out
    }
}

/// Splits `0..n` into at most `workers` contiguous ranges of near-equal
/// length (the first `n % k` ranges get one extra element).
fn chunk_ranges(n: usize, workers: usize) -> Vec<Range<usize>> {
    let k = workers.clamp(1, n.max(1));
    let base = n / k;
    let extra = n % k;
    let mut ranges = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < extra);
        if len == 0 {
            break;
        }
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validator::mvcc_validate;
    use fabric_common::rwset::{rwset_from_keys, ReadWriteSet};
    use fabric_common::{
        ChannelId, ClientId, Digest, Endorsement, Key, OrgId, PeerId, SigningKey, Transaction,
        TxId, Value, Version,
    };
    use fabric_statedb::MemStateDb;
    use proptest::prelude::*;
    use std::time::Instant;

    #[test]
    fn chunk_ranges_cover_exactly_once() {
        for n in 0..40 {
            for workers in 1..10 {
                let ranges = chunk_ranges(n, workers);
                assert!(ranges.len() <= workers);
                let mut seen = 0;
                for r in &ranges {
                    assert_eq!(r.start, seen, "ranges contiguous from 0");
                    assert!(!r.is_empty());
                    seen = r.end;
                }
                assert_eq!(seen, n, "ranges cover 0..{n}");
            }
        }
    }

    #[test]
    fn chunk_ranges_balanced() {
        let ranges = chunk_ranges(10, 4);
        let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(lens, vec![3, 3, 2, 2]);
    }

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    fn registry() -> SignerRegistry {
        let registry = SignerRegistry::new();
        for p in 1..=4u64 {
            registry.register(PeerId(p), SigningKey::for_peer(PeerId(p), 9));
        }
        registry
    }

    fn policy() -> EndorsementPolicy {
        EndorsementPolicy::require_orgs(vec![OrgId(1), OrgId(2)])
    }

    /// A correctly endorsed transaction over `rwset`.
    fn endorsed_tx(rwset: ReadWriteSet) -> Transaction {
        let id = TxId::next();
        let payload = Transaction::signing_payload(id, ChannelId(0), "cc", &rwset);
        let endorsements = [(PeerId(1), OrgId(1)), (PeerId(3), OrgId(2))]
            .iter()
            .map(|&(peer, org)| Endorsement {
                peer,
                org,
                signature: SigningKey::for_peer(peer, 9).sign_iterated(&[&payload], 1),
            })
            .collect();
        Transaction {
            id,
            channel: ChannelId(0),
            client: ClientId(0),
            chaincode: "cc".into(),
            rwset,
            endorsements,
            created_at: Instant::now(),
        }
    }

    /// Kinds of transactions the differential test mixes within one block.
    #[derive(Debug, Clone, Copy)]
    enum TxKind {
        /// Correctly endorsed, fresh read version.
        Good,
        /// Correctly endorsed but reading a stale version (MVCC conflict).
        Stale,
        /// Write set swapped after endorsement (signature mismatch).
        Tampered,
        /// Endorsements stripped entirely.
        Unendorsed,
    }

    fn mk_tx(kind: TxKind, key: u64) -> Transaction {
        let fresh = rwset_from_keys(
            &[k("balA")],
            Version::GENESIS,
            &[Key::composite("out", key)],
            &Value::from_i64(1),
        );
        match kind {
            TxKind::Good => endorsed_tx(fresh),
            TxKind::Stale => endorsed_tx(rwset_from_keys(
                &[k("balA")],
                Version::new(7, 0),
                &[Key::composite("out", key)],
                &Value::from_i64(1),
            )),
            TxKind::Tampered => {
                let mut tx = endorsed_tx(fresh);
                tx.rwset = rwset_from_keys(
                    &[k("balA")],
                    Version::GENESIS,
                    &[k("balA")],
                    &Value::from_i64(1_000_000),
                );
                tx
            }
            TxKind::Unendorsed => {
                let mut tx = endorsed_tx(fresh);
                tx.endorsements.clear();
                tx
            }
        }
    }

    fn kind_strategy() -> impl Strategy<Value = TxKind> {
        prop_oneof![
            Just(TxKind::Good),
            Just(TxKind::Stale),
            Just(TxKind::Tampered),
            Just(TxKind::Unendorsed),
        ]
    }

    #[test]
    fn threaded_pool_matches_sequential_on_empty_block() {
        let pool = ValidationPool::threaded(4);
        let block = Arc::new(Block::build(1, Digest::ZERO, vec![]));
        let got = pool.check_endorsements(&block, &registry(), &policy(), CostModel::raw()).wait();
        assert!(got.is_empty());
    }

    #[test]
    fn pool_survives_many_blocks() {
        // Persistent workers: results stay correct across repeated use.
        let pool = ValidationPool::threaded(3);
        let reg = registry();
        let pol = policy();
        for round in 0..10 {
            let txs: Vec<Transaction> =
                (0..round + 1).map(|i| mk_tx(TxKind::Good, i as u64)).collect();
            let block = Arc::new(Block::build(1, Digest::ZERO, txs));
            let got = pool.check_endorsements(&block, &reg, &pol, CostModel::raw()).wait();
            assert_eq!(got, vec![true; round + 1]);
        }
    }

    #[test]
    fn dropping_pending_checks_is_harmless() {
        let pool = ValidationPool::threaded(2);
        let txs: Vec<Transaction> = (0..8).map(|i| mk_tx(TxKind::Good, i)).collect();
        let block = Arc::new(Block::build(1, Digest::ZERO, txs));
        let pending = pool.check_endorsements(&block, &registry(), &policy(), CostModel::raw());
        drop(pending); // workers finish and discard their sends
        // The pool remains usable afterwards.
        let got = pool.check_endorsements(&block, &registry(), &policy(), CostModel::raw()).wait();
        assert_eq!(got.len(), 8);
    }

    #[test]
    fn sequential_mode_reports_one_worker_and_computes_eagerly() {
        let pool = ValidationPool::sequential();
        assert_eq!(pool.workers(), 1);
        let block = Arc::new(Block::build(1, Digest::ZERO, vec![mk_tx(TxKind::Good, 0)]));
        let got = pool.check_endorsements(&block, &registry(), &policy(), CostModel::raw()).wait();
        assert_eq!(got, vec![true]);
    }

    proptest! {
        /// Differential test (tentpole acceptance criterion): for randomized
        /// blocks mixing good / stale / tampered / unendorsed transactions,
        /// the threaded pool and the sequential path must produce identical
        /// endorsement bits AND identical final `Vec<ValidationCode>`.
        #[test]
        fn parallel_validation_matches_sequential(
            kinds in proptest::collection::vec(kind_strategy(), 0..24),
            workers in 1usize..6,
        ) {
            let txs: Vec<Transaction> =
                kinds.iter().enumerate().map(|(i, &kd)| mk_tx(kd, i as u64)).collect();
            let block = Arc::new(Block::build(1, Digest::ZERO, txs));
            let reg = registry();
            let pol = policy();
            let store = MemStateDb::with_genesis([(k("balA"), Value::from_i64(100))]);

            let sequential = check_endorsements(&block, &reg, &pol, CostModel::raw());
            let pool = ValidationPool::threaded(workers);
            let parallel =
                pool.check_endorsements(&block, &reg, &pol, CostModel::raw()).wait();
            prop_assert_eq!(&parallel, &sequential);

            let seq_codes = mvcc_validate(&block, &store, &sequential).unwrap();
            let par_codes = mvcc_validate(&block, &store, &parallel).unwrap();
            prop_assert_eq!(seq_codes, par_codes);
        }
    }
}
