//! Chaincode: the smart-contract abstraction.
//!
//! A chaincode is a deterministic function over the current state: it reads
//! keys, computes, writes keys. During simulation "none of the effects of
//! the simulation become durable in the current state […] each endorser
//! builds up a read set and a write set during simulation to capture the
//! effects" (paper §2.2.1). [`TxContext`] is that recording surface; it
//! also implements Fabric's read-your-own-writes and, in Fabric++ mode,
//! the early-abort stale-read check.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use fabric_common::rwset::{ReadWriteSet, RwSetBuilder};
use fabric_common::{Key, Value};
use fabric_statedb::{SnapshotRead, SnapshotView};

/// Why a simulation stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimulationError {
    /// Fabric++ early abort: a read observed a version newer than the
    /// simulation snapshot (paper §5.2.1).
    StaleRead {
        /// The key whose read was stale.
        key: Key,
        /// Last block visible to the simulation's snapshot.
        snapshot_block: fabric_common::BlockNum,
        /// The (newer) version the read actually observed.
        observed: fabric_common::Version,
    },
    /// The chaincode itself rejected the invocation (bad arguments,
    /// insufficient funds rules, etc.). The proposal fails without ever
    /// becoming a transaction.
    ChaincodeError(String),
    /// The state database failed.
    Storage(String),
}

impl fmt::Display for SimulationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulationError::StaleRead { key, snapshot_block, observed } => {
                write!(
                    f,
                    "stale read of {key}: snapshot at block {snapshot_block} \
                     outdated by a concurrent commit (observed {observed})"
                )
            }
            SimulationError::ChaincodeError(msg) => write!(f, "chaincode error: {msg}"),
            SimulationError::Storage(msg) => write!(f, "state database error: {msg}"),
        }
    }
}

impl std::error::Error for SimulationError {}

/// The execution context handed to a chaincode during simulation.
pub struct TxContext {
    snapshot: SnapshotView,
    builder: RwSetBuilder,
    /// Reads resolved up front in one engine round trip
    /// ([`TxContext::prefetch`]); consumed by [`TxContext::get`].
    prefetched: HashMap<Key, SnapshotRead>,
    /// Fabric++: abort on stale reads instead of recording them.
    early_abort: bool,
    /// Set when an early-abort stale read fired, so the endorser can
    /// surface the abort even though [`Chaincode::invoke`] flattens
    /// errors to strings (a chaincode cannot "catch" the abort — once a
    /// stale read is observed the simulation is doomed, paper §5.2.1).
    stale: Option<SimulationError>,
}

impl TxContext {
    /// Creates a context over a pinned snapshot.
    ///
    /// `early_abort` enables the Fabric++ simulation-phase abort; without
    /// it, stale reads are served at the snapshot height and die in
    /// validation.
    pub fn new(snapshot: SnapshotView, early_abort: bool) -> Self {
        TxContext {
            snapshot,
            builder: RwSetBuilder::new(),
            prefetched: HashMap::new(),
            early_abort,
            stale: None,
        }
    }

    /// Resolves `keys` in one engine round trip and caches the results
    /// for the coming [`TxContext::get`] calls.
    ///
    /// Used by the endorser when a chaincode declares its read set up
    /// front ([`Chaincode::declared_reads`]): the whole read set costs a
    /// single store lock acquisition instead of one per key. Reading a
    /// key that was never prefetched stays correct — it falls through to
    /// a point read at the same pinned height.
    pub fn prefetch(&mut self, keys: &[Key]) -> Result<(), SimulationError> {
        let reads = self
            .snapshot
            .read_many(keys)
            .map_err(|e| SimulationError::Storage(e.to_string()))?;
        self.prefetched.reserve(keys.len());
        for (key, read) in keys.iter().zip(reads) {
            self.prefetched.insert(key.clone(), read);
        }
        Ok(())
    }

    /// Reads `key` from the simulated state.
    ///
    /// Order of precedence: this transaction's own pending writes
    /// (read-your-own-writes, not recorded in the read set), then the
    /// prefetch cache, then the snapshot (recorded with the version
    /// visible at the pinned height).
    pub fn get(&mut self, key: &Key) -> Result<Option<Value>, SimulationError> {
        if let Some(pending) = self.builder.pending_write(key) {
            return Ok(pending.cloned());
        }
        let read = match self.prefetched.remove(key) {
            Some(read) => read,
            None => self
                .snapshot
                .read(key)
                .map_err(|e| SimulationError::Storage(e.to_string()))?,
        };
        match read {
            SnapshotRead::Absent => {
                self.builder.record_read(key.clone(), None);
                Ok(None)
            }
            SnapshotRead::Fresh(vv) => {
                self.builder.record_read(key.clone(), Some(vv.version));
                Ok(Some(vv.value))
            }
            SnapshotRead::Stale(info) => {
                if self.early_abort {
                    // Paper Figure 6: "abort simulation" the moment the
                    // version check fails.
                    let err = SimulationError::StaleRead {
                        key: key.clone(),
                        snapshot_block: self.snapshot.last_block(),
                        observed: info.newest_version,
                    };
                    self.stale = Some(err.clone());
                    return Err(err);
                }
                // Snapshot isolation without early abort: serve the value
                // as of the pinned height and record that version. The
                // validation phase compares it against the newer committed
                // fact and aborts the transaction there.
                match info.at_height {
                    Some(vv) => {
                        self.builder.record_read(key.clone(), Some(vv.version));
                        Ok(Some(vv.value))
                    }
                    None => {
                        self.builder.record_read(key.clone(), None);
                        Ok(None)
                    }
                }
            }
        }
    }

    /// Convenience: read an `i64` balance (the asset-transfer workloads).
    pub fn get_i64(&mut self, key: &Key) -> Result<Option<i64>, SimulationError> {
        Ok(self.get(key)?.and_then(|v| v.as_i64()))
    }

    /// Range scan over `[start, end)` — Fabric's `GetStateByRange`.
    ///
    /// Every returned key is recorded in the read set with its observed
    /// version, so any committed change to a returned entry invalidates
    /// the transaction. As in Fabric v1.2, *phantoms* (keys inserted into
    /// the range after simulation) are not detected — the read set records
    /// what was seen, not the range predicate.
    ///
    /// This transaction's own pending writes inside the range are merged
    /// into the result (read-your-own-writes); its pending deletes hide
    /// entries.
    pub fn get_range(
        &mut self,
        start: &Key,
        end: &Key,
    ) -> Result<Vec<(Key, Value)>, SimulationError> {
        let scanned = self
            .snapshot
            .read_range(start, end)
            .map_err(|e| SimulationError::Storage(e.to_string()))?;
        let mut out: Vec<(Key, Value)> = Vec::with_capacity(scanned.len());
        for (key, read) in scanned {
            if let Some(pending) = self.builder.pending_write(&key) {
                // Own write shadows the stored entry; nothing is recorded
                // in the read set (read-your-own-writes).
                if let Some(v) = pending {
                    out.push((key, v.clone()));
                }
                continue;
            }
            match read {
                SnapshotRead::Absent => unreachable!("scan returns only live keys"),
                SnapshotRead::Fresh(vv) => {
                    self.builder.record_read(key.clone(), Some(vv.version));
                    out.push((key, vv.value));
                }
                SnapshotRead::Stale(info) => {
                    if self.early_abort {
                        let err = SimulationError::StaleRead {
                            key,
                            snapshot_block: self.snapshot.last_block(),
                            observed: info.newest_version,
                        };
                        self.stale = Some(err.clone());
                        return Err(err);
                    }
                    // Serve the entry as of the pinned height; the scan
                    // only returns keys live at that height.
                    if let Some(vv) = info.at_height {
                        self.builder.record_read(key.clone(), Some(vv.version));
                        out.push((key, vv.value));
                    }
                }
            }
        }
        // Own writes to keys absent from the store but inside the range.
        let mut extra: Vec<(Key, Value)> = Vec::new();
        for e in self.builder.pending_writes_in_range(start, end) {
            if let (k, Some(v)) = e {
                if !out.iter().any(|(ok, _)| ok == &k) {
                    extra.push((k, v));
                }
            }
        }
        out.extend(extra);
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    /// Writes `value` to `key` (buffered; durable only if the transaction
    /// commits).
    pub fn put(&mut self, key: Key, value: Value) {
        self.builder.record_write(key, Some(value));
    }

    /// Convenience: write an `i64` balance.
    pub fn put_i64(&mut self, key: Key, value: i64) {
        self.put(key, Value::from_i64(value));
    }

    /// Deletes `key` (buffered).
    pub fn delete(&mut self, key: Key) {
        self.builder.record_write(key, None);
    }

    /// The pinned last-block of the simulation snapshot.
    pub fn snapshot_block(&self) -> u64 {
        self.snapshot.last_block()
    }

    /// The early-abort stale read this simulation hit, if any.
    ///
    /// [`Chaincode::invoke`] returns `Result<(), String>`, so a chaincode
    /// necessarily flattens the [`SimulationError::StaleRead`] it gets
    /// from [`TxContext::get`] into an opaque string (or even swallows
    /// it). The endorser consults this after `invoke` to recover the
    /// structured abort — with its key/version provenance — and notify
    /// the client directly, as the paper prescribes.
    pub fn take_stale_abort(&mut self) -> Option<SimulationError> {
        self.stale.take()
    }

    /// Finishes the simulation, yielding the recorded effects.
    pub fn finish(self) -> ReadWriteSet {
        self.builder.build()
    }
}

/// A deterministic smart contract.
///
/// Determinism matters: the same proposal simulated on different endorsers
/// must produce identical read/write sets or the client cannot assemble a
/// valid transaction (paper §2.2.1 footnote: mismatching sets indicate
/// non-determinism or malice).
pub trait Chaincode: Send + Sync {
    /// Executes one invocation against `ctx`, interpreting `args`.
    fn invoke(&self, ctx: &mut TxContext, args: &[u8]) -> Result<(), String>;

    /// The keys this invocation will read, when they can be computed from
    /// `args` alone (a *declared read set*). The endorser prefetches them
    /// in one engine round trip before `invoke`, so simulation touches
    /// the store lock once instead of once per key. `None` (the default)
    /// means the read set depends on state and cannot be declared.
    fn declared_reads(&self, _args: &[u8]) -> Option<Vec<Key>> {
        None
    }

    /// Human-readable name (diagnostics only).
    fn name(&self) -> &str {
        "chaincode"
    }
}

/// Name → chaincode lookup shared by all peers of a channel (the deployed
/// contracts).
#[derive(Clone, Default)]
pub struct ChaincodeRegistry {
    map: HashMap<String, Arc<dyn Chaincode>>,
}

impl ChaincodeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deploys `cc` under `name` (replacing any previous deployment).
    pub fn deploy(&mut self, name: impl Into<String>, cc: Arc<dyn Chaincode>) {
        self.map.insert(name.into(), cc);
    }

    /// Looks up a deployed chaincode.
    pub fn get(&self, name: &str) -> Option<Arc<dyn Chaincode>> {
        self.map.get(name).cloned()
    }

    /// Number of deployed chaincodes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing is deployed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl fmt::Debug for ChaincodeRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ChaincodeRegistry({} deployed)", self.map.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_statedb::{CommitWrite, MemStateDb, StateStore};
    use fabric_common::Version;

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    fn setup() -> Arc<MemStateDb> {
        Arc::new(MemStateDb::with_genesis([
            (k("balA"), Value::from_i64(70)),
            (k("balB"), Value::from_i64(80)),
        ]))
    }

    fn ctx(db: &Arc<MemStateDb>, early_abort: bool) -> TxContext {
        let store: Arc<dyn StateStore> = db.clone();
        TxContext::new(SnapshotView::pin(store), early_abort)
    }

    #[test]
    fn reads_record_versions() {
        let db = setup();
        let mut c = ctx(&db, true);
        assert_eq!(c.get_i64(&k("balA")).unwrap(), Some(70));
        assert_eq!(c.get(&k("ghost")).unwrap(), None);
        let rw = c.finish();
        assert_eq!(rw.reads.version_of(&k("balA")), Some(Some(Version::GENESIS)));
        assert_eq!(rw.reads.version_of(&k("ghost")), Some(None));
        assert!(rw.writes.is_empty());
    }

    #[test]
    fn read_your_own_writes_not_in_read_set() {
        let db = setup();
        let mut c = ctx(&db, true);
        c.put_i64(k("balA"), 40);
        assert_eq!(c.get_i64(&k("balA")).unwrap(), Some(40), "sees own write");
        let rw = c.finish();
        assert!(!rw.reads.reads(&k("balA")), "own-write read not recorded");
        assert_eq!(rw.writes.value_of(&k("balA")), Some(Some(&Value::from_i64(40))));
    }

    #[test]
    fn delete_then_read_sees_absent() {
        let db = setup();
        let mut c = ctx(&db, true);
        c.delete(k("balA"));
        assert_eq!(c.get(&k("balA")).unwrap(), None);
        let rw = c.finish();
        assert_eq!(rw.writes.value_of(&k("balA")), Some(None));
    }

    #[test]
    fn stale_read_aborts_in_fabricpp_mode() {
        let db = setup();
        let mut c = ctx(&db, true);
        // Read balA first — fresh.
        assert_eq!(c.get_i64(&k("balA")).unwrap(), Some(70));
        // Concurrent commit updates balB (paper Figure 6).
        db.apply_block(1, &[CommitWrite::put(k("balB"), Value::from_i64(100), 0)]).unwrap();
        let err = c.get(&k("balB")).unwrap_err();
        assert_eq!(
            err,
            SimulationError::StaleRead {
                key: k("balB"),
                snapshot_block: 0,
                observed: Version::new(1, 0),
            }
        );
    }

    #[test]
    fn stale_read_served_at_snapshot_height_without_early_abort() {
        let db = setup();
        let mut c = ctx(&db, false);
        db.apply_block(1, &[CommitWrite::put(k("balB"), Value::from_i64(100), 0)]).unwrap();
        // Without early abort the read succeeds, serving the value as of
        // the pinned height (snapshot isolation) and recording that
        // version; validation later compares it against the newer commit
        // and aborts the transaction.
        assert_eq!(c.get_i64(&k("balB")).unwrap(), Some(80));
        let rw = c.finish();
        assert_eq!(rw.reads.version_of(&k("balB")), Some(Some(Version::GENESIS)));
    }

    #[test]
    fn prefetched_reads_resolve_in_one_round_trip() {
        let db = setup();
        let mut c = ctx(&db, true);
        let before = db.counters().snapshot();
        c.prefetch(&[k("balA"), k("balB"), k("ghost")]).unwrap();
        let mid = db.counters().snapshot();
        assert_eq!(mid.since(&before).snapshot_read_batches, 1, "one round trip");
        assert_eq!(mid.since(&before).snapshot_read_keys, 3);
        // Gets are served from the cache — no further store traffic — and
        // record the same read set as point reads would.
        assert_eq!(c.get_i64(&k("balA")).unwrap(), Some(70));
        assert_eq!(c.get_i64(&k("balB")).unwrap(), Some(80));
        assert_eq!(c.get(&k("ghost")).unwrap(), None);
        let after = db.counters().snapshot();
        assert_eq!(after.since(&mid).snapshot_read_batches, 0, "cache hits");
        let rw = c.finish();
        assert_eq!(rw.reads.version_of(&k("balA")), Some(Some(Version::GENESIS)));
        assert_eq!(rw.reads.version_of(&k("ghost")), Some(None));
    }

    #[test]
    fn prefetched_stale_read_still_aborts() {
        let db = setup();
        let mut c = ctx(&db, true);
        db.apply_block(1, &[CommitWrite::put(k("balB"), Value::from_i64(100), 0)]).unwrap();
        c.prefetch(&[k("balA"), k("balB")]).unwrap();
        assert_eq!(c.get_i64(&k("balA")).unwrap(), Some(70));
        let err = c.get(&k("balB")).unwrap_err();
        assert_eq!(
            err,
            SimulationError::StaleRead {
                key: k("balB"),
                snapshot_block: 0,
                observed: Version::new(1, 0),
            }
        );
    }

    #[test]
    fn snapshot_block_exposed() {
        let db = setup();
        let c = ctx(&db, true);
        assert_eq!(c.snapshot_block(), 0);
    }

    struct Transfer;
    impl Chaincode for Transfer {
        fn invoke(&self, ctx: &mut TxContext, args: &[u8]) -> Result<(), String> {
            let amount = i64::from_le_bytes(args.try_into().map_err(|_| "bad args")?);
            let a = ctx.get_i64(&k("balA")).map_err(|e| e.to_string())?.ok_or("no balA")?;
            let b = ctx.get_i64(&k("balB")).map_err(|e| e.to_string())?.ok_or("no balB")?;
            if a < amount {
                return Err("insufficient funds".into());
            }
            ctx.put_i64(k("balA"), a - amount);
            ctx.put_i64(k("balB"), b + amount);
            Ok(())
        }
        fn name(&self) -> &str {
            "transfer"
        }
    }

    #[test]
    fn chaincode_end_to_end_simulation() {
        // The paper's running example: transfer 30 from BalA to BalB.
        let db = setup();
        let mut c = ctx(&db, true);
        Transfer.invoke(&mut c, &30i64.to_le_bytes()).unwrap();
        let rw = c.finish();
        assert_eq!(rw.reads.len(), 2);
        assert_eq!(rw.writes.value_of(&k("balA")), Some(Some(&Value::from_i64(40))));
        assert_eq!(rw.writes.value_of(&k("balB")), Some(Some(&Value::from_i64(110))));
        // Simulation changed nothing durable.
        assert_eq!(db.get(&k("balA")).unwrap().unwrap().value, Value::from_i64(70));
    }

    #[test]
    fn chaincode_can_reject() {
        let db = setup();
        let mut c = ctx(&db, true);
        let err = Transfer.invoke(&mut c, &1000i64.to_le_bytes()).unwrap_err();
        assert!(err.contains("insufficient"));
    }

    #[test]
    fn range_scan_records_reads_and_merges_own_writes() {
        let db = Arc::new(MemStateDb::with_genesis([
            (k("acct:a"), Value::from_i64(1)),
            (k("acct:b"), Value::from_i64(2)),
            (k("acct:c"), Value::from_i64(3)),
            (k("other:x"), Value::from_i64(99)),
        ]));
        let mut c = ctx(&db, true);
        // Own write inside the range, own delete of an existing entry.
        c.put_i64(k("acct:ba"), 42); // new key inside range
        c.delete(k("acct:c"));
        let got = c.get_range(&k("acct:"), &k("acct:~")).unwrap();
        let names: Vec<String> = got.iter().map(|(k, _)| k.to_string()).collect();
        assert_eq!(names, ["acct:a", "acct:b", "acct:ba"]);
        assert_eq!(got[2].1.as_i64(), Some(42));

        let rw = c.finish();
        // Stored entries a and b recorded with versions; own-write keys not.
        assert!(rw.reads.reads(&k("acct:a")));
        assert!(rw.reads.reads(&k("acct:b")));
        assert!(!rw.reads.reads(&k("acct:ba")));
        assert!(!rw.reads.reads(&k("other:x")), "outside range");
    }

    #[test]
    fn range_scan_stale_entry_early_aborts() {
        let db = Arc::new(MemStateDb::with_genesis([
            (k("r:1"), Value::from_i64(1)),
            (k("r:2"), Value::from_i64(2)),
        ]));
        let mut aborting = ctx(&db, true);
        let mut tolerant = ctx(&db, false); // both pinned at block 0
        db.apply_block(1, &[CommitWrite::put(k("r:2"), Value::from_i64(22), 0)]).unwrap();
        let err = aborting.get_range(&k("r:"), &k("r:~")).unwrap_err();
        assert_eq!(
            err,
            SimulationError::StaleRead {
                key: k("r:2"),
                snapshot_block: 0,
                observed: Version::new(1, 0),
            }
        );
        // Without early abort the scan serves the entry as of the pinned
        // height, recording that version; the transaction survives to die
        // in validation instead.
        let got = tolerant.get_range(&k("r:"), &k("r:~")).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[1].1.as_i64(), Some(2), "snapshot value, not the newer commit");
        let rw = tolerant.finish();
        assert_eq!(rw.reads.version_of(&k("r:2")), Some(Some(Version::GENESIS)));
    }

    #[test]
    fn registry_deploy_and_lookup() {
        let mut reg = ChaincodeRegistry::new();
        assert!(reg.is_empty());
        reg.deploy("transfer", Arc::new(Transfer));
        assert_eq!(reg.len(), 1);
        assert!(reg.get("transfer").is_some());
        assert!(reg.get("missing").is_none());
        assert_eq!(reg.get("transfer").unwrap().name(), "transfer");
    }
}
