//! Peer recovery: rebuilding the ledger and the current state from a
//! persisted block log.
//!
//! A Fabric peer's current state is a pure function of its ledger: replay
//! every block in order, apply the writes of the transactions flagged
//! valid. This module re-derives both after a restart, re-verifying chain
//! linkage, data hashes, and — optionally — the recorded validation flags
//! themselves (a recovering peer need not trust its own old flags: the
//! MVCC outcome is recomputable).

use std::path::Path;
use std::sync::Arc;

use fabric_common::{Error, Result, TxNum, ValidationCode};
use fabric_ledger::{CommittedBlock, FileBlockStore, Ledger};
use fabric_statedb::{CommitWrite, MemStateDb, StateStore};

/// Result of a recovery run.
pub struct RecoveredPeer {
    /// The rebuilt ledger (chain fully re-verified).
    pub ledger: Ledger,
    /// The rebuilt current state.
    pub state: Arc<MemStateDb>,
}

impl std::fmt::Debug for RecoveredPeer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RecoveredPeer(height={}, keys≈{})",
            self.ledger.height(),
            self.state.approximate_len()
        )
    }
}

/// Rebuilds ledger and state from committed blocks.
///
/// When `recheck_flags` is set, the recorded MVCC validation flags are
/// recomputed against the rebuilt state and any disagreement is reported
/// as corruption. (Endorsement-policy flags are trusted: recomputing them
/// requires the signer registry, which a bare block log does not carry.)
pub fn rebuild(blocks: Vec<CommittedBlock>, recheck_flags: bool) -> Result<RecoveredPeer> {
    let ledger = Ledger::new();
    let state = Arc::new(MemStateDb::new());

    for cb in blocks {
        let block_num = cb.block.header.number;
        if recheck_flags {
            recheck_block_flags(&cb, state.as_ref())?;
        }
        let mut writes: Vec<CommitWrite> = Vec::new();
        for (tx_num, (tx, code)) in cb.iter().enumerate() {
            if !code.is_valid() {
                continue;
            }
            for e in tx.rwset.writes.entries() {
                writes.push(CommitWrite {
                    key: e.key.clone(),
                    value: e.value.clone(),
                    tx: tx_num as TxNum,
                });
            }
        }
        state.apply_block(block_num, &writes)?;
        ledger.append(cb)?;
    }
    Ok(RecoveredPeer { ledger, state })
}

/// Recovers a peer from an on-disk block log (see
/// [`fabric_ledger::FileBlockStore`]).
pub fn recover_from_log(path: &Path, recheck_flags: bool) -> Result<RecoveredPeer> {
    rebuild(FileBlockStore::load(path)?, recheck_flags)
}

/// Recovers a peer from a block log that may end in a torn frame — the
/// on-disk shape left behind by a crash mid `FileBlockStore::append`.
///
/// The torn tail is discarded (and truncated off the file, so the log can
/// be appended to again); everything before it is replayed as in
/// [`recover_from_log`]. Returns the rebuilt peer plus the number of torn
/// bytes dropped, so callers know whether the tip block must be re-fetched
/// from the network.
pub fn recover_from_crashed_log(
    path: &Path,
    recheck_flags: bool,
) -> Result<(RecoveredPeer, u64)> {
    let recovered = FileBlockStore::recover(path)?;
    let peer = rebuild(recovered.blocks, recheck_flags)?;
    Ok((peer, recovered.truncated_bytes))
}

/// Recomputes the MVCC verdict of every transaction in `cb` against the
/// state as of the previous block and compares with the recorded flag.
fn recheck_block_flags(cb: &CommittedBlock, state: &MemStateDb) -> Result<()> {
    let mut written_in_block: std::collections::HashSet<&fabric_common::Key> =
        std::collections::HashSet::new();
    for (tx, recorded) in cb.iter() {
        // Only MVCC verdicts are recomputable offline; endorsement verdicts
        // are taken at face value (and an EndorsementFailure never applies
        // writes, so state replay stays correct either way).
        if recorded == ValidationCode::EndorsementFailure {
            continue;
        }
        let mut valid = true;
        for e in tx.rwset.reads.entries() {
            if written_in_block.contains(&e.key) {
                valid = false;
                break;
            }
            let current = state.get(&e.key)?.map(|vv| vv.version);
            if current != e.version {
                valid = false;
                break;
            }
        }
        let recomputed =
            if valid { ValidationCode::Valid } else { ValidationCode::MvccConflict };
        if recomputed.is_valid() != recorded.is_valid() {
            return Err(Error::Corruption(format!(
                "block {}, {}: recorded flag {:?} but replay computes {:?}",
                cb.block.header.number, tx.id, recorded, recomputed
            )));
        }
        if valid {
            for e in tx.rwset.writes.entries() {
                written_in_block.insert(&e.key);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_common::rwset::rwset_from_keys;
    use fabric_common::{
        ChannelId, ClientId, Digest, Key, Transaction, TxId, Value, Version,
    };
    use fabric_ledger::Block;
    use std::time::Instant;

    fn tx(read: Option<(&str, Version)>, write: (&str, i64)) -> Transaction {
        let reads: Vec<Key> = read.iter().map(|(k, _)| Key::from(*k)).collect();
        let version = read.map(|(_, v)| v).unwrap_or(Version::GENESIS);
        Transaction {
            id: TxId::next(),
            channel: ChannelId(0),
            client: ClientId(0),
            chaincode: "cc".into(),
            rwset: rwset_from_keys(
                &reads,
                version,
                &[Key::from(write.0)],
                &Value::from_i64(write.1),
            ),
            endorsements: vec![],
            created_at: Instant::now(),
        }
    }

    /// A consistent 3-block history: genesis, a valid write, then one valid
    /// and one genuinely-conflicting transaction.
    fn history() -> Vec<CommittedBlock> {
        let genesis = CommittedBlock::new(Block::build(0, Digest::ZERO, vec![]), vec![]).unwrap();
        let b1 = Block::build(
            1,
            genesis.block.header.hash(),
            vec![tx(None, ("a", 10)), tx(None, ("b", 20))],
        );
        let cb1 =
            CommittedBlock::new(b1, vec![ValidationCode::Valid, ValidationCode::Valid]).unwrap();
        let b2 = Block::build(
            2,
            cb1.block.header.hash(),
            vec![
                tx(Some(("a", Version::new(1, 0))), ("a", 11)), // fresh read
                tx(Some(("a", Version::GENESIS)), ("c", 1)),    // stale read
            ],
        );
        let cb2 = CommittedBlock::new(
            b2,
            vec![ValidationCode::Valid, ValidationCode::MvccConflict],
        )
        .unwrap();
        vec![genesis, cb1, cb2]
    }

    #[test]
    fn rebuild_reproduces_state() {
        let rec = rebuild(history(), false).unwrap();
        assert_eq!(rec.ledger.height(), 3);
        rec.ledger.verify_chain().unwrap();
        let a = rec.state.get(&Key::from("a")).unwrap().unwrap();
        assert_eq!(a.value, Value::from_i64(11));
        assert_eq!(a.version, Version::new(2, 0));
        assert_eq!(rec.state.get(&Key::from("b")).unwrap().unwrap().value, Value::from_i64(20));
        assert!(rec.state.get(&Key::from("c")).unwrap().is_none(), "invalid tx not applied");
    }

    #[test]
    fn recheck_accepts_consistent_flags() {
        rebuild(history(), true).unwrap();
    }

    #[test]
    fn recheck_detects_forged_valid_flag() {
        let mut blocks = history();
        // Flip the stale transaction's flag to Valid.
        blocks[2].validity[1] = ValidationCode::Valid;
        let err = rebuild(blocks, true).unwrap_err();
        assert!(matches!(err, Error::Corruption(_)), "got {err:?}");
    }

    #[test]
    fn recheck_detects_forged_invalid_flag() {
        let mut blocks = history();
        // Flip a genuinely valid transaction to MvccConflict.
        blocks[1].validity[0] = ValidationCode::MvccConflict;
        let err = rebuild(blocks, true).unwrap_err();
        assert!(matches!(err, Error::Corruption(_)));
    }

    #[test]
    fn round_trip_through_file_log() {
        let dir = std::env::temp_dir().join(format!("fabric-recover-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blocks.log");
        {
            let mut store = FileBlockStore::open(&path).unwrap();
            for cb in history() {
                store.append(&cb).unwrap();
            }
            store.sync().unwrap();
        }
        let rec = recover_from_log(&path, true).unwrap();
        assert_eq!(rec.ledger.height(), 3);
        assert_eq!(
            rec.state.get(&Key::from("a")).unwrap().unwrap().value,
            Value::from_i64(11)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Crash *before commit*: the ledger appended a block whose state
    /// writes never reached any persistent store (this suite's state DB is
    /// memory-only, exactly the paper's deployment shape — state is a cache
    /// over the log). Recovery must re-derive those writes from the log
    /// alone, trusting no pre-crash state.
    #[test]
    fn crash_before_commit_replays_tip_block_writes() {
        let dir =
            std::env::temp_dir().join(format!("fabric-crash-pre-commit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blocks.log");
        let blocks = history();
        let tip_tx_ids: Vec<TxId> = blocks[2].block.txs.iter().map(|t| t.id).collect();
        {
            let mut store = FileBlockStore::open(&path).unwrap();
            for cb in &blocks {
                store.append(cb).unwrap();
            }
            store.sync().unwrap();
            // Process "crashes" here: block 2 is durable in the log but its
            // writes were never applied to any surviving state database.
        }
        let rec = recover_from_log(&path, true).unwrap();
        assert_eq!(rec.ledger.height(), 3);
        // The tip block's valid write (a=11 at version (2,0)) is present:
        // replay applied it from the log, not from any pre-crash state.
        let a = rec.state.get(&Key::from("a")).unwrap().unwrap();
        assert_eq!(a.value, Value::from_i64(11));
        assert_eq!(a.version, Version::new(2, 0));
        // No committed transaction was lost.
        for id in tip_tx_ids {
            assert!(rec.ledger.find_tx(id).is_some(), "tx {id} lost across crash");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Crash *mid block append*: the log ends in a torn frame. Recovery
    /// drops the torn tail, replays the clean prefix, and leaves the file
    /// appendable so the missing block can be re-committed.
    #[test]
    fn crash_mid_block_append_recovers_prefix_and_resumes() {
        let dir =
            std::env::temp_dir().join(format!("fabric-crash-mid-append-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blocks.log");
        let blocks = history();
        {
            let mut store = FileBlockStore::open(&path).unwrap();
            for cb in &blocks {
                store.append(cb).unwrap();
            }
            store.sync().unwrap();
        }
        // Tear the final frame: chop bytes off the end of the file, as a
        // crash mid-write would.
        let full_len = std::fs::metadata(&path).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full_len - 7).unwrap();
        drop(f);

        // A strict load refuses the torn log; crash recovery accepts it.
        assert!(recover_from_log(&path, true).is_err());
        let (rec, torn) = recover_from_crashed_log(&path, true).unwrap();
        assert!(torn > 0, "torn tail must be reported");
        assert_eq!(rec.ledger.height(), 2, "only the clean prefix replays");
        rec.ledger.verify_chain().unwrap();
        let a = rec.state.get(&Key::from("a")).unwrap().unwrap();
        assert_eq!(a.value, Value::from_i64(10), "block 2's write must not survive the tear");
        assert_eq!(a.version, Version::new(1, 0));
        assert!(rec.state.get(&Key::from("c")).unwrap().is_none());

        // The truncated log accepts the re-fetched block and a clean reload
        // then sees the full chain.
        {
            let mut store = FileBlockStore::open(&path).unwrap();
            store.append(&blocks[2]).unwrap();
            store.sync().unwrap();
        }
        let rec2 = recover_from_log(&path, true).unwrap();
        assert_eq!(rec2.ledger.height(), 3);
        assert_eq!(
            rec2.state.get(&Key::from("a")).unwrap().unwrap().value,
            Value::from_i64(11)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_log_recovers_empty_peer() {
        let rec = rebuild(vec![], true).unwrap();
        assert_eq!(rec.ledger.height(), 0);
        assert_eq!(rec.state.approximate_len(), 0);
    }
}
