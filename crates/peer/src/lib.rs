//! # fabric-peer
//!
//! Everything a Fabric peer does, for both the vanilla and the Fabric++
//! pipeline:
//!
//! * [`chaincode`] — the smart-contract abstraction: deterministic programs
//!   reading and writing the current state through a [`chaincode::TxContext`]
//!   that records the read/write sets (paper §2.2.1).
//! * [`endorser`] — the simulation phase: execute a proposal's chaincode
//!   against the local state, sign the resulting read/write set. In
//!   Fabric++ mode the simulation runs against a pinned snapshot with the
//!   lock-free stale-read check and aborts the moment a read is outdated
//!   (paper §5.2.1, Figure 6); in vanilla mode it holds the coarse state
//!   read-lock instead (paper §4.2.1).
//! * [`validator`] — the validation phase: endorsement-policy evaluation
//!   (signature recomputation) and the serializability conflict check
//!   against the current state plus earlier transactions in the same block
//!   (paper §2.2.3, Appendix A.3).
//! * [`committer`] — the commit phase: apply valid writes atomically, bump
//!   versions, append the block (valid and invalid transactions alike) to
//!   the ledger (paper §2.2.4).
//! * [`validation_pool`] — the parallel VSCC worker pool: chunks a block's
//!   endorsement-signature checks across persistent threads, bit-for-bit
//!   identical to the sequential path (and a sequential mode for the
//!   deterministic harnesses).
//! * [`peer`] — [`peer::Peer`] wires the pieces to one state database, one
//!   ledger, and one concurrency mode.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaincode;
pub mod committer;
pub mod endorser;
pub mod lanes;
pub mod peer;
pub mod recovery;
pub mod validation_pool;
pub mod validator;

pub use chaincode::{Chaincode, ChaincodeRegistry, SimulationError, TxContext};
pub use endorser::{EndorsementResponse, Endorser};
pub use lanes::{LaneOccupancy, LaneScheduler};
pub use peer::{PendingBlock, Peer};
pub use validation_pool::{PendingChecks, ValidationPool};
pub use validator::{validate_block, EndorsementPolicy, PolicyExpr};
