//! Replicated BFT ordering service for the Fabric++ reproduction.
//!
//! Sharma et al. (SIGMOD 2019, §2) treat Fabric's ordering service as a
//! black box: "the ordering service establishes a total order on the
//! transactions" — in production it is a replicated consensus group
//! (Kafka/Raft in Fabric, BFT in successors), not a single process. This
//! crate opens that box just far enough to study it: a message-driven,
//! wall-clock-free propose → vote → commit state machine ([`Replica`])
//! with leader rotation and view change on (logical-tick) timeout, run in
//! lockstep rounds over an abstract faulty transport ([`OrdererGroup`]).
//!
//! Design pillars:
//!
//! * **Determinism.** No wall clock, no threads, no randomness of its
//!   own: timeouts are injected ticks, message scheduling is a pure
//!   function of the seeded [`fabric_net::FaultHook`] the group is built
//!   with. Same plan + same seed ⇒ byte-identical block streams.
//! * **Plans, not blocks, travel.** Each replica recomputes the height's
//!   [`fabric_ordering::BatchPlan`] from its own copy of the batch (the
//!   pure [`fabric_ordering::BatchPrep::prepare_with`] stage — cutter,
//!   Fabric++ reorderer, early abort) and the proposal carries only the
//!   plan's [`plan_digest`]. A forged digest can therefore never gather
//!   honest prevotes, which is what makes equivocation harmless.
//! * **Seal exactly once per decided height.** Block numbering, hash
//!   chaining, empty-block suppression, and `OrdererStats` live in each
//!   replica's own [`fabric_ordering::OrderingService`] sealer; crashed
//!   replicas re-seal missed heights from the decided-batch archive when
//!   they restart, so every replica's chain is byte-identical.
//!
//! A 1-replica group degenerates to the single-orderer pipeline with
//! zero messages sent and zero fault-hook consultations — asserted
//! byte-for-byte by `tests/consensus_differential.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod group;
pub mod messages;
pub mod replica;

pub use group::{plan_digest, Equivocation, GroupConfig, OrdererCrash, OrdererGroup};
pub use messages::{Height, Msg, Payload, ReplicaId, View};
pub use replica::{QuorumRule, Replica, ReplicaConfig};
