//! Consensus wire messages.
//!
//! Four message kinds drive the whole protocol, all broadcast:
//!
//! * [`Payload::Proposal`] — the view's leader announces the digest of the
//!   block *plan* it computed for the height's batch. The batch itself is
//!   never shipped: every replica holds the same pending batch (the
//!   mempool model) and recomputes the plan locally, so validation is a
//!   digest comparison.
//! * [`Payload::Prevote`] — a replica's first-round vote: the digest it
//!   computed itself when it matches the proposal, or `None` (nil) when
//!   the proposal is missing-in-action or mismatched (equivocation).
//! * [`Payload::Precommit`] — the second-round vote, cast on seeing a
//!   quorum of matching prevotes (or a quorum of nils, which precommits
//!   nil and lets the view time out).
//! * [`Payload::NewView`] — a vote to abandon the current view; `view` in
//!   the envelope is the *target* view. A quorum of these moves every
//!   replica that sees it into the new view, whose leader re-proposes.
//!
//! Messages are plain `Copy` data: the transport that carries them (the
//! [`crate::group::OrdererGroup`] round loop) is free to drop, duplicate,
//! delay, or reorder them without bookkeeping.

use fabric_common::hash::Digest;

/// Consensus height: one height per cut batch, starting at 1. Decoupled
/// from block numbers — a height whose plan is fully early-aborted decides
/// but seals to no block (empty-block suppression).
pub type Height = u64;

/// View (round) within a height. Each height starts at view 0; a leader
/// timeout moves to the next view with the next leader.
pub type View = u64;

/// Replica index, `0..n`.
pub type ReplicaId = u32;

/// The protocol step a message carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Payload {
    /// Leader's block-plan digest for this (height, view).
    Proposal {
        /// Digest of the leader's prepared batch plan.
        plan: Digest,
    },
    /// First-round vote: `Some(digest)` endorses the proposal, `None` is a
    /// nil vote (no/invalid proposal seen).
    Prevote {
        /// The digest voted for, or `None` for nil.
        plan: Option<Digest>,
    },
    /// Second-round vote, cast on a prevote quorum.
    Precommit {
        /// The digest voted for, or `None` for nil.
        plan: Option<Digest>,
    },
    /// Vote to enter the view named in the envelope's `view` field.
    NewView,
}

/// One broadcast consensus message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Msg {
    /// Sending replica.
    pub from: ReplicaId,
    /// Height the message belongs to; other heights ignore it.
    pub height: Height,
    /// View the vote is cast in (for [`Payload::NewView`]: the target view).
    pub view: View,
    /// The protocol step.
    pub payload: Payload,
}

impl Msg {
    /// Nominal wire size in bytes, used as the size argument when
    /// consulting a `fabric_net::FaultHook`. Constant per payload kind so
    /// fault schedules stay a pure function of the message sequence.
    pub fn wire_size(&self) -> usize {
        match self.payload {
            Payload::Proposal { .. } => 56,
            Payload::Prevote { .. } | Payload::Precommit { .. } => 57,
            Payload::NewView => 24,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes_are_stable() {
        let d = Digest::ZERO;
        let m = |payload| Msg { from: 0, height: 1, view: 0, payload };
        assert_eq!(m(Payload::Proposal { plan: d }).wire_size(), 56);
        assert_eq!(m(Payload::Prevote { plan: Some(d) }).wire_size(), 57);
        assert_eq!(m(Payload::Prevote { plan: None }).wire_size(), 57);
        assert_eq!(m(Payload::Precommit { plan: Some(d) }).wire_size(), 57);
        assert_eq!(m(Payload::NewView).wire_size(), 24);
    }
}
