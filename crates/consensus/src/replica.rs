//! The per-replica consensus state machine.
//!
//! A [`Replica`] is message-driven and wall-clock-free: it owns no
//! threads, reads no clocks, and advances only when [`Replica::receive`],
//! [`Replica::progress`], or [`Replica::tick`] is called. Liveness under
//! leader failure comes from *logical ticks* injected by the surrounding
//! harness — after [`ReplicaConfig::timeout_ticks`] idle ticks in one view
//! the replica votes to move to the next view. Because every input is an
//! explicit call, a deterministic scheduler (the chaos harness) can replay
//! any interleaving byte-for-byte from a seed.
//!
//! The safety argument is simpler than general BFT because validation is
//! recomputation: every replica derives its own plan digest from the same
//! pending batch, so a prevote only ever endorses a proposal equal to the
//! replica's *own* digest. A forged (equivocated) digest can therefore
//! never gather honest prevotes, and no two conflicting digests can both
//! reach quorum even under the simple-majority rule.

use fabric_common::hash::Digest;
use fabric_trace::{EventKind, TraceSink, VoteStep};

use crate::messages::{Height, Msg, Payload, ReplicaId, View};

/// How many votes make a quorum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuorumRule {
    /// Simple majority: `n/2 + 1`. Sufficient here because followers only
    /// prevote digests they recomputed themselves (see module docs).
    Majority,
    /// Classic BFT quorum: `n - f` with `f = (n-1)/3`.
    Byzantine,
}

impl QuorumRule {
    /// Quorum size for `n` replicas.
    pub fn quorum(self, n: usize) -> usize {
        match self {
            QuorumRule::Majority => n / 2 + 1,
            QuorumRule::Byzantine => n - (n - 1) / 3,
        }
    }
}

/// Static configuration of one replica.
#[derive(Debug, Clone, Copy)]
pub struct ReplicaConfig {
    /// This replica's index, `0..n`.
    pub id: ReplicaId,
    /// Total number of replicas.
    pub n: usize,
    /// Quorum rule shared by the whole group.
    pub quorum: QuorumRule,
    /// Idle ticks in one view before voting for the next view.
    pub timeout_ticks: u32,
}

/// Deterministic propose/prevote/precommit state machine for one replica.
pub struct Replica {
    cfg: ReplicaConfig,
    height: Height,
    view: View,
    /// Digest of the plan this replica computed for the current height.
    my_plan: Option<Digest>,
    /// Transaction count of the current batch (trace annotation only).
    txs: u32,
    /// Every stored message for the current height (own votes included),
    /// deduplicated; tallies are computed over this on demand so votes
    /// that arrive before the replica enters their view still count.
    msgs: Vec<Msg>,
    proposed: bool,
    sent_prevote: bool,
    sent_precommit: bool,
    decided: Option<(Digest, View)>,
    ticks_in_view: u32,
    /// Timeouts fired without leaving the current view; escalates the
    /// NewView target so a stuck group converges on ever-higher views.
    timeout_escalations: u64,
    sink: TraceSink,
}

impl Replica {
    /// Creates an idle replica; call [`Replica::begin_height`] to start.
    pub fn new(cfg: ReplicaConfig) -> Self {
        Replica {
            cfg,
            height: 0,
            view: 0,
            my_plan: None,
            txs: 0,
            msgs: Vec::new(),
            proposed: false,
            sent_prevote: false,
            sent_precommit: false,
            decided: None,
            ticks_in_view: 0,
            timeout_escalations: 0,
            sink: TraceSink::disabled(),
        }
    }

    /// Attaches a flight-recorder sink for consensus lifecycle events.
    pub fn with_trace(mut self, sink: TraceSink) -> Self {
        self.sink = sink;
        self
    }

    /// This replica's index.
    pub fn id(&self) -> ReplicaId {
        self.cfg.id
    }

    /// Current height.
    pub fn height(&self) -> Height {
        self.height
    }

    /// Current view within the height.
    pub fn view(&self) -> View {
        self.view
    }

    /// Leader of view `view` at the current height: `(height + view) % n`,
    /// so leadership rotates per height and per view change.
    pub fn leader_of(&self, view: View) -> ReplicaId {
        ((self.height.wrapping_add(view)) % self.cfg.n as u64) as ReplicaId
    }

    /// Leader of the current view.
    pub fn leader(&self) -> ReplicaId {
        self.leader_of(self.view)
    }

    /// The digest this height decided on, if any.
    pub fn decided(&self) -> Option<Digest> {
        self.decided.map(|(d, _)| d)
    }

    /// The view the decision was reached in, if decided.
    pub fn decided_view(&self) -> Option<View> {
        self.decided.map(|(_, v)| v)
    }

    /// Starts a new height: resets all per-height state and records the
    /// digest of the plan this replica computed from its own copy of the
    /// batch. `txs` annotates trace events only.
    pub fn begin_height(&mut self, height: Height, plan: Digest, txs: u32) {
        self.height = height;
        self.view = 0;
        self.my_plan = Some(plan);
        self.txs = txs;
        self.msgs.clear();
        self.proposed = false;
        self.sent_prevote = false;
        self.sent_precommit = false;
        self.decided = None;
        self.ticks_in_view = 0;
        self.timeout_escalations = 0;
    }

    /// Stores one incoming message. Messages for other heights are stale
    /// (or from a future the group never produces) and are ignored, as is
    /// everything after a decision. Duplicates — same sender, same view,
    /// same payload kind — are ignored, first copy wins.
    pub fn receive(&mut self, msg: Msg) {
        if msg.height != self.height || self.decided.is_some() {
            return;
        }
        self.store(msg);
    }

    fn store(&mut self, msg: Msg) {
        let dup = self.msgs.iter().any(|m| {
            m.from == msg.from
                && m.view == msg.view
                && std::mem::discriminant(&m.payload) == std::mem::discriminant(&msg.payload)
        });
        if !dup {
            self.msgs.push(msg);
        }
    }

    /// Advances the state machine to a fixed point and returns every
    /// message it wants broadcast: view entry on a NewView quorum, the
    /// leader's proposal, the prevote once a proposal is seen, the
    /// precommit once prevotes reach quorum, and the decision once
    /// precommits do. Own messages are recorded locally before being
    /// returned, so self-votes count without loopback traffic. Idempotent:
    /// calling again without new input returns nothing.
    pub fn progress(&mut self) -> Vec<Msg> {
        let mut out = Vec::new();
        if self.decided.is_some() {
            return out;
        }
        loop {
            let mut changed = false;

            // 1. View change: enter the highest future view with a quorum
            // of NewView votes (votes stored before we entered count too).
            if let Some(w) = self.newview_quorum() {
                self.enter_view(w);
                changed = true;
            }

            // 2. Propose (leader only, once per view).
            if !self.proposed && self.leader() == self.cfg.id {
                if let Some(plan) = self.my_plan {
                    let msg = self.own(Payload::Proposal { plan });
                    self.store(msg);
                    out.push(msg);
                    self.proposed = true;
                    changed = true;
                    if self.sink.is_enabled() {
                        self.sink.emit(EventKind::ConsensusProposal {
                            height: self.height,
                            view: self.view,
                            leader: self.cfg.id,
                            txs: self.txs,
                        });
                    }
                }
            }

            // 3. Prevote: endorse the current view's proposal only when it
            // matches the digest we recomputed ourselves; nil otherwise.
            if !self.sent_prevote {
                if let Some(proposed) = self.current_proposal() {
                    let vote =
                        if self.my_plan == Some(proposed) { Some(proposed) } else { None };
                    let msg = self.own(Payload::Prevote { plan: vote });
                    self.store(msg);
                    out.push(msg);
                    self.sent_prevote = true;
                    changed = true;
                }
            }

            // 4. Precommit on a prevote quorum (matching digest or nil).
            if !self.sent_precommit {
                let (digest, votes, nils) = self.tally(VoteStep::Prevote);
                let quorum = self.cfg.quorum.quorum(self.cfg.n);
                let vote = if votes >= quorum {
                    Some(Some(digest.expect("votes imply a digest")))
                } else if nils >= quorum {
                    Some(None)
                } else {
                    None // no quorum either way yet
                };
                if let Some(vote) = vote {
                    if self.sink.is_enabled() {
                        self.sink.emit(EventKind::ConsensusTally {
                            height: self.height,
                            view: self.view,
                            replica: self.cfg.id,
                            step: VoteStep::Prevote,
                            votes: votes as u32,
                            nil_votes: nils as u32,
                        });
                    }
                    let msg = self.own(Payload::Precommit { plan: vote });
                    self.store(msg);
                    out.push(msg);
                    self.sent_precommit = true;
                    changed = true;
                }
            }

            // 5. Decide on a precommit quorum for a real digest. A nil
            // precommit quorum means the view failed: nothing to do here —
            // idle ticks will move everyone to the next view.
            {
                let (digest, votes, nils) = self.tally(VoteStep::Precommit);
                if votes >= self.cfg.quorum.quorum(self.cfg.n) {
                    let d = digest.expect("votes imply a digest");
                    self.decided = Some((d, self.view));
                    if self.sink.is_enabled() {
                        self.sink.emit(EventKind::ConsensusTally {
                            height: self.height,
                            view: self.view,
                            replica: self.cfg.id,
                            step: VoteStep::Precommit,
                            votes: votes as u32,
                            nil_votes: nils as u32,
                        });
                        self.sink.emit(EventKind::ConsensusDecide {
                            height: self.height,
                            view: self.view,
                            replica: self.cfg.id,
                            txs: self.txs,
                        });
                    }
                    return out;
                }
            }

            if !changed {
                break;
            }
        }
        out
    }

    /// One logical tick of idle time. After `timeout_ticks` of them in the
    /// same view the replica votes to leave it, escalating the target view
    /// on every further timeout so a group that failed to gather a quorum
    /// for `view + 1` eventually agrees on some higher view.
    pub fn tick(&mut self) -> Vec<Msg> {
        if self.decided.is_some() {
            return Vec::new();
        }
        self.ticks_in_view += 1;
        if self.ticks_in_view < self.cfg.timeout_ticks {
            return Vec::new();
        }
        self.ticks_in_view = 0;
        self.timeout_escalations += 1;
        let target = self.view + self.timeout_escalations;
        let already = self.msgs.iter().any(|m| {
            m.from == self.cfg.id && m.view == target && matches!(m.payload, Payload::NewView)
        });
        if already {
            return Vec::new();
        }
        let msg = Msg {
            from: self.cfg.id,
            height: self.height,
            view: target,
            payload: Payload::NewView,
        };
        self.store(msg);
        vec![msg]
    }

    fn own(&self, payload: Payload) -> Msg {
        Msg { from: self.cfg.id, height: self.height, view: self.view, payload }
    }

    /// The current view's proposal digest, if the leader's proposal has
    /// arrived (only the view leader's proposal counts).
    fn current_proposal(&self) -> Option<Digest> {
        let leader = self.leader();
        self.msgs.iter().find_map(|m| match m.payload {
            Payload::Proposal { plan } if m.view == self.view && m.from == leader => Some(plan),
            _ => None,
        })
    }

    /// Tallies prevotes or precommits in the current view. Returns the
    /// digest with the most votes (if any), its vote count, and the nil
    /// count. Honest replicas share one digest, so ties cannot reach
    /// quorum (quorum > n/2 under both rules).
    fn tally(&self, step: VoteStep) -> (Option<Digest>, usize, usize) {
        let mut digests: Vec<(Digest, usize)> = Vec::new();
        let mut nils = 0usize;
        for m in &self.msgs {
            if m.view != self.view {
                continue;
            }
            let plan = match (step, m.payload) {
                (VoteStep::Prevote, Payload::Prevote { plan }) => plan,
                (VoteStep::Precommit, Payload::Precommit { plan }) => plan,
                _ => continue,
            };
            match plan {
                Some(d) => match digests.iter_mut().find(|(x, _)| *x == d) {
                    Some((_, c)) => *c += 1,
                    None => digests.push((d, 1)),
                },
                None => nils += 1,
            }
        }
        let best = digests.iter().max_by_key(|(_, c)| *c);
        match best {
            Some((d, c)) => (Some(*d), *c, nils),
            None => (None, 0, nils),
        }
    }

    /// Future views (strictly above the current one) with a NewView
    /// quorum; returns the highest.
    fn newview_quorum(&self) -> Option<View> {
        let quorum = self.cfg.quorum.quorum(self.cfg.n);
        let mut best: Option<View> = None;
        let mut targets: Vec<(View, usize)> = Vec::new();
        for m in &self.msgs {
            if m.view <= self.view || !matches!(m.payload, Payload::NewView) {
                continue;
            }
            match targets.iter_mut().find(|(w, _)| *w == m.view) {
                Some((_, c)) => *c += 1,
                None => targets.push((m.view, 1)),
            }
        }
        for (w, c) in targets {
            if c >= quorum && best.map(|b| w > b).unwrap_or(true) {
                best = Some(w);
            }
        }
        best
    }

    fn enter_view(&mut self, w: View) {
        let old = self.view;
        let old_leader = self.leader_of(old);
        let new_leader = self.leader_of(w);
        self.view = w;
        self.proposed = false;
        self.sent_prevote = false;
        self.sent_precommit = false;
        self.ticks_in_view = 0;
        self.timeout_escalations = 0;
        if self.sink.is_enabled() {
            self.sink.emit(EventKind::ConsensusViewChange {
                height: self.height,
                old_view: old,
                new_view: w,
                old_leader,
                new_leader,
                replica: self.cfg.id,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_common::hash::Sha256;

    fn digest(tag: u8) -> Digest {
        let mut h = Sha256::new();
        h.update(&[tag]);
        h.finalize()
    }

    fn cfg(id: u32, n: usize) -> ReplicaConfig {
        ReplicaConfig { id, n, quorum: QuorumRule::Majority, timeout_ticks: 2 }
    }

    #[test]
    fn quorum_rules() {
        assert_eq!(QuorumRule::Majority.quorum(1), 1);
        assert_eq!(QuorumRule::Majority.quorum(3), 2);
        assert_eq!(QuorumRule::Majority.quorum(4), 3);
        assert_eq!(QuorumRule::Majority.quorum(5), 3);
        assert_eq!(QuorumRule::Byzantine.quorum(1), 1);
        assert_eq!(QuorumRule::Byzantine.quorum(4), 3);
        assert_eq!(QuorumRule::Byzantine.quorum(7), 5);
    }

    #[test]
    fn single_replica_decides_alone() {
        let mut r = Replica::new(cfg(0, 1));
        r.begin_height(1, digest(1), 4);
        let out = r.progress();
        // Proposal, prevote, precommit — all self-counted, quorum of one.
        assert_eq!(out.len(), 3);
        assert_eq!(r.decided(), Some(digest(1)));
        assert_eq!(r.decided_view(), Some(0));
        assert!(r.progress().is_empty(), "progress is idempotent after decide");
    }

    #[test]
    fn leader_rotates_with_height_and_view() {
        let mut r = Replica::new(cfg(0, 3));
        r.begin_height(1, digest(1), 0);
        assert_eq!(r.leader(), 1);
        assert_eq!(r.leader_of(1), 2);
        assert_eq!(r.leader_of(2), 0);
        r.begin_height(2, digest(2), 0);
        assert_eq!(r.leader(), 2);
    }

    #[test]
    fn follower_prevotes_matching_proposal_and_decides() {
        // Height 2 of n=3 → leader is replica 2; we are replica 0.
        let d = digest(7);
        let mut r = Replica::new(cfg(0, 3));
        r.begin_height(2, d, 5);
        assert!(r.progress().is_empty(), "nothing to do before the proposal");

        r.receive(Msg { from: 2, height: 2, view: 0, payload: Payload::Proposal { plan: d } });
        let out = r.progress();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload, Payload::Prevote { plan: Some(d) });

        // One more prevote completes the quorum of 2 → precommit.
        r.receive(Msg { from: 2, height: 2, view: 0, payload: Payload::Prevote { plan: Some(d) } });
        let out = r.progress();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload, Payload::Precommit { plan: Some(d) });
        assert!(r.decided().is_none(), "one precommit is not a quorum");

        r.receive(Msg {
            from: 1,
            height: 2,
            view: 0,
            payload: Payload::Precommit { plan: Some(d) },
        });
        assert!(r.progress().is_empty());
        assert_eq!(r.decided(), Some(d));
    }

    #[test]
    fn mismatched_proposal_draws_nil_prevote() {
        let mine = digest(1);
        let forged = digest(2);
        let mut r = Replica::new(cfg(0, 3));
        r.begin_height(2, mine, 5);
        r.receive(Msg {
            from: 2,
            height: 2,
            view: 0,
            payload: Payload::Proposal { plan: forged },
        });
        let out = r.progress();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload, Payload::Prevote { plan: None }, "forged digest gets nil");
    }

    #[test]
    fn nil_prevote_quorum_precommits_nil_but_never_decides() {
        let mut r = Replica::new(cfg(0, 3));
        r.begin_height(2, digest(1), 5);
        for from in [1, 2] {
            r.receive(Msg { from, height: 2, view: 0, payload: Payload::Prevote { plan: None } });
        }
        let out = r.progress();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload, Payload::Precommit { plan: None });
        for from in [1, 2] {
            r.receive(Msg {
                from,
                height: 2,
                view: 0,
                payload: Payload::Precommit { plan: None },
            });
        }
        assert!(r.progress().is_empty());
        assert!(r.decided().is_none(), "nil quorum fails the view, decides nothing");
    }

    #[test]
    fn ticks_fire_view_change_votes_with_escalation() {
        let mut r = Replica::new(cfg(0, 3));
        r.begin_height(1, digest(1), 0);
        assert!(r.tick().is_empty(), "first tick under the timeout");
        let out = r.tick();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload, Payload::NewView);
        assert_eq!(out[0].view, 1, "first timeout targets view+1");
        assert!(r.tick().is_empty());
        let out = r.tick();
        assert_eq!(out[0].view, 2, "still stuck: escalate to view+2");
    }

    #[test]
    fn newview_quorum_enters_view_and_new_leader_proposes() {
        // n=3, height 1: view-0 leader is 1, view-1 leader is 2 — and we
        // are replica 2, so entering view 1 makes us propose.
        let d = digest(9);
        let mut r = Replica::new(cfg(2, 3));
        r.begin_height(1, d, 3);
        r.receive(Msg { from: 0, height: 1, view: 1, payload: Payload::NewView });
        r.receive(Msg { from: 1, height: 1, view: 1, payload: Payload::NewView });
        let out = r.progress();
        assert_eq!(r.view(), 1);
        assert!(out
            .iter()
            .any(|m| m.view == 1 && matches!(m.payload, Payload::Proposal { .. })));
        // Entering the view resets the prevote: we also endorse ourselves.
        assert!(out
            .iter()
            .any(|m| m.payload == Payload::Prevote { plan: Some(d) } && m.view == 1));
    }

    #[test]
    fn votes_arriving_before_view_entry_still_count() {
        // Replica 0 is still in view 0 when view-1 prevotes arrive; after
        // a NewView quorum moves it to view 1, those prevotes tally.
        let d = digest(4);
        let mut r = Replica::new(cfg(0, 3));
        r.begin_height(1, d, 3);
        r.receive(Msg { from: 2, height: 1, view: 1, payload: Payload::Proposal { plan: d } });
        r.receive(Msg { from: 2, height: 1, view: 1, payload: Payload::Prevote { plan: Some(d) } });
        r.receive(Msg { from: 1, height: 1, view: 1, payload: Payload::NewView });
        r.receive(Msg { from: 2, height: 1, view: 1, payload: Payload::NewView });
        let out = r.progress();
        assert_eq!(r.view(), 1);
        // Our own prevote joins the stored one → quorum → precommit too.
        assert!(out.iter().any(|m| m.payload == Payload::Prevote { plan: Some(d) }));
        assert!(out.iter().any(|m| m.payload == Payload::Precommit { plan: Some(d) }));
    }

    #[test]
    fn duplicates_and_stale_heights_are_ignored() {
        let d = digest(3);
        let mut r = Replica::new(cfg(0, 3));
        r.begin_height(2, d, 1);
        let vote = Msg { from: 1, height: 2, view: 0, payload: Payload::Prevote { plan: Some(d) } };
        r.receive(vote);
        r.receive(vote);
        r.receive(vote);
        // Two distinct voters are needed for quorum; three copies of one
        // vote must not fake it.
        r.receive(Msg { from: 2, height: 2, view: 0, payload: Payload::Proposal { plan: d } });
        let out = r.progress();
        // Proposal seen → prevote; own + dup'd single vote = 2 = quorum.
        // The duplicate itself contributed exactly one vote.
        assert!(out.iter().any(|m| matches!(m.payload, Payload::Prevote { .. })));
        // Stale-height messages vanish.
        r.receive(Msg { from: 1, height: 9, view: 0, payload: Payload::NewView });
        assert!(r.progress().iter().all(|m| m.height == 2));
    }

    #[test]
    fn trace_events_cover_the_full_lifecycle() {
        let sink = TraceSink::bounded(64);
        let mut r = Replica::new(cfg(0, 1)).with_trace(sink.clone());
        r.begin_height(1, digest(1), 7);
        r.progress();
        let labels: Vec<&str> = sink.drain().iter().map(|e| e.kind.label()).collect();
        assert_eq!(
            labels,
            vec![
                "consensus_proposal",
                "consensus_tally",  // prevote quorum
                "consensus_tally",  // precommit quorum
                "consensus_decide",
            ]
        );
    }
}
