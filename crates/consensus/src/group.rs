//! [`OrdererGroup`]: a replicated ordering service over a deterministic,
//! fault-injectable transport.
//!
//! The group runs `n` [`Replica`]s in lockstep rounds on one thread. Per
//! cut batch (one consensus *height*) every live replica recomputes the
//! block plan from its own copy of the batch — reusing the stateless
//! [`BatchPrep::prepare_with`] stage, so the plan is a pure function of
//! the batch — and the view leader proposes the plan's digest. Messages
//! travel over a virtual wire where every per-destination copy consults a
//! [`FaultHook`] under a [`fabric_net::LinkId::between_replicas`] link id:
//! the chaos injector can drop, duplicate, delay, reorder, or partition
//! every consensus message with the same seeded determinism it applies to
//! block distribution. Logical ticks fire only when nothing is in flight,
//! so a (plan, seed, batch stream) triple replays byte-for-byte.
//!
//! `seal` happens exactly once per decided height on every replica's own
//! [`OrderingService`] in height order, so the hash chain, block
//! numbering, and empty-block suppression stay consistent across leader
//! changes; replicas that were down (or missed the decision) seal from the
//! decided-batch archive when they catch up — the state-transfer analogue.
//! A 1-replica group sends zero messages and consults the hook zero
//! times, which is what makes the single-orderer differential test exact.

use std::collections::VecDeque;
use std::sync::Arc;

use fabric_common::hash::{Digest, Sha256};
use fabric_common::{Error, PipelineConfig, Result, SubsystemGauges, Transaction, TxCounters};
use fabric_net::{FaultHook, LinkId, SendFault};
use fabric_ordering::{
    BatchPlan, BatchPrep, CutReason, OrderedBlock, OrdererStats, OrderingService, PrepScratch,
};
use fabric_trace::TraceSink;

use crate::messages::{Height, Msg, Payload};
use crate::replica::{QuorumRule, Replica, ReplicaConfig};

/// A scheduled orderer-replica crash, the consensus analogue of
/// [`fabric-chaos`'s peer `CrashPoint`]: the replica dies during height
/// `at_height` and restarts — with catch-up sealing from the decided-batch
/// archive — at the end of height `at_height + restart_after_heights - 1`
/// (`0` = never restarts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrdererCrash {
    /// Replica index, `0..n`.
    pub replica: u32,
    /// Consensus height during which the replica dies.
    pub at_height: u64,
    /// Heights after `at_height` at which it restarts (0 = never).
    pub restart_after_heights: u64,
    /// When true the crash fires right after the replica's *proposal* hits
    /// the wire — the classic "leader dies mid-height" scenario. When
    /// false it fires before the height starts (the replica misses the
    /// whole height).
    pub after_propose: bool,
}

/// A scheduled leader equivocation: at `at_height` the named replica's
/// proposal copies toward `victims` carry a corrupted plan digest (the
/// SHA-256 of the honest one). Victims recompute their own plan, see the
/// mismatch, and prevote nil — a forged digest can never gather honest
/// prevotes, so equivocation costs at most a view change, never a fork.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Equivocation {
    /// The equivocating replica (must be the height's leader for the
    /// corruption to reach a proposal).
    pub leader: u32,
    /// Consensus height the equivocation fires on.
    pub at_height: u64,
    /// Destination replicas that receive the corrupted digest.
    pub victims: Vec<u32>,
}

/// Static configuration of an [`OrdererGroup`].
#[derive(Debug, Clone)]
pub struct GroupConfig {
    /// Number of replicas (1..=[`LinkId::MAX_CONSENSUS_REPLICAS`]).
    pub replicas: usize,
    /// Quorum rule.
    pub quorum: QuorumRule,
    /// Idle rounds in one view before replicas vote to change it.
    pub timeout_ticks: u32,
    /// Liveness bound: rounds per height before giving up with an error
    /// (e.g. when crashes leave less than a quorum alive).
    pub max_rounds: u32,
    /// Scheduled replica crashes.
    pub crashes: Vec<OrdererCrash>,
    /// Scheduled leader equivocations.
    pub equivocations: Vec<Equivocation>,
}

impl GroupConfig {
    /// Defaults: majority quorum, 2-tick view timeout, 256-round liveness
    /// bound, no scheduled faults.
    pub fn new(replicas: usize) -> Self {
        GroupConfig {
            replicas,
            quorum: QuorumRule::Majority,
            timeout_ticks: 2,
            max_rounds: 256,
            crashes: Vec::new(),
            equivocations: Vec::new(),
        }
    }

    fn validate(&self) -> Result<()> {
        if self.replicas == 0 || self.replicas > LinkId::MAX_CONSENSUS_REPLICAS as usize {
            return Err(Error::Config(format!(
                "replica count {} outside 1..={}",
                self.replicas,
                LinkId::MAX_CONSENSUS_REPLICAS
            )));
        }
        if self.timeout_ticks == 0 {
            return Err(Error::Config("timeout_ticks must be at least 1".into()));
        }
        if self.max_rounds == 0 {
            return Err(Error::Config("max_rounds must be at least 1".into()));
        }
        for c in &self.crashes {
            if c.replica as usize >= self.replicas {
                return Err(Error::Config(format!(
                    "crash names replica {} of {}",
                    c.replica, self.replicas
                )));
            }
        }
        for e in &self.equivocations {
            if e.leader as usize >= self.replicas {
                return Err(Error::Config(format!(
                    "equivocation names replica {} of {}",
                    e.leader, self.replicas
                )));
            }
            if e.victims.is_empty() {
                return Err(Error::Config("equivocation with no victims is a no-op".into()));
            }
            if e.victims.iter().any(|v| *v as usize >= self.replicas) {
                return Err(Error::Config("equivocation victim out of range".into()));
            }
        }
        Ok(())
    }
}

/// Digest of a [`BatchPlan`]: the ordered survivor ids plus the
/// early-aborted (id, code) pairs. A pure function of the plan, which is
/// itself a pure function of the batch — so every honest replica derives
/// the same digest, and digest equality is plan equality.
pub fn plan_digest(plan: &BatchPlan) -> Digest {
    let mut h = Sha256::new();
    for tx in &plan.ordered {
        h.update(&tx.id.raw().to_le_bytes());
    }
    h.update(b"/early-aborted/");
    for (tx, code) in &plan.early_aborted {
        h.update(&tx.id.raw().to_le_bytes());
        h.update(&[*code as u8]);
    }
    h.finalize()
}

/// One replica slot: the consensus state machine plus this replica's own
/// sequential sealer and telemetry.
struct ReplicaSlot {
    replica: Replica,
    sealer: OrderingService,
    stats: OrdererStats,
    /// Consensus heights sealed through (decided heights only).
    sealed_height: u64,
    down: bool,
    /// This height's own plan, computed at `begin_height`; sealed on
    /// decide so the prepare work is not repeated.
    plan: Option<BatchPlan>,
    /// Messages hit by a `Delay` verdict; they arrive at the start of the
    /// next round (one logical spike), mirroring the peer-side harness.
    delayed: Vec<Msg>,
    /// Rolling hash over this replica's sealed block-header hashes — the
    /// cross-replica block-stream fingerprint.
    chain_hash: Digest,
}

/// An in-flight message copy on the virtual wire.
struct Env {
    from: usize,
    to: usize,
    msg: Msg,
}

/// An open reorder burst on one directed replica link (mirrors
/// `fabric_net::FaultySender`'s per-link burst buffer).
struct LinkBurst {
    from: usize,
    to: usize,
    held: Vec<Msg>,
    remaining: u32,
}

/// A replicated ordering service: `n` deterministic consensus replicas
/// agreeing on one block stream.
pub struct OrdererGroup {
    cfg: GroupConfig,
    prep: BatchPrep,
    scratch: PrepScratch,
    slots: Vec<ReplicaSlot>,
    wire: VecDeque<Env>,
    bursts: Vec<LinkBurst>,
    hook: Arc<dyn FaultHook>,
    next_height: Height,
    /// Every decided batch, in height order (height `h` at index `h - 1`):
    /// the archive lagging replicas seal from when they catch up.
    decided: Vec<Vec<Transaction>>,
    /// Telemetry gauge cells: wire messages, decided heights, and view
    /// changes land here for the windowed time-series layer. A detached
    /// default (nobody reading) costs one relaxed atomic per event.
    gauges: SubsystemGauges,
}

impl OrdererGroup {
    /// Builds a group whose replicas all seal chains starting at block
    /// `first_block` on top of `prev_hash`, consulting `hook` for every
    /// inter-replica message copy.
    pub fn new(
        cfg: GroupConfig,
        pipeline: &PipelineConfig,
        first_block: u64,
        prev_hash: Digest,
        hook: Arc<dyn FaultHook>,
    ) -> Result<Self> {
        Self::new_traced(cfg, pipeline, first_block, prev_hash, hook, None, TraceSink::disabled())
    }

    /// [`OrdererGroup::new`] with outcome counters (attached to replica
    /// 0's sealer only, so early aborts are recorded exactly once per
    /// decided height even across crash/restart) and a flight-recorder
    /// sink (consensus lifecycle events from every replica).
    pub fn new_traced(
        cfg: GroupConfig,
        pipeline: &PipelineConfig,
        first_block: u64,
        prev_hash: Digest,
        hook: Arc<dyn FaultHook>,
        counters: Option<TxCounters>,
        sink: TraceSink,
    ) -> Result<Self> {
        cfg.validate()?;
        let prep = BatchPrep::new(pipeline);
        let mut slots = Vec::with_capacity(cfg.replicas);
        for id in 0..cfg.replicas {
            let rcfg = ReplicaConfig {
                id: id as u32,
                n: cfg.replicas,
                quorum: cfg.quorum,
                timeout_ticks: cfg.timeout_ticks,
            };
            let mut sealer = OrderingService::new(pipeline).resume_at(first_block, prev_hash);
            if id == 0 {
                if let Some(c) = &counters {
                    sealer = sealer.with_counters(c.clone());
                }
            }
            slots.push(ReplicaSlot {
                replica: Replica::new(rcfg).with_trace(sink.clone()),
                sealer,
                stats: OrdererStats::new(),
                sealed_height: 0,
                down: false,
                plan: None,
                delayed: Vec::new(),
                chain_hash: Digest::ZERO,
            });
        }
        Ok(OrdererGroup {
            cfg,
            prep,
            scratch: PrepScratch::default(),
            slots,
            wire: VecDeque::new(),
            bursts: Vec::new(),
            hook,
            next_height: 1,
            decided: Vec::new(),
            gauges: SubsystemGauges::new(),
        })
    }

    /// Attaches telemetry gauge cells (shared with the network's telemetry
    /// hub): consensus wire messages, decided heights, and cumulative view
    /// changes are recorded through them.
    pub fn set_gauges(&mut self, gauges: SubsystemGauges) {
        self.gauges = gauges;
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.cfg.replicas
    }

    /// Whether replica `idx` is currently down.
    pub fn is_down(&self, idx: usize) -> bool {
        self.slots[idx].down
    }

    /// Consensus heights decided so far.
    pub fn heights_decided(&self) -> u64 {
        self.decided.len() as u64
    }

    /// Aggregate orderer telemetry: every replica's per-leader counters
    /// folded into one via [`OrdererStats::merge`].
    pub fn stats(&self) -> OrdererStats {
        let agg = OrdererStats::new();
        for s in &self.slots {
            agg.merge(&s.stats);
        }
        agg
    }

    /// Per-replica (leader-attributed) telemetry snapshots.
    pub fn per_leader_stats(&self) -> Vec<fabric_ordering::OrdererStatsSnapshot> {
        self.slots.iter().map(|s| s.stats.snapshot()).collect()
    }

    /// Block-stream fingerprints of all live replicas: `(replica, next
    /// block number, rolling hash over sealed header hashes)`. Identical
    /// tuples across replicas ⇔ byte-identical block streams.
    pub fn fingerprints(&self) -> Vec<(u32, u64, Digest)> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.down)
            .map(|(i, s)| (i as u32, s.sealer.next_block_num(), s.chain_hash))
            .collect()
    }

    /// Runs one consensus height over `batch` and returns the decided,
    /// sealed block (`None` when the plan is empty — the height decides
    /// but seals no block, preserving empty-block suppression).
    ///
    /// Every live replica seals the decided plan on its own chain; the
    /// returned block is the lowest live replica's, after asserting all
    /// live replicas produced the identical block. Scheduled crashes,
    /// restarts, and equivocations fire here; an `Err` means liveness was
    /// lost (no quorum within `max_rounds`) or — never expected — safety.
    pub fn decide_batch(&mut self, batch: Vec<Transaction>) -> Result<Option<OrderedBlock>> {
        let height = self.next_height;
        self.next_height += 1;
        let n = self.slots.len();
        let crashes = self.cfg.crashes.clone();

        // Pre-propose crashes: the replica misses the height entirely.
        for c in &crashes {
            if c.at_height == height && !c.after_propose {
                let idx = c.replica as usize;
                if !self.slots[idx].down {
                    self.crash_slot(idx);
                }
            }
        }

        // Every live replica computes its own plan from its own copy of
        // the batch (the mempool model): prepare is stateless and pure, so
        // honest replicas derive identical digests.
        let txs_hint = batch.len() as u32;
        for idx in 0..n {
            if self.slots[idx].down {
                self.slots[idx].plan = None;
                continue;
            }
            let plan = self.prep.prepare_with(batch.clone(), &mut self.scratch);
            let digest = plan_digest(&plan);
            self.slots[idx].replica.begin_height(height, digest, txs_hint);
            self.slots[idx].plan = Some(plan);
        }

        // The round loop: deliver due messages, progress every replica,
        // expand new broadcasts through the fault hook; tick only when the
        // wire is silent. Ends when at least one replica decided and
        // nothing is in flight.
        let mut rounds = 0u32;
        loop {
            rounds += 1;
            if rounds > self.cfg.max_rounds {
                return Err(Error::Config(format!(
                    "consensus height {height} undecided after {} rounds \
                     (quorum lost to crashes or partitions?)",
                    self.cfg.max_rounds
                )));
            }

            // Delayed messages arrive first: their spike is over.
            for idx in 0..n {
                if self.slots[idx].down {
                    continue;
                }
                let due = std::mem::take(&mut self.slots[idx].delayed);
                for m in due {
                    self.slots[idx].replica.receive(m);
                }
            }

            // Drain the wire in send order.
            let pending: Vec<Env> = self.wire.drain(..).collect();
            for env in pending {
                self.route(env);
            }

            // Progress every live replica; new broadcasts go on the wire.
            let mut emitted = false;
            for idx in 0..n {
                if self.slots[idx].down {
                    continue;
                }
                let outs = self.slots[idx].replica.progress();
                let proposed_now =
                    outs.iter().any(|m| matches!(m.payload, Payload::Proposal { .. }));
                for m in outs {
                    emitted = true;
                    self.broadcast(idx, m, height);
                }
                // Mid-height leader crash: the proposal made it onto the
                // wire, the process died right after.
                if proposed_now {
                    for c in &crashes {
                        if c.at_height == height
                            && c.after_propose
                            && c.replica as usize == idx
                            && !self.slots[idx].down
                        {
                            self.crash_slot(idx);
                        }
                    }
                }
            }

            let in_flight = !self.wire.is_empty()
                || self.slots.iter().any(|s| !s.down && !s.delayed.is_empty());
            let decided = self.slots.iter().any(|s| !s.down && s.replica.decided().is_some());
            if decided && !in_flight {
                break;
            }
            if !in_flight && !emitted {
                // Silent round. Flush any partial reorder bursts first (a
                // run-ending flush, like `FaultySender::flush`), then tick.
                if self.flush_bursts() {
                    continue;
                }
                for idx in 0..n {
                    if self.slots[idx].down {
                        continue;
                    }
                    let outs = self.slots[idx].replica.tick();
                    for m in outs {
                        self.broadcast(idx, m, height);
                    }
                }
            }
        }
        // Messages still held in unfinished bursts are stale once the
        // height ends (replicas ignore other heights); drop them.
        self.bursts.clear();
        self.wire.clear();

        // Telemetry: one decided height; view changes show up as the
        // decided view of the height (0 when the original leader carried).
        self.gauges.record_consensus_height();

        // Attribute the decided height to its leader's stats.
        let decided_view = self
            .slots
            .iter()
            .find_map(|s| if s.down { None } else { s.replica.decided_view() })
            .expect("loop broke with a decision");
        self.gauges.record_view_changes(decided_view);
        let leader = ((height + decided_view) % n as u64) as usize;
        {
            let probe = self
                .slots
                .iter()
                .find(|s| !s.down && s.plan.is_some())
                .expect("a live replica holds the plan");
            let plan = probe.plan.as_ref().unwrap();
            let stats = &self.slots[leader].stats;
            if plan.ordered.is_empty() {
                stats.record_empty_suppressed();
            } else {
                stats.record_cut(CutReason::TxCount, batch.len());
            }
            stats.record_reorder(plan.reorder_elapsed, &plan.stats);
        }

        // Archive the decided batch, then seal on every live replica.
        self.decided.push(batch);
        debug_assert_eq!(self.decided.len() as u64, height);
        let mut canonical: Option<(usize, Option<OrderedBlock>)> = None;
        for idx in 0..n {
            if self.slots[idx].down {
                continue;
            }
            let sealed = self.seal_through(idx, height);
            match &mut canonical {
                None => canonical = Some((idx, sealed)),
                Some((first, reference)) => {
                    let same = match (&reference, &sealed) {
                        (None, None) => true,
                        (Some(a), Some(b)) => {
                            a.block.header.hash() == b.block.header.hash()
                                && a.block.txs.iter().map(|t| t.id).collect::<Vec<_>>()
                                    == b.block.txs.iter().map(|t| t.id).collect::<Vec<_>>()
                                && a.early_aborted
                                    .iter()
                                    .map(|(t, c)| (t.id, *c))
                                    .collect::<Vec<_>>()
                                    == b.early_aborted
                                        .iter()
                                        .map(|(t, c)| (t.id, *c))
                                        .collect::<Vec<_>>()
                        }
                        _ => false,
                    };
                    if !same {
                        return Err(Error::Config(format!(
                            "safety violation: replicas {first} and {idx} sealed \
                             different blocks at height {height}"
                        )));
                    }
                }
            }
        }

        // End-of-height restarts: recover the replica and catch it up by
        // sealing every decided height it missed from the archive.
        for c in &crashes {
            if c.restart_after_heights > 0
                && c.at_height + c.restart_after_heights == height + 1
            {
                let idx = c.replica as usize;
                if self.slots[idx].down {
                    self.slots[idx].down = false;
                    self.seal_through(idx, height);
                }
            }
        }

        Ok(canonical.expect("at least one live replica sealed").1)
    }

    /// Seals replica `idx`'s chain through decided height `target`,
    /// recomputing plans from the archive for any height it missed, and
    /// returns the block sealed *at* `target` (None = suppressed).
    fn seal_through(&mut self, idx: usize, target: u64) -> Option<OrderedBlock> {
        let mut result = None;
        while self.slots[idx].sealed_height < target {
            let h = self.slots[idx].sealed_height + 1;
            let plan = match self.slots[idx].plan.take_if(|_| h == target) {
                Some(plan) => plan,
                None => {
                    let batch = self.decided[(h - 1) as usize].clone();
                    self.prep.prepare_with(batch, &mut self.scratch)
                }
            };
            let sealed = self.slots[idx].sealer.seal(plan);
            if let Some(ob) = &sealed {
                let mut acc = Sha256::new();
                acc.update(self.slots[idx].chain_hash.as_bytes());
                acc.update(ob.block.header.hash().as_bytes());
                self.slots[idx].chain_hash = acc.finalize();
            }
            self.slots[idx].sealed_height = h;
            if h == target {
                result = sealed;
            }
        }
        result
    }

    /// Expands one broadcast into per-destination wire copies (ascending
    /// destination order, self excluded). Copies to a dead replica vanish
    /// without consulting the hook — messages to a dead process are lost,
    /// not faulted. Scheduled equivocations corrupt proposal copies toward
    /// their victims here, on the sender side.
    fn broadcast(&mut self, src: usize, msg: Msg, height: Height) {
        for dst in 0..self.slots.len() {
            if dst == src || self.slots[dst].down {
                continue;
            }
            let mut copy = msg;
            if let Payload::Proposal { plan } = msg.payload {
                let forged = self.cfg.equivocations.iter().any(|e| {
                    e.at_height == height
                        && e.leader as usize == src
                        && e.victims.contains(&(dst as u32))
                });
                if forged {
                    let mut h = Sha256::new();
                    h.update(plan.as_bytes());
                    copy.payload = Payload::Proposal { plan: h.finalize() };
                }
            }
            self.gauges.record_consensus_msg();
            self.wire.push_back(Env { from: src, to: dst, msg: copy });
        }
    }

    /// Delivers one wire copy through the fault hook (mirror of the
    /// peer-side `ChaosNet::deliver`, per directed replica link).
    fn route(&mut self, env: Env) {
        let Env { from, to, msg } = env;
        if self.slots[to].down {
            return;
        }
        // An open burst on this link absorbs without consulting the hook.
        if let Some(i) = self
            .bursts
            .iter()
            .position(|b| b.from == from && b.to == to && b.remaining > 0)
        {
            self.bursts[i].held.push(msg);
            self.bursts[i].remaining -= 1;
            if self.bursts[i].remaining == 0 {
                let mut held = std::mem::take(&mut self.bursts[i].held);
                held.reverse();
                for m in held {
                    self.slots[to].replica.receive(m);
                }
            }
            return;
        }
        let link = LinkId::between_replicas(from as u32, to as u32);
        match self.hook.on_send(link, msg.wire_size()) {
            SendFault::Deliver => self.slots[to].replica.receive(msg),
            SendFault::Drop => {}
            SendFault::Duplicate { extra } => {
                for _ in 0..=extra {
                    self.slots[to].replica.receive(msg);
                }
            }
            SendFault::Delay { .. } => self.slots[to].delayed.push(msg),
            SendFault::ReorderBurst { len } => {
                if len < 2 {
                    self.slots[to].replica.receive(msg);
                    return;
                }
                self.bursts.push(LinkBurst { from, to, held: vec![msg], remaining: len - 1 });
            }
        }
    }

    /// Releases every partially-filled burst (reverse order, like
    /// `FaultySender::flush`). Returns whether anything was delivered.
    fn flush_bursts(&mut self) -> bool {
        let mut flushed = false;
        for i in 0..self.bursts.len() {
            if self.bursts[i].held.is_empty() {
                continue;
            }
            let to = self.bursts[i].to;
            self.bursts[i].remaining = 0;
            let mut held = std::mem::take(&mut self.bursts[i].held);
            held.reverse();
            if !self.slots[to].down {
                for m in held {
                    self.slots[to].replica.receive(m);
                }
            }
            flushed = true;
        }
        self.bursts.clear();
        flushed
    }

    /// Kills replica `idx`: its delayed messages, plan, and any reorder
    /// bursts touching it die with the process. In-flight wire copies it
    /// already sent survive (they left the process before the crash).
    fn crash_slot(&mut self, idx: usize) {
        self.slots[idx].down = true;
        self.slots[idx].delayed.clear();
        self.slots[idx].plan = None;
        self.bursts.retain(|b| b.from != idx && b.to != idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_common::rwset::RwSetBuilder;
    use fabric_common::{ChannelId, ClientId, Key, TxId, Value, Version};
    use fabric_net::NoFaults;
    use std::time::Instant;

    fn mk_tx(reads: &[(u64, Version)], writes: &[u64]) -> Transaction {
        let mut b = RwSetBuilder::new();
        for (k, v) in reads {
            b.record_read(Key::composite("K", *k), Some(*v));
        }
        for k in writes {
            b.record_write(Key::composite("K", *k), Some(Value::from_i64(1)));
        }
        Transaction {
            id: TxId::next(),
            channel: ChannelId(0),
            client: ClientId(0),
            chaincode: "cc".into(),
            rwset: b.build(),
            endorsements: vec![],
            created_at: Instant::now(),
        }
    }

    fn batch(n: u64) -> Vec<Transaction> {
        (0..n).map(|i| mk_tx(&[(i, Version::GENESIS)], &[i + 100])).collect()
    }

    fn group(cfg: GroupConfig) -> OrdererGroup {
        OrdererGroup::new(
            cfg,
            &PipelineConfig::fabric_pp(),
            0,
            Digest::ZERO,
            Arc::new(NoFaults),
        )
        .unwrap()
    }

    #[test]
    fn single_replica_matches_single_orderer_byte_for_byte() {
        let b = batch(6);
        let mut single = OrderingService::new(&PipelineConfig::fabric_pp());
        let mut g = group(GroupConfig::new(1));
        let expect = single.order_batch(b.clone()).unwrap();
        let got = g.decide_batch(b).unwrap().unwrap();
        assert_eq!(expect.block.header.hash(), got.block.header.hash());
        assert_eq!(
            expect.block.txs.iter().map(|t| t.id).collect::<Vec<_>>(),
            got.block.txs.iter().map(|t| t.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn three_replicas_agree_and_chain_blocks() {
        let mut g = group(GroupConfig::new(3));
        let b0 = g.decide_batch(batch(4)).unwrap().unwrap();
        let b1 = g.decide_batch(batch(4)).unwrap().unwrap();
        assert_eq!(b0.block.header.number, 0);
        assert_eq!(b1.block.header.number, 1);
        assert_eq!(b1.block.header.prev_hash, b0.block.header.hash());
        let fps = g.fingerprints();
        assert_eq!(fps.len(), 3);
        assert!(fps.iter().all(|(_, n, h)| (*n, *h) == (fps[0].1, fps[0].2)));
        assert_eq!(g.heights_decided(), 2);
    }

    #[test]
    fn empty_batch_decides_but_seals_nothing() {
        let mut g = group(GroupConfig::new(3));
        assert!(g.decide_batch(Vec::new()).unwrap().is_none());
        assert_eq!(g.heights_decided(), 1);
        let b = g.decide_batch(batch(2)).unwrap().unwrap();
        assert_eq!(b.block.header.number, 0, "suppressed height consumed no block number");
        assert_eq!(g.stats().snapshot().empty_suppressed, 1);
    }

    #[test]
    fn leader_crash_mid_height_converges_via_view_or_quorum() {
        // Height 1 of n=3 → leader is replica 1. It dies right after its
        // proposal hits the wire; the two survivors still reach quorum.
        let mut cfg = GroupConfig::new(3);
        cfg.crashes.push(OrdererCrash {
            replica: 1,
            at_height: 1,
            restart_after_heights: 1,
            after_propose: true,
        });
        let mut g = group(cfg);
        let b = g.decide_batch(batch(5)).unwrap().unwrap();
        assert_eq!(b.block.header.number, 0);
        // Restarted at end of height 1 and caught up by archive sealing.
        assert!(!g.is_down(1));
        let fps = g.fingerprints();
        assert_eq!(fps.len(), 3, "the crashed replica is back");
        assert!(fps.iter().all(|(_, n, h)| (*n, *h) == (fps[0].1, fps[0].2)));
        // The next height works with all three again.
        g.decide_batch(batch(3)).unwrap().unwrap();
    }

    #[test]
    fn leader_dead_before_proposing_forces_view_change() {
        // Height 1 leader (replica 1) is down for the whole height: the
        // group times out, moves to view 1 (leader 2), and decides there.
        let mut cfg = GroupConfig::new(3);
        cfg.crashes.push(OrdererCrash {
            replica: 1,
            at_height: 1,
            restart_after_heights: 2,
            after_propose: false,
        });
        let mut g = group(cfg);
        let b = g.decide_batch(batch(4)).unwrap().unwrap();
        assert_eq!(b.block.header.number, 0);
        assert!(g.is_down(1), "restart is one height later");
        let decided_view = g.slots[0].replica.decided_view().unwrap();
        assert!(decided_view >= 1, "a view change must have happened");
        g.decide_batch(batch(4)).unwrap().unwrap();
        assert!(!g.is_down(1));
        let fps = g.fingerprints();
        assert_eq!(fps.len(), 3);
        assert!(fps.iter().all(|(_, n, h)| (*n, *h) == (fps[0].1, fps[0].2)));
    }

    #[test]
    fn equivocation_never_forks_and_heals_by_view_change() {
        // Height 1 leader (replica 1) sends forged digests to BOTH
        // followers: no honest prevote quorum for the forgery is possible,
        // the view fails, and view 1's honest leader decides.
        let mut cfg = GroupConfig::new(3);
        cfg.equivocations.push(Equivocation {
            leader: 1,
            at_height: 1,
            victims: vec![0, 2],
        });
        let mut g = group(cfg);
        let b = g.decide_batch(batch(4)).unwrap().unwrap();
        assert_eq!(b.block.header.number, 0);
        let fps = g.fingerprints();
        assert!(fps.iter().all(|(_, n, h)| (*n, *h) == (fps[0].1, fps[0].2)));
        let decided_view = g.slots[0].replica.decided_view().unwrap();
        assert!(decided_view >= 1, "the equivocated view cannot decide");
    }

    #[test]
    fn partial_equivocation_is_outvoted_in_place() {
        // Only one victim: leader + the clean follower still form a
        // quorum for the honest digest — no view change needed.
        let mut cfg = GroupConfig::new(3);
        cfg.equivocations.push(Equivocation { leader: 1, at_height: 1, victims: vec![0] });
        let mut g = group(cfg);
        g.decide_batch(batch(4)).unwrap().unwrap();
        let decided_view = g.slots[2].replica.decided_view().unwrap();
        assert_eq!(decided_view, 0, "honest quorum decides in the original view");
    }

    #[test]
    fn quorum_loss_surfaces_as_liveness_error() {
        let mut cfg = GroupConfig::new(3);
        cfg.max_rounds = 32;
        cfg.crashes.push(OrdererCrash {
            replica: 0,
            at_height: 1,
            restart_after_heights: 0,
            after_propose: false,
        });
        cfg.crashes.push(OrdererCrash {
            replica: 1,
            at_height: 1,
            restart_after_heights: 0,
            after_propose: false,
        });
        let mut g = group(cfg);
        assert!(g.decide_batch(batch(3)).is_err(), "one of three cannot decide");
    }

    #[test]
    fn five_replicas_with_byzantine_quorum() {
        let mut cfg = GroupConfig::new(5);
        cfg.quorum = QuorumRule::Byzantine;
        let mut g = group(cfg);
        for _ in 0..3 {
            g.decide_batch(batch(4)).unwrap().unwrap();
        }
        let fps = g.fingerprints();
        assert_eq!(fps.len(), 5);
        assert!(fps.iter().all(|(_, n, h)| (*n, *h) == (fps[0].1, fps[0].2)));
    }

    #[test]
    fn per_leader_stats_merge_into_group_totals() {
        let mut g = group(GroupConfig::new(3));
        for _ in 0..4 {
            g.decide_batch(batch(3)).unwrap();
        }
        // Leaders rotate per height: 4 heights spread across 3 replicas.
        let per = g.per_leader_stats();
        let blocks: u64 = per.iter().map(|s| s.blocks).sum();
        assert_eq!(blocks, 4);
        assert!(per.iter().filter(|s| s.blocks > 0).count() >= 2, "leadership rotated");
        assert_eq!(g.stats().snapshot().blocks, 4);
        assert_eq!(g.stats().snapshot().txs_ordered, 12);
    }

    #[test]
    fn group_config_validation_rejects_nonsense() {
        assert!(group_err(GroupConfig { replicas: 0, ..GroupConfig::new(1) }));
        assert!(group_err(GroupConfig { timeout_ticks: 0, ..GroupConfig::new(3) }));
        let mut c = GroupConfig::new(3);
        c.crashes.push(OrdererCrash {
            replica: 7,
            at_height: 1,
            restart_after_heights: 1,
            after_propose: false,
        });
        assert!(group_err(c));
        let mut c = GroupConfig::new(3);
        c.equivocations.push(Equivocation { leader: 0, at_height: 1, victims: vec![] });
        assert!(group_err(c));
    }

    fn group_err(cfg: GroupConfig) -> bool {
        OrdererGroup::new(
            cfg,
            &PipelineConfig::fabric_pp(),
            0,
            Digest::ZERO,
            Arc::new(NoFaults),
        )
        .is_err()
    }

    #[test]
    fn decided_blocks_carry_dependency_hints_through_seal() {
        // The propose-time plan's conflict analysis must ride through
        // `seal_through` to the decided block (one graph build per block
        // per replica — commit reuses it instead of re-interning), and the
        // hints must never enter the plan digest or the cross-replica
        // equality check (they are process-local metadata).
        let mut g = group(GroupConfig::new(3));
        let b = g.decide_batch(batch(4)).unwrap().unwrap();
        let hints = b.hints.as_ref().expect("reorder-policy plans carry hints through seal");
        assert_eq!(hints.len(), b.block.txs.len());
    }

    #[test]
    fn restarted_replica_reseal_rebuilds_hints_from_archive() {
        // A replica catching up from the decided-batch archive recomputes
        // the plan — and with it fresh hints — once per missed height; its
        // chain fingerprint still matches byte-for-byte (hints are
        // non-semantic).
        let mut cfg = GroupConfig::new(3);
        cfg.crashes.push(OrdererCrash {
            replica: 2,
            at_height: 1,
            restart_after_heights: 2,
            after_propose: false,
        });
        let mut g = group(cfg);
        let b0 = g.decide_batch(batch(4)).unwrap().unwrap();
        assert!(b0.hints.is_some());
        let b1 = g.decide_batch(batch(4)).unwrap().unwrap();
        assert!(b1.hints.is_some());
        assert!(!g.is_down(2), "replica 2 restarted and caught up");
        let fps = g.fingerprints();
        assert_eq!(fps.len(), 3);
        assert!(fps.iter().all(|(_, n, h)| (*n, *h) == (fps[0].1, fps[0].2)));
    }

    #[test]
    fn plan_digest_is_a_pure_function_of_the_batch() {
        let prep = BatchPrep::new(&PipelineConfig::fabric_pp());
        let b = batch(5);
        let d1 = plan_digest(&prep.prepare(b.clone()));
        let d2 = plan_digest(&prep.prepare(b.clone()));
        assert_eq!(d1, d2);
        let d3 = plan_digest(&prep.prepare(batch(5)));
        assert_ne!(d1, d3, "different tx ids, different digest");
    }
}
