//! The Smallbank benchmark (paper §6.2.2).
//!
//! "Initially, it creates for a certain number of users a checking account
//! and a savings account each and initializes them with random balances.
//! The workload consists of six transactions, where five of them update the
//! account balances": TransactSavings, DepositChecking, SendPayment,
//! WriteCheck, Amalgamate, plus the read-only Query. A modifying
//! transaction is fired with probability `Pw`, the reading one with
//! `1 − Pw`; accounts are picked by a Zipf distribution with configurable
//! skew.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fabric_common::{Key, Value};
use fabric_peer::chaincode::{Chaincode, TxContext};

use crate::zipf::ZipfSampler;
use crate::WorkloadGen;

/// The six Smallbank operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmallbankOp {
    /// Increase a savings account.
    TransactSavings,
    /// Increase a checking account.
    DepositChecking,
    /// Transfer between two checking accounts.
    SendPayment,
    /// Decrease a checking account.
    WriteCheck,
    /// Move all savings funds into the checking account.
    Amalgamate,
    /// Read both accounts of a user.
    Query,
}

const OP_TRANSACT_SAVINGS: u8 = 0;
const OP_DEPOSIT_CHECKING: u8 = 1;
const OP_SEND_PAYMENT: u8 = 2;
const OP_WRITE_CHECK: u8 = 3;
const OP_AMALGAMATE: u8 = 4;
const OP_QUERY: u8 = 5;

/// Argument layout: `[op: u8][a: u64][b: u64][amount: i64]` (25 bytes).
pub fn encode_args(op: u8, a: u64, b: u64, amount: i64) -> Vec<u8> {
    let mut v = Vec::with_capacity(25);
    v.push(op);
    v.extend_from_slice(&a.to_le_bytes());
    v.extend_from_slice(&b.to_le_bytes());
    v.extend_from_slice(&amount.to_le_bytes());
    v
}

fn decode_args(args: &[u8]) -> Result<(u8, u64, u64, i64), String> {
    if args.len() != 25 {
        return Err(format!("smallbank args must be 25 bytes, got {}", args.len()));
    }
    let op = args[0];
    let a = u64::from_le_bytes(args[1..9].try_into().expect("sized"));
    let b = u64::from_le_bytes(args[9..17].try_into().expect("sized"));
    let amount = i64::from_le_bytes(args[17..25].try_into().expect("sized"));
    Ok((op, a, b, amount))
}

fn checking(user: u64) -> Key {
    Key::composite("checking", user)
}

fn savings(user: u64) -> Key {
    Key::composite("savings", user)
}

/// The Smallbank chaincode.
#[derive(Debug, Default)]
pub struct SmallbankChaincode;

impl SmallbankChaincode {
    /// Shared handle, ready for deployment.
    pub fn deployable() -> Arc<dyn Chaincode> {
        Arc::new(SmallbankChaincode)
    }
}

impl Chaincode for SmallbankChaincode {
    fn invoke(&self, ctx: &mut TxContext, args: &[u8]) -> Result<(), String> {
        let (op, a, b, amount) = decode_args(args)?;
        let read = |ctx: &mut TxContext, key: &Key| -> Result<i64, String> {
            ctx.get_i64(key)
                .map_err(|e| e.to_string())?
                .ok_or_else(|| format!("account {key} does not exist"))
        };
        match op {
            OP_TRANSACT_SAVINGS => {
                let bal = read(ctx, &savings(a))?;
                ctx.put_i64(savings(a), bal + amount);
            }
            OP_DEPOSIT_CHECKING => {
                let bal = read(ctx, &checking(a))?;
                ctx.put_i64(checking(a), bal + amount);
            }
            OP_SEND_PAYMENT => {
                let from = read(ctx, &checking(a))?;
                let to = read(ctx, &checking(b))?;
                ctx.put_i64(checking(a), from - amount);
                ctx.put_i64(checking(b), to + amount);
            }
            OP_WRITE_CHECK => {
                let bal = read(ctx, &checking(a))?;
                ctx.put_i64(checking(a), bal - amount);
            }
            OP_AMALGAMATE => {
                let sav = read(ctx, &savings(a))?;
                let chk = read(ctx, &checking(a))?;
                ctx.put_i64(savings(a), 0);
                ctx.put_i64(checking(a), chk + sav);
            }
            OP_QUERY => {
                let _ = read(ctx, &savings(a))?;
                let _ = read(ctx, &checking(a))?;
            }
            other => return Err(format!("unknown smallbank op {other}")),
        }
        Ok(())
    }

    /// Every Smallbank op names its accounts in the arguments, so the
    /// whole read set is known before execution — the endorser resolves
    /// it in one engine round trip.
    fn declared_reads(&self, args: &[u8]) -> Option<Vec<Key>> {
        let (op, a, b, _) = decode_args(args).ok()?;
        Some(match op {
            OP_TRANSACT_SAVINGS => vec![savings(a)],
            OP_DEPOSIT_CHECKING | OP_WRITE_CHECK => vec![checking(a)],
            OP_SEND_PAYMENT => vec![checking(a), checking(b)],
            OP_AMALGAMATE | OP_QUERY => vec![savings(a), checking(a)],
            _ => return None,
        })
    }

    fn name(&self) -> &str {
        "smallbank"
    }
}

/// Generator configuration (paper Table 6).
#[derive(Debug, Clone)]
pub struct SmallbankConfig {
    /// Number of users (two accounts each). Paper: 100 000.
    pub users: u64,
    /// Probability of a modifying transaction. Paper: 5%, 50%, 95%.
    pub p_write: f64,
    /// Zipf skew for account selection. Paper: 0.0–2.0.
    pub s_value: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SmallbankConfig {
    fn default() -> Self {
        SmallbankConfig { users: 100_000, p_write: 0.95, s_value: 0.0, seed: 1 }
    }
}

/// Deterministic Smallbank invocation stream.
pub struct SmallbankWorkload {
    cfg: SmallbankConfig,
    zipf: ZipfSampler,
    rng: StdRng,
}

impl SmallbankWorkload {
    /// Creates the generator.
    pub fn new(cfg: SmallbankConfig) -> Self {
        let zipf = ZipfSampler::new(cfg.users as usize, cfg.s_value);
        let rng = StdRng::seed_from_u64(cfg.seed);
        SmallbankWorkload { cfg, zipf, rng }
    }

    fn pick_user(&mut self) -> u64 {
        self.zipf.sample(&mut self.rng) as u64
    }

    /// The operation mix, exposed for tests.
    pub fn next_op(&mut self) -> SmallbankOp {
        if self.rng.random::<f64>() < self.cfg.p_write {
            match self.rng.random_range(0..5u8) {
                0 => SmallbankOp::TransactSavings,
                1 => SmallbankOp::DepositChecking,
                2 => SmallbankOp::SendPayment,
                3 => SmallbankOp::WriteCheck,
                _ => SmallbankOp::Amalgamate,
            }
        } else {
            SmallbankOp::Query
        }
    }
}

impl WorkloadGen for SmallbankWorkload {
    fn chaincode(&self) -> &'static str {
        "smallbank"
    }

    fn next_args(&mut self) -> Vec<u8> {
        let op = self.next_op();
        let a = self.pick_user();
        let amount = self.rng.random_range(1..100i64);
        match op {
            SmallbankOp::TransactSavings => encode_args(OP_TRANSACT_SAVINGS, a, 0, amount),
            SmallbankOp::DepositChecking => encode_args(OP_DEPOSIT_CHECKING, a, 0, amount),
            SmallbankOp::SendPayment => {
                let mut b = self.pick_user();
                if b == a {
                    b = (b + 1) % self.cfg.users;
                }
                encode_args(OP_SEND_PAYMENT, a, b, amount)
            }
            SmallbankOp::WriteCheck => encode_args(OP_WRITE_CHECK, a, 0, amount),
            SmallbankOp::Amalgamate => encode_args(OP_AMALGAMATE, a, 0, 0),
            SmallbankOp::Query => encode_args(OP_QUERY, a, 0, 0),
        }
    }

    fn genesis(&self) -> Vec<(Key, Value)> {
        // "initializes them with random balances" — deterministic here via
        // a balance RNG derived from the seed.
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xBA1A);
        let mut out = Vec::with_capacity(2 * self.cfg.users as usize);
        for u in 0..self.cfg.users {
            out.push((checking(u), Value::from_i64(rng.random_range(1_000..10_000))));
            out.push((savings(u), Value::from_i64(rng.random_range(1_000..10_000))));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_statedb::{MemStateDb, SnapshotView, StateStore};

    fn ctx(db: &Arc<MemStateDb>) -> TxContext {
        let store: Arc<dyn StateStore> = db.clone();
        TxContext::new(SnapshotView::pin(store), true)
    }

    fn db_with(users: u64) -> Arc<MemStateDb> {
        let wl = SmallbankWorkload::new(SmallbankConfig {
            users,
            ..Default::default()
        });
        Arc::new(MemStateDb::with_genesis(wl.genesis()))
    }

    #[test]
    fn genesis_creates_two_accounts_per_user() {
        let wl = SmallbankWorkload::new(SmallbankConfig { users: 10, ..Default::default() });
        let g = wl.genesis();
        assert_eq!(g.len(), 20);
        assert!(g.iter().all(|(_, v)| v.as_i64().unwrap() >= 1000));
    }

    #[test]
    fn transact_savings_increases_savings() {
        let db = db_with(4);
        let before = db.get(&savings(1)).unwrap().unwrap().value.as_i64().unwrap();
        let mut c = ctx(&db);
        SmallbankChaincode
            .invoke(&mut c, &encode_args(OP_TRANSACT_SAVINGS, 1, 0, 50))
            .unwrap();
        let rw = c.finish();
        assert_eq!(
            rw.writes.value_of(&savings(1)),
            Some(Some(&Value::from_i64(before + 50)))
        );
        assert!(!rw.writes.writes(&checking(1)));
    }

    #[test]
    fn send_payment_moves_between_checking_accounts() {
        let db = db_with(4);
        let a0 = db.get(&checking(0)).unwrap().unwrap().value.as_i64().unwrap();
        let a1 = db.get(&checking(1)).unwrap().unwrap().value.as_i64().unwrap();
        let mut c = ctx(&db);
        SmallbankChaincode
            .invoke(&mut c, &encode_args(OP_SEND_PAYMENT, 0, 1, 30))
            .unwrap();
        let rw = c.finish();
        assert_eq!(rw.writes.value_of(&checking(0)), Some(Some(&Value::from_i64(a0 - 30))));
        assert_eq!(rw.writes.value_of(&checking(1)), Some(Some(&Value::from_i64(a1 + 30))));
        assert_eq!(rw.reads.len(), 2);
    }

    #[test]
    fn write_check_decreases_checking() {
        let db = db_with(4);
        let before = db.get(&checking(2)).unwrap().unwrap().value.as_i64().unwrap();
        let mut c = ctx(&db);
        SmallbankChaincode.invoke(&mut c, &encode_args(OP_WRITE_CHECK, 2, 0, 10)).unwrap();
        let rw = c.finish();
        assert_eq!(rw.writes.value_of(&checking(2)), Some(Some(&Value::from_i64(before - 10))));
    }

    #[test]
    fn amalgamate_drains_savings_into_checking() {
        let db = db_with(4);
        let sav = db.get(&savings(3)).unwrap().unwrap().value.as_i64().unwrap();
        let chk = db.get(&checking(3)).unwrap().unwrap().value.as_i64().unwrap();
        let mut c = ctx(&db);
        SmallbankChaincode.invoke(&mut c, &encode_args(OP_AMALGAMATE, 3, 0, 0)).unwrap();
        let rw = c.finish();
        assert_eq!(rw.writes.value_of(&savings(3)), Some(Some(&Value::from_i64(0))));
        assert_eq!(rw.writes.value_of(&checking(3)), Some(Some(&Value::from_i64(chk + sav))));
    }

    #[test]
    fn query_reads_both_writes_nothing() {
        let db = db_with(4);
        let mut c = ctx(&db);
        SmallbankChaincode.invoke(&mut c, &encode_args(OP_QUERY, 1, 0, 0)).unwrap();
        let rw = c.finish();
        assert_eq!(rw.reads.len(), 2);
        assert!(rw.writes.is_empty());
    }

    #[test]
    fn unknown_op_and_bad_args_rejected() {
        let db = db_with(4);
        let mut c = ctx(&db);
        assert!(SmallbankChaincode.invoke(&mut c, &encode_args(9, 0, 0, 0)).is_err());
        let mut c = ctx(&db);
        assert!(SmallbankChaincode.invoke(&mut c, &[1, 2, 3]).is_err());
    }

    #[test]
    fn missing_account_rejected() {
        let db = db_with(4);
        let mut c = ctx(&db);
        let err = SmallbankChaincode
            .invoke(&mut c, &encode_args(OP_QUERY, 999, 0, 0))
            .unwrap_err();
        assert!(err.contains("does not exist"));
    }

    #[test]
    fn op_mix_respects_p_write() {
        let mut wl = SmallbankWorkload::new(SmallbankConfig {
            users: 100,
            p_write: 0.05,
            ..Default::default()
        });
        let writes = (0..10_000)
            .filter(|_| wl.next_op() != SmallbankOp::Query)
            .count();
        assert!((writes as f64 - 500.0).abs() < 150.0, "got {writes} writes");

        let mut wl = SmallbankWorkload::new(SmallbankConfig {
            users: 100,
            p_write: 0.95,
            ..Default::default()
        });
        let writes = (0..10_000)
            .filter(|_| wl.next_op() != SmallbankOp::Query)
            .count();
        assert!(writes > 9_200, "got {writes} writes");
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let cfg = SmallbankConfig { users: 50, seed: 9, ..Default::default() };
        let mut a = SmallbankWorkload::new(cfg.clone());
        let mut b = SmallbankWorkload::new(cfg);
        for _ in 0..100 {
            assert_eq!(a.next_args(), b.next_args());
        }
    }

    #[test]
    fn send_payment_never_self_transfers() {
        let mut wl = SmallbankWorkload::new(SmallbankConfig {
            users: 2,
            p_write: 1.0,
            s_value: 2.0, // heavy skew → frequent same-account picks
            ..Default::default()
        });
        for _ in 0..1000 {
            let args = wl.next_args();
            if args[0] == OP_SEND_PAYMENT {
                let a = u64::from_le_bytes(args[1..9].try_into().unwrap());
                let b = u64::from_le_bytes(args[9..17].try_into().unwrap());
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn all_generated_args_execute() {
        let db = db_with(32);
        let mut wl = SmallbankWorkload::new(SmallbankConfig {
            users: 32,
            p_write: 0.5,
            s_value: 1.0,
            seed: 3,
        });
        for _ in 0..200 {
            let args = wl.next_args();
            let mut c = ctx(&db);
            SmallbankChaincode.invoke(&mut c, &args).unwrap();
        }
    }
}
