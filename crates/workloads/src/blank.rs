//! Blank transactions (paper Figure 1, bottom bar).
//!
//! "we submit blank transactions without any logic. Interestingly, the
//! total throughput of blank and meaningful transactions essentially
//! equals" — the observation that Fabric's throughput is dominated by
//! cryptography and networking, not transaction processing. The blank
//! chaincode reads nothing and writes nothing; every blank transaction is
//! trivially valid.

use std::sync::Arc;

use fabric_common::{Key, Value};
use fabric_peer::chaincode::{Chaincode, TxContext};

use crate::WorkloadGen;

/// A chaincode with no logic at all.
#[derive(Debug, Default)]
pub struct BlankChaincode;

impl BlankChaincode {
    /// Shared handle, ready for deployment.
    pub fn deployable() -> Arc<dyn Chaincode> {
        Arc::new(BlankChaincode)
    }
}

impl Chaincode for BlankChaincode {
    fn invoke(&self, _ctx: &mut TxContext, _args: &[u8]) -> Result<(), String> {
        Ok(())
    }

    fn name(&self) -> &str {
        "blank"
    }
}

/// Generator of blank invocations.
#[derive(Debug, Default)]
pub struct BlankWorkload;

impl WorkloadGen for BlankWorkload {
    fn chaincode(&self) -> &'static str {
        "blank"
    }

    fn next_args(&mut self) -> Vec<u8> {
        Vec::new()
    }

    fn genesis(&self) -> Vec<(Key, Value)> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_statedb::{MemStateDb, SnapshotView, StateStore};

    #[test]
    fn blank_touches_nothing() {
        let db = Arc::new(MemStateDb::with_genesis([(Key::from("x"), Value::from_i64(1))]));
        let store: Arc<dyn StateStore> = db;
        let mut ctx = TxContext::new(SnapshotView::pin(store), true);
        BlankChaincode.invoke(&mut ctx, &[]).unwrap();
        let rw = ctx.finish();
        assert!(rw.reads.is_empty());
        assert!(rw.writes.is_empty());
        assert_eq!(rw.unique_keys(), 0);
    }

    #[test]
    fn generator_is_trivial() {
        let mut wl = BlankWorkload;
        assert_eq!(wl.chaincode(), "blank");
        assert!(wl.next_args().is_empty());
        assert!(wl.genesis().is_empty());
    }
}
