//! The paper's custom workload (§6.2.2, Table 7).
//!
//! "Our second workload consists solely of a single, highly configurable
//! transaction, which performs a certain number of read and write accesses
//! on a set of account balances. Initially, we create a certain number of
//! accounts (N), each initialized with a random integer. Our transaction
//! performs a certain number of reads and writes (RW) on a subset of these
//! accounts. Among the accounts, there exist a certain number of hot
//! accounts (HSS), that are picked for a read respectively write access
//! with a higher probability (HR / HW)."

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fabric_common::{Key, Value};
use fabric_peer::chaincode::{Chaincode, TxContext};

use crate::WorkloadGen;

/// Custom-workload parameters (paper Table 7 defaults).
#[derive(Debug, Clone)]
pub struct CustomConfig {
    /// Number of account balances (N). Paper: 10 000.
    pub accounts: u64,
    /// Reads and writes per transaction (RW). Paper: 4 or 8.
    pub rw: usize,
    /// Probability of picking a hot account for a read (HR).
    pub hot_read_prob: f64,
    /// Probability of picking a hot account for a write (HW).
    pub hot_write_prob: f64,
    /// Hot set size as a fraction of all accounts (HSS). Paper: 1–4%.
    pub hot_set_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CustomConfig {
    fn default() -> Self {
        // The configuration of Figures 1 and 10:
        // N=10000, RW=8, HR=40%, HW=10%, HSS=1%.
        CustomConfig {
            accounts: 10_000,
            rw: 8,
            hot_read_prob: 0.4,
            hot_write_prob: 0.1,
            hot_set_fraction: 0.01,
            seed: 1,
        }
    }
}

impl CustomConfig {
    /// Number of hot accounts (at least one).
    pub fn hot_count(&self) -> u64 {
        (((self.accounts as f64) * self.hot_set_fraction) as u64).max(1)
    }
}

fn account(id: u64) -> Key {
    Key::composite("bal", id)
}

/// The custom-workload chaincode: reads the listed read-accounts, then
/// writes a derived value to the listed write-accounts.
///
/// Argument layout: `[nr: u8][nw: u8][nr × u64 read ids][nw × u64 write ids]`.
#[derive(Debug, Default)]
pub struct CustomChaincode;

impl CustomChaincode {
    /// Shared handle, ready for deployment.
    pub fn deployable() -> Arc<dyn Chaincode> {
        Arc::new(CustomChaincode)
    }
}

/// Encodes custom-workload arguments.
pub fn encode_accounts(reads: &[u64], writes: &[u64]) -> Vec<u8> {
    assert!(reads.len() <= u8::MAX as usize && writes.len() <= u8::MAX as usize);
    let mut v = Vec::with_capacity(2 + 8 * (reads.len() + writes.len()));
    v.push(reads.len() as u8);
    v.push(writes.len() as u8);
    for id in reads.iter().chain(writes.iter()) {
        v.extend_from_slice(&id.to_le_bytes());
    }
    v
}

impl Chaincode for CustomChaincode {
    fn invoke(&self, ctx: &mut TxContext, args: &[u8]) -> Result<(), String> {
        if args.len() < 2 {
            return Err("custom args too short".into());
        }
        let nr = args[0] as usize;
        let nw = args[1] as usize;
        if args.len() != 2 + 8 * (nr + nw) {
            return Err(format!(
                "custom args length {} does not match nr={nr} nw={nw}",
                args.len()
            ));
        }
        let id_at = |i: usize| -> u64 {
            u64::from_le_bytes(args[2 + 8 * i..10 + 8 * i].try_into().expect("sized"))
        };
        let mut acc: i64 = 0;
        for i in 0..nr {
            let key = account(id_at(i));
            let v = ctx
                .get_i64(&key)
                .map_err(|e| e.to_string())?
                .ok_or_else(|| format!("account {key} missing"))?;
            acc = acc.wrapping_add(v);
        }
        for i in 0..nw {
            let key = account(id_at(nr + i));
            ctx.put_i64(key, acc.wrapping_add(i as i64));
        }
        Ok(())
    }

    fn name(&self) -> &str {
        "custom"
    }
}

/// Deterministic custom-workload invocation stream.
pub struct CustomWorkload {
    cfg: CustomConfig,
    rng: StdRng,
}

impl CustomWorkload {
    /// Creates the generator.
    pub fn new(cfg: CustomConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        CustomWorkload { cfg, rng }
    }

    fn pick(&mut self, hot_prob: f64) -> u64 {
        let hot_n = self.cfg.hot_count();
        if self.rng.random::<f64>() < hot_prob {
            self.rng.random_range(0..hot_n)
        } else if hot_n < self.cfg.accounts {
            self.rng.random_range(hot_n..self.cfg.accounts)
        } else {
            self.rng.random_range(0..self.cfg.accounts)
        }
    }
}

impl WorkloadGen for CustomWorkload {
    fn chaincode(&self) -> &'static str {
        "custom"
    }

    fn next_args(&mut self) -> Vec<u8> {
        let mut reads = Vec::with_capacity(self.cfg.rw);
        let mut writes = Vec::with_capacity(self.cfg.rw);
        for _ in 0..self.cfg.rw {
            reads.push(self.pick(self.cfg.hot_read_prob));
            writes.push(self.pick(self.cfg.hot_write_prob));
        }
        // Distinct accounts within each list keep the rwset canonical.
        reads.sort_unstable();
        reads.dedup();
        writes.sort_unstable();
        writes.dedup();
        encode_accounts(&reads, &writes)
    }

    fn genesis(&self) -> Vec<(Key, Value)> {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xACC0);
        (0..self.cfg.accounts)
            .map(|i| (account(i), Value::from_i64(rng.random_range(0..1_000_000))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_statedb::{MemStateDb, SnapshotView, StateStore};

    fn ctx(db: &Arc<MemStateDb>) -> TxContext {
        let store: Arc<dyn StateStore> = db.clone();
        TxContext::new(SnapshotView::pin(store), true)
    }

    fn small_cfg() -> CustomConfig {
        CustomConfig {
            accounts: 100,
            rw: 4,
            hot_read_prob: 0.4,
            hot_write_prob: 0.1,
            hot_set_fraction: 0.05,
            seed: 7,
        }
    }

    #[test]
    fn genesis_covers_all_accounts() {
        let wl = CustomWorkload::new(small_cfg());
        assert_eq!(wl.genesis().len(), 100);
    }

    #[test]
    fn chaincode_reads_then_writes() {
        let wl = CustomWorkload::new(small_cfg());
        let db = Arc::new(MemStateDb::with_genesis(wl.genesis()));
        let mut c = ctx(&db);
        CustomChaincode.invoke(&mut c, &encode_accounts(&[1, 2], &[3])).unwrap();
        let rw = c.finish();
        assert_eq!(rw.reads.len(), 2);
        assert_eq!(rw.writes.len(), 1);
        assert!(rw.writes.writes(&account(3)));
        // Written value = sum of reads (+ index 0).
        let v1 = db.get(&account(1)).unwrap().unwrap().value.as_i64().unwrap();
        let v2 = db.get(&account(2)).unwrap().unwrap().value.as_i64().unwrap();
        assert_eq!(rw.writes.value_of(&account(3)), Some(Some(&Value::from_i64(v1 + v2))));
    }

    #[test]
    fn bad_args_rejected() {
        let wl = CustomWorkload::new(small_cfg());
        let db = Arc::new(MemStateDb::with_genesis(wl.genesis()));
        let mut c = ctx(&db);
        assert!(CustomChaincode.invoke(&mut c, &[]).is_err());
        let mut c = ctx(&db);
        assert!(CustomChaincode.invoke(&mut c, &[2, 1, 0, 0]).is_err(), "length mismatch");
        let mut c = ctx(&db);
        let missing = encode_accounts(&[9999], &[]);
        assert!(CustomChaincode.invoke(&mut c, &missing).is_err());
    }

    #[test]
    fn hot_read_fraction_matches_probability() {
        let cfg = CustomConfig {
            accounts: 10_000,
            rw: 1,
            hot_read_prob: 0.4,
            hot_write_prob: 0.1,
            hot_set_fraction: 0.01,
            seed: 3,
        };
        let hot_n = cfg.hot_count();
        assert_eq!(hot_n, 100);
        let mut wl = CustomWorkload::new(cfg);
        let mut hot_reads = 0usize;
        let mut hot_writes = 0usize;
        let trials = 20_000;
        for _ in 0..trials {
            let args = wl.next_args();
            let nr = args[0] as usize;
            let nw = args[1] as usize;
            assert_eq!(nr, 1);
            assert_eq!(nw, 1);
            let read = u64::from_le_bytes(args[2..10].try_into().unwrap());
            let write = u64::from_le_bytes(args[10..18].try_into().unwrap());
            if read < hot_n {
                hot_reads += 1;
            }
            if write < hot_n {
                hot_writes += 1;
            }
        }
        let hr = hot_reads as f64 / trials as f64;
        let hw = hot_writes as f64 / trials as f64;
        assert!((hr - 0.4).abs() < 0.03, "hot read fraction {hr}");
        assert!((hw - 0.1).abs() < 0.03, "hot write fraction {hw}");
    }

    #[test]
    fn generated_args_always_execute() {
        let cfg = small_cfg();
        let wl = CustomWorkload::new(cfg.clone());
        let db = Arc::new(MemStateDb::with_genesis(wl.genesis()));
        let mut wl = CustomWorkload::new(cfg);
        for _ in 0..500 {
            let args = wl.next_args();
            let mut c = ctx(&db);
            CustomChaincode.invoke(&mut c, &args).unwrap();
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = CustomWorkload::new(small_cfg());
        let mut b = CustomWorkload::new(small_cfg());
        for _ in 0..100 {
            assert_eq!(a.next_args(), b.next_args());
        }
    }

    #[test]
    fn hot_count_is_at_least_one() {
        let cfg = CustomConfig { accounts: 10, hot_set_fraction: 0.001, ..small_cfg() };
        assert_eq!(cfg.hot_count(), 1);
    }

    #[test]
    fn dedup_keeps_args_canonical() {
        // With a tiny hot set and high probabilities, duplicates are
        // frequent; the generator must not emit them.
        let cfg = CustomConfig {
            accounts: 50,
            rw: 8,
            hot_read_prob: 0.9,
            hot_write_prob: 0.9,
            hot_set_fraction: 0.04, // 2 hot accounts
            seed: 11,
        };
        let mut wl = CustomWorkload::new(cfg);
        for _ in 0..200 {
            let args = wl.next_args();
            let nr = args[0] as usize;
            let nw = args[1] as usize;
            let ids: Vec<u64> = (0..nr + nw)
                .map(|i| u64::from_le_bytes(args[2 + 8 * i..10 + 8 * i].try_into().unwrap()))
                .collect();
            let reads = &ids[..nr];
            let writes = &ids[nr..];
            let mut rd = reads.to_vec();
            rd.dedup();
            assert_eq!(rd.len(), reads.len(), "duplicate read ids");
            let mut wd = writes.to_vec();
            wd.dedup();
            assert_eq!(wd.len(), writes.len(), "duplicate write ids");
        }
    }
}
