//! # fabric-workloads
//!
//! The workloads of the paper's evaluation (§6.2.2):
//!
//! * [`smallbank`] — the Smallbank benchmark: per user a checking and a
//!   savings account; five modifying transactions (TransactSavings,
//!   DepositChecking, SendPayment, WriteCheck, Amalgamate) picked with
//!   probability `Pw` and a read-only Query with probability `1 − Pw`;
//!   accounts selected by a configurable-skew Zipf distribution.
//! * [`custom`] — the paper's custom workload: `N` account balances, each
//!   transaction reading and writing `RW` accounts, with hot-account
//!   probabilities `HR` (reads) and `HW` (writes) over a hot set of size
//!   `HSS`.
//! * [`blank`] — blank transactions "without any logic" (Figure 1's lower
//!   bar): no reads, no writes; isolates the crypto + networking cost.
//! * [`zipf`] — an exact inverse-CDF Zipf sampler (`s = 0` is uniform, the
//!   paper sweeps `s` from 0 to 2).
//!
//! All generators implement [`WorkloadGen`] and are deterministic per seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blank;
pub mod custom;
pub mod smallbank;
pub mod zipf;

pub use blank::BlankWorkload;
pub use custom::{CustomConfig, CustomWorkload};
pub use smallbank::{SmallbankConfig, SmallbankWorkload};
pub use zipf::ZipfSampler;

use fabric_common::{Key, Value};

/// A stream of chaincode invocations plus the chaincode and genesis state
/// they need.
pub trait WorkloadGen: Send {
    /// The chaincode name every generated call targets.
    fn chaincode(&self) -> &'static str;

    /// Produces the next invocation's argument bytes.
    fn next_args(&mut self) -> Vec<u8>;

    /// The genesis key/value pairs the workload expects.
    fn genesis(&self) -> Vec<(Key, Value)>;
}
