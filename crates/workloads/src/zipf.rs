//! Exact Zipf sampling by inverse CDF.
//!
//! The paper selects Smallbank accounts "following a Zipfian distribution,
//! which we can configure in terms of skewness by setting the s-value.
//! Note that an s-value of 0 corresponds to a uniform distribution"
//! (§6.2.2). This sampler materializes the normalized cumulative mass
//! (O(n) once) and samples by binary search (O(log n)).

use rand::Rng;

/// Zipf sampler over `0..n` with skew `s` (`P(k) ∝ 1 / (k+1)^s`).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
    s: f64,
}

impl ZipfSampler {
    /// Builds a sampler over `n` items with skew `s ≥ 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs at least one item");
        assert!(s >= 0.0 && s.is_finite(), "skew must be finite and non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against rounding: the last entry must be exactly 1.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        ZipfSampler { cdf, s }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the domain is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The configured skew.
    pub fn skew(&self) -> f64 {
        self.s
    }

    /// Draws one item index in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        // First index whose cumulative mass is >= u.
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).expect("no NaN")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of item `k`.
    pub fn mass(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(n: usize, s: f64, draws: usize) -> Vec<usize> {
        let z = ZipfSampler::new(n, s);
        let mut rng = StdRng::seed_from_u64(7);
        let mut h = vec![0usize; n];
        for _ in 0..draws {
            h[z.sample(&mut rng)] += 1;
        }
        h
    }

    #[test]
    fn s_zero_is_uniform() {
        let h = histogram(10, 0.0, 100_000);
        for &c in &h {
            let expected = 10_000.0;
            assert!(((c as f64) - expected).abs() / expected < 0.1, "count {c}");
        }
    }

    #[test]
    fn high_skew_concentrates_on_first_items() {
        let h = histogram(1000, 2.0, 100_000);
        // Under s=2, item 0 holds 1/ζ(2,1000) ≈ 61% of the mass.
        assert!(h[0] > 55_000, "item 0 got {}", h[0]);
        assert!(h[1] > h[2], "monotone decreasing head");
        let tail: usize = h[500..].iter().sum();
        assert!(tail < 1000, "tail mass must be tiny, got {tail}");
    }

    #[test]
    fn mass_sums_to_one() {
        let z = ZipfSampler::new(100, 1.3);
        let total: f64 = (0..100).map(|k| z.mass(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(z.mass(0) > z.mass(1));
        assert!(z.mass(1) > z.mass(99));
    }

    #[test]
    fn single_item_always_zero() {
        let z = ZipfSampler::new(1, 1.5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let z = ZipfSampler::new(50, 1.0);
        let a: Vec<usize> =
            (0..100).scan(StdRng::seed_from_u64(3), |r, _| Some(z.sample(r))).collect();
        let b: Vec<usize> =
            (0..100).scan(StdRng::seed_from_u64(3), |r, _| Some(z.sample(r))).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn samples_in_range() {
        let z = ZipfSampler::new(17, 0.8);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 17);
        }
        assert_eq!(z.len(), 17);
        assert!(!z.is_empty());
        assert!((z.skew() - 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_panics() {
        ZipfSampler::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_skew_panics() {
        ZipfSampler::new(10, -1.0);
    }
}
