//! Blocks: ordered by the ordering service, committed (with per-transaction
//! validity flags) by the peers.

use std::time::Instant;

use fabric_common::codec::{Decode, Decoder, Encode, Encoder};
use fabric_common::hash::Sha256;
use fabric_common::rwset::ReadWriteSet;
use fabric_common::{
    BlockNum, ChannelId, ClientId, Digest, Endorsement, Error, OrgId, PeerId, Result,
    Signature, Transaction, TxId, ValidationCode,
};

/// Block header: sequence number plus the two hashes that chain blocks
/// together and bind their contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockHeader {
    /// Sequence number in the chain (genesis = 0).
    pub number: BlockNum,
    /// Hash of the previous block's header ([`Digest::ZERO`] for genesis).
    pub prev_hash: Digest,
    /// Hash over the canonical bytes of the block's transactions.
    pub data_hash: Digest,
}

impl BlockHeader {
    /// The header's own hash — what the next block's `prev_hash` must equal.
    pub fn hash(&self) -> Digest {
        let mut enc = Encoder::with_capacity(8 + 64);
        enc.put_u64(self.number);
        let mut h = Sha256::new();
        h.update(enc.as_slice());
        h.update(self.prev_hash.as_bytes());
        h.update(self.data_hash.as_bytes());
        h.finalize()
    }
}

/// A block as emitted by the ordering service: ordered transactions, not yet
/// validated.
#[derive(Debug, Clone)]
pub struct Block {
    /// The header.
    pub header: BlockHeader,
    /// The ordered transactions (possibly reordered by Fabric++).
    pub txs: Vec<Transaction>,
}

impl Block {
    /// Builds a block from ordered transactions, computing the data hash
    /// and linking to `prev_hash`.
    pub fn build(number: BlockNum, prev_hash: Digest, txs: Vec<Transaction>) -> Self {
        let data_hash = Self::compute_data_hash(&txs);
        Block { header: BlockHeader { number, prev_hash, data_hash }, txs }
    }

    /// Hash over every transaction's signing payload and endorsements.
    pub fn compute_data_hash(txs: &[Transaction]) -> Digest {
        let mut h = Sha256::new();
        for tx in txs {
            h.update(&tx.payload());
            for e in &tx.endorsements {
                h.update(&e.peer.raw().to_le_bytes());
                h.update(&e.signature.0);
            }
        }
        h.finalize()
    }

    /// Verifies that the stored data hash matches the transactions.
    pub fn verify_data_hash(&self) -> bool {
        Self::compute_data_hash(&self.txs) == self.header.data_hash
    }

    /// Approximate wire size in bytes (network accounting).
    pub fn byte_size(&self) -> usize {
        72 + self.txs.iter().map(Transaction::byte_size).sum::<usize>()
    }
}

/// A block after validation: the ordered transactions plus one
/// [`ValidationCode`] per transaction — Fabric's validity bitmap.
#[derive(Debug, Clone)]
pub struct CommittedBlock {
    /// The block as received from ordering.
    pub block: Block,
    /// Outcome per transaction, parallel to `block.txs`.
    pub validity: Vec<ValidationCode>,
}

impl CommittedBlock {
    /// Creates a committed block, checking the flags line up.
    pub fn new(block: Block, validity: Vec<ValidationCode>) -> Result<Self> {
        if block.txs.len() != validity.len() {
            return Err(Error::InvalidState(format!(
                "validity flags ({}) do not match transaction count ({})",
                validity.len(),
                block.txs.len()
            )));
        }
        Ok(CommittedBlock { block, validity })
    }

    /// Number of valid transactions in the block.
    pub fn valid_count(&self) -> usize {
        self.validity.iter().filter(|c| c.is_valid()).count()
    }

    /// Iterates `(transaction, code)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Transaction, ValidationCode)> {
        self.block.txs.iter().zip(self.validity.iter().copied())
    }
}

// ---------------------------------------------------------------------------
// Storage encoding (used by the file-backed block store)
// ---------------------------------------------------------------------------

fn encode_tx(tx: &Transaction, enc: &mut Encoder) {
    enc.put_u64(tx.id.raw());
    enc.put_u64(tx.channel.raw());
    enc.put_u64(tx.client.raw());
    enc.put_bytes(tx.chaincode.as_bytes());
    tx.rwset.encode(enc);
    enc.put_u32(tx.endorsements.len() as u32);
    for e in &tx.endorsements {
        enc.put_u64(e.peer.raw());
        enc.put_u64(e.org.raw());
        enc.put_bytes(&e.signature.0);
    }
}

fn decode_tx(dec: &mut Decoder<'_>) -> Result<Transaction> {
    let id = TxId(dec.get_u64()?);
    let channel = ChannelId(dec.get_u64()?);
    let client = ClientId(dec.get_u64()?);
    let chaincode = String::from_utf8(dec.get_bytes()?.to_vec())
        .map_err(|e| Error::Codec(format!("chaincode name not utf-8: {e}")))?;
    let rwset = ReadWriteSet::decode(dec)?;
    let n = dec.get_u32()? as usize;
    if n > 1 << 16 {
        return Err(Error::Codec(format!("implausible endorsement count {n}")));
    }
    let mut endorsements = Vec::with_capacity(n);
    for _ in 0..n {
        let peer = PeerId(dec.get_u64()?);
        let org = OrgId(dec.get_u64()?);
        let sig_bytes = dec.get_bytes()?;
        let sig: [u8; 32] = sig_bytes
            .try_into()
            .map_err(|_| Error::Codec("signature must be 32 bytes".into()))?;
        endorsements.push(Endorsement { peer, org, signature: Signature(sig) });
    }
    Ok(Transaction {
        id,
        channel,
        client,
        chaincode,
        rwset,
        endorsements,
        // Wall-clock anchors are runtime-only; archival reads restart them.
        created_at: Instant::now(),
    })
}

fn code_to_u8(c: ValidationCode) -> u8 {
    match c {
        ValidationCode::Valid => 0,
        ValidationCode::MvccConflict => 1,
        ValidationCode::EndorsementFailure => 2,
        ValidationCode::EarlyAbortSimulation => 3,
        ValidationCode::EarlyAbortCycle => 4,
        ValidationCode::EarlyAbortVersionMismatch => 5,
    }
}

fn code_from_u8(b: u8) -> Result<ValidationCode> {
    Ok(match b {
        0 => ValidationCode::Valid,
        1 => ValidationCode::MvccConflict,
        2 => ValidationCode::EndorsementFailure,
        3 => ValidationCode::EarlyAbortSimulation,
        4 => ValidationCode::EarlyAbortCycle,
        5 => ValidationCode::EarlyAbortVersionMismatch,
        _ => return Err(Error::Codec(format!("bad validation code {b}"))),
    })
}

impl Encode for CommittedBlock {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.block.header.number);
        enc.put_bytes(self.block.header.prev_hash.as_bytes());
        enc.put_bytes(self.block.header.data_hash.as_bytes());
        enc.put_u32(self.block.txs.len() as u32);
        for (tx, code) in self.iter() {
            encode_tx(tx, enc);
            enc.put_u8(code_to_u8(code));
        }
    }
}

impl Decode for CommittedBlock {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let number = dec.get_u64()?;
        let prev: [u8; 32] = dec
            .get_bytes()?
            .try_into()
            .map_err(|_| Error::Codec("prev_hash must be 32 bytes".into()))?;
        let data: [u8; 32] = dec
            .get_bytes()?
            .try_into()
            .map_err(|_| Error::Codec("data_hash must be 32 bytes".into()))?;
        let n = dec.get_u32()? as usize;
        if n > 1 << 20 {
            return Err(Error::Codec(format!("implausible block size {n}")));
        }
        let mut txs = Vec::with_capacity(n);
        let mut validity = Vec::with_capacity(n);
        for _ in 0..n {
            txs.push(decode_tx(dec)?);
            validity.push(code_from_u8(dec.get_u8()?)?);
        }
        let block = Block {
            header: BlockHeader { number, prev_hash: Digest(prev), data_hash: Digest(data) },
            txs,
        };
        CommittedBlock::new(block, validity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_common::rwset::rwset_from_keys;
    use fabric_common::{Key, Value, Version};

    pub(crate) fn sample_tx(seed: u64) -> Transaction {
        let rwset = rwset_from_keys(
            &[Key::composite("r", seed)],
            Version::new(seed, 0),
            &[Key::composite("w", seed)],
            &Value::from_i64(seed as i64),
        );
        Transaction {
            id: TxId(seed + 1000),
            channel: ChannelId(0),
            client: ClientId(seed % 4),
            chaincode: "bench".into(),
            rwset,
            endorsements: vec![Endorsement {
                peer: PeerId(seed % 3),
                org: OrgId(seed % 2),
                signature: Signature([seed as u8; 32]),
            }],
            created_at: Instant::now(),
        }
    }

    #[test]
    fn data_hash_binds_contents() {
        let txs = vec![sample_tx(1), sample_tx(2)];
        let block = Block::build(1, Digest::ZERO, txs);
        assert!(block.verify_data_hash());

        let mut tampered = block.clone();
        tampered.txs[0].rwset = rwset_from_keys(
            &[],
            Version::GENESIS,
            &[Key::from("evil")],
            &Value::from_i64(666),
        );
        assert!(!tampered.verify_data_hash());
    }

    #[test]
    fn header_hash_changes_with_each_field() {
        let h = BlockHeader { number: 1, prev_hash: Digest::ZERO, data_hash: Digest([1; 32]) };
        let base = h.hash();
        assert_ne!(BlockHeader { number: 2, ..h }.hash(), base);
        assert_ne!(BlockHeader { prev_hash: Digest([9; 32]), ..h }.hash(), base);
        assert_ne!(BlockHeader { data_hash: Digest([2; 32]), ..h }.hash(), base);
        assert_eq!(h.hash(), base); // deterministic
    }

    #[test]
    fn committed_block_checks_flag_count() {
        let block = Block::build(0, Digest::ZERO, vec![sample_tx(1)]);
        assert!(CommittedBlock::new(block.clone(), vec![]).is_err());
        let cb =
            CommittedBlock::new(block, vec![ValidationCode::Valid]).unwrap();
        assert_eq!(cb.valid_count(), 1);
    }

    #[test]
    fn valid_count_counts_only_valid() {
        let block = Block::build(0, Digest::ZERO, vec![sample_tx(1), sample_tx(2), sample_tx(3)]);
        let cb = CommittedBlock::new(
            block,
            vec![
                ValidationCode::Valid,
                ValidationCode::MvccConflict,
                ValidationCode::Valid,
            ],
        )
        .unwrap();
        assert_eq!(cb.valid_count(), 2);
        let codes: Vec<ValidationCode> = cb.iter().map(|(_, c)| c).collect();
        assert_eq!(codes[1], ValidationCode::MvccConflict);
    }

    #[test]
    fn committed_block_encoding_round_trips() {
        let block = Block::build(7, Digest([3; 32]), vec![sample_tx(1), sample_tx(2)]);
        let cb = CommittedBlock::new(
            block,
            vec![ValidationCode::Valid, ValidationCode::EarlyAbortCycle],
        )
        .unwrap();
        let bytes = cb.encode_to_vec();
        let back = CommittedBlock::decode_exact(&bytes).unwrap();
        assert_eq!(back.block.header, cb.block.header);
        assert_eq!(back.validity, cb.validity);
        assert_eq!(back.block.txs.len(), 2);
        assert_eq!(back.block.txs[0].id, cb.block.txs[0].id);
        assert_eq!(back.block.txs[0].rwset, cb.block.txs[0].rwset);
        assert_eq!(back.block.txs[0].endorsements, cb.block.txs[0].endorsements);
        assert!(back.block.verify_data_hash());
    }

    #[test]
    fn decode_rejects_truncation() {
        let block = Block::build(7, Digest([3; 32]), vec![sample_tx(1)]);
        let cb = CommittedBlock::new(block, vec![ValidationCode::Valid]).unwrap();
        let bytes = cb.encode_to_vec();
        assert!(CommittedBlock::decode_exact(&bytes[..bytes.len() - 5]).is_err());
    }

    #[test]
    fn empty_block_round_trips() {
        let block = Block::build(0, Digest::ZERO, vec![]);
        assert!(block.verify_data_hash());
        let cb = CommittedBlock::new(block, vec![]).unwrap();
        let back = CommittedBlock::decode_exact(&cb.encode_to_vec()).unwrap();
        assert_eq!(back.block.txs.len(), 0);
    }

    #[test]
    fn byte_size_scales_with_txs() {
        let b1 = Block::build(0, Digest::ZERO, vec![sample_tx(1)]);
        let b2 = Block::build(0, Digest::ZERO, vec![sample_tx(1), sample_tx(2)]);
        assert!(b2.byte_size() > b1.byte_size());
    }
}
