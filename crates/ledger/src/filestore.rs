//! Append-only on-disk block log.
//!
//! Frame layout per committed block: `[u32 len][u32 crc32(payload)][payload]`
//! with the payload being the [`CommittedBlock`] storage encoding. Loading
//! verifies every crc and rejects torn or corrupt frames (unlike the WAL, a
//! block log is only written after commit, so a torn tail indicates data
//! loss and is reported, not skipped).

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use fabric_common::codec::{Decode, Decoder, Encode, Encoder};
use fabric_common::{Error, Result};

use crate::block::CommittedBlock;
use crate::ledger::Ledger;

// CRC-32 (IEEE), same implementation strategy as the statedb WAL; duplicated
// here because fabric-ledger must not depend on fabric-statedb.
fn crc32(data: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut j = 0;
            while j < 8 {
                c = if c & 1 == 1 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                j += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    }
    static TABLE: [u32; 256] = table();
    let mut state = 0xFFFF_FFFFu32;
    for &b in data {
        state = (state >> 8) ^ TABLE[((state ^ u32::from(b)) & 0xFF) as usize];
    }
    state ^ 0xFFFF_FFFF
}

/// Append-only block log on disk.
pub struct FileBlockStore {
    file: BufWriter<File>,
    path: PathBuf,
}

impl FileBlockStore {
    /// Opens (creating or appending to) the block log at `path`.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(FileBlockStore { file: BufWriter::new(file), path })
    }

    /// Appends one committed block and flushes it to the OS.
    pub fn append(&mut self, cb: &CommittedBlock) -> Result<()> {
        let payload = cb.encode_to_vec();
        let mut frame = Encoder::with_capacity(8);
        frame.put_u32(payload.len() as u32);
        frame.put_u32(crc32(&payload));
        self.file.write_all(frame.as_slice())?;
        self.file.write_all(&payload)?;
        self.file.flush()?;
        Ok(())
    }

    /// Forces the log to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.file.flush()?;
        self.file.get_ref().sync_data()?;
        Ok(())
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads every block from the log at `path`, verifying integrity.
    pub fn load(path: &Path) -> Result<Vec<CommittedBlock>> {
        let mut buf = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut buf)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        }
        let mut blocks = Vec::new();
        let mut pos = 0usize;
        while pos < buf.len() {
            if pos + 8 > buf.len() {
                return Err(Error::Corruption(format!(
                    "block log {}: torn frame header at offset {pos}",
                    path.display()
                )));
            }
            let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
            let expect = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
            let start = pos + 8;
            if start + len > buf.len() {
                return Err(Error::Corruption(format!(
                    "block log {}: torn payload at offset {pos}",
                    path.display()
                )));
            }
            let payload = &buf[start..start + len];
            if crc32(payload) != expect {
                return Err(Error::Corruption(format!(
                    "block log {}: crc mismatch at offset {pos}",
                    path.display()
                )));
            }
            let mut dec = Decoder::new(payload);
            blocks.push(CommittedBlock::decode(&mut dec)?);
            dec.finish()?;
            pos = start + len;
        }
        Ok(blocks)
    }

    /// Rebuilds an in-memory [`Ledger`] from the log at `path`, re-verifying
    /// all chain linkage along the way.
    pub fn load_into_ledger(path: &Path) -> Result<Ledger> {
        let ledger = Ledger::new();
        for cb in Self::load(path)? {
            ledger.append(cb)?;
        }
        Ok(ledger)
    }

    /// Crash recovery: loads the valid frame prefix of the log at `path`,
    /// tolerating — and truncating away — a torn or corrupt *tail* frame
    /// (the on-disk effect of a crash mid-append). The truncation makes
    /// subsequent [`FileBlockStore::open`]/`append` safe. Corruption before
    /// the tail still fails: that is data loss, not a crash artefact.
    pub fn recover(path: &Path) -> Result<RecoveredLog> {
        let mut buf = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut buf)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(RecoveredLog { blocks: Vec::new(), truncated_bytes: 0 });
            }
            Err(e) => return Err(e.into()),
        }
        let mut blocks = Vec::new();
        let mut pos = 0usize;
        let mut clean = 0usize;
        while pos < buf.len() {
            if pos + 8 > buf.len() {
                break; // torn header at the tail
            }
            let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
            let expect = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
            let start = pos + 8;
            if start + len > buf.len() {
                break; // torn payload at the tail
            }
            let payload = &buf[start..start + len];
            if crc32(payload) != expect {
                if start + len == buf.len() {
                    break; // corrupt final frame: crash artefact
                }
                return Err(Error::Corruption(format!(
                    "block log {}: crc mismatch at offset {pos} (not the tail frame)",
                    path.display()
                )));
            }
            let mut dec = Decoder::new(payload);
            blocks.push(CommittedBlock::decode(&mut dec)?);
            dec.finish()?;
            pos = start + len;
            clean = pos;
        }
        let truncated_bytes = (buf.len() - clean) as u64;
        if truncated_bytes > 0 {
            let f = OpenOptions::new().write(true).open(path)?;
            f.set_len(clean as u64)?;
            f.sync_data()?;
        }
        Ok(RecoveredLog { blocks, truncated_bytes })
    }
}

/// Result of [`FileBlockStore::recover`].
#[derive(Debug)]
pub struct RecoveredLog {
    /// Blocks from the valid prefix, in append order.
    pub blocks: Vec<CommittedBlock>,
    /// Bytes of torn tail removed from the file (0 for a clean log).
    pub truncated_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::ledger::next_block;
    use fabric_common::rwset::rwset_from_keys;
    use fabric_common::{
        ChannelId, ClientId, Key, Transaction, TxId, ValidationCode, Value, Version,
    };
    use std::time::Instant;

    fn tx(seed: u64) -> Transaction {
        Transaction {
            id: TxId(seed),
            channel: ChannelId(0),
            client: ClientId(0),
            chaincode: "cc".into(),
            rwset: rwset_from_keys(
                &[Key::composite("k", seed)],
                Version::GENESIS,
                &[Key::composite("k", seed)],
                &Value::from_i64(seed as i64),
            ),
            endorsements: vec![],
            created_at: Instant::now(),
        }
    }

    fn committed(block: Block) -> CommittedBlock {
        let n = block.txs.len();
        CommittedBlock::new(block, vec![ValidationCode::Valid; n]).unwrap()
    }

    fn tmpfile(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fabric-blocklog-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("blocks.log")
    }

    fn cleanup(path: &Path) {
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn append_and_load() {
        let path = tmpfile("basic");
        let ledger = Ledger::new();
        {
            let mut store = FileBlockStore::open(&path).unwrap();
            for b in 0..4u64 {
                let cb = committed(next_block(&ledger, vec![tx(b * 2), tx(b * 2 + 1)]));
                ledger.append(cb.clone()).unwrap();
                store.append(&cb).unwrap();
            }
            store.sync().unwrap();
        }
        let blocks = FileBlockStore::load(&path).unwrap();
        assert_eq!(blocks.len(), 4);
        assert_eq!(blocks[3].block.header.number, 3);
        assert_eq!(blocks[0].block.txs[0].id, TxId(0));
        cleanup(&path);
    }

    #[test]
    fn load_into_ledger_verifies_chain() {
        let path = tmpfile("rebuild");
        let ledger = Ledger::new();
        {
            let mut store = FileBlockStore::open(&path).unwrap();
            for b in 0..3u64 {
                let cb = committed(next_block(&ledger, vec![tx(b)]));
                ledger.append(cb.clone()).unwrap();
                store.append(&cb).unwrap();
            }
        }
        let rebuilt = FileBlockStore::load_into_ledger(&path).unwrap();
        assert_eq!(rebuilt.height(), 3);
        rebuilt.verify_chain().unwrap();
        assert_eq!(rebuilt.tip_hash(), ledger.tip_hash());
        cleanup(&path);
    }

    #[test]
    fn missing_file_loads_empty() {
        let path = tmpfile("missing");
        assert!(FileBlockStore::load(&path).unwrap().is_empty());
        cleanup(&path);
    }

    #[test]
    fn corruption_is_detected() {
        let path = tmpfile("corrupt");
        let ledger = Ledger::new();
        {
            let mut store = FileBlockStore::open(&path).unwrap();
            let cb = committed(next_block(&ledger, vec![tx(1)]));
            store.append(&cb).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n / 2] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(FileBlockStore::load(&path), Err(Error::Corruption(_))));
        cleanup(&path);
    }

    #[test]
    fn truncation_is_detected() {
        let path = tmpfile("trunc");
        let ledger = Ledger::new();
        {
            let mut store = FileBlockStore::open(&path).unwrap();
            let cb = committed(next_block(&ledger, vec![tx(1)]));
            store.append(&cb).unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(matches!(FileBlockStore::load(&path), Err(Error::Corruption(_))));
        cleanup(&path);
    }

    #[test]
    fn recover_truncates_torn_tail_and_resumes() {
        let path = tmpfile("recover");
        let ledger = Ledger::new();
        {
            let mut store = FileBlockStore::open(&path).unwrap();
            for b in 0..3u64 {
                let cb = committed(next_block(&ledger, vec![tx(b)]));
                ledger.append(cb.clone()).unwrap();
                store.append(&cb).unwrap();
            }
        }
        // Crash mid-append: the final frame is half-written.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        let recovered = FileBlockStore::recover(&path).unwrap();
        assert_eq!(recovered.blocks.len(), 2);
        assert!(recovered.truncated_bytes > 0);

        // The truncated log is clean: plain load works and appending the
        // lost block again produces a fully valid log.
        let cb2 = ledger.get(2).unwrap();
        {
            let mut store = FileBlockStore::open(&path).unwrap();
            store.append(&cb2).unwrap();
        }
        let blocks = FileBlockStore::load(&path).unwrap();
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[2].block.header.number, 2);
        cleanup(&path);
    }

    #[test]
    fn recover_rejects_mid_log_corruption() {
        let path = tmpfile("recover-mid");
        let ledger = Ledger::new();
        {
            let mut store = FileBlockStore::open(&path).unwrap();
            for b in 0..3u64 {
                let cb = committed(next_block(&ledger, vec![tx(b)]));
                ledger.append(cb.clone()).unwrap();
                store.append(&cb).unwrap();
            }
        }
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[10] ^= 0xFF; // first frame payload
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(FileBlockStore::recover(&path), Err(Error::Corruption(_))));
        cleanup(&path);
    }

    #[test]
    fn reopen_appends_after_existing_blocks() {
        let path = tmpfile("reopen");
        let ledger = Ledger::new();
        let cb0 = committed(next_block(&ledger, vec![tx(0)]));
        ledger.append(cb0.clone()).unwrap();
        {
            let mut store = FileBlockStore::open(&path).unwrap();
            store.append(&cb0).unwrap();
        }
        let cb1 = committed(next_block(&ledger, vec![tx(1)]));
        {
            let mut store = FileBlockStore::open(&path).unwrap();
            store.append(&cb1).unwrap();
        }
        let blocks = FileBlockStore::load(&path).unwrap();
        assert_eq!(blocks.len(), 2);
        cleanup(&path);
    }
}
