//! The in-memory chain: appends verify linkage; the whole chain can be
//! audited after the fact.

use std::sync::Arc;

use parking_lot::RwLock;

use fabric_common::{BlockNum, Digest, Error, Result, TxId, ValidationCode};

use crate::block::{Block, CommittedBlock};

/// A peer's local copy of the blockchain.
///
/// Appends are checked: block numbers must be consecutive and each block's
/// `prev_hash` must equal the previous header's hash. Thread-safe; readers
/// do not block each other. Blocks are stored behind [`Arc`], so handing a
/// committed block back to the pipeline (or out of [`Ledger::get`]) is a
/// reference-count bump, not a deep clone.
#[derive(Default)]
pub struct Ledger {
    chain: RwLock<Vec<Arc<CommittedBlock>>>,
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a committed block after verifying chain linkage and the data
    /// hash. The block is moved in once and returned as a shared handle.
    pub fn append(&self, cb: CommittedBlock) -> Result<Arc<CommittedBlock>> {
        if !cb.block.verify_data_hash() {
            return Err(Error::Corruption(format!(
                "block {}: data hash does not match transactions",
                cb.block.header.number
            )));
        }
        let mut chain = self.chain.write();
        let expected_number = chain.len() as BlockNum;
        if cb.block.header.number != expected_number {
            return Err(Error::InvalidState(format!(
                "append of block {} but chain height is {expected_number}",
                cb.block.header.number
            )));
        }
        let expected_prev = match chain.last() {
            Some(prev) => prev.block.header.hash(),
            None => Digest::ZERO,
        };
        if cb.block.header.prev_hash != expected_prev {
            return Err(Error::Corruption(format!(
                "block {}: prev_hash does not match chain tip",
                cb.block.header.number
            )));
        }
        let cb = Arc::new(cb);
        chain.push(Arc::clone(&cb));
        Ok(cb)
    }

    /// Number of blocks in the chain.
    pub fn height(&self) -> u64 {
        self.chain.read().len() as u64
    }

    /// The hash of the chain tip's header ([`Digest::ZERO`] when empty) —
    /// what the next block must link to.
    pub fn tip_hash(&self) -> Digest {
        let chain = self.chain.read();
        match chain.last() {
            Some(cb) => cb.block.header.hash(),
            None => Digest::ZERO,
        }
    }

    /// Shared handle to block `number`, if present.
    pub fn get(&self, number: BlockNum) -> Option<Arc<CommittedBlock>> {
        self.chain.read().get(number as usize).cloned()
    }

    /// Full-chain audit: recompute every linkage and data hash.
    pub fn verify_chain(&self) -> Result<()> {
        let chain = self.chain.read();
        let mut prev = Digest::ZERO;
        for (i, cb) in chain.iter().enumerate() {
            if cb.block.header.number != i as BlockNum {
                return Err(Error::Corruption(format!(
                    "block at index {i} has number {}",
                    cb.block.header.number
                )));
            }
            if cb.block.header.prev_hash != prev {
                return Err(Error::Corruption(format!("block {i}: broken prev_hash link")));
            }
            if !cb.block.verify_data_hash() {
                return Err(Error::Corruption(format!("block {i}: data hash mismatch")));
            }
            prev = cb.block.header.hash();
        }
        Ok(())
    }

    /// Looks up the final validation code of a transaction anywhere in the
    /// chain (linear scan; diagnostics and tests only).
    pub fn find_tx(&self, id: TxId) -> Option<(BlockNum, ValidationCode)> {
        let chain = self.chain.read();
        for cb in chain.iter() {
            for (tx, code) in cb.iter() {
                if tx.id == id {
                    return Some((cb.block.header.number, code));
                }
            }
        }
        None
    }

    /// Totals of (valid, invalid) transactions across the whole chain.
    pub fn tx_totals(&self) -> (u64, u64) {
        let chain = self.chain.read();
        let mut valid = 0u64;
        let mut invalid = 0u64;
        for cb in chain.iter() {
            let v = cb.valid_count() as u64;
            valid += v;
            invalid += cb.block.txs.len() as u64 - v;
        }
        (valid, invalid)
    }

    /// Runs `f` over every committed block in order.
    pub fn for_each(&self, mut f: impl FnMut(&CommittedBlock)) {
        for cb in self.chain.read().iter() {
            f(cb);
        }
    }

    /// The full write history of `key` across the chain — Fabric's
    /// `GetHistoryForKey`. Returns one entry per *valid* transaction that
    /// wrote the key, oldest first: the committing block, the transaction
    /// id, and the written value (`None` = the key was deleted).
    pub fn history_of(&self, key: &fabric_common::Key) -> Vec<HistoryEntry> {
        let chain = self.chain.read();
        let mut out = Vec::new();
        for cb in chain.iter() {
            for (tx, code) in cb.iter() {
                if !code.is_valid() {
                    continue;
                }
                if let Some(value) = tx.rwset.writes.value_of(key) {
                    out.push(HistoryEntry {
                        block: cb.block.header.number,
                        tx: tx.id,
                        value: value.cloned(),
                    });
                }
            }
        }
        out
    }
}

/// One write in a key's history (see [`Ledger::history_of`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryEntry {
    /// Block that committed the write.
    pub block: BlockNum,
    /// The writing transaction.
    pub tx: TxId,
    /// The written value; `None` records a delete.
    pub value: Option<fabric_common::Value>,
}

impl std::fmt::Debug for Ledger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Ledger(height={})", self.height())
    }
}

/// Convenience: builds the next block linked to this ledger's tip.
pub fn next_block(ledger: &Ledger, txs: Vec<fabric_common::Transaction>) -> Block {
    Block::build(ledger.height(), ledger.tip_hash(), txs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use fabric_common::rwset::rwset_from_keys;
    use fabric_common::{ChannelId, ClientId, Key, Transaction, Value, Version};
    use std::time::Instant;

    fn tx(seed: u64) -> Transaction {
        Transaction {
            id: TxId(seed),
            channel: ChannelId(0),
            client: ClientId(0),
            chaincode: "cc".into(),
            rwset: rwset_from_keys(
                &[Key::composite("k", seed)],
                Version::GENESIS,
                &[Key::composite("k", seed)],
                &Value::from_i64(seed as i64),
            ),
            endorsements: vec![],
            created_at: Instant::now(),
        }
    }

    fn committed(block: Block) -> CommittedBlock {
        let n = block.txs.len();
        CommittedBlock::new(block, vec![ValidationCode::Valid; n]).unwrap()
    }

    #[test]
    fn append_and_audit() {
        let ledger = Ledger::new();
        for b in 0..5u64 {
            let block = next_block(&ledger, vec![tx(b * 2), tx(b * 2 + 1)]);
            ledger.append(committed(block)).unwrap();
        }
        assert_eq!(ledger.height(), 5);
        ledger.verify_chain().unwrap();
        assert_eq!(ledger.tx_totals(), (10, 0));
    }

    #[test]
    fn wrong_number_rejected() {
        let ledger = Ledger::new();
        let block = Block::build(3, Digest::ZERO, vec![]);
        assert!(ledger.append(committed(block)).is_err());
    }

    #[test]
    fn wrong_prev_hash_rejected() {
        let ledger = Ledger::new();
        ledger.append(committed(next_block(&ledger, vec![tx(1)]))).unwrap();
        // Forge a block 1 that links to ZERO instead of the tip.
        let forged = Block::build(1, Digest::ZERO, vec![tx(2)]);
        assert!(matches!(ledger.append(committed(forged)), Err(Error::Corruption(_))));
    }

    #[test]
    fn tampered_data_hash_rejected() {
        let ledger = Ledger::new();
        let mut block = next_block(&ledger, vec![tx(1)]);
        block.txs.push(tx(99)); // contents no longer match data_hash
        let cb = CommittedBlock::new(block, vec![ValidationCode::Valid; 2]).unwrap();
        assert!(matches!(ledger.append(cb), Err(Error::Corruption(_))));
    }

    #[test]
    fn find_tx_locates_codes() {
        let ledger = Ledger::new();
        let block = next_block(&ledger, vec![tx(10), tx(11)]);
        let cb = CommittedBlock::new(
            block,
            vec![ValidationCode::Valid, ValidationCode::MvccConflict],
        )
        .unwrap();
        ledger.append(cb).unwrap();
        assert_eq!(ledger.find_tx(TxId(10)), Some((0, ValidationCode::Valid)));
        assert_eq!(ledger.find_tx(TxId(11)), Some((0, ValidationCode::MvccConflict)));
        assert_eq!(ledger.find_tx(TxId(999)), None);
    }

    #[test]
    fn invalid_txs_are_still_stored() {
        // Paper §2.2.4: the ledger holds valid AND invalid transactions.
        let ledger = Ledger::new();
        let block = next_block(&ledger, vec![tx(1), tx(2), tx(3)]);
        let cb = CommittedBlock::new(
            block,
            vec![
                ValidationCode::Valid,
                ValidationCode::MvccConflict,
                ValidationCode::EndorsementFailure,
            ],
        )
        .unwrap();
        ledger.append(cb).unwrap();
        assert_eq!(ledger.tx_totals(), (1, 2));
        let stored = ledger.get(0).unwrap();
        assert_eq!(stored.block.txs.len(), 3);
    }

    #[test]
    fn get_out_of_range() {
        let ledger = Ledger::new();
        assert!(ledger.get(0).is_none());
        assert_eq!(ledger.tip_hash(), Digest::ZERO);
    }

    #[test]
    fn for_each_visits_in_order() {
        let ledger = Ledger::new();
        for b in 0..3u64 {
            ledger.append(committed(next_block(&ledger, vec![tx(b)]))).unwrap();
        }
        let mut numbers = Vec::new();
        ledger.for_each(|cb| numbers.push(cb.block.header.number));
        assert_eq!(numbers, vec![0, 1, 2]);
    }

    #[test]
    fn history_of_tracks_valid_writes_only() {
        use fabric_common::rwset::RwSetBuilder;
        let ledger = Ledger::new();

        let write_tx = |id: u64, key: &str, val: Option<i64>| {
            let mut b = RwSetBuilder::new();
            b.record_write(Key::from(key), val.map(Value::from_i64));
            Transaction {
                id: TxId(id),
                channel: ChannelId(0),
                client: ClientId(0),
                chaincode: "cc".into(),
                rwset: b.build(),
                endorsements: vec![],
                created_at: Instant::now(),
            }
        };
        // Block 0: valid write k=1, plus an INVALID write k=99.
        let b0 = next_block(&ledger, vec![write_tx(1, "k", Some(1)), write_tx(2, "k", Some(99))]);
        ledger
            .append(
                CommittedBlock::new(b0, vec![ValidationCode::Valid, ValidationCode::MvccConflict])
                    .unwrap(),
            )
            .unwrap();
        // Block 1: update then (block 2) delete.
        let b1 = next_block(&ledger, vec![write_tx(3, "k", Some(2))]);
        ledger.append(CommittedBlock::new(b1, vec![ValidationCode::Valid]).unwrap()).unwrap();
        let b2 = next_block(&ledger, vec![write_tx(4, "k", None)]);
        ledger.append(CommittedBlock::new(b2, vec![ValidationCode::Valid]).unwrap()).unwrap();

        let hist = ledger.history_of(&Key::from("k"));
        assert_eq!(hist.len(), 3, "invalid write excluded");
        assert_eq!(hist[0].block, 0);
        assert_eq!(hist[0].tx, TxId(1));
        assert_eq!(hist[0].value, Some(Value::from_i64(1)));
        assert_eq!(hist[1].value, Some(Value::from_i64(2)));
        assert_eq!(hist[2].value, None, "delete recorded");
        assert!(ledger.history_of(&Key::from("never")).is_empty());
    }

    #[test]
    fn concurrent_appends_stay_consistent() {
        // Appends are serialized by the write lock; concurrent attempts with
        // the same height race, exactly one wins per height.
        let ledger = std::sync::Arc::new(Ledger::new());
        for b in 0..50u64 {
            let block = next_block(&ledger, vec![tx(b)]);
            ledger.append(committed(block)).unwrap();
        }
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let l = std::sync::Arc::clone(&ledger);
                std::thread::spawn(move || l.verify_chain().unwrap())
            })
            .collect();
        for r in readers {
            r.join().unwrap();
        }
    }
}
