//! # fabric-ledger
//!
//! The blockchain itself: the hash-chained, append-only log of blocks that
//! every peer maintains. "Each peer appends the block, which contains both
//! valid and invalid transactions, to its local ledger" (paper §2.2.4) —
//! invalid transactions are recorded too, flagged per-transaction, exactly
//! as in Fabric.
//!
//! * [`block`] — block headers (number, previous-hash, data-hash), ordered
//!   blocks as emitted by the ordering service, and committed blocks
//!   carrying per-transaction validation flags.
//! * [`ledger`] — the in-memory chain with linkage verification on append
//!   and full-chain auditing.
//! * [`filestore`] — an append-only, crc-framed on-disk block log so a peer
//!   can persist and recover its chain.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod filestore;
pub mod ledger;

pub use block::{Block, BlockHeader, CommittedBlock};
pub use filestore::{FileBlockStore, RecoveredLog};
pub use ledger::{HistoryEntry, Ledger};
