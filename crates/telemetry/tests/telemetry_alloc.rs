//! Asserts the telemetry hot path's allocation contract: once the hub's
//! pre-reserved window ring has warmed up, per-block recording — counter
//! bumps, latency records, gauge writes, and `on_block_committed`
//! including a window close — performs **zero heap allocations**
//! (release builds; debug builds get a small bound for standard-library
//! debug machinery).
//!
//! This is the "always-on, low-overhead" obligation: a window close
//! snapshots every source and writes a `WindowRecord` into capacity the
//! hub reserved at construction, so steady-state observation never
//! touches the allocator.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use fabric_common::{
    LatencyRecorder, StoreCounters, SubsystemGauges, TxCounters, ValidationCode,
};
use fabric_telemetry::{TelemetryConfig, TelemetryHub};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn assert_steady_state(allocated: u64, what: &str) {
    if cfg!(debug_assertions) {
        assert!(allocated < 10_000, "{what}: {allocated} allocations in debug steady state");
    } else {
        assert_eq!(allocated, 0, "{what}: steady-state telemetry must not allocate");
    }
}

const TXS_PER_BLOCK: u64 = 16;
const WARM_BLOCKS: u64 = 8;
const MEASURED_BLOCKS: u64 = 64;

fn drive_block(
    block: u64,
    counters: &TxCounters,
    latency: &LatencyRecorder,
    store: &StoreCounters,
    gauges: &SubsystemGauges,
    hub: &TelemetryHub,
) {
    for i in 0..TXS_PER_BLOCK {
        counters.record_submitted();
        gauges.record_endorsement();
        latency.record(Duration::from_micros(50 + (block * 7 + i) % 400));
        if i % 5 == 0 {
            counters.record_outcome(ValidationCode::MvccConflict);
        } else {
            counters.record_outcome(ValidationCode::Valid);
        }
    }
    gauges.set_cutter_queue(TXS_PER_BLOCK / 2);
    gauges.record_vscc_batch_started();
    gauges.record_vscc_batch_done();
    gauges.record_consensus_msg();
    gauges.record_consensus_height();
    store.record_wal_record(true);
    store.set_memtable_bytes(4096 + block);
    store.set_gc_floor(block.saturating_sub(4));
    store.set_live_pins(1);
    hub.on_block_committed(block);
}

#[test]
fn steady_state_recording_and_window_close_do_not_allocate() {
    // Window every 4 blocks, capacity for every window the run produces.
    let hub = TelemetryHub::with_config(TelemetryConfig {
        window_blocks: 4,
        window_txs: 0,
        capacity: ((WARM_BLOCKS + MEASURED_BLOCKS) / 4 + 2) as usize,
    });
    let counters = TxCounters::new();
    let latency = LatencyRecorder::new();
    let store = StoreCounters::new();
    let gauges = SubsystemGauges::new();
    hub.connect(counters.clone(), latency.clone(), vec![store.clone()], gauges.clone());

    for b in 1..=WARM_BLOCKS {
        drive_block(b, &counters, &latency, &store, &gauges, &hub);
    }

    let before = allocations();
    for b in WARM_BLOCKS + 1..=WARM_BLOCKS + MEASURED_BLOCKS {
        drive_block(b, &counters, &latency, &store, &gauges, &hub);
    }
    let allocated = allocations() - before;

    // Sanity: the measured loop really recorded and really closed windows.
    let series = hub.finish().expect("hub enabled");
    assert_eq!(series.summed_stats().submitted, (WARM_BLOCKS + MEASURED_BLOCKS) * TXS_PER_BLOCK);
    assert!(series.len() >= ((WARM_BLOCKS + MEASURED_BLOCKS) / 4) as usize);
    assert_eq!(series.dropped_windows, 0);
    assert_steady_state(allocated, "per-block telemetry recording + window close");
}

#[test]
fn disabled_hub_does_not_allocate_at_all() {
    let hub = TelemetryHub::disabled();
    let before = allocations();
    for b in 1..=1_000 {
        hub.on_block_committed(b);
    }
    let allocated = allocations() - before;
    if cfg!(debug_assertions) {
        assert!(allocated < 100, "disabled hub allocated {allocated} times in debug");
    } else {
        assert_eq!(allocated, 0, "disabled hub must be allocation-free");
    }
}
