//! JSONL export of a [`TelemetrySeries`]: one flat JSON object per
//! window, one window per line — the same newline-delimited convention
//! as `fabric-trace`'s event dump, so the soak bench's
//! `results/soak_timeseries.jsonl` is greppable and streamable with the
//! same tooling.
//!
//! All values are integers (counts, microseconds, bytes, heights); field
//! names are stable and flat so downstream plots can `jq` them directly.

use std::fmt::Write as _;

use crate::{TelemetrySeries, WindowRecord};

/// Serializes one window as a single JSON line (no trailing newline).
pub fn window_to_line(w: &WindowRecord) -> String {
    let mut s = String::with_capacity(512);
    let _ = write!(
        s,
        "{{\"window\":{},\"end_logical_block\":{},\"end_height\":{},\"blocks\":{}",
        w.index, w.end_logical_block, w.end_height, w.blocks
    );
    let _ = write!(
        s,
        ",\"submitted\":{},\"valid\":{},\"mvcc_conflict\":{},\"endorsement_failure\":{}\
         ,\"early_abort_simulation\":{},\"early_abort_cycle\":{}\
         ,\"early_abort_version_mismatch\":{}",
        w.stats.submitted,
        w.stats.valid,
        w.stats.mvcc_conflict,
        w.stats.endorsement_failure,
        w.stats.early_abort_simulation,
        w.stats.early_abort_cycle,
        w.stats.early_abort_version_mismatch,
    );
    let _ = write!(
        s,
        ",\"lat_count\":{},\"lat_p50_us\":{},\"lat_p90_us\":{},\"lat_p99_us\":{},\"lat_avg_us\":{}",
        w.latency.count,
        w.latency.p50_us,
        w.latency.p90_us,
        w.latency.p99_us,
        w.latency.avg_us(),
    );
    let _ = write!(
        s,
        ",\"wal_records\":{},\"wal_fsyncs\":{},\"snapshot_pins\":{},\"gc_trimmed\":{}\
         ,\"lanes_used\":{},\"chain_serializations\":{}",
        w.store.wal_records,
        w.store.wal_fsyncs,
        w.store.snapshot_pins,
        w.store.gc_trimmed_versions,
        w.store.lanes_used,
        w.store.chain_serializations,
    );
    let _ = write!(
        s,
        ",\"cutter_queue_txs\":{},\"endorsements\":{},\"vscc_batches\":{},\"vscc_inflight\":{}\
         ,\"consensus_msgs\":{},\"consensus_view_changes\":{},\"consensus_heights\":{}",
        w.gauges.cutter_queue_txs,
        w.gauges.endorsements,
        w.gauges.vscc_batches_started,
        w.gauges.vscc_inflight(),
        w.gauges.consensus_msgs,
        w.gauges.consensus_view_changes,
        w.gauges.consensus_heights,
    );
    let _ = write!(
        s,
        ",\"memtable_bytes\":{},\"gc_floor\":{},\"gc_floor_lag\":{},\"live_pins\":{}}}",
        w.memtable_bytes, w.gc_floor, w.gc_floor_lag, w.live_pins
    );
    s
}

/// Serializes the whole series, one window per line, trailing newline
/// after each.
pub fn to_string(series: &TelemetrySeries) -> String {
    let mut out = String::with_capacity(series.windows.len() * 512 + 16);
    for w in &series.windows {
        out.push_str(&window_to_line(w));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_common::TxStats;

    #[test]
    fn lines_are_flat_json_objects() {
        let series = TelemetrySeries {
            windows: vec![
                WindowRecord {
                    index: 0,
                    end_logical_block: 4,
                    end_height: 4,
                    blocks: 4,
                    stats: TxStats { submitted: 10, valid: 8, mvcc_conflict: 2, ..Default::default() },
                    ..Default::default()
                },
                WindowRecord { index: 1, end_logical_block: 8, ..Default::default() },
            ],
            dropped_windows: 0,
            total: TxStats::default(),
        };
        let text = to_string(&series);
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert!(line.starts_with("{\"window\":"));
            assert!(line.ends_with('}'));
            // Flat integer fields only: no nested objects or strings.
            assert!(!line[1..line.len() - 1].contains('{'));
            assert!(line.contains("\"valid\":"));
            assert!(line.contains("\"lat_p99_us\":"));
            assert!(line.contains("\"cutter_queue_txs\":"));
        }
        assert!(text.contains("\"submitted\":10"));
        assert!(text.contains("\"valid\":8"));
    }
}
