//! Prometheus text-format (0.0.4) export of a [`TelemetrySeries`].
//!
//! Mirrors the conventions of `fabric-trace`'s exporter: `# HELP` /
//! `# TYPE` headers per family, `fabric_` metric prefix, one sample per
//! window keyed by a `window="N"` label. Windows are logical time
//! (block/tx counts), so the series is reproducible run-to-run — there
//! are no wall-clock timestamps on the samples.

use std::fmt::Write as _;

use crate::TelemetrySeries;

/// Escapes a label *value* per the Prometheus exposition format:
/// backslash, double-quote, and line-feed must be escaped.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn windowed(out: &mut String, name: &str, series: &TelemetrySeries, f: impl Fn(usize) -> u64) {
    for (i, w) in series.windows.iter().enumerate() {
        let _ = writeln!(out, "{name}{{window=\"{}\"}} {}", w.index, f(i));
    }
}

/// Renders the whole series as Prometheus text.
pub fn render(series: &TelemetrySeries) -> String {
    let mut out = String::with_capacity(series.windows.len() * 1024 + 512);
    let w = &series.windows;

    family(
        &mut out,
        "fabric_telemetry_dropped_windows",
        "counter",
        "Windows discarded because the ring was full",
    );
    let _ = writeln!(out, "fabric_telemetry_dropped_windows {}", series.dropped_windows);

    family(
        &mut out,
        "fabric_window_end_block",
        "gauge",
        "Logical-time watermark (total committed blocks) at window close",
    );
    windowed(&mut out, "fabric_window_end_block", series, |i| w[i].end_logical_block);

    family(&mut out, "fabric_window_blocks", "gauge", "Blocks committed in the window");
    windowed(&mut out, "fabric_window_blocks", series, |i| w[i].blocks);

    family(&mut out, "fabric_window_submitted", "gauge", "Transactions submitted in the window");
    windowed(&mut out, "fabric_window_submitted", series, |i| w[i].stats.submitted);

    family(&mut out, "fabric_window_valid", "gauge", "Transactions committed VALID in the window");
    windowed(&mut out, "fabric_window_valid", series, |i| w[i].stats.valid);

    family(
        &mut out,
        "fabric_window_aborted",
        "gauge",
        "Aborted transactions in the window by reason",
    );
    for rec in w {
        let pairs = [
            ("mvcc_conflict", rec.stats.mvcc_conflict),
            ("endorsement_failure", rec.stats.endorsement_failure),
            ("early_abort_simulation", rec.stats.early_abort_simulation),
            ("early_abort_cycle", rec.stats.early_abort_cycle),
            ("early_abort_version_mismatch", rec.stats.early_abort_version_mismatch),
        ];
        for (reason, n) in pairs {
            let _ = writeln!(
                out,
                "fabric_window_aborted{{window=\"{}\",reason=\"{}\"}} {}",
                rec.index,
                escape_label_value(reason),
                n
            );
        }
    }

    for (name, help, pick) in [
        (
            "fabric_window_latency_p50_us",
            "p50 commit latency (us) over the window",
            0usize,
        ),
        (
            "fabric_window_latency_p90_us",
            "p90 commit latency (us) over the window",
            1,
        ),
        (
            "fabric_window_latency_p99_us",
            "p99 commit latency (us) over the window",
            2,
        ),
    ] {
        family(&mut out, name, "gauge", help);
        windowed(&mut out, name, series, |i| match pick {
            0 => w[i].latency.p50_us,
            1 => w[i].latency.p90_us,
            _ => w[i].latency.p99_us,
        });
    }

    family(&mut out, "fabric_window_cutter_queue_txs", "gauge", "Cutter queue depth at window close");
    windowed(&mut out, "fabric_window_cutter_queue_txs", series, |i| w[i].gauges.cutter_queue_txs);

    family(&mut out, "fabric_window_consensus_msgs", "gauge", "Consensus wire messages in the window");
    windowed(&mut out, "fabric_window_consensus_msgs", series, |i| w[i].gauges.consensus_msgs);

    family(
        &mut out,
        "fabric_window_view_changes",
        "gauge",
        "Consensus view changes observed in the window",
    );
    windowed(&mut out, "fabric_window_view_changes", series, |i| {
        w[i].gauges.consensus_view_changes
    });

    family(&mut out, "fabric_window_wal_fsyncs", "gauge", "WAL fsyncs in the window");
    windowed(&mut out, "fabric_window_wal_fsyncs", series, |i| w[i].store.wal_fsyncs);

    family(&mut out, "fabric_window_memtable_bytes", "gauge", "Memtable bytes at window close");
    windowed(&mut out, "fabric_window_memtable_bytes", series, |i| w[i].memtable_bytes);

    family(
        &mut out,
        "fabric_window_gc_floor_lag",
        "gauge",
        "Blocks between chain tip and snapshot GC floor at window close",
    );
    windowed(&mut out, "fabric_window_gc_floor_lag", series, |i| w[i].gc_floor_lag);

    family(&mut out, "fabric_window_live_pins", "gauge", "Live snapshot pins at window close");
    windowed(&mut out, "fabric_window_live_pins", series, |i| w[i].live_pins);

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WindowRecord;
    use fabric_common::TxStats;

    #[test]
    fn escaping_follows_the_exposition_format() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
    }

    #[test]
    fn render_emits_one_sample_per_window() {
        let series = TelemetrySeries {
            windows: vec![
                WindowRecord {
                    index: 0,
                    end_logical_block: 4,
                    blocks: 4,
                    stats: TxStats { submitted: 9, valid: 7, mvcc_conflict: 2, ..Default::default() },
                    ..Default::default()
                },
                WindowRecord { index: 1, end_logical_block: 8, blocks: 4, ..Default::default() },
            ],
            dropped_windows: 0,
            total: TxStats::default(),
        };
        let text = render(&series);
        assert!(text.contains("# TYPE fabric_window_valid gauge"));
        assert!(text.contains("fabric_window_valid{window=\"0\"} 7"));
        assert!(text.contains("fabric_window_valid{window=\"1\"} 0"));
        assert!(text.contains("fabric_window_aborted{window=\"0\",reason=\"mvcc_conflict\"} 2"));
        assert!(text.contains("fabric_telemetry_dropped_windows 0"));
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split_whitespace().count(), 2, "bad sample line: {line}");
        }
    }
}
