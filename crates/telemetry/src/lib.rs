//! # fabric-telemetry
//!
//! Windowed time-series telemetry for the Fabric++ reproduction: the
//! over-time half of the paper's evaluation instrument (Figs. 10–11
//! localize bottlenecks by watching throughput and phase cost evolve,
//! not by end-of-run aggregates).
//!
//! A [`TelemetryHub`] aggregates the pipeline's *existing* shared
//! counters — [`TxCounters`], the bucketed [`LatencyRecorder`], the
//! reporting peers' [`StoreCounters`], and the [`SubsystemGauges`] cells
//! the stages write — into fixed **logical-time** windows: a window
//! closes after `window_blocks` committed blocks or `window_txs`
//! submitted transactions, never after a wall-clock interval. Logical
//! boundaries keep the series meaningful across machines and keep the
//! instrument honest: a traced/telemetry run's *observable pipeline
//! bytes* are identical to an untraced one (the determinism conformance
//! harness proves this), because the hub only ever reads counters that
//! the stages already maintain.
//!
//! Per window the hub records goodput, submit rate, the full abort
//! breakdown, p50/p90/p99 commit latency (via
//! [`LatencyRecorder::window_since`] bucket diffs), per-window store
//! deltas (WAL frames/fsyncs, snapshot pins, GC trims, lane occupancy),
//! and the subsystem gauges sampled at close (cutter queue depth,
//! VSCC batches in flight, consensus messages/view-changes/heights,
//! memtable bytes, GC floor, live pins).
//!
//! Hot-path cost: [`TelemetryHub::on_block_committed`] is one mutex
//! acquisition per *block* (never per transaction) and performs **zero
//! heap allocations** once constructed — the window buffer is
//! pre-reserved and every record is plain-old-data
//! (`telemetry_alloc.rs` enforces this with a counting allocator).
//! When the buffer fills, new windows are counted as dropped rather
//! than reallocating; the soak gate asserts zero drops.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;

use parking_lot::Mutex;

use fabric_common::{
    GaugeStats, LatencyBaseline, LatencyRecorder, StoreCounters, StoreStats, SubsystemGauges,
    TxCounters, TxStats, WindowLatency,
};

pub mod jsonl;
pub mod prom;

/// Logical-time window shape. Wall-clock never appears here by design.
#[derive(Debug, Clone, Copy)]
pub struct TelemetryConfig {
    /// Close the open window after this many committed blocks
    /// (0 disables the block boundary).
    pub window_blocks: u64,
    /// Close the open window once this many transactions have been
    /// submitted since it opened (0 disables the tx boundary). Checked at
    /// block commits, so tx windows close on block granularity.
    pub window_txs: u64,
    /// Maximum retained windows. The buffer is allocated once up front;
    /// a window closing beyond it is counted in
    /// [`TelemetrySeries::dropped_windows`] instead of reallocating.
    pub capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig { window_blocks: 16, window_txs: 0, capacity: 4096 }
    }
}

/// One closed window: pure plain-old-data (every field `Copy`), so
/// recording it never allocates.
#[derive(Debug, Clone, Copy, Default)]
pub struct WindowRecord {
    /// 0-based window sequence number.
    pub index: u64,
    /// Logical clock at close: total blocks committed network-wide since
    /// the hub connected. Strictly increasing across windows — the
    /// monotone-watermark invariant.
    pub end_logical_block: u64,
    /// Highest chain height seen at close (max across channels).
    pub end_height: u64,
    /// Blocks committed inside this window.
    pub blocks: u64,
    /// Outcome deltas for this window: `valid` is the window's goodput,
    /// `submitted` its submit volume, and the abort fields its abort
    /// breakdown (early-abort / MVCC / VSCC / stale-read).
    pub stats: TxStats,
    /// Commit-latency quantiles over exactly this window's samples.
    pub latency: WindowLatency,
    /// Store-counter deltas (WAL records/fsyncs, snapshot pins, GC
    /// trims, lane occupancy) summed over the reporting stores.
    pub store: StoreStats,
    /// Subsystem gauges: counter cells as window deltas, instantaneous
    /// cells (cutter queue, workers) as sampled at close.
    pub gauges: GaugeStats,
    /// Memtable bytes buffered at close, summed over reporting stores
    /// (0 on non-LSM engines).
    pub memtable_bytes: u64,
    /// Lowest GC floor across reporting stores at close.
    pub gc_floor: u64,
    /// GC-floor lag at close: `end_height - gc_floor` — how many blocks
    /// of version history pinned snapshots are holding live.
    pub gc_floor_lag: u64,
    /// Live snapshot pins at close, summed over reporting stores.
    pub live_pins: u64,
}

/// The closed-window series a run ends with (see
/// [`TelemetryHub::finish`]).
#[derive(Debug, Clone, Default)]
pub struct TelemetrySeries {
    /// Closed windows in order.
    pub windows: Vec<WindowRecord>,
    /// Windows that closed after the buffer filled and were not retained.
    pub dropped_windows: u64,
    /// Final outcome totals, snapshotted at [`TelemetryHub::finish`]; the
    /// windows partition exactly this.
    pub total: TxStats,
}

impl TelemetrySeries {
    /// Sum of every window's outcome deltas. With zero dropped windows
    /// this equals [`TelemetrySeries::total`] exactly (the deltas
    /// telescope), which is the soak gate's first invariant.
    pub fn summed_stats(&self) -> TxStats {
        let mut acc = TxStats::default();
        for w in &self.windows {
            acc.submitted += w.stats.submitted;
            acc.valid += w.stats.valid;
            acc.mvcc_conflict += w.stats.mvcc_conflict;
            acc.endorsement_failure += w.stats.endorsement_failure;
            acc.early_abort_simulation += w.stats.early_abort_simulation;
            acc.early_abort_cycle += w.stats.early_abort_cycle;
            acc.early_abort_version_mismatch += w.stats.early_abort_version_mismatch;
        }
        acc
    }

    /// Checks the window invariants against the run's final counters:
    ///
    /// 1. zero dropped windows;
    /// 2. the per-window counts telescope: their sum equals `expected`
    ///    field for field;
    /// 3. monotone watermarks: `end_logical_block` strictly increasing,
    ///    `end_height` non-decreasing, window indexes dense.
    ///
    /// Returns a human-readable violation, or `Ok(())`.
    pub fn check_invariants(&self, expected: &TxStats) -> Result<(), String> {
        if self.dropped_windows != 0 {
            return Err(format!("{} windows dropped; raise the capacity", self.dropped_windows));
        }
        let sum = self.summed_stats();
        if sum != *expected {
            return Err(format!(
                "window sums diverge from final counters: sum {sum:?} != total {expected:?}"
            ));
        }
        let mut last_logical = 0u64;
        let mut last_height = 0u64;
        for (i, w) in self.windows.iter().enumerate() {
            if w.index != i as u64 {
                return Err(format!("window {} carries index {}", i, w.index));
            }
            if w.end_logical_block <= last_logical && !(i == 0 && w.end_logical_block == 0) {
                return Err(format!(
                    "watermark not strictly increasing at window {i}: {} after {last_logical}",
                    w.end_logical_block
                ));
            }
            if w.end_height < last_height {
                return Err(format!(
                    "height watermark regressed at window {i}: {} after {last_height}",
                    w.end_height
                ));
            }
            last_logical = w.end_logical_block;
            last_height = w.end_height;
        }
        Ok(())
    }

    /// Number of closed windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether no window ever closed.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }
}

struct HubState {
    /// Sources; `None` until the network builder connects them.
    sources: Option<Sources>,
    lat_base: LatencyBaseline,
    base_stats: TxStats,
    base_store: StoreStats,
    base_gauges: GaugeStats,
    blocks_in_window: u64,
    committed_blocks: u64,
    max_height: u64,
    windows: Vec<WindowRecord>,
    dropped: u64,
}

struct Sources {
    counters: TxCounters,
    latency: LatencyRecorder,
    stores: Vec<StoreCounters>,
    gauges: SubsystemGauges,
}

impl Sources {
    fn fold_store(&self) -> StoreStats {
        let mut acc = StoreStats::default();
        for s in &self.stores {
            acc = acc.merge(&s.snapshot());
        }
        acc
    }

    fn fold_store_gauges(&self) -> (u64, u64, u64) {
        let mut memtable = 0u64;
        let mut floor = u64::MAX;
        let mut pins = 0u64;
        for s in &self.stores {
            memtable += s.memtable_bytes();
            floor = floor.min(s.gc_floor());
            pins += s.live_pins();
        }
        if floor == u64::MAX {
            floor = 0;
        }
        (memtable, floor, pins)
    }
}

struct HubInner {
    cfg: TelemetryConfig,
    state: Mutex<HubState>,
}

/// Shared handle to the telemetry layer; cheap to clone. A disabled hub
/// (the default everywhere telemetry was not asked for) makes every
/// operation a no-op, mirroring `TraceSink::disabled`.
#[derive(Clone, Default)]
pub struct TelemetryHub {
    inner: Option<Arc<HubInner>>,
}

impl std::fmt::Debug for TelemetryHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "TelemetryHub(disabled)"),
            Some(h) => {
                let g = h.state.lock();
                write!(
                    f,
                    "TelemetryHub(windows: {}, open blocks: {})",
                    g.windows.len(),
                    g.blocks_in_window
                )
            }
        }
    }
}

impl TelemetryHub {
    /// A hub that records nothing and costs one `Option` check per call.
    pub fn disabled() -> Self {
        TelemetryHub { inner: None }
    }

    /// An enabled hub. It starts unconnected — the network builder calls
    /// [`TelemetryHub::connect`] once the run's shared counters exist;
    /// commits before that point are counted into the first window once
    /// connected (their counters were zero anyway at build time).
    pub fn with_config(cfg: TelemetryConfig) -> Self {
        let capacity = cfg.capacity;
        TelemetryHub {
            inner: Some(Arc::new(HubInner {
                cfg,
                state: Mutex::new(HubState {
                    sources: None,
                    lat_base: LatencyBaseline::new(),
                    base_stats: TxStats::default(),
                    base_store: StoreStats::default(),
                    base_gauges: GaugeStats::default(),
                    blocks_in_window: 0,
                    committed_blocks: 0,
                    max_height: 0,
                    windows: Vec::with_capacity(capacity),
                    dropped: 0,
                }),
            })),
        }
    }

    /// Whether this hub records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Wires the run's shared counters in: the network-wide outcome
    /// counters and latency recorder, one [`StoreCounters`] per reporting
    /// peer, and the network's gauge cells. Baselines snap to the current
    /// counter values, so the first window measures from here.
    pub fn connect(
        &self,
        counters: TxCounters,
        latency: LatencyRecorder,
        stores: Vec<StoreCounters>,
        gauges: SubsystemGauges,
    ) {
        let Some(h) = &self.inner else { return };
        let mut g = h.state.lock();
        let src = Sources { counters, latency, stores, gauges };
        g.base_stats = src.counters.snapshot();
        g.base_store = src.fold_store();
        g.base_gauges = src.gauges.snapshot();
        // Align the latency baseline with whatever the recorder already
        // holds so the first window doesn't double-count pre-connect
        // samples.
        let _ = src.latency.window_since(&mut g.lat_base);
        g.sources = Some(src);
    }

    /// The per-block emit point: the reporting peer calls this after each
    /// block commit with the committed chain height. Advances the logical
    /// clock and closes the open window when a boundary is crossed.
    /// Allocation-free after construction.
    pub fn on_block_committed(&self, height: u64) {
        let Some(h) = &self.inner else { return };
        let mut g = h.state.lock();
        if g.sources.is_none() {
            return;
        }
        g.committed_blocks += 1;
        g.blocks_in_window += 1;
        g.max_height = g.max_height.max(height);

        let close_by_blocks =
            h.cfg.window_blocks > 0 && g.blocks_in_window >= h.cfg.window_blocks;
        let close_by_txs = h.cfg.window_txs > 0 && {
            let submitted = g.sources.as_ref().unwrap().counters.snapshot().submitted;
            submitted.saturating_sub(g.base_stats.submitted) >= h.cfg.window_txs
        };
        if close_by_blocks || close_by_txs {
            Self::close_window(&mut g);
        }
    }

    fn close_window(g: &mut HubState) {
        let src = g.sources.as_ref().expect("close_window requires sources");
        let stats_now = src.counters.snapshot();
        let store_now = src.fold_store();
        let gauges_now = src.gauges.snapshot();
        let (memtable_bytes, gc_floor, live_pins) = src.fold_store_gauges();
        let latency = src.latency.window_since(&mut g.lat_base);
        let record = WindowRecord {
            index: g.windows.len() as u64 + g.dropped,
            end_logical_block: g.committed_blocks,
            end_height: g.max_height,
            blocks: g.blocks_in_window,
            stats: stats_now.since(&g.base_stats),
            latency,
            store: store_now.since(&g.base_store),
            gauges: gauges_now.since(&g.base_gauges),
            memtable_bytes,
            gc_floor,
            gc_floor_lag: g.max_height.saturating_sub(gc_floor),
            live_pins,
        };
        if g.windows.len() < g.windows.capacity() {
            g.windows.push(record);
        } else {
            g.dropped += 1;
        }
        g.base_stats = stats_now;
        g.base_store = store_now;
        g.base_gauges = gauges_now;
        g.blocks_in_window = 0;
    }

    /// Closes the partial last window (so the series partitions the whole
    /// run — the sum invariant is exact) and returns the series. `None`
    /// on a disabled hub. Call after the pipeline has drained; calling
    /// again returns the same series (the final partial window closes at
    /// most once).
    pub fn finish(&self) -> Option<TelemetrySeries> {
        let h = self.inner.as_ref()?;
        let mut g = h.state.lock();
        let src = g.sources.as_ref()?;
        let total = src.counters.snapshot();
        let tail_activity = g.blocks_in_window > 0
            || total.finished() != g.base_stats.finished()
            || total.submitted != g.base_stats.submitted;
        if tail_activity {
            Self::close_window(&mut g);
        }
        Some(TelemetrySeries {
            windows: g.windows.clone(),
            dropped_windows: g.dropped,
            total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_common::ValidationCode;
    use std::time::Duration;

    fn hub_with_sources(cfg: TelemetryConfig) -> (TelemetryHub, TxCounters, LatencyRecorder) {
        let hub = TelemetryHub::with_config(cfg);
        let counters = TxCounters::new();
        let latency = LatencyRecorder::new();
        hub.connect(
            counters.clone(),
            latency.clone(),
            vec![StoreCounters::new()],
            SubsystemGauges::new(),
        );
        (hub, counters, latency)
    }

    fn drive(hub: &TelemetryHub, counters: &TxCounters, latency: &LatencyRecorder, blocks: u64) {
        for b in 1..=blocks {
            for _ in 0..3 {
                counters.record_submitted();
                counters.record_outcome(ValidationCode::Valid);
                latency.record(Duration::from_micros(100 + b));
            }
            counters.record_submitted();
            counters.record_outcome(ValidationCode::MvccConflict);
            hub.on_block_committed(b);
        }
    }

    #[test]
    fn windows_partition_the_run_exactly() {
        let (hub, counters, latency) =
            hub_with_sources(TelemetryConfig { window_blocks: 4, window_txs: 0, capacity: 64 });
        drive(&hub, &counters, &latency, 10);
        let series = hub.finish().unwrap();
        // 10 blocks at window 4 → windows of 4, 4, and a partial 2.
        assert_eq!(series.len(), 3);
        assert_eq!(series.windows[0].blocks, 4);
        assert_eq!(series.windows[2].blocks, 2);
        series.check_invariants(&counters.snapshot()).unwrap();
        // Per-window goodput and abort breakdown.
        assert_eq!(series.windows[0].stats.valid, 12);
        assert_eq!(series.windows[0].stats.mvcc_conflict, 4);
        assert_eq!(series.windows[0].latency.count, 12);
        // Window quantiles report bucket lower bounds, so allow the
        // recorder's ~5% log-bucket quantization below the true 101us.
        assert!(series.windows[0].latency.p50_us >= 95);
        assert!(series.windows[0].latency.p50_us <= 110);
    }

    #[test]
    fn tx_boundary_closes_windows() {
        let (hub, counters, latency) =
            hub_with_sources(TelemetryConfig { window_blocks: 0, window_txs: 8, capacity: 64 });
        drive(&hub, &counters, &latency, 6);
        let series = hub.finish().unwrap();
        // 4 submitted per block, boundary at 8 → close every 2 blocks.
        assert_eq!(series.len(), 3);
        assert!(series.windows.iter().all(|w| w.stats.submitted == 8));
        series.check_invariants(&counters.snapshot()).unwrap();
    }

    #[test]
    fn overflow_counts_dropped_windows() {
        let (hub, counters, latency) =
            hub_with_sources(TelemetryConfig { window_blocks: 1, window_txs: 0, capacity: 2 });
        drive(&hub, &counters, &latency, 5);
        let series = hub.finish().unwrap();
        assert_eq!(series.len(), 2);
        assert_eq!(series.dropped_windows, 3);
        assert!(series.check_invariants(&counters.snapshot()).is_err());
    }

    #[test]
    fn disabled_hub_is_a_no_op() {
        let hub = TelemetryHub::disabled();
        hub.on_block_committed(1);
        assert!(hub.finish().is_none());
        assert!(!hub.is_enabled());
    }

    #[test]
    fn unconnected_hub_ignores_commits() {
        let hub = TelemetryHub::with_config(TelemetryConfig::default());
        hub.on_block_committed(1);
        assert!(hub.finish().is_none());
    }

    #[test]
    fn finish_is_stable_and_closes_the_tail_once() {
        let (hub, counters, latency) =
            hub_with_sources(TelemetryConfig { window_blocks: 4, window_txs: 0, capacity: 64 });
        drive(&hub, &counters, &latency, 5);
        let a = hub.finish().unwrap();
        let b = hub.finish().unwrap();
        assert_eq!(a.len(), b.len());
        b.check_invariants(&counters.snapshot()).unwrap();
    }

    #[test]
    fn watermarks_are_monotone() {
        let (hub, counters, latency) =
            hub_with_sources(TelemetryConfig { window_blocks: 2, window_txs: 0, capacity: 64 });
        drive(&hub, &counters, &latency, 9);
        let series = hub.finish().unwrap();
        for pair in series.windows.windows(2) {
            assert!(pair[1].end_logical_block > pair[0].end_logical_block);
            assert!(pair[1].end_height >= pair[0].end_height);
        }
    }
}
