//! # fabric-net
//!
//! Simulated network substrate. The paper runs on a six-server gigabit
//! cluster; here every component runs as a thread in one process and
//! messages travel over latency-modelled channels, preserving the pipeline
//! properties the paper's results depend on:
//!
//! * messages cost time proportional to a base latency plus their size
//!   (store-and-forward over a gigabit-class link),
//! * per-receiver delivery is FIFO — "the service assures that all peers
//!   receive the blocks in the same order" (paper Appendix A.2) — and
//! * different receivers may see the same broadcast at different times
//!   (direct delivery vs. the gossip second hop, paper step 8/9).
//!
//! [`LatencyModel`] computes delays; [`link`] builds a delayed FIFO channel;
//! [`Broadcaster`] fans a message out to many receivers with per-receiver
//! hop counts; [`NetStats`] accounts messages and bytes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

/// Latency model for one network hop.
///
/// `delay = base + size_bytes * per_byte` (+ deterministic jitter derived
/// from a message counter, so runs are reproducible).
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// Fixed one-way latency per message.
    pub base: Duration,
    /// Serialization delay per byte (gigabit Ethernet ≈ 8 ns/byte).
    pub per_byte: Duration,
    /// Maximum deterministic jitter added per message.
    pub jitter: Duration,
}

impl LatencyModel {
    /// A LAN-like default: 200 µs base, 8 ns/byte, 50 µs jitter — the same
    /// order of magnitude as the paper's single-rack gigabit deployment.
    pub fn lan() -> Self {
        LatencyModel {
            base: Duration::from_micros(200),
            per_byte: Duration::from_nanos(8),
            jitter: Duration::from_micros(50),
        }
    }

    /// Zero latency: messages deliver immediately (deterministic tests).
    pub fn zero() -> Self {
        LatencyModel { base: Duration::ZERO, per_byte: Duration::ZERO, jitter: Duration::ZERO }
    }

    /// Delay of the `seq`-th message of `size` bytes over `hops` hops.
    pub fn delay(&self, size: usize, hops: u32, seq: u64) -> Duration {
        let base = self.base + self.per_byte * (size as u32);
        let jitter = if self.jitter.is_zero() {
            Duration::ZERO
        } else {
            // Cheap deterministic hash of the sequence number.
            let h = seq.wrapping_mul(0x9E3779B97F4A7C15) >> 40;
            self.jitter.mul_f64((h as f64) / ((1u64 << 24) as f64))
        };
        (base + jitter) * hops.max(1)
    }
}

/// Shared message/byte counters for one simulated network.
#[derive(Debug, Default, Clone)]
pub struct NetStats {
    inner: Arc<NetStatsInner>,
}

#[derive(Debug, Default)]
struct NetStatsInner {
    messages: AtomicU64,
    bytes: AtomicU64,
}

impl NetStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    fn record(&self, bytes: usize) {
        self.inner.messages.fetch_add(1, Ordering::Relaxed);
        self.inner.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Messages sent so far.
    pub fn messages(&self) -> u64 {
        self.inner.messages.load(Ordering::Relaxed)
    }

    /// Bytes sent so far.
    pub fn bytes(&self) -> u64 {
        self.inner.bytes.load(Ordering::Relaxed)
    }
}

/// Sending half of a delayed FIFO link.
pub struct DelayedSender<T> {
    tx: Sender<(Instant, T)>,
    model: LatencyModel,
    stats: NetStats,
    seq: Arc<AtomicU64>,
}

impl<T> Clone for DelayedSender<T> {
    fn clone(&self) -> Self {
        DelayedSender {
            tx: self.tx.clone(),
            model: self.model.clone(),
            stats: self.stats.clone(),
            seq: Arc::clone(&self.seq),
        }
    }
}

/// Receiving half of a delayed FIFO link.
pub struct DelayedReceiver<T> {
    rx: Receiver<(Instant, T)>,
}

/// Error returned when the sending side has disconnected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected;

impl<T> DelayedSender<T> {
    /// Sends `msg`, charging `size` bytes over `hops` hops.
    /// Returns `Err` if the receiver was dropped.
    pub fn send(&self, msg: T, size: usize, hops: u32) -> Result<(), Disconnected> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let deliver_at = Instant::now() + self.model.delay(size, hops, seq);
        self.stats.record(size);
        self.tx.send((deliver_at, msg)).map_err(|_| Disconnected)
    }
}

impl<T> DelayedReceiver<T> {
    /// Receives the next message, waiting out its simulated latency.
    /// Returns `Err` once the channel is empty and all senders are gone.
    pub fn recv(&self) -> Result<T, Disconnected> {
        let (deliver_at, msg) = self.rx.recv().map_err(|_| Disconnected)?;
        wait_until(deliver_at);
        Ok(msg)
    }

    /// Like [`DelayedReceiver::recv`] but gives up after `timeout`
    /// (counting both queue wait and simulated latency).
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let (deliver_at, msg) = self.rx.recv_timeout(timeout)?;
        // Honor the simulated latency but never beyond the caller deadline
        // by more than the remaining delivery delta.
        wait_until(deliver_at.min(deadline.max(Instant::now())));
        if deliver_at > deadline {
            wait_until(deliver_at);
        }
        Ok(msg)
    }

    /// Non-blocking drain of everything already due.
    pub fn try_recv_due(&self) -> Option<T> {
        match self.rx.try_recv() {
            Ok((deliver_at, msg)) => {
                wait_until(deliver_at);
                Some(msg)
            }
            Err(_) => None,
        }
    }
}

fn wait_until(t: Instant) {
    let now = Instant::now();
    if t > now {
        std::thread::sleep(t - now);
    }
}

/// Builds a delayed FIFO link with the given latency model, sharing `stats`.
pub fn link<T>(model: LatencyModel, stats: NetStats) -> (DelayedSender<T>, DelayedReceiver<T>) {
    let (tx, rx) = unbounded();
    (
        DelayedSender { tx, model, stats, seq: Arc::new(AtomicU64::new(0)) },
        DelayedReceiver { rx },
    )
}

/// Fans a cloneable message out to many receivers.
///
/// Receivers marked as *gossip* targets get the message charged with two
/// hops (orderer → direct peer → gossip forward), modelling the paper's
/// partially-direct, partially-gossiped block distribution (steps 8 and 9
/// of the running example).
pub struct Broadcaster<T: Clone> {
    direct: Vec<DelayedSender<T>>,
    gossip: Vec<DelayedSender<T>>,
}

impl<T: Clone> Broadcaster<T> {
    /// Creates a broadcaster over direct and gossip-reached receivers.
    pub fn new(direct: Vec<DelayedSender<T>>, gossip: Vec<DelayedSender<T>>) -> Self {
        Broadcaster { direct, gossip }
    }

    /// Broadcasts `msg` of `size` bytes. Returns how many receivers are
    /// still connected.
    pub fn broadcast(&self, msg: &T, size: usize) -> usize {
        let mut alive = 0;
        for s in &self.direct {
            if s.send(msg.clone(), size, 1).is_ok() {
                alive += 1;
            }
        }
        for s in &self.gossip {
            if s.send(msg.clone(), size, 2).is_ok() {
                alive += 1;
            }
        }
        alive
    }

    /// Total number of receivers.
    pub fn len(&self) -> usize {
        self.direct.len() + self.gossip.len()
    }

    /// Whether there are no receivers.
    pub fn is_empty(&self) -> bool {
        self.direct.is_empty() && self.gossip.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_latency_delivers_immediately() {
        let (tx, rx) = link::<u32>(LatencyModel::zero(), NetStats::new());
        tx.send(7, 100, 1).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
    }

    #[test]
    fn fifo_order_preserved() {
        let (tx, rx) = link::<u32>(LatencyModel::zero(), NetStats::new());
        for i in 0..100 {
            tx.send(i, 10, 1).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn latency_is_applied() {
        let model = LatencyModel {
            base: Duration::from_millis(20),
            per_byte: Duration::ZERO,
            jitter: Duration::ZERO,
        };
        let (tx, rx) = link::<u8>(model, NetStats::new());
        let start = Instant::now();
        tx.send(1, 0, 1).unwrap();
        rx.recv().unwrap();
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn per_byte_latency_scales() {
        let m = LatencyModel {
            base: Duration::ZERO,
            per_byte: Duration::from_nanos(8),
            jitter: Duration::ZERO,
        };
        assert_eq!(m.delay(1_000_000, 1, 0), Duration::from_millis(8));
        assert_eq!(m.delay(0, 1, 0), Duration::ZERO);
    }

    #[test]
    fn hops_multiply_delay() {
        let m = LatencyModel {
            base: Duration::from_micros(100),
            per_byte: Duration::ZERO,
            jitter: Duration::ZERO,
        };
        assert_eq!(m.delay(0, 2, 0), Duration::from_micros(200));
        // Zero hops clamp to one.
        assert_eq!(m.delay(0, 0, 0), Duration::from_micros(100));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let m = LatencyModel {
            base: Duration::from_micros(100),
            per_byte: Duration::ZERO,
            jitter: Duration::from_micros(50),
        };
        for seq in 0..1000u64 {
            let d = m.delay(0, 1, seq);
            assert_eq!(d, m.delay(0, 1, seq), "deterministic");
            assert!(d >= Duration::from_micros(100));
            assert!(d <= Duration::from_micros(151));
        }
        // Jitter actually varies.
        assert_ne!(m.delay(0, 1, 1), m.delay(0, 1, 2));
    }

    #[test]
    fn disconnect_detected() {
        let (tx, rx) = link::<u8>(LatencyModel::zero(), NetStats::new());
        drop(rx);
        assert_eq!(tx.send(1, 0, 1), Err(Disconnected));

        let (tx, rx) = link::<u8>(LatencyModel::zero(), NetStats::new());
        drop(tx);
        assert_eq!(rx.recv(), Err(Disconnected));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = link::<u8>(LatencyModel::zero(), NetStats::new());
        let start = Instant::now();
        assert!(rx.recv_timeout(Duration::from_millis(30)).is_err());
        assert!(start.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn stats_account_messages_and_bytes() {
        let stats = NetStats::new();
        let (tx, rx) = link::<u8>(LatencyModel::zero(), stats.clone());
        tx.send(1, 100, 1).unwrap();
        tx.send(2, 250, 1).unwrap();
        rx.recv().unwrap();
        rx.recv().unwrap();
        assert_eq!(stats.messages(), 2);
        assert_eq!(stats.bytes(), 350);
    }

    #[test]
    fn broadcaster_reaches_all_receivers() {
        let stats = NetStats::new();
        let mut senders = Vec::new();
        let mut receivers = Vec::new();
        for _ in 0..4 {
            let (tx, rx) = link::<String>(LatencyModel::zero(), stats.clone());
            senders.push(tx);
            receivers.push(rx);
        }
        let gossip = senders.split_off(2);
        let b = Broadcaster::new(senders, gossip);
        assert_eq!(b.len(), 4);
        assert_eq!(b.broadcast(&"block".to_string(), 64), 4);
        for rx in &receivers {
            assert_eq!(rx.recv().unwrap(), "block");
        }
        assert_eq!(stats.messages(), 4);
    }

    #[test]
    fn broadcaster_counts_disconnected() {
        let (tx1, rx1) = link::<u8>(LatencyModel::zero(), NetStats::new());
        let (tx2, rx2) = link::<u8>(LatencyModel::zero(), NetStats::new());
        drop(rx2);
        let b = Broadcaster::new(vec![tx1, tx2], vec![]);
        assert_eq!(b.broadcast(&9, 1), 1);
        assert_eq!(rx1.recv().unwrap(), 9);
    }

    #[test]
    fn gossip_hop_arrives_later_than_direct() {
        let model = LatencyModel {
            base: Duration::from_millis(10),
            per_byte: Duration::ZERO,
            jitter: Duration::ZERO,
        };
        let stats = NetStats::new();
        let (dtx, drx) = link::<u8>(model.clone(), stats.clone());
        let (gtx, grx) = link::<u8>(model, stats);
        let b = Broadcaster::new(vec![dtx], vec![gtx]);
        let start = Instant::now();
        b.broadcast(&1, 0);
        let h1 = std::thread::spawn(move || {
            drx.recv().unwrap();
            start.elapsed()
        });
        let h2 = std::thread::spawn(move || {
            grx.recv().unwrap();
            start.elapsed()
        });
        let direct_t = h1.join().unwrap();
        let gossip_t = h2.join().unwrap();
        assert!(gossip_t >= direct_t, "gossip {gossip_t:?} < direct {direct_t:?}");
        assert!(gossip_t >= Duration::from_millis(20));
    }

    #[test]
    fn many_senders_one_receiver() {
        let (tx, rx) = link::<u64>(LatencyModel::zero(), NetStats::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        tx.send(t * 1000 + i, 8, 1).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        for h in handles {
            h.join().unwrap();
        }
        let mut count = 0;
        while rx.recv().is_ok() {
            count += 1;
        }
        assert_eq!(count, 400);
    }
}
