//! # fabric-net
//!
//! Simulated network substrate. The paper runs on a six-server gigabit
//! cluster; here every component runs as a thread in one process and
//! messages travel over latency-modelled channels, preserving the pipeline
//! properties the paper's results depend on:
//!
//! * messages cost time proportional to a base latency plus their size
//!   (store-and-forward over a gigabit-class link),
//! * per-receiver delivery is FIFO — "the service assures that all peers
//!   receive the blocks in the same order" (paper Appendix A.2) — and
//! * different receivers may see the same broadcast at different times
//!   (direct delivery vs. the gossip second hop, paper step 8/9).
//!
//! [`LatencyModel`] computes delays; [`link`] builds a delayed FIFO channel;
//! [`Broadcaster`] fans a message out to many receivers with per-receiver
//! hop counts; [`NetStats`] accounts messages and bytes.
//!
//! For fault-injection experiments the module also exposes a faulty
//! variant of each half: a [`FaultHook`] is consulted once per message and
//! returns a [`SendFault`] verdict (deliver / drop / duplicate / extra
//! delay / reorder burst). [`FaultySender`] applies the verdict and
//! [`FaultyBroadcaster`] fans out through faulty links, so the chaos
//! subsystem can perturb traffic without touching the fault-free paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

/// Latency model for one network hop.
///
/// `delay = base + size_bytes * per_byte` (+ deterministic jitter derived
/// from a message counter, so runs are reproducible).
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// Fixed one-way latency per message.
    pub base: Duration,
    /// Serialization delay per byte (gigabit Ethernet ≈ 8 ns/byte).
    pub per_byte: Duration,
    /// Maximum deterministic jitter added per message.
    pub jitter: Duration,
}

impl LatencyModel {
    /// A LAN-like default: 200 µs base, 8 ns/byte, 50 µs jitter — the same
    /// order of magnitude as the paper's single-rack gigabit deployment.
    pub fn lan() -> Self {
        LatencyModel {
            base: Duration::from_micros(200),
            per_byte: Duration::from_nanos(8),
            jitter: Duration::from_micros(50),
        }
    }

    /// Zero latency: messages deliver immediately (deterministic tests).
    pub fn zero() -> Self {
        LatencyModel { base: Duration::ZERO, per_byte: Duration::ZERO, jitter: Duration::ZERO }
    }

    /// Delay of the `seq`-th message of `size` bytes over `hops` hops.
    pub fn delay(&self, size: usize, hops: u32, seq: u64) -> Duration {
        let base = self.base + self.per_byte * (size as u32);
        let jitter = if self.jitter.is_zero() {
            Duration::ZERO
        } else {
            // Cheap deterministic hash of the sequence number.
            let h = seq.wrapping_mul(0x9E3779B97F4A7C15) >> 40;
            self.jitter.mul_f64((h as f64) / ((1u64 << 24) as f64))
        };
        (base + jitter) * hops.max(1)
    }
}

/// Shared message/byte counters for one simulated network.
#[derive(Debug, Default, Clone)]
pub struct NetStats {
    inner: Arc<NetStatsInner>,
}

#[derive(Debug, Default)]
struct NetStatsInner {
    messages: AtomicU64,
    bytes: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    delayed: AtomicU64,
    reordered: AtomicU64,
}

impl NetStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    fn record(&self, bytes: usize) {
        self.inner.messages.fetch_add(1, Ordering::Relaxed);
        self.inner.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    fn record_dropped(&self) {
        self.inner.dropped.fetch_add(1, Ordering::Relaxed);
    }

    fn record_duplicated(&self, copies: u64) {
        self.inner.duplicated.fetch_add(copies, Ordering::Relaxed);
    }

    fn record_delayed(&self) {
        self.inner.delayed.fetch_add(1, Ordering::Relaxed);
    }

    fn record_reordered(&self, held: u64) {
        self.inner.reordered.fetch_add(held, Ordering::Relaxed);
    }

    /// Messages sent so far.
    pub fn messages(&self) -> u64 {
        self.inner.messages.load(Ordering::Relaxed)
    }

    /// Bytes sent so far.
    pub fn bytes(&self) -> u64 {
        self.inner.bytes.load(Ordering::Relaxed)
    }

    /// Messages dropped by fault injection.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Extra message copies created by fault injection.
    pub fn duplicated(&self) -> u64 {
        self.inner.duplicated.load(Ordering::Relaxed)
    }

    /// Messages given an injected delay spike.
    pub fn delayed(&self) -> u64 {
        self.inner.delayed.load(Ordering::Relaxed)
    }

    /// Messages delivered out of send order by injected reorder bursts.
    pub fn reordered(&self) -> u64 {
        self.inner.reordered.load(Ordering::Relaxed)
    }
}

/// Sending half of a delayed FIFO link.
pub struct DelayedSender<T> {
    tx: Sender<(Instant, T)>,
    model: LatencyModel,
    stats: NetStats,
    seq: Arc<AtomicU64>,
}

impl<T> Clone for DelayedSender<T> {
    fn clone(&self) -> Self {
        DelayedSender {
            tx: self.tx.clone(),
            model: self.model.clone(),
            stats: self.stats.clone(),
            seq: Arc::clone(&self.seq),
        }
    }
}

/// Receiving half of a delayed FIFO link.
pub struct DelayedReceiver<T> {
    rx: Receiver<(Instant, T)>,
    /// A message popped by [`DelayedReceiver::try_recv_ready`] before its
    /// simulated delivery time; the next receive call re-examines it first
    /// so FIFO order is preserved.
    stash: parking_lot::Mutex<Option<(Instant, T)>>,
}

/// Error returned when the sending side has disconnected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected;

impl<T> DelayedSender<T> {
    /// Sends `msg`, charging `size` bytes over `hops` hops.
    /// Returns `Err` if the receiver was dropped.
    pub fn send(&self, msg: T, size: usize, hops: u32) -> Result<(), Disconnected> {
        self.send_with_delay(msg, size, hops, Duration::ZERO)
    }

    /// Like [`DelayedSender::send`] with `extra` latency added on top of
    /// the model's delay (the fault layer's delay-spike seam).
    pub fn send_with_delay(
        &self,
        msg: T,
        size: usize,
        hops: u32,
        extra: Duration,
    ) -> Result<(), Disconnected> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let deliver_at = Instant::now() + self.model.delay(size, hops, seq) + extra;
        self.stats.record(size);
        self.tx.send((deliver_at, msg)).map_err(|_| Disconnected)
    }
}

impl<T> DelayedReceiver<T> {
    /// Receives the next message, waiting out its simulated latency.
    /// Returns `Err` once the channel is empty and all senders are gone.
    pub fn recv(&self) -> Result<T, Disconnected> {
        let (deliver_at, msg) = match self.stash.lock().take() {
            Some(entry) => entry,
            None => self.rx.recv().map_err(|_| Disconnected)?,
        };
        wait_until(deliver_at);
        Ok(msg)
    }

    /// Like [`DelayedReceiver::recv`] but gives up after `timeout`
    /// (counting both queue wait and simulated latency).
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let (deliver_at, msg) = match self.stash.lock().take() {
            Some(entry) => entry,
            None => self.rx.recv_timeout(timeout)?,
        };
        // Honor the simulated latency but never beyond the caller deadline
        // by more than the remaining delivery delta.
        wait_until(deliver_at.min(deadline.max(Instant::now())));
        if deliver_at > deadline {
            wait_until(deliver_at);
        }
        Ok(msg)
    }

    /// Non-blocking drain of everything already due.
    pub fn try_recv_due(&self) -> Option<T> {
        let entry = self.stash.lock().take().or_else(|| self.rx.try_recv().ok());
        match entry {
            Some((deliver_at, msg)) => {
                wait_until(deliver_at);
                Some(msg)
            }
            None => None,
        }
    }

    /// Returns the next message only if its simulated delivery time has
    /// already passed — never sleeps, unlike
    /// [`DelayedReceiver::try_recv_due`]. A message popped early is
    /// stashed and handed out by the next receive call, so the FIFO
    /// contract holds. Used for opportunistic pipelining (start work on
    /// the next block only if it has actually arrived).
    pub fn try_recv_ready(&self) -> Option<T> {
        let mut stash = self.stash.lock();
        let (deliver_at, msg) = match stash.take() {
            Some(entry) => entry,
            None => self.rx.try_recv().ok()?,
        };
        if deliver_at <= Instant::now() {
            Some(msg)
        } else {
            *stash = Some((deliver_at, msg));
            None
        }
    }
}

fn wait_until(t: Instant) {
    let now = Instant::now();
    if t > now {
        std::thread::sleep(t - now);
    }
}

/// Builds a delayed FIFO link with the given latency model, sharing `stats`.
pub fn link<T>(model: LatencyModel, stats: NetStats) -> (DelayedSender<T>, DelayedReceiver<T>) {
    let (tx, rx) = unbounded();
    (
        DelayedSender { tx, model, stats, seq: Arc::new(AtomicU64::new(0)) },
        DelayedReceiver { rx, stash: parking_lot::Mutex::new(None) },
    )
}

/// Fans a cloneable message out to many receivers.
///
/// Receivers marked as *gossip* targets get the message charged with two
/// hops (orderer → direct peer → gossip forward), modelling the paper's
/// partially-direct, partially-gossiped block distribution (steps 8 and 9
/// of the running example).
pub struct Broadcaster<T: Clone> {
    direct: Vec<DelayedSender<T>>,
    gossip: Vec<DelayedSender<T>>,
}

impl<T: Clone> Broadcaster<T> {
    /// Creates a broadcaster over direct and gossip-reached receivers.
    pub fn new(direct: Vec<DelayedSender<T>>, gossip: Vec<DelayedSender<T>>) -> Self {
        Broadcaster { direct, gossip }
    }

    /// Broadcasts `msg` of `size` bytes. Returns how many receivers are
    /// still connected.
    pub fn broadcast(&self, msg: &T, size: usize) -> usize {
        let mut alive = 0;
        for s in &self.direct {
            if s.send(msg.clone(), size, 1).is_ok() {
                alive += 1;
            }
        }
        for s in &self.gossip {
            if s.send(msg.clone(), size, 2).is_ok() {
                alive += 1;
            }
        }
        alive
    }

    /// Total number of receivers.
    pub fn len(&self) -> usize {
        self.direct.len() + self.gossip.len()
    }

    /// Whether there are no receivers.
    pub fn is_empty(&self) -> bool {
        self.direct.is_empty() && self.gossip.is_empty()
    }
}

/// One directed link, identified by simulated endpoint ids. `u32::MAX`
/// conventionally denotes the ordering service as a source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId {
    /// Sending endpoint.
    pub from: u32,
    /// Receiving endpoint.
    pub to: u32,
}

impl LinkId {
    /// Conventional id for the ordering service endpoint.
    pub const ORDERER: u32 = u32::MAX;

    /// Base id of the reserved orderer-replica endpoint range: replica `r`
    /// of a replicated ordering service is endpoint `CONSENSUS_BASE + r`.
    /// The range sits just below [`LinkId::ORDERER`] so replica endpoints
    /// can never collide with peer ids (peers are numbered from 1) and
    /// existing single-orderer link ids — hence existing fault schedules —
    /// are untouched.
    pub const CONSENSUS_BASE: u32 = u32::MAX - 1 - Self::MAX_CONSENSUS_REPLICAS;

    /// Maximum replicas addressable in the reserved consensus range.
    pub const MAX_CONSENSUS_REPLICAS: u32 = 64;

    /// Link from the ordering service to peer `to`.
    pub fn from_orderer(to: u32) -> Self {
        LinkId { from: Self::ORDERER, to }
    }

    /// Endpoint id of orderer replica `replica` (0-based).
    pub fn consensus_endpoint(replica: u32) -> u32 {
        debug_assert!(replica < Self::MAX_CONSENSUS_REPLICAS);
        Self::CONSENSUS_BASE + replica
    }

    /// Inter-replica consensus link from replica `from` to replica `to`
    /// (0-based replica indices).
    pub fn between_replicas(from: u32, to: u32) -> Self {
        LinkId { from: Self::consensus_endpoint(from), to: Self::consensus_endpoint(to) }
    }

    /// True when this link carries consensus traffic between orderer
    /// replicas.
    pub fn is_consensus(&self) -> bool {
        self.from >= Self::CONSENSUS_BASE
            && self.from != Self::ORDERER
            && self.to >= Self::CONSENSUS_BASE
            && self.to != Self::ORDERER
    }
}

/// Verdict for one message, produced by a [`FaultHook`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendFault {
    /// Deliver normally.
    Deliver,
    /// Silently discard the message (the sender still observes success,
    /// as with a lossy wire).
    Drop,
    /// Deliver the message plus `extra` additional copies.
    Duplicate {
        /// Number of extra copies beyond the original.
        extra: u32,
    },
    /// Deliver after an additional latency spike.
    Delay {
        /// Extra delay added on top of the latency model.
        extra: Duration,
    },
    /// Hold this message and the next `len - 1` on the same link, then
    /// release all of them in reverse order.
    ReorderBurst {
        /// Total number of messages in the burst (≥ 2 to reorder).
        len: u32,
    },
}

/// Decides the fate of each message crossing a faulty link.
///
/// Implementations must be deterministic functions of their own state and
/// the call sequence — the chaos injector derives every verdict from a
/// seeded RNG so identical seeds replay identical schedules.
pub trait FaultHook: Send + Sync {
    /// Verdict for the next message of `size` bytes on `link`.
    fn on_send(&self, link: LinkId, size: usize) -> SendFault;
}

/// A hook that never injects faults (useful as a default).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultHook for NoFaults {
    fn on_send(&self, _link: LinkId, _size: usize) -> SendFault {
        SendFault::Deliver
    }
}

/// In-progress reorder burst on one faulty link.
struct BurstState<T> {
    /// Messages held back, in send order, with their size and hop count.
    held: Vec<(T, usize, u32)>,
    /// How many more messages to absorb before flushing.
    remaining: usize,
}

/// A [`DelayedSender`] that consults a [`FaultHook`] for every message.
///
/// Faults act on the sender side: drops consume the message before it
/// reaches the wire, duplicates enqueue extra copies, delay spikes stall
/// the (FIFO) link, and reorder bursts buffer a run of messages and
/// release them in reverse order.
pub struct FaultySender<T> {
    inner: DelayedSender<T>,
    link: LinkId,
    hook: Arc<dyn FaultHook>,
    burst: Mutex<BurstState<T>>,
}

impl<T> FaultySender<T> {
    /// Wraps `inner` so every send on `link` consults `hook`.
    pub fn new(inner: DelayedSender<T>, link: LinkId, hook: Arc<dyn FaultHook>) -> Self {
        FaultySender { inner, link, hook, burst: Mutex::new(BurstState { held: Vec::new(), remaining: 0 }) }
    }

    /// The link this sender injects faults on.
    pub fn link(&self) -> LinkId {
        self.link
    }
}

impl<T: Clone> FaultySender<T> {
    /// Sends `msg` subject to the fault hook's verdict. Dropped messages
    /// report success, as a lossy physical link would.
    pub fn send(&self, msg: T, size: usize, hops: u32) -> Result<(), Disconnected> {
        let mut burst = self.burst.lock();
        if burst.remaining > 0 {
            // Mid-burst: absorb without consulting the hook.
            burst.held.push((msg, size, hops));
            burst.remaining -= 1;
            if burst.remaining == 0 {
                return self.flush_burst(&mut burst);
            }
            return Ok(());
        }
        drop(burst);

        match self.hook.on_send(self.link, size) {
            SendFault::Deliver => self.inner.send(msg, size, hops),
            SendFault::Drop => {
                self.inner.stats.record_dropped();
                Ok(())
            }
            SendFault::Duplicate { extra } => {
                self.inner.stats.record_duplicated(extra as u64);
                for _ in 0..extra {
                    self.inner.send(msg.clone(), size, hops)?;
                }
                self.inner.send(msg, size, hops)
            }
            SendFault::Delay { extra } => {
                self.inner.stats.record_delayed();
                self.inner.send_with_delay(msg, size, hops, extra)
            }
            SendFault::ReorderBurst { len } => {
                if len < 2 {
                    return self.inner.send(msg, size, hops);
                }
                let mut burst = self.burst.lock();
                burst.held.push((msg, size, hops));
                burst.remaining = len as usize - 1;
                Ok(())
            }
        }
    }

    /// Releases a completed burst in reverse send order.
    fn flush_burst(&self, burst: &mut BurstState<T>) -> Result<(), Disconnected> {
        self.inner.stats.record_reordered(burst.held.len() as u64);
        let mut result = Ok(());
        for (msg, size, hops) in burst.held.drain(..).rev() {
            if self.inner.send(msg, size, hops).is_err() {
                result = Err(Disconnected);
            }
        }
        result
    }

    /// Releases any partially-filled burst (in reverse order) — called
    /// when a run ends so no message is lost in the buffer.
    pub fn flush(&self) -> Result<(), Disconnected> {
        let mut burst = self.burst.lock();
        burst.remaining = 0;
        if burst.held.is_empty() {
            return Ok(());
        }
        self.flush_burst(&mut burst)
    }
}

/// A [`Broadcaster`] whose links all pass through [`FaultySender`]s.
pub struct FaultyBroadcaster<T> {
    direct: Vec<FaultySender<T>>,
    gossip: Vec<FaultySender<T>>,
}

impl<T: Clone> FaultyBroadcaster<T> {
    /// Creates a faulty broadcaster over direct and gossip-reached
    /// receivers.
    pub fn new(direct: Vec<FaultySender<T>>, gossip: Vec<FaultySender<T>>) -> Self {
        FaultyBroadcaster { direct, gossip }
    }

    /// Wraps each sender of a fault-free topology: `direct[i]` and
    /// `gossip[j]` become links from [`LinkId::ORDERER`] to the peer ids
    /// returned by `peer_of` (index into direct ++ gossip).
    pub fn wrap(
        direct: Vec<DelayedSender<T>>,
        gossip: Vec<DelayedSender<T>>,
        hook: Arc<dyn FaultHook>,
        peer_of: impl Fn(usize) -> u32,
    ) -> Self {
        let n_direct = direct.len();
        FaultyBroadcaster {
            direct: direct
                .into_iter()
                .enumerate()
                .map(|(i, s)| {
                    FaultySender::new(s, LinkId::from_orderer(peer_of(i)), Arc::clone(&hook))
                })
                .collect(),
            gossip: gossip
                .into_iter()
                .enumerate()
                .map(|(i, s)| {
                    FaultySender::new(
                        s,
                        LinkId::from_orderer(peer_of(n_direct + i)),
                        Arc::clone(&hook),
                    )
                })
                .collect(),
        }
    }

    /// Broadcasts `msg` of `size` bytes through the fault layer. Returns
    /// how many receivers are still connected (dropped messages count as
    /// delivered, as the sender cannot tell the difference).
    pub fn broadcast(&self, msg: &T, size: usize) -> usize {
        let mut alive = 0;
        for s in &self.direct {
            if s.send(msg.clone(), size, 1).is_ok() {
                alive += 1;
            }
        }
        for s in &self.gossip {
            if s.send(msg.clone(), size, 2).is_ok() {
                alive += 1;
            }
        }
        alive
    }

    /// Releases any partially-filled reorder bursts on all links.
    pub fn flush(&self) {
        for s in self.direct.iter().chain(self.gossip.iter()) {
            let _ = s.flush();
        }
    }

    /// Total number of receivers.
    pub fn len(&self) -> usize {
        self.direct.len() + self.gossip.len()
    }

    /// Whether there are no receivers.
    pub fn is_empty(&self) -> bool {
        self.direct.is_empty() && self.gossip.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_latency_delivers_immediately() {
        let (tx, rx) = link::<u32>(LatencyModel::zero(), NetStats::new());
        tx.send(7, 100, 1).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
    }

    #[test]
    fn try_recv_ready_never_sleeps_and_keeps_fifo() {
        let (tx, rx) = link::<u32>(LatencyModel::zero(), NetStats::new());
        assert_eq!(rx.try_recv_ready(), None, "empty link");
        // A message with a large extra delay is not ready; it must be
        // stashed, not lost, and recv() must still deliver it (in order).
        tx.send_with_delay(1, 10, 1, Duration::from_secs(60)).unwrap();
        tx.send(2, 10, 1).unwrap();
        let t0 = Instant::now();
        assert_eq!(rx.try_recv_ready(), None, "not due yet");
        assert!(t0.elapsed() < Duration::from_secs(1), "must not sleep");
        drop(tx);
        // recv honors the stashed message's delay — use the due one via a
        // fresh zero-delay link to keep the test fast.
        let (tx2, rx2) = link::<u32>(LatencyModel::zero(), NetStats::new());
        tx2.send(5, 10, 1).unwrap();
        tx2.send(6, 10, 1).unwrap();
        assert_eq!(rx2.try_recv_ready(), Some(5));
        assert_eq!(rx2.try_recv_ready(), Some(6));
        assert_eq!(rx2.try_recv_ready(), None);
    }

    #[test]
    fn fifo_order_preserved() {
        let (tx, rx) = link::<u32>(LatencyModel::zero(), NetStats::new());
        for i in 0..100 {
            tx.send(i, 10, 1).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn latency_is_applied() {
        let model = LatencyModel {
            base: Duration::from_millis(20),
            per_byte: Duration::ZERO,
            jitter: Duration::ZERO,
        };
        let (tx, rx) = link::<u8>(model, NetStats::new());
        let start = Instant::now();
        tx.send(1, 0, 1).unwrap();
        rx.recv().unwrap();
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn per_byte_latency_scales() {
        let m = LatencyModel {
            base: Duration::ZERO,
            per_byte: Duration::from_nanos(8),
            jitter: Duration::ZERO,
        };
        assert_eq!(m.delay(1_000_000, 1, 0), Duration::from_millis(8));
        assert_eq!(m.delay(0, 1, 0), Duration::ZERO);
    }

    #[test]
    fn hops_multiply_delay() {
        let m = LatencyModel {
            base: Duration::from_micros(100),
            per_byte: Duration::ZERO,
            jitter: Duration::ZERO,
        };
        assert_eq!(m.delay(0, 2, 0), Duration::from_micros(200));
        // Zero hops clamp to one.
        assert_eq!(m.delay(0, 0, 0), Duration::from_micros(100));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let m = LatencyModel {
            base: Duration::from_micros(100),
            per_byte: Duration::ZERO,
            jitter: Duration::from_micros(50),
        };
        for seq in 0..1000u64 {
            let d = m.delay(0, 1, seq);
            assert_eq!(d, m.delay(0, 1, seq), "deterministic");
            assert!(d >= Duration::from_micros(100));
            assert!(d <= Duration::from_micros(151));
        }
        // Jitter actually varies.
        assert_ne!(m.delay(0, 1, 1), m.delay(0, 1, 2));
    }

    #[test]
    fn jitter_values_are_pinned() {
        // Chaos schedules depend on delivery timing being a pure function
        // of (model, size, hops, seq); pin exact outputs so any change to
        // the jitter formula is caught, not silently absorbed.
        let m = LatencyModel {
            base: Duration::from_micros(100),
            per_byte: Duration::ZERO,
            jitter: Duration::from_micros(50),
        };
        assert_eq!(m.delay(0, 1, 0), Duration::from_nanos(100_000));
        assert_eq!(m.delay(0, 1, 1), Duration::from_nanos(130_902));
        assert_eq!(m.delay(0, 1, 2), Duration::from_nanos(111_803));
        assert_eq!(m.delay(0, 1, 541), Duration::from_nanos(117_819));
        // Two independently constructed models agree for every sequence
        // number: jitter carries no hidden per-instance state.
        let m2 = LatencyModel {
            base: Duration::from_micros(100),
            per_byte: Duration::ZERO,
            jitter: Duration::from_micros(50),
        };
        for seq in 0..512 {
            assert_eq!(m.delay(64, 2, seq), m2.delay(64, 2, seq));
        }
    }

    /// Scripted hook: pops verdicts from a list, then delivers.
    struct Script(Mutex<Vec<SendFault>>);

    impl Script {
        fn new(mut verdicts: Vec<SendFault>) -> Arc<Self> {
            verdicts.reverse();
            Arc::new(Script(Mutex::new(verdicts)))
        }
    }

    impl FaultHook for Script {
        fn on_send(&self, _link: LinkId, _size: usize) -> SendFault {
            self.0.lock().pop().unwrap_or(SendFault::Deliver)
        }
    }

    #[test]
    fn faulty_sender_drops_and_counts() {
        let stats = NetStats::new();
        let (tx, rx) = link::<u32>(LatencyModel::zero(), stats.clone());
        let hook = Script::new(vec![SendFault::Drop, SendFault::Deliver]);
        let f = FaultySender::new(tx, LinkId { from: 0, to: 1 }, hook);
        f.send(1, 8, 1).unwrap();
        f.send(2, 8, 1).unwrap();
        drop(f);
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(Disconnected));
        assert_eq!(stats.dropped(), 1);
        assert_eq!(stats.messages(), 1, "dropped message never hits the wire");
    }

    #[test]
    fn faulty_sender_duplicates() {
        let stats = NetStats::new();
        let (tx, rx) = link::<u32>(LatencyModel::zero(), stats.clone());
        let f = FaultySender::new(
            tx,
            LinkId { from: 0, to: 1 },
            Script::new(vec![SendFault::Duplicate { extra: 2 }]),
        );
        f.send(7, 8, 1).unwrap();
        drop(f);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        assert_eq!(got, vec![7, 7, 7]);
        assert_eq!(stats.duplicated(), 2);
    }

    #[test]
    fn faulty_sender_reorders_burst() {
        let stats = NetStats::new();
        let (tx, rx) = link::<u32>(LatencyModel::zero(), stats.clone());
        let f = FaultySender::new(
            tx,
            LinkId { from: 0, to: 1 },
            Script::new(vec![SendFault::ReorderBurst { len: 3 }]),
        );
        for i in 0..5 {
            f.send(i, 8, 1).unwrap();
        }
        drop(f);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        // First three arrive reversed, the rest in order.
        assert_eq!(got, vec![2, 1, 0, 3, 4]);
        assert_eq!(stats.reordered(), 3);
    }

    #[test]
    fn faulty_sender_flush_releases_partial_burst() {
        let (tx, rx) = link::<u32>(LatencyModel::zero(), NetStats::new());
        let f = FaultySender::new(
            tx,
            LinkId { from: 0, to: 1 },
            Script::new(vec![SendFault::ReorderBurst { len: 10 }]),
        );
        f.send(1, 8, 1).unwrap();
        f.send(2, 8, 1).unwrap();
        assert!(rx.try_recv_due().is_none(), "burst holds messages back");
        f.flush().unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(1));
    }

    #[test]
    fn faulty_sender_delay_spike_applies() {
        let stats = NetStats::new();
        let (tx, rx) = link::<u8>(LatencyModel::zero(), stats.clone());
        let f = FaultySender::new(
            tx,
            LinkId { from: 0, to: 1 },
            Script::new(vec![SendFault::Delay { extra: Duration::from_millis(25) }]),
        );
        let start = Instant::now();
        f.send(1, 0, 1).unwrap();
        rx.recv().unwrap();
        assert!(start.elapsed() >= Duration::from_millis(25));
        assert_eq!(stats.delayed(), 1);
    }

    #[test]
    fn faulty_broadcaster_wraps_topology() {
        let stats = NetStats::new();
        let mut senders = Vec::new();
        let mut receivers = Vec::new();
        for _ in 0..3 {
            let (tx, rx) = link::<u32>(LatencyModel::zero(), stats.clone());
            senders.push(tx);
            receivers.push(rx);
        }
        let gossip = senders.split_off(2);
        let b = FaultyBroadcaster::wrap(senders, gossip, Arc::new(NoFaults), |i| i as u32);
        assert_eq!(b.len(), 3);
        assert_eq!(b.broadcast(&9, 16), 3);
        b.flush();
        for rx in &receivers {
            assert_eq!(rx.recv(), Ok(9));
        }
    }

    #[test]
    fn disconnect_detected() {
        let (tx, rx) = link::<u8>(LatencyModel::zero(), NetStats::new());
        drop(rx);
        assert_eq!(tx.send(1, 0, 1), Err(Disconnected));

        let (tx, rx) = link::<u8>(LatencyModel::zero(), NetStats::new());
        drop(tx);
        assert_eq!(rx.recv(), Err(Disconnected));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = link::<u8>(LatencyModel::zero(), NetStats::new());
        let start = Instant::now();
        assert!(rx.recv_timeout(Duration::from_millis(30)).is_err());
        assert!(start.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn stats_account_messages_and_bytes() {
        let stats = NetStats::new();
        let (tx, rx) = link::<u8>(LatencyModel::zero(), stats.clone());
        tx.send(1, 100, 1).unwrap();
        tx.send(2, 250, 1).unwrap();
        rx.recv().unwrap();
        rx.recv().unwrap();
        assert_eq!(stats.messages(), 2);
        assert_eq!(stats.bytes(), 350);
    }

    #[test]
    fn broadcaster_reaches_all_receivers() {
        let stats = NetStats::new();
        let mut senders = Vec::new();
        let mut receivers = Vec::new();
        for _ in 0..4 {
            let (tx, rx) = link::<String>(LatencyModel::zero(), stats.clone());
            senders.push(tx);
            receivers.push(rx);
        }
        let gossip = senders.split_off(2);
        let b = Broadcaster::new(senders, gossip);
        assert_eq!(b.len(), 4);
        assert_eq!(b.broadcast(&"block".to_string(), 64), 4);
        for rx in &receivers {
            assert_eq!(rx.recv().unwrap(), "block");
        }
        assert_eq!(stats.messages(), 4);
    }

    #[test]
    fn broadcaster_counts_disconnected() {
        let (tx1, rx1) = link::<u8>(LatencyModel::zero(), NetStats::new());
        let (tx2, rx2) = link::<u8>(LatencyModel::zero(), NetStats::new());
        drop(rx2);
        let b = Broadcaster::new(vec![tx1, tx2], vec![]);
        assert_eq!(b.broadcast(&9, 1), 1);
        assert_eq!(rx1.recv().unwrap(), 9);
    }

    #[test]
    fn gossip_hop_arrives_later_than_direct() {
        let model = LatencyModel {
            base: Duration::from_millis(10),
            per_byte: Duration::ZERO,
            jitter: Duration::ZERO,
        };
        let stats = NetStats::new();
        let (dtx, drx) = link::<u8>(model.clone(), stats.clone());
        let (gtx, grx) = link::<u8>(model, stats);
        let b = Broadcaster::new(vec![dtx], vec![gtx]);
        let start = Instant::now();
        b.broadcast(&1, 0);
        let h1 = std::thread::spawn(move || {
            drx.recv().unwrap();
            start.elapsed()
        });
        let h2 = std::thread::spawn(move || {
            grx.recv().unwrap();
            start.elapsed()
        });
        let direct_t = h1.join().unwrap();
        let gossip_t = h2.join().unwrap();
        assert!(gossip_t >= direct_t, "gossip {gossip_t:?} < direct {direct_t:?}");
        assert!(gossip_t >= Duration::from_millis(20));
    }

    #[test]
    fn consensus_endpoints_are_disjoint_from_peers_and_orderer() {
        let link = LinkId::between_replicas(0, 2);
        assert!(link.is_consensus());
        assert_ne!(link.from, LinkId::ORDERER);
        assert_ne!(link.to, LinkId::ORDERER);
        assert!(link.from >= LinkId::CONSENSUS_BASE);
        // Orderer→peer and peer→peer links are not consensus links.
        assert!(!LinkId::from_orderer(3).is_consensus());
        assert!(!LinkId { from: 1, to: 2 }.is_consensus());
        // The full replica range stays below the orderer sentinel.
        assert!(
            LinkId::consensus_endpoint(LinkId::MAX_CONSENSUS_REPLICAS - 1) < LinkId::ORDERER
        );
    }

    #[test]
    fn many_senders_one_receiver() {
        let (tx, rx) = link::<u64>(LatencyModel::zero(), NetStats::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        tx.send(t * 1000 + i, 8, 1).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        for h in handles {
            h.join().unwrap();
        }
        let mut count = 0;
        while rx.recv().is_ok() {
            count += 1;
        }
        assert_eq!(count, 400);
    }
}
