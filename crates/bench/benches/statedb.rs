//! Criterion micro-benchmarks for the state-database engines: point reads
//! and block commits on the in-memory store and the LSM engine. Context
//! for the paper's claim that low-level storage is *not* the bottleneck
//! (§3: improving MVCC internals "will not improve the overall
//! performance").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

use fabric_common::{Key, Value};
use fabric_statedb::{CommitWrite, LsmConfig, LsmStateDb, MemStateDb, StateStore};

fn genesis_writes(n: u64) -> Vec<CommitWrite> {
    (0..n)
        .map(|i| CommitWrite::put(Key::composite("acct", i), Value::from_i64(i as i64), i as u32))
        .collect()
}

fn bench_memdb_get(c: &mut Criterion) {
    let db = MemStateDb::new();
    db.apply_block(0, &genesis_writes(100_000)).unwrap();
    let key = Key::composite("acct", 54_321);
    c.bench_function("memdb_get_100k", |b| b.iter(|| db.get(black_box(&key)).unwrap()));
}

fn bench_memdb_apply_block(c: &mut Criterion) {
    let mut g = c.benchmark_group("memdb_apply_block");
    g.sample_size(20);
    for block_size in [64usize, 1024] {
        g.bench_with_input(
            BenchmarkId::from_parameter(block_size),
            &block_size,
            |b, &bs| {
                let db = MemStateDb::new();
                db.apply_block(0, &genesis_writes(10_000)).unwrap();
                let next = AtomicU64::new(1);
                b.iter(|| {
                    let block = next.fetch_add(1, Ordering::Relaxed);
                    let writes: Vec<CommitWrite> = (0..bs as u64)
                        .map(|i| {
                            CommitWrite::put(
                                Key::composite("acct", (block * 37 + i) % 10_000),
                                Value::from_i64(block as i64),
                                i as u32,
                            )
                        })
                        .collect();
                    db.apply_block(block, &writes).unwrap();
                });
            },
        );
    }
    g.finish();
}

fn bench_lsm(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("fabric-lsm-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = LsmStateDb::open(&dir, LsmConfig::default()).unwrap();
    db.apply_block(0, &genesis_writes(50_000)).unwrap();
    db.force_flush().unwrap();

    let key = Key::composite("acct", 23_456);
    c.bench_function("lsm_get_50k", |b| b.iter(|| db.get(black_box(&key)).unwrap()));

    let mut g = c.benchmark_group("lsm_apply_block");
    g.sample_size(20);
    let next = AtomicU64::new(1);
    g.bench_function("64_writes", |b| {
        b.iter(|| {
            let block = next.fetch_add(1, Ordering::Relaxed);
            let writes: Vec<CommitWrite> = (0..64u64)
                .map(|i| {
                    CommitWrite::put(
                        Key::composite("acct", (block * 13 + i) % 50_000),
                        Value::from_i64(block as i64),
                        i as u32,
                    )
                })
                .collect();
            db.apply_block(block, &writes).unwrap();
        });
    });
    g.finish();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_memdb_get, bench_memdb_apply_block, bench_lsm);
criterion_main!(benches);
