//! Criterion benchmarks over whole pipeline phases, using the synchronous
//! harness: endorsement (simulation + signing), block ordering (arrival vs.
//! reordered), and block validation + commit. These decompose where time
//! goes in an end-to-end transaction, the simulator-level analogue of the
//! paper's Figure 1 observation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fabric_common::{CostModel, Key, PipelineConfig, Value};
use fabric_workloads::custom::CustomChaincode;
use fabric_workloads::{CustomConfig, CustomWorkload, WorkloadGen};
use fabricpp::sync::ProposeOutcome;
use fabricpp::SyncNet;

fn net(cfg: &PipelineConfig) -> (SyncNet, CustomWorkload) {
    let wl_cfg = CustomConfig { accounts: 10_000, ..Default::default() };
    let genesis: Vec<(Key, Value)> = CustomWorkload::new(wl_cfg.clone()).genesis();
    let net = SyncNet::new(cfg, 2, 2, vec![CustomChaincode::deployable()], &genesis).unwrap();
    (net, CustomWorkload::new(wl_cfg))
}

fn bench_endorsement(c: &mut Criterion) {
    // CostModel::raw() is used by SyncNet: this measures the real pipeline
    // work (simulation + one HMAC per endorser), not the ECDSA stand-in.
    let (net, mut wl) = net(&PipelineConfig::fabric_pp());
    c.bench_function("endorse_custom_rw8", |b| {
        b.iter(|| match net.propose(0, "custom", black_box(wl.next_args())) {
            ProposeOutcome::Endorsed(tx) => tx,
            other => panic!("unexpected {other:?}"),
        })
    });
}

fn bench_block_commit(c: &mut Criterion) {
    let mut g = c.benchmark_group("order_validate_commit_256tx");
    g.sample_size(10);
    for (name, cfg) in [
        ("fabric", PipelineConfig::vanilla()),
        ("fabric++", PipelineConfig::fabric_pp()),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter_batched(
                || {
                    let (mut net, mut wl) = net(cfg);
                    for client in 0..256u64 {
                        net.propose_and_submit(client, "custom", wl.next_args());
                    }
                    net
                },
                |mut net| {
                    net.cut_block().unwrap();
                    net
                },
                criterion::BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

fn bench_cost_model_overhead(c: &mut Criterion) {
    // How much the default ECDSA-approximating cost model adds per
    // endorsement signature, relative to raw.
    let key = fabric_common::SigningKey::for_peer(fabric_common::PeerId(1), 1);
    let payload = vec![0u8; 400];
    let mut g = c.benchmark_group("endorsement_signature");
    let default_cost = CostModel::default();
    g.bench_function("raw", |b| b.iter(|| key.sign_iterated(black_box(&[&payload]), 1)));
    g.bench_function("paper_cost_model", |b| {
        b.iter(|| key.sign_iterated(black_box(&[&payload]), default_cost.sign_iterations))
    });
    g.finish();
}

criterion_group!(benches, bench_endorsement, bench_block_commit, bench_cost_model_overhead);
criterion_main!(benches);
