//! Criterion micro-benchmarks for the crypto substrate: SHA-256, HMAC
//! signatures, and the iterated cost-model signatures. These quantify the
//! "cryptographic computations" share of the pipeline the paper identifies
//! as dominant (§3 point (d), Figure 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use fabric_common::hash::sha256;
use fabric_common::{PeerId, SigningKey};

fn bench_sha256(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256");
    for size in [64usize, 512, 4096, 65536] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| sha256(black_box(d)))
        });
    }
    g.finish();
}

fn bench_hmac_sign_verify(c: &mut Criterion) {
    let key = SigningKey::for_peer(PeerId(1), 42);
    // A realistic endorsement payload: ~500 bytes of encoded rwset.
    let payload = vec![0x5au8; 500];

    c.bench_function("hmac_sign_500B", |b| {
        b.iter(|| key.sign_parts(&[black_box(&payload)]))
    });

    let sig = key.sign_parts(&[&payload]);
    c.bench_function("hmac_verify_500B", |b| {
        b.iter(|| key.verify_parts(&[black_box(&payload)], &sig))
    });
}

fn bench_cost_model_signature(c: &mut Criterion) {
    // The default CostModel runs 64 HMAC iterations to approximate ECDSA.
    let key = SigningKey::for_peer(PeerId(1), 42);
    let payload = vec![0x5au8; 500];
    let mut g = c.benchmark_group("sign_iterated");
    for iters in [1u32, 16, 64, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(iters), &iters, |b, &n| {
            b.iter(|| key.sign_iterated(&[black_box(&payload)], n))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sha256, bench_hmac_sign_verify, bench_cost_model_signature);
criterion_main!(benches);
