//! Criterion micro-benchmarks for the reordering mechanism — the kernels
//! behind Figures 15 and 16 plus the per-phase costs of Algorithm 1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fabric_common::rwset::{rwset_from_keys, ReadWriteSet};
use fabric_common::{Key, Value, Version};
use fabric_reorder::tarjan::strongly_connected_components;
use fabric_reorder::{reorder, ConflictGraph, ReorderConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn tx(reads: &[u64], writes: &[u64]) -> ReadWriteSet {
    let rk: Vec<Key> = reads.iter().map(|&i| Key::composite("K", i)).collect();
    let wk: Vec<Key> = writes.iter().map(|&i| Key::composite("K", i)).collect();
    rwset_from_keys(&rk, Version::GENESIS, &wk, &Value::from_i64(1))
}

/// The Figure 1/10 hot-block shape: 1024 txs, RW=8, HR=40%, HW=10%,
/// HSS=1% of 10k accounts.
fn hot_block(n: usize) -> Vec<ReadWriteSet> {
    let mut rng = StdRng::seed_from_u64(1);
    let pick = |rng: &mut StdRng, hot_p: f64| -> u64 {
        if rng.random::<f64>() < hot_p {
            rng.random_range(0..100)
        } else {
            rng.random_range(100..10_000)
        }
    };
    (0..n)
        .map(|_| {
            let reads: Vec<u64> = (0..8).map(|_| pick(&mut rng, 0.4)).collect();
            let writes: Vec<u64> = (0..8).map(|_| pick(&mut rng, 0.1)).collect();
            tx(&reads, &writes)
        })
        .collect()
}

/// Disjoint transactions: the no-conflict fast path.
fn disjoint_block(n: usize) -> Vec<ReadWriteSet> {
    (0..n as u64).map(|i| tx(&[2 * i], &[2 * i + 1])).collect()
}

/// One giant cycle (Figure 16's hardest point).
fn cycle_block(n: usize) -> Vec<ReadWriteSet> {
    (0..n as u64).map(|i| tx(&[i], &[(i + 1) % n as u64])).collect()
}

fn bench_conflict_graph(c: &mut Criterion) {
    let mut g = c.benchmark_group("conflict_graph");
    for (name, block) in [
        ("hot_1024", hot_block(1024)),
        ("disjoint_1024", disjoint_block(1024)),
    ] {
        let refs: Vec<&ReadWriteSet> = block.iter().collect();
        g.bench_with_input(BenchmarkId::new("inverted_index", name), &refs, |b, refs| {
            b.iter(|| ConflictGraph::build(black_box(refs)))
        });
        // The paper's bit-vector construction, for comparison (quadratic).
        if name == "disjoint_1024" {
            g.bench_with_input(BenchmarkId::new("bitset_paper", name), &refs, |b, refs| {
                b.iter(|| ConflictGraph::build_bitset(black_box(refs)))
            });
        }
    }
    g.finish();
}

fn bench_tarjan(c: &mut Criterion) {
    let block = hot_block(1024);
    let refs: Vec<&ReadWriteSet> = block.iter().collect();
    let cg = ConflictGraph::build(&refs);
    c.bench_function("tarjan_hot_1024", |b| {
        b.iter(|| strongly_connected_components(black_box(&cg)))
    });
}

fn bench_full_reorder(c: &mut Criterion) {
    let mut g = c.benchmark_group("reorder_full");
    g.sample_size(20);
    for (name, block) in [
        ("hot_1024", hot_block(1024)),
        ("disjoint_1024", disjoint_block(1024)),
        ("cycle_512", cycle_block(512)),
    ] {
        let refs: Vec<&ReadWriteSet> = block.iter().collect();
        let cfg = if name == "cycle_512" {
            // Long simple cycles use the exact Johnson path (Figure 16).
            ReorderConfig { max_cycles: 4096, max_scc_for_enumeration: 1024, ..Default::default() }
        } else {
            ReorderConfig::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(name), &refs, |b, refs| {
            b.iter(|| reorder(black_box(refs), &cfg))
        });
    }
    g.finish();
}

fn bench_block_size_scaling(c: &mut Criterion) {
    // How reorder cost scales with the blocksize (context for Figure 7).
    let mut g = c.benchmark_group("reorder_by_blocksize");
    g.sample_size(20);
    for bs in [64usize, 256, 1024] {
        let block = hot_block(bs);
        let refs: Vec<&ReadWriteSet> = block.iter().collect();
        g.bench_with_input(BenchmarkId::from_parameter(bs), &refs, |b, refs| {
            b.iter(|| reorder(black_box(refs), &ReorderConfig::default()))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_conflict_graph,
    bench_tarjan,
    bench_full_reorder,
    bench_block_size_scaling
);
criterion_main!(benches);
