//! Rate-controlled multi-client experiment runner.
//!
//! Reproduces the paper's measurement methodology (§6.2.1, Table 5):
//! clients fire transaction proposals *uniformly* at a fixed rate for a
//! fixed duration into their channel; the run reports successful and
//! aborted transactions per second plus latency statistics.

use std::time::{Duration, Instant};

use fabric_common::{CostModel, PipelineConfig};
use fabric_net::LatencyModel;
use fabric_telemetry::TelemetryConfig;
use fabricpp::{FabricNetwork, NetworkBuilder, RunReport};

use crate::workload::WorkloadKind;

/// One experiment run's shape.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Label printed in result rows (e.g. "fabric", "fabric++").
    pub label: String,
    /// Pipeline mode under test.
    pub pipeline: PipelineConfig,
    /// Workload to fire.
    pub workload: WorkloadKind,
    /// Number of channels (paper §6.6a).
    pub channels: usize,
    /// Clients per channel (paper §6.6b; Table 5 default 4).
    pub clients_per_channel: usize,
    /// Proposals per second per client (Table 5 default 512).
    pub rate_per_client: f64,
    /// Firing duration (paper: 90 s; scaled default 5 s).
    pub duration: Duration,
    /// Network latency model.
    pub latency: LatencyModel,
    /// Crypto cost model.
    pub cost: CostModel,
    /// Organizations in the network (paper: 2, with 2 peers each).
    pub orgs: usize,
    /// Peers per organization.
    pub peers_per_org: usize,
    /// When set, enables the transaction flight recorder with a ring of
    /// this many events; the stream comes back as `RunReport::trace`.
    pub trace_capacity: Option<usize>,
    /// When set, enables windowed time-series telemetry; the series comes
    /// back as `RunReport::timeseries`.
    pub telemetry: Option<TelemetryConfig>,
}

impl RunSpec {
    /// The paper's default setup for a given mode and workload: 2 orgs ×
    /// 2 peers, 1 channel, 4 clients firing 512 proposals/s each.
    pub fn paper_default(
        label: impl Into<String>,
        pipeline: PipelineConfig,
        workload: WorkloadKind,
        duration: Duration,
    ) -> Self {
        RunSpec {
            label: label.into(),
            pipeline,
            workload,
            channels: 1,
            clients_per_channel: 4,
            rate_per_client: crate::firing_rate(),
            duration,
            latency: LatencyModel::lan(),
            cost: crate::cost_model(),
            orgs: 2,
            peers_per_org: 2,
            trace_capacity: None,
            telemetry: None,
        }
    }

    /// Enables the flight recorder with a ring of `capacity` events.
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Enables windowed time-series telemetry for the run.
    pub fn with_telemetry(mut self, cfg: TelemetryConfig) -> Self {
        self.telemetry = Some(cfg);
        self
    }
}

/// Outcome of one run, with derived per-second rates.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Label copied from the spec.
    pub label: String,
    /// Raw report from the network.
    pub report: RunReport,
    /// Duration proposals were actually fired for.
    pub fire_duration: Duration,
}

impl ExperimentResult {
    /// Successful transactions per second (over the firing duration, the
    /// paper's metric).
    pub fn valid_tps(&self) -> f64 {
        self.report.stats.valid as f64 / self.fire_duration.as_secs_f64()
    }

    /// Failed/aborted transactions per second.
    pub fn aborted_tps(&self) -> f64 {
        self.report.stats.aborted() as f64 / self.fire_duration.as_secs_f64()
    }

    /// Proposals fired per second.
    pub fn submitted_tps(&self) -> f64 {
        self.report.stats.submitted as f64 / self.fire_duration.as_secs_f64()
    }
}

/// Runs one experiment: builds the network, spawns
/// `channels × clients_per_channel` firing threads, waits out the
/// duration, drains the pipeline, and returns the final report.
pub fn run_experiment(spec: &RunSpec) -> ExperimentResult {
    let mut builder = NetworkBuilder::new()
        .orgs(spec.orgs)
        .peers_per_org(spec.peers_per_org)
        .channels(spec.channels)
        .pipeline(spec.pipeline.clone())
        .latency(spec.latency.clone())
        .cost(spec.cost)
        .genesis(spec.workload.genesis());
    if let Some(capacity) = spec.trace_capacity {
        builder = builder.trace(capacity);
    }
    if let Some(cfg) = spec.telemetry {
        builder = builder.telemetry(cfg);
    }
    for cc in spec.workload.chaincodes() {
        builder = builder.deploy(cc);
    }
    let net: FabricNetwork = builder.build().expect("network build failed");

    // Each client is a *pacer* thread enqueuing proposals at exactly the
    // target rate plus a small worker pool performing the (blocking)
    // endorsement round and submission. Decoupling the two keeps the fired
    // rate independent of the pipeline mode — vanilla's coarse lock slows
    // its endorsements down, not the firing, exactly as in the paper's
    // fixed-rate methodology (Table 5).
    const WORKERS_PER_CLIENT: usize = 3;
    let fire_start = Instant::now();
    let mut threads = Vec::new();
    for ch in 0..spec.channels {
        for cl in 0..spec.clients_per_channel {
            let client = net.client(ch);
            let mut gen = spec.workload.generator((ch * 1000 + cl) as u64 + 1);
            let rate = spec.rate_per_client;
            let duration = spec.duration;
            // Bounded queue: short pipeline stalls (a block validation
            // holding the coarse lock) are buffered, sustained overload
            // back-pressures the pacer instead of growing an unbounded
            // drain tail.
            let (work_tx, work_rx) = crossbeam::channel::bounded::<Vec<u8>>(512);
            let chaincode = gen.chaincode();

            for _ in 0..WORKERS_PER_CLIENT {
                let client = client.clone();
                let work_rx = work_rx.clone();
                threads.push(std::thread::spawn(move || {
                    while let Ok(args) = work_rx.recv() {
                        let _ = client.submit(chaincode, args);
                    }
                    // Worker's client clone (orderer sender) dropped here.
                }));
            }
            drop(client);
            drop(work_rx);

            threads.push(std::thread::spawn(move || {
                let start = Instant::now();
                let mut fired = 0u64;
                loop {
                    let elapsed = start.elapsed();
                    if elapsed >= duration {
                        break;
                    }
                    // Catch-up pacing: enqueue everything due by now.
                    let due = (elapsed.as_secs_f64() * rate) as u64;
                    while fired < due {
                        if work_tx.send(gen.next_args()).is_err() {
                            return;
                        }
                        fired += 1;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                // Dropping work_tx lets the workers drain and exit.
            }));
        }
    }
    for t in threads {
        t.join().expect("client thread panicked");
    }
    let fire_duration = fire_start.elapsed();
    let report = net.finish();
    let result = ExperimentResult { label: spec.label.clone(), report, fire_duration };
    // The uniform `--json` flag: every runner-based binary contributes its
    // reports to the BENCH_*.json trajectory (no-op without the flag).
    crate::json::record_run(&result);
    result
}

/// Prints a per-phase latency table (endorse / order / validate-vscc /
/// validate-mvcc / commit) for one run, prefixed with its label. The bench
/// binaries append this after their CSV rows so the stage timings from
/// `PhaseTimers` land next to the throughput numbers they explain.
pub fn print_phase_table(label: &str, phases: &fabric_common::PhaseSummary) {
    println!("# phases[{label}]: phase,count,avg_us,p50_us,p95_us,p99_us,max_us");
    for (name, s) in phases.rows() {
        println!(
            "# phases[{label}]: {name},{},{:.1},{:.1},{:.1},{:.1},{:.1}",
            s.count,
            s.avg.as_secs_f64() * 1e6,
            s.p50.as_secs_f64() * 1e6,
            s.p95.as_secs_f64() * 1e6,
            s.p99.as_secs_f64() * 1e6,
            s.max.as_secs_f64() * 1e6,
        );
    }
}

/// Prints the reporting peers' batched state-access counters for one run:
/// the per-block prefetch/lock/WAL contract made visible next to the
/// throughput rows it explains.
pub fn print_store_stats(label: &str, s: &fabric_common::StoreStats) {
    let blocks = s.blocks_applied.max(1) as f64;
    println!(
        "# store[{label}]: blocks={} multi_get_batches={} multi_get_keys={} point_gets={} \
         shard_locks={} wal_records={} wal_fsyncs={} avg_probed_keys_per_block={:.1} \
         lanes_used={} chain_serializations={}",
        s.blocks_applied,
        s.multi_get_batches,
        s.multi_get_keys,
        s.point_gets,
        s.shard_lock_acquisitions,
        s.wal_records,
        s.wal_fsyncs,
        s.multi_get_keys as f64 / blocks,
        s.lanes_used,
        s.chain_serializations,
    );
}

/// Handles the experiment binaries' `--trace <prefix>` flag for one run:
/// writes the flight-recorder stream as `<prefix>.jsonl` plus a Chrome
/// trace-event document at `<prefix>.chrome.json` (load it in Perfetto or
/// `chrome://tracing`), and prints a one-line summary. A run without a
/// trace (the spec never enabled it) just notes that and succeeds.
pub fn export_trace(
    label: &str,
    report: &RunReport,
    prefix: &std::path::Path,
) -> std::io::Result<()> {
    let Some(trace) = &report.trace else {
        eprintln!("# trace[{label}]: tracing was not enabled for this run");
        return Ok(());
    };
    // Append (never replace) so a prefix like `out/trace.fabric` keeps its
    // mode key: `out/trace.fabric.jsonl` + `out/trace.fabric.chrome.json`.
    let with_suffix = |suffix: &str| {
        let mut os = prefix.as_os_str().to_owned();
        os.push(suffix);
        std::path::PathBuf::from(os)
    };
    let jsonl_path = with_suffix(".jsonl");
    let chrome_path = with_suffix(".chrome.json");
    std::fs::write(&jsonl_path, fabric_trace::jsonl::to_string(&trace.events))?;
    std::fs::write(&chrome_path, fabric_trace::chrome::to_string(&trace.events))?;
    println!(
        "# trace[{label}]: {} events retained ({} emitted, {} dropped) -> {} + {}",
        trace.len(),
        trace.emitted,
        trace.dropped,
        jsonl_path.display(),
        chrome_path.display(),
    );
    Ok(())
}

/// Prints the standard result row used by the experiment binaries.
pub fn print_row(header_printed: &mut bool, cols: &[(&str, String)]) {
    if !*header_printed {
        let names: Vec<&str> = cols.iter().map(|(n, _)| *n).collect();
        println!("{}", names.join(","));
        *header_printed = true;
    }
    let vals: Vec<&str> = cols.iter().map(|(_, v)| v.as_str()).collect();
    println!("{}", vals.join(","));
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_workloads::CustomConfig;

    /// A short end-to-end smoke run through the threaded pipeline.
    #[test]
    fn smoke_run_custom_workload() {
        let spec = RunSpec {
            label: "smoke".into(),
            pipeline: PipelineConfig::fabric_pp(),
            workload: WorkloadKind::Custom(CustomConfig {
                accounts: 1000,
                ..Default::default()
            }),
            channels: 1,
            clients_per_channel: 2,
            rate_per_client: 100.0,
            duration: Duration::from_millis(800),
            latency: LatencyModel::zero(),
            cost: CostModel::raw(),
            orgs: 2,
            peers_per_org: 1,
            trace_capacity: None,
            telemetry: None,
        };
        let result = run_experiment(&spec);
        let s = result.report.stats;
        assert!(s.submitted > 50, "submitted {}", s.submitted);
        assert_eq!(s.finished(), s.submitted, "every proposal reaches an outcome");
        assert!(s.valid > 0);
        assert!(result.valid_tps() > 0.0);
        assert!(result.report.block_heights[0] >= 2, "at least genesis + one block");
        // Orderer telemetry is wired through.
        let ord = result.report.orderer;
        assert!(ord.blocks > 0);
        assert_eq!(
            ord.blocks,
            ord.cut_tx_count + ord.cut_bytes + ord.cut_timeout + ord.cut_unique_keys
                + ord.cut_flush,
            "every block has exactly one cut reason"
        );
        assert!(ord.avg_block_fill() > 0.0);
    }

    #[test]
    fn smoke_run_vanilla_blank() {
        let spec = RunSpec {
            label: "blank".into(),
            pipeline: PipelineConfig::vanilla(),
            workload: WorkloadKind::Blank,
            channels: 1,
            clients_per_channel: 1,
            rate_per_client: 200.0,
            duration: Duration::from_millis(500),
            latency: LatencyModel::zero(),
            cost: CostModel::raw(),
            orgs: 2,
            peers_per_org: 1,
            trace_capacity: None,
            telemetry: None,
        };
        let result = run_experiment(&spec);
        let s = result.report.stats;
        assert_eq!(s.finished(), s.submitted);
        // Blank transactions never conflict: all valid.
        assert_eq!(s.aborted(), 0);
        assert!(s.valid > 30);
    }
}
