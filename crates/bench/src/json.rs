//! Machine-readable `RunReport` serialization for the experiment
//! binaries' uniform `--json` flag.
//!
//! `run_experiment` calls [`record_run`] on every result, so **every**
//! binary built on the shared runner honors `--json` with no per-binary
//! wiring: without the flag the hook is inert; with it, the run's full
//! reports — outcome counters, latency summary, orderer/store/phase
//! stats, and the windowed telemetry series when one was recorded —
//! accumulate in one flat JSON document (default
//! `results/BENCH_<bin>.json`, or the path given as `--json=PATH`),
//! rewritten after each run so a crashed sweep still leaves the
//! completed points on disk. Every bench thereby contributes to the
//! `BENCH_*.json` perf trajectory, not just the soak bin; binaries that
//! drive the network directly (like `soak_zipfian`) use [`JsonSink`]
//! explicitly.
//!
//! Hand-rolled like `smoke.rs` and `fabric-telemetry`'s exporters: flat
//! objects, numeric/bool/string fields, no serde.

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

use fabricpp::RunReport;

use crate::runner::ExperimentResult;

/// Escapes a string for a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn us(d: Duration) -> u64 {
    d.as_micros() as u64
}

/// Serializes one run (label + report + fire duration) as a JSON object.
/// Public so the soak bin can embed run objects in its own trajectory
/// document.
pub fn run_to_json(label: &str, report: &RunReport, fire_duration: Duration) -> String {
    let s = &report.stats;
    let l = &report.latency;
    let o = &report.orderer;
    let st = &report.store;
    let fire_s = fire_duration.as_secs_f64().max(1e-9);
    let mut out = String::with_capacity(2048);
    out.push_str(&format!(
        "{{\"label\":\"{}\",\"elapsed_s\":{:.6},\"fire_duration_s\":{:.6},\
         \"submitted_tps\":{:.2},\"valid_tps\":{:.2},\"aborted_tps\":{:.2},",
        escape(label),
        report.elapsed.as_secs_f64(),
        fire_duration.as_secs_f64(),
        s.submitted as f64 / fire_s,
        s.valid as f64 / fire_s,
        s.aborted() as f64 / fire_s,
    ));
    out.push_str(&format!(
        "\"stats\":{{\"submitted\":{},\"valid\":{},\"mvcc_conflict\":{},\
         \"endorsement_failure\":{},\"early_abort_simulation\":{},\
         \"early_abort_cycle\":{},\"early_abort_version_mismatch\":{}}},",
        s.submitted,
        s.valid,
        s.mvcc_conflict,
        s.endorsement_failure,
        s.early_abort_simulation,
        s.early_abort_cycle,
        s.early_abort_version_mismatch,
    ));
    out.push_str(&format!(
        "\"latency_us\":{{\"count\":{},\"min\":{},\"max\":{},\"avg\":{},\
         \"p50\":{},\"p95\":{},\"p99\":{},\"saturated\":{}}},",
        l.count,
        us(l.min),
        us(l.max),
        us(l.avg),
        us(l.p50),
        us(l.p95),
        us(l.p99),
        l.saturated,
    ));
    out.push_str(&format!(
        "\"net\":{{\"messages\":{},\"bytes\":{}}},",
        report.net_messages, report.net_bytes
    ));
    out.push_str(&format!(
        "\"orderer\":{{\"blocks\":{},\"txs_ordered\":{},\"cut_tx_count\":{},\
         \"cut_bytes\":{},\"cut_timeout\":{},\"cut_unique_keys\":{},\"cut_flush\":{},\
         \"reorder_time_us\":{},\"fallbacks\":{},\"nontrivial_sccs\":{},\
         \"empty_suppressed\":{},\"avg_block_fill\":{:.2}}},",
        o.blocks,
        o.txs_ordered,
        o.cut_tx_count,
        o.cut_bytes,
        o.cut_timeout,
        o.cut_unique_keys,
        o.cut_flush,
        us(o.reorder_time),
        o.fallbacks,
        o.nontrivial_sccs,
        o.empty_suppressed,
        o.avg_block_fill(),
    ));
    out.push_str("\"phases\":{");
    let rows = report.phases.rows();
    for (i, (name, p)) in rows.iter().enumerate() {
        out.push_str(&format!(
            "\"{}\":{{\"count\":{},\"avg_us\":{},\"p50_us\":{},\"p95_us\":{},\
             \"p99_us\":{},\"max_us\":{}}}",
            escape(name),
            p.count,
            us(p.avg),
            us(p.p50),
            us(p.p95),
            us(p.p99),
            us(p.max),
        ));
        if i + 1 < rows.len() {
            out.push(',');
        }
    }
    out.push_str("},");
    let heights: Vec<String> = report.block_heights.iter().map(u64::to_string).collect();
    out.push_str(&format!("\"block_heights\":[{}],", heights.join(",")));
    out.push_str(&format!(
        "\"store\":{{\"multi_get_batches\":{},\"multi_get_keys\":{},\"point_gets\":{},\
         \"blocks_applied\":{},\"shard_lock_acquisitions\":{},\"wal_records\":{},\
         \"wal_fsyncs\":{},\"commit_ticket_acquisitions\":{},\"snapshot_pins\":{},\
         \"snapshot_read_batches\":{},\"snapshot_read_keys\":{},\
         \"gc_trimmed_versions\":{},\"lanes_used\":{},\"chain_serializations\":{}}},",
        st.multi_get_batches,
        st.multi_get_keys,
        st.point_gets,
        st.blocks_applied,
        st.shard_lock_acquisitions,
        st.wal_records,
        st.wal_fsyncs,
        st.commit_ticket_acquisitions,
        st.snapshot_pins,
        st.snapshot_read_batches,
        st.snapshot_read_keys,
        st.gc_trimmed_versions,
        st.lanes_used,
        st.chain_serializations,
    ));
    match &report.trace {
        Some(t) => out.push_str(&format!(
            "\"trace\":{{\"emitted\":{},\"dropped\":{},\"retained\":{}}},",
            t.emitted,
            t.dropped,
            t.len()
        )),
        None => out.push_str("\"trace\":null,"),
    }
    match &report.timeseries {
        Some(series) => {
            let windows: Vec<String> =
                series.windows.iter().map(fabric_telemetry::jsonl::window_to_line).collect();
            out.push_str(&format!(
                "\"timeseries\":{{\"dropped_windows\":{},\"windows\":[{}]}}",
                series.dropped_windows,
                windows.join(",")
            ));
        }
        None => out.push_str("\"timeseries\":null"),
    }
    out.push('}');
    out
}

/// Parses the uniform `--json` flag: `--json` alone picks the default
/// path for `bin`, `--json=PATH` / `--json PATH` (where PATH ends in
/// `.json`, so positional arguments of bins like `chaos_soak` are never
/// swallowed) overrides it. `None` when the flag is absent.
pub fn json_path_from_args(bin: &str) -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if let Some(rest) = a.strip_prefix("--json=") {
            return Some(PathBuf::from(rest));
        }
        if a == "--json" {
            if let Some(next) = args.get(i + 1) {
                if next.ends_with(".json") {
                    return Some(PathBuf::from(next));
                }
            }
            return Some(PathBuf::from(format!("results/BENCH_{bin}.json")));
        }
    }
    None
}

/// The current binary's name (file stem of `argv[0]`), used for the
/// default `results/BENCH_<bin>.json` path.
pub fn current_bin() -> String {
    std::env::args()
        .next()
        .and_then(|p| {
            PathBuf::from(p).file_stem().map(|s| s.to_string_lossy().into_owned())
        })
        .unwrap_or_else(|| "bench".to_owned())
}

/// Runs recorded so far by [`record_run`] (serialized run objects).
static RECORDED: Mutex<Vec<String>> = Mutex::new(Vec::new());

fn write_doc(bin: &str, path: &std::path::Path, runs: &[String]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut doc = String::with_capacity(1024 + 2048 * runs.len());
    doc.push_str(&format!("{{\n  \"bin\": \"{}\",\n  \"runs\": [\n", escape(bin)));
    for (i, r) in runs.iter().enumerate() {
        doc.push_str("    ");
        doc.push_str(r);
        doc.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    doc.push_str("  ]\n}\n");
    std::fs::write(path, doc)
}

/// The uniform `--json` hook: `run_experiment` calls this on every
/// result. When the process was invoked with `--json`, the run is
/// appended to the document and the file rewritten; otherwise this is
/// free. Write failures are deliberately swallowed — an experiment must
/// never fail because its bookkeeping did (same policy as
/// `smoke::record`).
pub fn record_run(result: &ExperimentResult) {
    let bin = current_bin();
    let Some(path) = json_path_from_args(&bin) else { return };
    let mut runs = RECORDED.lock().unwrap();
    runs.push(run_to_json(&result.label, &result.report, result.fire_duration));
    if runs.len() == 1 {
        println!("# json: recording run reports -> {}", path.display());
    }
    let _ = write_doc(&bin, &path, &runs);
}

/// Accumulates run reports and writes them as one JSON document when the
/// binary was invoked with `--json`. Inert (free) otherwise.
pub struct JsonSink {
    bin: String,
    path: Option<PathBuf>,
    runs: Vec<String>,
}

impl JsonSink {
    /// A sink honoring the command line of the current process.
    pub fn from_args(bin: &str) -> Self {
        JsonSink { bin: bin.to_owned(), path: json_path_from_args(bin), runs: Vec::new() }
    }

    /// A sink writing to an explicit path (used by tests and the soak
    /// bin's internal bookkeeping).
    pub fn to_path(bin: &str, path: PathBuf) -> Self {
        JsonSink { bin: bin.to_owned(), path: Some(path), runs: Vec::new() }
    }

    /// Whether `--json` was requested.
    pub fn enabled(&self) -> bool {
        self.path.is_some()
    }

    /// Records one experiment result (no-op when disabled).
    pub fn push(&mut self, result: &ExperimentResult) {
        if self.enabled() {
            self.runs.push(run_to_json(&result.label, &result.report, result.fire_duration));
        }
    }

    /// Records one run given its pieces (for bins that track reports
    /// without an [`ExperimentResult`]).
    pub fn push_report(&mut self, label: &str, report: &RunReport, fire_duration: Duration) {
        if self.enabled() {
            self.runs.push(run_to_json(label, report, fire_duration));
        }
    }

    /// Writes the accumulated document and prints where it went. Returns
    /// `Ok(())` when disabled.
    pub fn finish(self) -> std::io::Result<()> {
        let Some(path) = self.path else { return Ok(()) };
        write_doc(&self.bin, &path, &self.runs)?;
        println!("# json: wrote {} run report(s) -> {}", self.runs.len(), path.display());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        RunReport {
            elapsed: Duration::from_millis(1500),
            stats: fabric_common::TxStats {
                submitted: 10,
                valid: 7,
                mvcc_conflict: 3,
                ..Default::default()
            },
            latency: fabric_common::LatencySummary::default(),
            net_messages: 42,
            net_bytes: 4096,
            orderer: Default::default(),
            phases: Default::default(),
            block_heights: vec![5],
            store: Default::default(),
            trace: None,
            timeseries: None,
        }
    }

    #[test]
    fn run_json_is_flat_and_balanced() {
        let json = run_to_json("mode \"a\"\n", &sample_report(), Duration::from_secs(1));
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces: {json}"
        );
        assert!(json.contains("\"label\":\"mode \\\"a\\\"\\n\""), "label escaped: {json}");
        assert!(json.contains("\"submitted\":10"));
        assert!(json.contains("\"valid_tps\":7.00"));
        assert!(json.contains("\"timeseries\":null"));
        assert!(json.contains("\"trace\":null"));
        assert!(json.contains("\"block_heights\":[5]"));
    }

    #[test]
    fn timeseries_windows_are_embedded() {
        let mut report = sample_report();
        report.timeseries = Some(fabric_telemetry::TelemetrySeries {
            windows: vec![Default::default(), Default::default()],
            dropped_windows: 0,
            total: report.stats,
        });
        let json = run_to_json("soak", &report, Duration::from_secs(1));
        assert!(json.contains("\"timeseries\":{\"dropped_windows\":0,\"windows\":["));
        assert_eq!(json.matches("\"end_logical_block\":").count(), 2);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn sink_writes_document() {
        let dir = std::env::temp_dir().join(format!("fabric-json-sink-{}", std::process::id()));
        let path = dir.join("BENCH_test.json");
        let mut sink = JsonSink::to_path("test_bin", path.clone());
        assert!(sink.enabled());
        sink.push_report("a", &sample_report(), Duration::from_secs(1));
        sink.push_report("b", &sample_report(), Duration::from_secs(2));
        sink.finish().unwrap();
        let doc = std::fs::read_to_string(&path).unwrap();
        assert!(doc.contains("\"bin\": \"test_bin\""));
        assert!(doc.contains("\"label\":\"a\""));
        assert!(doc.contains("\"label\":\"b\""));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flag_parsing_defaults_and_overrides() {
        // No --json in the test harness argv.
        assert!(json_path_from_args("x").is_none());
    }
}
