//! # fabric-bench
//!
//! The benchmarking framework of the reproduction — the stand-in for the
//! authors' custom framework (paper §6.2.1): "It allows us to fire
//! transaction proposals uniformly at a specified rate from multiple
//! clients in multiple channels and reports the throughput of successful
//! and aborted transactions per second."
//!
//! One experiment binary per table/figure lives in `src/bin/`; each prints
//! the same rows/series the paper reports (see DESIGN.md §3 for the map).
//! Criterion micro-benchmarks live in `benches/`.
//!
//! Durations scale: the paper fires for 90 s per data point; the default
//! here is 5 s, overridable with `--seconds N` or `FABRIC_SECONDS=N`.

#![forbid(unsafe_code)]

pub mod json;
pub mod runner;
pub mod smoke;
pub mod workload;

pub use runner::{run_experiment, ExperimentResult, RunSpec};
pub use workload::WorkloadKind;

use std::time::Duration;

/// Reads the per-point duration: `FABRIC_SECONDS` env var, default 5 s.
pub fn point_duration() -> Duration {
    std::env::var("FABRIC_SECONDS")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Duration::from_secs_f64)
        .unwrap_or(Duration::from_secs(5))
}

/// Reads the firing rate per client: `FABRIC_RATE` env var, default 512
/// (the paper's Table 5 value).
pub fn firing_rate() -> f64 {
    std::env::var("FABRIC_RATE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(512.0)
}

/// Reads the crypto cost model, honoring a `FABRIC_CRYPTO_ITERS` override
/// (sign and verify iterations; see `fabric_common::CostModel`).
pub fn cost_model() -> fabric_common::CostModel {
    let mut cost = fabric_common::CostModel::default();
    if let Some(iters) = std::env::var("FABRIC_CRYPTO_ITERS")
        .ok()
        .and_then(|s| s.parse::<u32>().ok())
    {
        cost.sign_iterations = iters;
        cost.verify_iterations = iters;
    }
    cost
}

/// Parses `--seconds N` style overrides out of argv (very small helper so
/// the experiment binaries stay dependency-free).
pub fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
        if let Some(rest) = a.strip_prefix(&format!("{name}=")) {
            return Some(rest.to_owned());
        }
    }
    None
}
