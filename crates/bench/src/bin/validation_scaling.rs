//! **Validation scaling** — throughput of the full Fabric++ pipeline as
//! the VSCC worker-pool size grows (workers ∈ {1, 2, 4, 8}).
//!
//! Real Fabric shards endorsement-signature validation across a
//! `validatorPoolSize` worker pool (paper §2.2.3); this sweep runs the
//! Figure 10 configuration (BS = 1024, custom workload) with the
//! signature-verification cost turned up so the VSCC phase dominates, and
//! reports valid tps per worker count. On a multi-core box throughput
//! should grow monotonically up to the available parallelism; rows also
//! carry the per-phase latency tables so the VSCC speedup is visible
//! directly.
//!
//! `--smoke` (used by CI) first runs a differential check — the threaded
//! pool must produce bit-for-bit the endorsement bits and validation codes
//! of the sequential path on a block mixing good / stale / tampered /
//! unendorsed transactions — then two sub-second runs (workers 1 and 2)
//! to exercise the pipelined peer loop end to end.

use std::sync::Arc;
use std::time::{Duration, Instant};

use fabric_bench::{
    point_duration, run_experiment,
    runner::{print_phase_table, print_row},
    RunSpec, WorkloadKind,
};
use fabric_common::rwset::{rwset_from_keys, ReadWriteSet};
use fabric_common::{
    default_validation_workers, ChannelId, ClientId, CostModel, Digest, Endorsement, Key, OrgId,
    PeerId, PipelineConfig, SignerRegistry, SigningKey, Transaction, TxId, Value, Version,
};
use fabric_ledger::Block;
use fabric_net::LatencyModel;
use fabric_peer::validator::{check_endorsements, mvcc_validate, EndorsementPolicy};
use fabric_peer::ValidationPool;
use fabric_statedb::MemStateDb;
use fabric_workloads::CustomConfig;

/// A correctly endorsed transaction over `rwset` (two orgs sign).
fn endorsed_tx(rwset: ReadWriteSet) -> Transaction {
    let id = TxId::next();
    let payload = Transaction::signing_payload(id, ChannelId(0), "cc", &rwset);
    let endorsements = [(PeerId(1), OrgId(1)), (PeerId(3), OrgId(2))]
        .iter()
        .map(|&(peer, org)| Endorsement {
            peer,
            org,
            signature: SigningKey::for_peer(peer, 9).sign_iterated(&[&payload], 1),
        })
        .collect();
    Transaction {
        id,
        channel: ChannelId(0),
        client: ClientId(0),
        chaincode: "cc".into(),
        rwset,
        endorsements,
        created_at: Instant::now(),
    }
}

/// Differential check: for a block mixing every validation outcome, the
/// threaded pool at several widths must reproduce the sequential path's
/// endorsement bits and final validation codes exactly.
fn differential_check() {
    let registry = SignerRegistry::new();
    for p in 1..=4u64 {
        registry.register(PeerId(p), SigningKey::for_peer(PeerId(p), 9));
    }
    let policy = EndorsementPolicy::require_orgs(vec![OrgId(1), OrgId(2)]);
    let bal = Key::from("balA");

    let mut txs = Vec::new();
    for i in 0..24u64 {
        let out = Key::composite("out", i);
        let fresh = rwset_from_keys(
            std::slice::from_ref(&bal),
            Version::GENESIS,
            std::slice::from_ref(&out),
            &Value::from_i64(1),
        );
        let tx = match i % 4 {
            0 => endorsed_tx(fresh), // valid
            1 => endorsed_tx(rwset_from_keys(
                // stale read: MVCC conflict
                std::slice::from_ref(&bal),
                Version::new(7, 0),
                &[out],
                &Value::from_i64(1),
            )),
            2 => {
                // rwset swapped after endorsement: signature mismatch
                let mut tx = endorsed_tx(fresh);
                tx.rwset = rwset_from_keys(
                    std::slice::from_ref(&bal),
                    Version::GENESIS,
                    std::slice::from_ref(&bal),
                    &Value::from_i64(1_000_000),
                );
                tx
            }
            _ => {
                let mut tx = endorsed_tx(fresh);
                tx.endorsements.clear();
                tx
            }
        };
        txs.push(tx);
    }
    let block = Arc::new(Block::build(1, Digest::ZERO, txs));
    let store = MemStateDb::with_genesis([(bal, Value::from_i64(100))]);

    let sequential = check_endorsements(&block, &registry, &policy, CostModel::raw());
    let seq_codes = mvcc_validate(&block, &store, &sequential).expect("mvcc");
    for workers in [1usize, 2, 4, 8] {
        let pool = ValidationPool::threaded(workers);
        let parallel = pool.check_endorsements(&block, &registry, &policy, CostModel::raw()).wait();
        assert_eq!(parallel, sequential, "endorsement bits diverge at {workers} workers");
        let par_codes = mvcc_validate(&block, &store, &parallel).expect("mvcc");
        assert_eq!(par_codes, seq_codes, "validation codes diverge at {workers} workers");
    }
    fabric_bench::smoke::record(
        "validation_scaling",
        "threaded-vscc-vs-sequential",
        true,
        "endorsement bits and validation codes bit-identical at 1/2/4/8 workers",
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    differential_check();

    let (duration, sweep): (Duration, &[usize]) = if smoke {
        (Duration::from_millis(600), &[1, 2])
    } else {
        (point_duration(), &[1, 2, 4, 8])
    };

    // Crank signature cost so VSCC dominates the validation phase — the
    // knob under test. Sign and verify iterations must match: the
    // iterated-HMAC stand-in bakes the count into the signature bytes.
    let mut cost = fabric_bench::cost_model();
    let iters = cost.verify_iterations.max(256);
    cost.sign_iterations = iters;
    cost.verify_iterations = iters;

    let mut header = false;
    let mut phase_tables = Vec::new();
    for &workers in sweep {
        let spec = RunSpec {
            cost,
            latency: LatencyModel::zero(),
            ..RunSpec::paper_default(
                format!("workers={workers}"),
                PipelineConfig::fabric_pp()
                    .with_block_size(1024)
                    .with_validation_workers(workers),
                WorkloadKind::Custom(CustomConfig::default()),
                duration,
            )
        };
        let r = run_experiment(&spec);
        let s = r.report.stats;
        let vscc = r.report.phases.validate_vscc;
        print_row(
            &mut header,
            &[
                ("validation_workers", workers.to_string()),
                ("valid_tps", format!("{:.1}", r.valid_tps())),
                ("aborted_tps", format!("{:.1}", r.aborted_tps())),
                ("submitted_tps", format!("{:.1}", r.submitted_tps())),
                ("blocks", r.report.orderer.blocks.to_string()),
                ("vscc_avg_us", format!("{:.1}", vscc.avg.as_secs_f64() * 1e6)),
                ("mvcc_aborts", s.mvcc_conflict.to_string()),
            ],
        );
        phase_tables.push((format!("workers={workers}"), r.report.phases));
        if smoke {
            assert_eq!(s.finished(), s.submitted, "every proposal reaches an outcome");
            assert!(s.valid > 0, "pipelined run commits transactions");
        }
    }
    for (label, phases) in &phase_tables {
        print_phase_table(label, phases);
    }
    println!("# available parallelism on this host: {}", default_validation_workers());
}
