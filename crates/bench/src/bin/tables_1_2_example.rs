//! **Tables 1 & 2** — the ordering example from §4.1.
//!
//! Four transactions: `T1` updates `k1`; `T2`, `T3`, `T4` read `k1` (and
//! touch `k2`/`k3`/`k4`). In the arrival order `T1 ⇒ T2 ⇒ T3 ⇒ T4` only
//! one transaction is valid (Table 1); in `T4 ⇒ T2 ⇒ T3 ⇒ T1` all four
//! are (Table 2). This binary rebuilds both tables and shows the schedule
//! the Fabric++ reorderer actually emits.

use fabric_common::rwset::{ReadWriteSet, RwSetBuilder};
use fabric_common::{Key, Value, Version};
use fabric_reorder::{count_valid_in_order, reorder, ReorderConfig};

fn k(name: &str) -> Key {
    Key::from(name)
}

fn v1() -> Version {
    Version::GENESIS
}

fn build() -> Vec<(String, ReadWriteSet)> {
    // Table 1's read/write sets.
    let mut t1 = RwSetBuilder::new();
    t1.record_write(k("k1"), Some(Value::from_i64(2)));

    let mut t2 = RwSetBuilder::new();
    t2.record_read(k("k1"), Some(v1()));
    t2.record_read(k("k2"), Some(v1()));
    t2.record_write(k("k2"), Some(Value::from_i64(2)));

    let mut t3 = RwSetBuilder::new();
    t3.record_read(k("k1"), Some(v1()));
    t3.record_read(k("k3"), Some(v1()));
    t3.record_write(k("k3"), Some(Value::from_i64(2)));

    let mut t4 = RwSetBuilder::new();
    t4.record_read(k("k1"), Some(v1()));
    t4.record_read(k("k3"), Some(v1()));
    t4.record_write(k("k4"), Some(Value::from_i64(2)));

    vec![
        ("T1".into(), t1.build()),
        ("T2".into(), t2.build()),
        ("T3".into(), t3.build()),
        ("T4".into(), t4.build()),
    ]
}

fn show_order(title: &str, named: &[(String, ReadWriteSet)], order: &[usize]) {
    let refs: Vec<&ReadWriteSet> = named.iter().map(|(_, s)| s).collect();
    let valid = count_valid_in_order(&refs, order);
    let names: Vec<&str> = order.iter().map(|&i| named[i].0.as_str()).collect();
    println!("{title}: {} — {valid}/4 valid", names.join(" => "));
}

fn main() {
    let named = build();
    let refs: Vec<&ReadWriteSet> = named.iter().map(|(_, s)| s).collect();

    show_order("Table 1 (arrival order)", &named, &[0, 1, 2, 3]);
    show_order("Table 2 (conflict-free)", &named, &[3, 1, 2, 0]);

    let result = reorder(&refs, &ReorderConfig::default());
    assert!(result.aborted.is_empty(), "no cycles in this example");
    show_order("Fabric++ reorderer output", &named, &result.schedule);
}
