//! **Conformance** — the multi-replica determinism gate.
//!
//! Runs every conformance fixture across its non-semantic knob matrix
//! (validation workers 1/2/4, reorder workers 1/2/4, trace sink on/off,
//! memory vs LSM state engine, single vs replicated consensus) and
//! requires every replica's artifacts — serialized block stream, state
//! digest, chain fingerprint, fault-schedule digest, outcome counters —
//! to match the baseline **byte for byte**. Then proves the harness
//! itself has teeth: each known nondeterminism-bug class is injected
//! into collected artifacts and must be caught with the right artifact,
//! localization, and root-cause hint.
//!
//! `--smoke` (used by CI) records each gate into `$SMOKE_SUMMARY`; the
//! run fails loudly (exit 1) on any divergence, any harness error, or a
//! run that replicated zero artifact bytes.

use fabric_conformance::{
    corruption_is_caught, run_fixture, Corruption, Fixture, RootCauseHint, BLOCK_STREAM,
    CHAIN_FINGERPRINT,
};

fn record(gate: &str, passed: bool, detail: &str) -> bool {
    fabric_bench::smoke::record("conformance", gate, passed, detail);
    let tag = if passed { "PASS" } else { "FAIL" };
    println!("{tag} {gate}: {detail}");
    passed
}

fn main() {
    // The gate set is identical with and without --smoke; the flag only
    // signals CI context (gate records land in $SMOKE_SUMMARY when set).
    let _smoke = std::env::args().any(|a| a == "--smoke");
    let mut all_ok = true;
    let mut total_bytes = 0usize;

    for fixture in Fixture::all() {
        let gate = format!("matrix-{}", fixture.name);
        match run_fixture(&fixture) {
            Ok(report) => {
                let bytes = report.total_artifact_bytes();
                total_bytes += bytes;
                let passed = report.passed() && bytes > 0;
                let detail = match &report.divergence {
                    Some(d) => format!("{d}"),
                    None => format!(
                        "{} replicas byte-identical, {} artifact bytes compared",
                        report.replicas.len(),
                        bytes
                    ),
                };
                all_ok &= record(&gate, passed, &detail);
            }
            Err(e) => {
                all_ok &= record(&gate, false, &format!("harness error: {e}"));
            }
        }
    }

    all_ok &= record(
        "nonzero-artifacts",
        total_bytes > 0,
        &format!("{total_bytes} artifact bytes replicated across the fixture matrix"),
    );

    // Divergence-localization self-test: every injected bug class must be
    // caught, in the right artifact, with the right hint.
    let expectations: [(&str, Corruption, &str, RootCauseHint); 3] = [
        (
            "selftest-shuffle",
            Corruption::ShuffleTxOrder,
            BLOCK_STREAM,
            RootCauseHint::HashMapIterationOrder,
        ),
        (
            "selftest-timestamp",
            Corruption::TimestampLeak(1_722_000_000_000_000),
            CHAIN_FINGERPRINT,
            RootCauseHint::TimestampLeakage,
        ),
        (
            "selftest-truncate",
            Corruption::TruncateTail(9),
            BLOCK_STREAM,
            RootCauseHint::LengthMismatch,
        ),
    ];
    let fixture = Fixture::small();
    for (gate, corruption, want_artifact, want_hint) in &expectations {
        let (passed, detail) = match corruption_is_caught(&fixture, corruption) {
            Ok(Some(d)) if d.artifact == *want_artifact && d.hint == *want_hint => {
                (true, format!("caught: {d}"))
            }
            Ok(Some(d)) => (false, format!("caught but misattributed: {d}")),
            Ok(None) => (false, "injected nondeterminism escaped detection".to_owned()),
            Err(e) => (false, format!("self-test error: {e}")),
        };
        all_ok &= record(gate, passed, &detail);
    }

    if !all_ok {
        eprintln!("conformance: FAILED (see gates above)");
        std::process::exit(1);
    }
    println!("conformance: all gates passed");
}
