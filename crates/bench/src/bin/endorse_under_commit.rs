//! **Endorse under commit** — lockless endorsement on the multi-version
//! store: endorsement throughput and tail latency while a committer
//! applies blocks to the same store as fast as it can.
//!
//! Vanilla Fabric serializes these phases behind a coarse state lock
//! (paper §4.2.1); the multi-version engines let every simulation pin a
//! snapshot-at-height and read version chains without ever taking the
//! commit ticket (Meir et al., "Lockless Transaction Isolation in
//! Hyperledger Fabric"). This sweep drives N endorser threads against one
//! full-speed committer thread and reports endorsements/s, p50/p99
//! simulation latency, early aborts, and — the locklessness receipt — the
//! store's commit-ticket counter, which must move only with the committed
//! blocks, never with the endorsements.
//!
//! `--smoke` (used by CI) runs the differential gates only:
//!
//! * **snapshot-vs-full-copy** (per engine): a workload commits under a
//!   full-copy oracle that clones the entire state map at every block;
//!   afterwards every `(key, height)` point read, batched read, and range
//!   scan must be byte-identical to the oracle's copy for that height —
//!   on both `MemStateDb` and `LsmStateDb`.
//! * **zero-ticket-endorsement**: a short endorse-under-commit burst in
//!   which the commit-ticket delta equals exactly the committed block
//!   count while thousands of endorsements run concurrently.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use fabric_bench::runner::print_row;
use fabric_bench::{point_duration, smoke};
use fabric_common::{
    ChannelId, ClientId, ConcurrencyMode, CostModel, Key, PeerId, SigningKey,
    TransactionProposal, Value, Version,
};
use fabric_conformance::fixtures::{transfer_args, transfer_chaincode};
use fabric_peer::chaincode::{ChaincodeRegistry, SimulationError};
use fabric_peer::Endorser;
use fabric_statedb::{CommitWrite, LsmConfig, LsmStateDb, MemStateDb, SnapshotGet, StateStore};

const ACCOUNTS: u64 = 64;

fn acct(i: u64) -> Key {
    Key::composite("acct", i)
}

fn genesis_writes() -> Vec<CommitWrite> {
    (0..ACCOUNTS).map(|i| CommitWrite::put(acct(i), Value::from_i64(100), 0)).collect()
}

/// The transfers of block `b`, as validated commit writes: pure
/// arithmetic, so both engines and the oracle see the same stream.
fn block_writes(b: u64, balances: &mut HashMap<u64, i64>) -> Vec<CommitWrite> {
    let mut writes = Vec::new();
    for t in 0..8u64 {
        let from = (b * 7 + t * 3) % ACCOUNTS;
        let mut to = (from + 1 + (b + t) % (ACCOUNTS - 1)) % ACCOUNTS;
        if to == from {
            to = (to + 1) % ACCOUNTS;
        }
        *balances.entry(from).or_insert(100) -= 1;
        *balances.entry(to).or_insert(100) += 1;
        writes.push(CommitWrite::put(acct(from), Value::from_i64(balances[&from]), t as u32 * 2));
        writes.push(CommitWrite::put(acct(to), Value::from_i64(balances[&to]), t as u32 * 2 + 1));
    }
    writes
}

/// One full state copy per block: the brute-force baseline the versioned
/// read path must match byte for byte.
type FullCopy = HashMap<Key, (Value, Version)>;

fn apply_to_copy(copy: &mut FullCopy, block: u64, writes: &[CommitWrite]) {
    for w in writes {
        match &w.value {
            Some(v) => {
                copy.insert(w.key.clone(), (v.clone(), Version::new(block, w.tx)));
            }
            None => {
                copy.remove(&w.key);
            }
        }
    }
}

/// Commits `blocks` blocks to `store` while cloning the full state map at
/// every height, then checks every `(key, height)` point read, batched
/// read, and range scan against the copies. Returns the number of
/// point-read comparisons performed.
fn differential_against_full_copy(store: &dyn StateStore, blocks: u64) -> usize {
    let mut balances: HashMap<u64, i64> = HashMap::new();
    // Pin every height as it commits — the way a fleet of in-flight
    // endorsements would — and hold the pins across the whole workload, so
    // the epoch GC must keep all of it resolvable despite retention 2.
    let mut pinned: Vec<(fabric_statedb::StateSnapshot, FullCopy)> = Vec::new();

    let genesis = genesis_writes();
    store.apply_block(0, &genesis).unwrap();
    let mut copy = FullCopy::new();
    apply_to_copy(&mut copy, 0, &genesis);
    pinned.push((store.pin_snapshot(), copy.clone()));

    for b in 1..=blocks {
        let writes = block_writes(b, &mut balances);
        store.apply_block(b, &writes).unwrap();
        apply_to_copy(&mut copy, b, &writes);
        pinned.push((store.pin_snapshot(), copy.clone()));
    }

    let keys: Vec<Key> = (0..ACCOUNTS).map(acct).collect();
    let lo = Key::from("acct");
    let hi = Key::from("accu");
    let mut checked = 0usize;
    let mut batch: Vec<SnapshotGet> = Vec::new();
    for (snap, oracle) in &pinned {
        let h = snap.height();
        store.multi_get_at_into(&keys, h, &mut batch).unwrap();
        for (key, got) in keys.iter().zip(&batch) {
            let point = store.get_at(key, h).unwrap();
            assert_eq!(
                point.at_height, got.at_height,
                "engine disagrees with itself: get_at vs multi_get_at_into for {key:?} at {h}"
            );
            let expect = oracle.get(key);
            let actual = point.at_height.as_ref().map(|vv| (&vv.value, vv.version));
            assert_eq!(
                actual,
                expect.map(|(v, ver)| (v, *ver)),
                "snapshot read of {key:?} at height {h} diverges from the full copy"
            );
            checked += 1;
        }
        let scan = store.scan_range_at(&lo, &hi, h).unwrap();
        let mut scanned: Vec<(Key, Value, Version)> = scan
            .into_iter()
            .filter_map(|(k, g)| g.at_height.map(|vv| (k, vv.value, vv.version)))
            .collect();
        scanned.sort_by(|a, b| a.0.cmp(&b.0));
        let mut expected: Vec<(Key, Value, Version)> =
            oracle.iter().map(|(k, (v, ver))| (k.clone(), v.clone(), *ver)).collect();
        expected.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(scanned, expected, "range scan at height {h} diverges from the full copy");
    }
    checked
}

fn smoke_differential() {
    let blocks = 48u64;

    let mem = MemStateDb::with_config(8, 2);
    let checked = differential_against_full_copy(&mem, blocks);
    smoke::record(
        "endorse_under_commit",
        "snapshot-vs-full-copy-mem",
        true,
        &format!("{checked} point reads + {} range scans byte-identical at retention 2", blocks + 1),
    );

    let dir = std::env::temp_dir()
        .join(format!("fabric-endorse-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = LsmConfig {
        memtable_max_bytes: 1 << 10, // force flushes + compactions mid-workload
        compaction_threshold: 2,
        retained_versions: 2,
        ..LsmConfig::default()
    };
    let lsm = LsmStateDb::open(&dir, cfg).unwrap();
    let checked = differential_against_full_copy(&lsm, blocks);
    drop(lsm);
    let _ = std::fs::remove_dir_all(&dir);
    smoke::record(
        "endorse_under_commit",
        "snapshot-vs-full-copy-lsm",
        true,
        &format!(
            "{checked} point reads + {} range scans byte-identical across flush/compaction",
            blocks + 1
        ),
    );
}

/// Builds an endorser over `store` with the transfer chaincode deployed,
/// fine-grained concurrency (no state gate), and zero modeled crypto /
/// container cost so the sweep measures the read path itself.
fn mk_endorser(store: Arc<dyn StateStore>, early_abort: bool) -> Endorser {
    let mut registry = ChaincodeRegistry::new();
    registry.deploy("transfer", transfer_chaincode());
    Endorser::new(
        PeerId(0),
        fabric_common::OrgId(0),
        SigningKey::for_peer(PeerId(0), 1),
        store,
        registry,
        ConcurrencyMode::FineGrained,
        None,
        early_abort,
        CostModel::raw(),
    )
}

struct BurstResult {
    endorsed: u64,
    aborted: u64,
    blocks: u64,
    latencies_us: Vec<f64>,
    ticket_delta: u64,
    pin_delta: u64,
}

/// Runs `endorsers` endorser threads against one committer thread slamming
/// blocks into a shared `MemStateDb` for roughly `secs` seconds.
fn endorse_under_commit(endorsers: usize, secs: f64, early_abort: bool) -> BurstResult {
    let db = Arc::new(MemStateDb::with_genesis(
        (0..ACCOUNTS).map(|i| (acct(i), Value::from_i64(100))),
    ));
    let store: Arc<dyn StateStore> = db.clone();
    let before = db.counters().snapshot();
    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        let committer = {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            let committed = Arc::clone(&committed);
            scope.spawn(move || {
                let mut balances: HashMap<u64, i64> = HashMap::new();
                let mut b = 1u64;
                while !stop.load(Ordering::Relaxed) {
                    let writes = block_writes(b, &mut balances);
                    db.apply_block(b, &writes).unwrap();
                    committed.fetch_add(1, Ordering::Relaxed);
                    b += 1;
                }
            })
        };

        let workers: Vec<_> = (0..endorsers)
            .map(|w| {
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let endorser = mk_endorser(store, early_abort);
                    let mut latencies_us = Vec::new();
                    let mut endorsed = 0u64;
                    let mut aborted = 0u64;
                    let mut i = w as u64;
                    while !stop.load(Ordering::Relaxed) {
                        let from = i % ACCOUNTS;
                        let to = (from + 1 + i % (ACCOUNTS - 1)) % ACCOUNTS;
                        let proposal = TransactionProposal::new(
                            ChannelId(0),
                            ClientId(w as u64),
                            "transfer",
                            transfer_args(from, to, 1),
                        );
                        let t0 = Instant::now();
                        match endorser.simulate(&proposal) {
                            Ok(_) => endorsed += 1,
                            Err(SimulationError::StaleRead { .. }) => aborted += 1,
                            Err(e) => panic!("endorsement failed: {e:?}"),
                        }
                        latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
                        i += endorsers as u64;
                    }
                    (endorsed, aborted, latencies_us)
                })
            })
            .collect();

        std::thread::sleep(std::time::Duration::from_secs_f64(secs));
        stop.store(true, Ordering::Relaxed);
        committer.join().unwrap();

        let mut endorsed = 0;
        let mut aborted = 0;
        let mut latencies_us = Vec::new();
        for w in workers {
            let (e, a, l) = w.join().unwrap();
            endorsed += e;
            aborted += a;
            latencies_us.extend(l);
        }
        latencies_us.sort_by(|a, b| a.total_cmp(b));
        let delta = db.counters().snapshot().since(&before);
        BurstResult {
            endorsed,
            aborted,
            blocks: committed.load(Ordering::Relaxed),
            latencies_us,
            ticket_delta: delta.commit_ticket_acquisitions,
            pin_delta: delta.snapshot_pins,
        }
    })
}

fn pctile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let i = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[i]
}

fn smoke_zero_ticket() {
    let r = endorse_under_commit(2, 0.3, true);
    assert!(r.blocks > 0, "the committer must actually commit blocks");
    assert!(r.endorsed + r.aborted > 0, "the endorsers must actually run");
    // The locklessness receipt: every commit-ticket acquisition belongs to
    // the committer; thousands of concurrent endorsements added none.
    assert_eq!(
        r.ticket_delta, r.blocks,
        "endorsements must not take the commit ticket (ticket delta {} vs {} blocks)",
        r.ticket_delta, r.blocks
    );
    assert_eq!(
        r.pin_delta,
        r.endorsed + r.aborted,
        "every simulation pins exactly one snapshot"
    );
    smoke::record(
        "endorse_under_commit",
        "zero-ticket-endorsement",
        true,
        &format!(
            "{} endorsements ({} early aborts) vs {} blocks: ticket delta == blocks",
            r.endorsed + r.aborted,
            r.aborted,
            r.blocks
        ),
    );
}

fn main() {
    let smoke_only = std::env::args().any(|a| a == "--smoke");
    smoke_differential();
    smoke_zero_ticket();
    if smoke_only {
        // CI cares about the gates, not single-core timing noise.
        return;
    }

    let secs = point_duration().as_secs_f64();
    println!(
        "# knobs: accounts={ACCOUNTS} cost=raw engine=mem committer=full-speed available_parallelism={}",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    );
    // Single-core honesty: endorsers and the committer time-slice the same
    // cores here, so absolute eps is machine-bound; the machine-independent
    // outputs are the zero ticket delta and the p99-vs-commit-rate shape.
    let mut header = false;
    for &early_abort in &[true, false] {
        for &endorsers in &[1usize, 2, 4] {
            let r = endorse_under_commit(endorsers, secs, early_abort);
            let total = r.endorsed + r.aborted;
            print_row(
                &mut header,
                &[
                    ("endorsers", endorsers.to_string()),
                    ("early_abort", early_abort.to_string()),
                    ("secs", format!("{secs:.1}")),
                    ("endorsed", r.endorsed.to_string()),
                    ("eps", format!("{:.0}", total as f64 / secs)),
                    ("p50_us", format!("{:.1}", pctile(&r.latencies_us, 0.50))),
                    ("p99_us", format!("{:.1}", pctile(&r.latencies_us, 0.99))),
                    ("aborts", r.aborted.to_string()),
                    ("blocks", r.blocks.to_string()),
                    ("ticket_acq", r.ticket_delta.to_string()),
                    ("pins", r.pin_delta.to_string()),
                ],
            );
        }
    }
}
