//! Ablation study over the reorderer's design choices (DESIGN.md §6):
//!
//! 1. **Schedule construction** — the paper's source-chasing walk vs. the
//!    textbook Kahn topological sort: identical commit quality, different
//!    asymptotics.
//! 2. **SCC enumeration bound** — `max_scc_for_enumeration` sweeps from
//!    "always enumerate" to "always fall back": quality (scheduled
//!    transactions) vs. ordering-phase cost on a hot block.
//! 3. **Conflict-graph construction** — inverted index vs. the paper's
//!    quadratic bit-vector method.

use std::time::Instant;

use fabric_bench::runner::print_row;
use fabric_common::rwset::ReadWriteSet;
use fabric_common::{Key, Value, Version};
use fabric_reorder::{
    kahn_schedule, reorder, schedule::paper_schedule, verify_serializable, ConflictGraph,
    ReorderConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn hot_block(n: usize, seed: u64) -> Vec<ReadWriteSet> {
    let mut rng = StdRng::seed_from_u64(seed);
    let pick = |rng: &mut StdRng, hot_p: f64| -> u64 {
        if rng.random::<f64>() < hot_p {
            rng.random_range(0..100)
        } else {
            rng.random_range(100..10_000)
        }
    };
    (0..n)
        .map(|_| {
            let reads: Vec<Key> =
                (0..8).map(|_| Key::composite("bal", pick(&mut rng, 0.4))).collect();
            let writes: Vec<Key> =
                (0..8).map(|_| Key::composite("bal", pick(&mut rng, 0.1))).collect();
            fabric_common::rwset::rwset_from_keys(
                &reads,
                Version::GENESIS,
                &writes,
                &Value::from_i64(1),
            )
        })
        .collect()
}

fn time_us(f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64() * 1e6
}

fn main() {
    let block = hot_block(1024, 7);
    let refs: Vec<&ReadWriteSet> = block.iter().collect();

    println!("# 1. schedule construction (over the acyclic survivor graph)");
    let result = reorder(&refs, &ReorderConfig::default());
    let survivors: Vec<&ReadWriteSet> = result.schedule.iter().map(|&i| refs[i]).collect();
    let g = ConflictGraph::build(&survivors);
    let mut header = false;
    for (name, f) in [
        ("paper_walk", Box::new(|| {
            let o = paper_schedule(&g);
            assert_eq!(o.len(), g.len());
        }) as Box<dyn Fn()>),
        ("kahn", Box::new(|| {
            let o = kahn_schedule(&g);
            assert_eq!(o.len(), g.len());
        })),
    ] {
        // Warm + average of 5.
        f();
        let avg = (0..5).map(|_| time_us(&*f)).sum::<f64>() / 5.0;
        print_row(
            &mut header,
            &[
                ("algorithm", name.to_string()),
                ("survivors", g.len().to_string()),
                ("time_us", format!("{avg:.1}")),
            ],
        );
    }
    // Quality equivalence check.
    let paper_order: Vec<usize> = paper_schedule(&g).iter().map(|&i| result.schedule[i]).collect();
    let kahn_order: Vec<usize> = kahn_schedule(&g).iter().map(|&i| result.schedule[i]).collect();
    assert!(verify_serializable(&refs, &paper_order));
    assert!(verify_serializable(&refs, &kahn_order));
    println!("# both serializable over {} survivors", g.len());

    println!("\n# 2. SCC enumeration bound sweep (hot block, 1024 txs)");
    let mut header = false;
    for bound in [0usize, 32, 128, 512, 1024] {
        let cfg = ReorderConfig { max_cycles: 4096, max_scc_for_enumeration: bound, ..Default::default() };
        let t0 = Instant::now();
        let r = reorder(&refs, &cfg);
        let us = t0.elapsed().as_secs_f64() * 1e6;
        print_row(
            &mut header,
            &[
                ("scc_bound", bound.to_string()),
                ("scheduled", r.schedule.len().to_string()),
                ("aborted", r.aborted.len().to_string()),
                ("fallback", r.stats.fallback_used.to_string()),
                ("time_us", format!("{us:.0}")),
            ],
        );
    }

    println!("\n# 3. conflict graph construction (1024-tx hot block)");
    let mut header = false;
    for (name, f) in [
        ("inverted_index", Box::new(|| {
            ConflictGraph::build(&refs);
        }) as Box<dyn Fn()>),
        ("bitset_paper", Box::new(|| {
            ConflictGraph::build_bitset(&refs);
        })),
    ] {
        f();
        let avg = (0..3).map(|_| time_us(&*f)).sum::<f64>() / 3.0;
        print_row(&mut header, &[("method", name.to_string()), ("time_us", format!("{avg:.0}"))]);
    }
    assert_eq!(
        ConflictGraph::build(&refs).edges(),
        ConflictGraph::build_bitset(&refs).edges(),
        "the two constructions must agree"
    );
}
