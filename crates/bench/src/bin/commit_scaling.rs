//! **Commit scaling** — validate/commit hot-path throughput of the batched
//! state-access design against the per-key path it replaced, swept over
//! block size × write ratio × `MemStateDb` shard count.
//!
//! The *per-key* baseline is the pre-batching algorithm: one `store.get`
//! (one shard read-lock) per read entry during MVCC validation, then a
//! commit that clones every key and value into owned [`CommitWrite`]s.
//! The *batched* path is the shipped one: a single `multi_get_versions`
//! prefetch per block feeding the interned version table, then a
//! zero-clone [`WriteBatch`] of borrowed entries. Both install writes
//! through the same engine, so the speedup column isolates the read-path
//! batching plus the clone elimination — a lower bound on the gap to the
//! historical lock-per-write committer.
//!
//! `--smoke` (used by CI) runs only the differential gate at a reduced
//! grid: for every shard count the batched path must produce
//! **bit-identical** validation codes, post-state (values *and*
//! versions), and watermark as the per-key baseline — and the store
//! counters must show exactly one prefetch batch per block with zero
//! point gets.

use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use fabric_bench::runner::print_row;
use fabric_common::rwset::RwSetBuilder;
use fabric_common::{
    ChannelId, ClientId, Digest, Key, Transaction, TxId, ValidationCode, Value, Version,
};
use fabric_ledger::Block;
use fabric_peer::validator::{mvcc_validate_into, MvccScratch};
use fabric_statedb::{CommitWrite, MemStateDb, StateStore, WriteBatch, WriteRef};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn key(i: u64) -> Key {
    Key::composite("K", i)
}

/// Builds `count` blocks of `block_size` transactions over a working set
/// four times the block size. Each transaction performs 8 state accesses,
/// `write_ratio` of them writes; with probability `hot` a read key comes
/// from a 16-key hot set (the dedupe showcase: many transactions probing
/// the same keys), otherwise uniformly from the working set. Reads claim
/// the version the generator's model says the key will hold, so blocks
/// are mostly valid (modulo in-block conflicts, which both paths must
/// resolve identically).
fn make_blocks(
    count: usize,
    block_size: usize,
    write_ratio: f64,
    hot: f64,
    seed: u64,
) -> Vec<Block> {
    let mut rng = StdRng::seed_from_u64(seed);
    let working = (block_size * 4) as u64;
    let writes_per_tx = ((8.0 * write_ratio).round() as usize).clamp(1, 7);
    let reads_per_tx = 8 - writes_per_tx;

    // Model of the committed state, advanced with the same semantics the
    // oracle validator uses, so claimed read versions stay fresh.
    let mut model: HashMap<u64, Version> = (0..working).map(|i| (i, Version::GENESIS)).collect();

    (0..count)
        .map(|b| {
            let block_num = (b + 1) as u64;
            let mut staged: Vec<(u64, Version)> = Vec::new();
            let mut written_in_block: HashSet<u64> = HashSet::new();
            let txs: Vec<Transaction> = (0..block_size)
                .map(|tx_num| {
                    let mut bld = RwSetBuilder::new();
                    let mut reads = Vec::with_capacity(reads_per_tx);
                    for _ in 0..reads_per_tx {
                        let k = if rng.random::<f64>() < hot {
                            rng.random_range(0..16)
                        } else {
                            rng.random_range(0..working)
                        };
                        reads.push(k);
                        bld.record_read(key(k), model.get(&k).copied());
                    }
                    let mut writes = Vec::with_capacity(writes_per_tx);
                    for _ in 0..writes_per_tx {
                        let k = rng.random_range(0..working);
                        writes.push(k);
                        bld.record_write(key(k), Some(Value::from_i64((b * 8 + tx_num) as i64)));
                    }
                    // Valid iff no read hits an earlier in-block write.
                    if reads.iter().all(|k| !written_in_block.contains(k)) {
                        for &k in &writes {
                            written_in_block.insert(k);
                            staged.push((k, Version::new(block_num, tx_num as u32)));
                        }
                    }
                    Transaction {
                        id: TxId::next(),
                        channel: ChannelId(0),
                        client: ClientId(0),
                        chaincode: "cc".into(),
                        rwset: bld.build(),
                        endorsements: vec![],
                        created_at: Instant::now(),
                    }
                })
                .collect();
            for (k, v) in staged {
                model.insert(k, v);
            }
            Block::build(block_num, Digest::ZERO, txs)
        })
        .collect()
}

fn fresh_store(shards: usize, working: u64) -> MemStateDb {
    let db = MemStateDb::with_shards(shards);
    let genesis: Vec<CommitWrite> =
        (0..working).map(|i| CommitWrite::put(key(i), Value::from_i64(0), 0)).collect();
    db.apply_block(0, &genesis).expect("genesis");
    db
}

/// The pre-batching hot path: per-read point gets, `HashSet` in-block
/// conflict tracking, owned clones into the commit write list.
fn run_perkey(store: &MemStateDb, blocks: &[Block]) -> (Duration, Vec<Vec<ValidationCode>>) {
    let t0 = Instant::now();
    let mut all_codes = Vec::with_capacity(blocks.len());
    for block in blocks {
        let mut codes = Vec::with_capacity(block.txs.len());
        let mut written_in_block: HashSet<&Key> = HashSet::new();
        for tx in &block.txs {
            let valid = tx.rwset.reads.entries().iter().all(|e| {
                !written_in_block.contains(&e.key)
                    && store.get(&e.key).unwrap().map(|vv| vv.version) == e.version
            });
            if valid {
                for e in tx.rwset.writes.entries() {
                    written_in_block.insert(&e.key);
                }
                codes.push(ValidationCode::Valid);
            } else {
                codes.push(ValidationCode::MvccConflict);
            }
        }
        let mut writes: Vec<CommitWrite> = Vec::new();
        for (tx_num, (tx, code)) in block.txs.iter().zip(&codes).enumerate() {
            if code.is_valid() {
                for e in tx.rwset.writes.entries() {
                    writes.push(CommitWrite {
                        key: e.key.clone(),
                        value: e.value.clone(),
                        tx: tx_num as u32,
                    });
                }
            }
        }
        store.apply_block(block.header.number, &writes).unwrap();
        all_codes.push(codes);
    }
    (t0.elapsed(), all_codes)
}

/// The batched hot path exactly as the peer runs it: one multi-get
/// prefetch per block into a persistent [`MvccScratch`], zero-clone write
/// batch of borrowed entries.
fn run_batched(store: &MemStateDb, blocks: &[Block]) -> (Duration, Vec<Vec<ValidationCode>>) {
    let mut scratch = MvccScratch::new();
    let endorsement_ok: Vec<bool> =
        vec![true; blocks.iter().map(|b| b.txs.len()).max().unwrap_or(0)];
    let t0 = Instant::now();
    let mut all_codes = Vec::with_capacity(blocks.len());
    for block in blocks {
        let mut codes = Vec::with_capacity(block.txs.len());
        mvcc_validate_into(
            block,
            store,
            &endorsement_ok[..block.txs.len()],
            &mut scratch,
            &mut codes,
        )
        .unwrap();
        let mut batch = WriteBatch::new(block.header.number);
        for (tx_num, (tx, code)) in block.txs.iter().zip(&codes).enumerate() {
            if code.is_valid() {
                for e in tx.rwset.writes.entries() {
                    batch.push(WriteRef {
                        key: &e.key,
                        value: e.value.as_ref(),
                        tx: tx_num as u32,
                    });
                }
            }
        }
        store.apply_write_batch(&batch).unwrap();
        drop(batch);
        all_codes.push(codes);
    }
    (t0.elapsed(), all_codes)
}

/// The CI gate: per-key and batched paths agree bit for bit — codes,
/// post-state, watermark — and the batched store's counters prove the
/// one-prefetch-per-block / zero-point-get contract held.
fn differential_check(shard_sweep: &[usize]) {
    let block_size = 128;
    let blocks = make_blocks(6, block_size, 0.5, 0.3, 42);
    let working = (block_size * 4) as u64;
    let lo = key(0);
    let hi = key(working + 1);
    for &shards in shard_sweep {
        let perkey_store = fresh_store(shards, working);
        let batched_store = fresh_store(shards, working);
        let (_, perkey_codes) = run_perkey(&perkey_store, &blocks);
        let base = batched_store.counters().snapshot();
        let (_, batched_codes) = run_batched(&batched_store, &blocks);
        let stats = batched_store.counters().snapshot().since(&base);
        assert_eq!(batched_codes, perkey_codes, "codes diverge at {shards} shards");
        let valid = batched_codes.iter().flatten().filter(|c| c.is_valid()).count();
        let invalid = batched_codes.iter().flatten().filter(|c| !c.is_valid()).count();
        assert!(
            valid > 0 && invalid > 0,
            "differential input exercises both outcomes (valid={valid} invalid={invalid})"
        );
        assert_eq!(
            batched_store.last_committed_block(),
            perkey_store.last_committed_block()
        );
        assert_eq!(
            batched_store.scan_range(&lo, &hi).unwrap(),
            perkey_store.scan_range(&lo, &hi).unwrap(),
            "post-state diverges at {shards} shards"
        );
        assert_eq!(stats.multi_get_batches, blocks.len() as u64, "one prefetch per block");
        assert_eq!(stats.point_gets, 0, "no per-read point gets on the batched path");
        assert!(stats.shard_lock_acquisitions <= (blocks.len() * shards) as u64);
    }
    fabric_bench::smoke::record(
        "commit_scaling",
        "batched-vs-per-key-oracle",
        true,
        &format!(
            "batched codes+post-state == per-key oracle at {shard_sweep:?} shards, \
             one prefetch per block, zero point gets"
        ),
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let shard_sweep: &[usize] = if smoke { &[1, 4] } else { &[1, 4, 16] };
    differential_check(shard_sweep);
    if smoke {
        // CI cares about the gate, not single-core timing noise.
        return;
    }

    let mut header = false;
    for &block_size in &[256usize, 1024] {
        for &write_ratio in &[0.25f64, 0.75] {
            for &hot in &[0.0f64, 0.9] {
                let blocks = make_blocks(24, block_size, write_ratio, hot, 7);
                let working = (block_size * 4) as u64;
                let txs = blocks.len() * block_size;
                for &shards in shard_sweep {
                    // Min of three runs each, fresh store per run: the
                    // first repetition doubles as warm-up and min filters
                    // out single-core scheduling noise.
                    let perkey = (0..3)
                        .map(|_| run_perkey(&fresh_store(shards, working), &blocks).0)
                        .min()
                        .unwrap();
                    let mut batched = Duration::MAX;
                    let mut stats = Default::default();
                    for _ in 0..3 {
                        let store = fresh_store(shards, working);
                        let base = store.counters().snapshot();
                        let (elapsed, _) = run_batched(&store, &blocks);
                        if elapsed < batched {
                            batched = elapsed;
                        }
                        stats = store.counters().snapshot().since(&base);
                    }
                    let perkey_ms = perkey.as_secs_f64() * 1e3;
                    let batched_ms = batched.as_secs_f64() * 1e3;
                    print_row(
                        &mut header,
                        &[
                            ("block_size", block_size.to_string()),
                            ("write_ratio", format!("{write_ratio:.2}")),
                            ("hot", format!("{hot:.1}")),
                            ("shards", shards.to_string()),
                            ("blocks", blocks.len().to_string()),
                            ("perkey_ms", format!("{perkey_ms:.1}")),
                            ("batched_ms", format!("{batched_ms:.1}")),
                            (
                                "ktps_batched",
                                format!("{:.1}", txs as f64 / batched.as_secs_f64() / 1e3),
                            ),
                            ("prefetch_keys_per_block", {
                                let blocks_applied = stats.blocks_applied.max(1);
                                format!(
                                    "{:.0}",
                                    stats.multi_get_keys as f64 / blocks_applied as f64
                                )
                            }),
                            ("speedup_vs_perkey", format!("{:.2}", perkey_ms / batched_ms)),
                        ],
                    );
                }
            }
        }
    }
}
