//! **Figure 16** (Appendix B.2) — reordering micro-benchmark: varying the
//! length of conflict cycles.
//!
//! 1024 transactions arranged into `1024 / t` cycles of length `t`, each
//! cycle of the form
//! `T[r(k0),w(k0)], T[r(k0),w(k1)], T[r(k1),w(k2)], …, T[r(k_{t-2}),w(k0)]`.
//! For each cycle length we report valid transactions under the arrival
//! order (the paper: always half — "aborting every second transaction
//! breaks the cycles"), under the reordered schedule (high when cycles are
//! long: one abort per cycle), and the reordering time.

use std::time::Instant;

use fabric_bench::runner::print_row;
use fabric_common::rwset::{rwset_from_keys, ReadWriteSet};
use fabric_common::{Key, Value, Version};
use fabric_reorder::{count_valid_in_order, reorder, ReorderConfig};

const N: usize = 1024;

fn tx(read_k: u64, write_k: u64) -> ReadWriteSet {
    rwset_from_keys(
        &[Key::composite("k", read_k)],
        Version::GENESIS,
        &[Key::composite("k", write_k)],
        &Value::from_i64(1),
    )
}

/// Builds `N / t` disjoint cycles of length `t` (paper Appendix B.2 form).
fn sequence(t: usize) -> Vec<ReadWriteSet> {
    let mut seq = Vec::with_capacity(N);
    for c in 0..N / t {
        let base = (c * t) as u64;
        // First transaction reads and writes the cycle's anchor key.
        seq.push(tx(base, base));
        // Chain: reads k_{i-1}, writes k_i; the final one writes back k0.
        for i in 1..t {
            let read_k = base + (i as u64) - 1;
            let write_k = if i == t - 1 { base } else { base + i as u64 };
            seq.push(tx(read_k, write_k));
        }
    }
    seq
}

fn main() {
    let mut header = false;
    for t in [2usize, 4, 8, 16, 32, 64, 128, 256, 512] {
        let sets = sequence(t);
        let refs: Vec<&ReadWriteSet> = sets.iter().collect();
        let arrival: Vec<usize> = (0..refs.len()).collect();
        let arrival_valid = count_valid_in_order(&refs, &arrival);

        let t0 = Instant::now();
        // Long cycles exceed the default SCC enumeration bound; lift it so
        // the exact Johnson + greedy path runs, as in the paper's appendix.
        let cfg = ReorderConfig { max_cycles: 4096, max_scc_for_enumeration: N, ..Default::default() };
        let result = reorder(&refs, &cfg);
        let reorder_time = t0.elapsed();
        let reordered_valid = count_valid_in_order(&refs, &result.schedule);

        print_row(
            &mut header,
            &[
                ("cycle_len", t.to_string()),
                ("arrival_valid", arrival_valid.to_string()),
                ("reordered_valid", reordered_valid.to_string()),
                ("reorder_ms", format!("{:.3}", reorder_time.as_secs_f64() * 1e3)),
            ],
        );
    }
}
