//! **Figure 1** — the motivation experiment.
//!
//! Top bar: vanilla Fabric fired with *meaningful* transactions (custom
//! workload, BS=1024, RW=8, HR=40%, HW=10%, HSS=1%), split into aborted
//! and successful throughput. Bottom bar: *blank* transactions without any
//! logic. The paper's observation: total throughput of blank and
//! meaningful essentially equals (crypto + networking dominate), and a
//! large share of meaningful transactions abort.

use fabric_bench::{point_duration, run_experiment, runner::print_row, RunSpec, WorkloadKind};
use fabric_common::PipelineConfig;
use fabric_workloads::CustomConfig;

fn main() {
    let duration = point_duration();
    let mut header = false;

    for (scenario, workload) in [
        ("meaningful", WorkloadKind::Custom(CustomConfig::default())),
        ("blank", WorkloadKind::Blank),
    ] {
        let spec = RunSpec::paper_default(
            scenario,
            PipelineConfig::vanilla().with_block_size(1024),
            workload,
            duration,
        );
        let r = run_experiment(&spec);
        print_row(
            &mut header,
            &[
                ("scenario", scenario.to_string()),
                ("valid_tps", format!("{:.1}", r.valid_tps())),
                ("aborted_tps", format!("{:.1}", r.aborted_tps())),
                ("total_tps", format!("{:.1}", r.valid_tps() + r.aborted_tps())),
            ],
        );
    }
}
