//! **Figure 1** — the motivation experiment.
//!
//! Top bar: vanilla Fabric fired with *meaningful* transactions (custom
//! workload, BS=1024, RW=8, HR=40%, HW=10%, HSS=1%), split into aborted
//! and successful throughput. Bottom bar: *blank* transactions without any
//! logic. The paper's observation: total throughput of blank and
//! meaningful essentially equals (crypto + networking dominate), and a
//! large share of meaningful transactions abort.
//!
//! `--trace <prefix>` enables the flight recorder and writes
//! `<prefix>.<scenario>.jsonl` + `<prefix>.<scenario>.chrome.json`.

use std::path::PathBuf;

use fabric_bench::{
    arg_value, point_duration, run_experiment,
    runner::{export_trace, print_row},
    RunSpec, WorkloadKind,
};
use fabric_common::PipelineConfig;
use fabric_workloads::CustomConfig;

fn main() {
    let duration = point_duration();
    let trace_prefix = arg_value("--trace").map(PathBuf::from);
    let mut header = false;

    for (scenario, workload) in [
        ("meaningful", WorkloadKind::Custom(CustomConfig::default())),
        ("blank", WorkloadKind::Blank),
    ] {
        let mut spec = RunSpec::paper_default(
            scenario,
            PipelineConfig::vanilla().with_block_size(1024),
            workload,
            duration,
        );
        if trace_prefix.is_some() {
            spec = spec.with_trace(1 << 20);
        }
        let r = run_experiment(&spec);
        if let Some(prefix) = &trace_prefix {
            let mut os = prefix.as_os_str().to_owned();
            os.push(format!(".{scenario}"));
            export_trace(scenario, &r.report, &PathBuf::from(os)).expect("trace export failed");
        }
        print_row(
            &mut header,
            &[
                ("scenario", scenario.to_string()),
                ("valid_tps", format!("{:.1}", r.valid_tps())),
                ("aborted_tps", format!("{:.1}", r.aborted_tps())),
                ("total_tps", format!("{:.1}", r.valid_tps() + r.aborted_tps())),
            ],
        );
    }
}
