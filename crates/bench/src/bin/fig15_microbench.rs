//! **Figure 15** (Appendix B.1) — reordering micro-benchmark: interleaving
//! reads and writes to vary the number of conflicts.
//!
//! 1024 single-operation transactions: 512 writers `T[w(ki)]` followed by
//! 512 readers `T[r(ki)]`. Sequence `S_{i+1}` moves the last transaction
//! of `S_i` to the front; the x-axis is how many read-transactions were
//! shifted before the writers. For each shift we report the number of
//! valid transactions under the arrival order, under the reordered
//! schedule, and the time the reordering mechanism took. The paper:
//! reordering achieves 1024 valid everywhere in 1–2 ms; arrival order
//! climbs from 512.

use std::time::Instant;

use fabric_bench::runner::print_row;
use fabric_common::rwset::{rwset_from_keys, ReadWriteSet};
use fabric_common::{Key, Value, Version};
use fabric_reorder::{count_valid_in_order, reorder, ReorderConfig};

const N: usize = 1024;
const HALF: usize = N / 2;

fn writer(k: usize) -> ReadWriteSet {
    rwset_from_keys(&[], Version::GENESIS, &[Key::composite("k", k as u64)], &Value::from_i64(1))
}

fn reader(k: usize) -> ReadWriteSet {
    rwset_from_keys(&[Key::composite("k", k as u64)], Version::GENESIS, &[], &Value::from_i64(1))
}

/// `S_1` = 512 writers then 512 readers; shifting moves the last `shift`
/// transactions (readers) to the front.
fn sequence(shift: usize) -> Vec<ReadWriteSet> {
    let mut seq: Vec<ReadWriteSet> = Vec::with_capacity(N);
    // The shifted readers (the tail of the original order) come first, in
    // the order successive rotations produce: last first.
    for i in 0..shift {
        seq.push(reader(HALF - 1 - i));
    }
    for k in 0..HALF {
        seq.push(writer(k));
    }
    for k in 0..HALF - shift {
        seq.push(reader(k));
    }
    seq
}

fn main() {
    let mut header = false;
    for shift in (0..=HALF).step_by(32) {
        let sets = sequence(shift);
        let refs: Vec<&ReadWriteSet> = sets.iter().collect();
        let arrival: Vec<usize> = (0..N).collect();
        let arrival_valid = count_valid_in_order(&refs, &arrival);

        let t0 = Instant::now();
        let result = reorder(&refs, &ReorderConfig::default());
        let reorder_time = t0.elapsed();
        let reordered_valid = count_valid_in_order(&refs, &result.schedule);

        print_row(
            &mut header,
            &[
                ("shifted_reads", shift.to_string()),
                ("arrival_valid", arrival_valid.to_string()),
                ("reordered_valid", reordered_valid.to_string()),
                ("reorder_ms", format!("{:.3}", reorder_time.as_secs_f64() * 1e3)),
            ],
        );
    }
}
