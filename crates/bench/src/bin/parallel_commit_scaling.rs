//! **Parallel commit scaling** — dependency-aware lane-parallel
//! validation + commit ([`LaneScheduler`] + `apply_write_batch_lanes`)
//! against the sequential block-order path, swept over block size ×
//! conflict rate × lane count.
//!
//! The *sequential* baseline is the shipped single-threaded hot path: the
//! batched MVCC scan in block order, then one `apply_write_batch`. The
//! *lanes* path partitions each block into dependency chains (union-find
//! over the interned read/write sets — the same analysis the sealer's
//! `DependencyHints` carry), validates independent chains concurrently on
//! `commit_lanes` persistent worker lanes, and installs the write batch's
//! shard groups on the same lanes. The conflict-rate knob steers how many
//! transactions share keys: at 0.0 every transaction is its own chain
//! (maximum available parallelism); at 0.9 most transactions serialize
//! into a few hot chains and the `chain_serializations` column shows the
//! scheduler degrading to block order exactly where it must.
//!
//! Rows include the lane-occupancy counters (`lanes_used`,
//! `chain_serializations` per block) so the table shows *why* a cell
//! scales or does not. On a single-core host the honest expectation is
//! parity (speedup ≈ 1.0 minus dispatch overhead) — the differential
//! gate, not the speedup, is the point there.
//!
//! `--smoke` (used by CI) runs only the differential gate: at 2/4/8 lanes
//! and on both engines (memory + LSM) the lane path must produce
//! **bit-identical** validation codes, post-state, and watermark as the
//! sequential baseline, with identical store-read traffic (one prefetch
//! batch per block, zero point gets).

use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use fabric_bench::runner::print_row;
use fabric_common::rwset::RwSetBuilder;
use fabric_common::{
    ChannelId, ClientId, Digest, Key, Transaction, TxId, ValidationCode, Value, Version,
};
use fabric_ledger::Block;
use fabric_peer::validator::{mvcc_validate_into, MvccScratch};
use fabric_peer::LaneScheduler;
use fabric_statedb::{
    CommitWrite, LsmConfig, LsmStateDb, MemStateDb, StateStore, WriteBatch, WriteRef,
};
use fabric_trace::TraceSink;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn key(i: u64) -> Key {
    Key::composite("K", i)
}

/// Builds `count` blocks of `block_size` transactions. Each transaction
/// reads 4 keys and writes 2. With probability `conflict` a key comes
/// from a 16-key hot set (forcing transactions into shared dependency
/// chains); otherwise from a per-transaction disjoint slice of the
/// working set, so at `conflict = 0` every transaction is an independent
/// chain. Reads claim the version the generator's model predicts, so
/// blocks are mostly valid modulo in-block conflicts — which both paths
/// must resolve identically.
fn make_blocks(count: usize, block_size: usize, conflict: f64, seed: u64) -> Vec<Block> {
    let mut rng = StdRng::seed_from_u64(seed);
    let working = (block_size * 8) as u64;
    let mut model: HashMap<u64, Version> = (0..working).map(|i| (i, Version::GENESIS)).collect();

    (0..count)
        .map(|b| {
            let block_num = (b + 1) as u64;
            let mut staged: Vec<(u64, Version)> = Vec::new();
            let mut written_in_block: HashSet<u64> = HashSet::new();
            let txs: Vec<Transaction> = (0..block_size)
                .map(|tx_num| {
                    // Disjoint per-transaction home range: 6 keys.
                    let home = (tx_num as u64) * 6 % working;
                    let pick = |slot: u64, rng: &mut StdRng| -> u64 {
                        if rng.random::<f64>() < conflict {
                            rng.random_range(0..16)
                        } else {
                            (home + slot) % working
                        }
                    };
                    let mut bld = RwSetBuilder::new();
                    let mut reads = Vec::with_capacity(4);
                    for s in 0..4 {
                        let k = pick(s, &mut rng);
                        reads.push(k);
                        bld.record_read(key(k), model.get(&k).copied());
                    }
                    let mut writes = Vec::with_capacity(2);
                    for s in 4..6 {
                        let k = pick(s, &mut rng);
                        writes.push(k);
                        bld.record_write(key(k), Some(Value::from_i64((b * 8 + tx_num) as i64)));
                    }
                    if reads.iter().all(|k| !written_in_block.contains(k)) {
                        for &k in &writes {
                            written_in_block.insert(k);
                            staged.push((k, Version::new(block_num, tx_num as u32)));
                        }
                    }
                    Transaction {
                        id: TxId::next(),
                        channel: ChannelId(0),
                        client: ClientId(0),
                        chaincode: "cc".into(),
                        rwset: bld.build(),
                        endorsements: vec![],
                        created_at: Instant::now(),
                    }
                })
                .collect();
            for (k, v) in staged {
                model.insert(k, v);
            }
            Block::build(block_num, Digest::ZERO, txs)
        })
        .collect()
}

fn genesis_writes(working: u64) -> Vec<CommitWrite> {
    (0..working).map(|i| CommitWrite::put(key(i), Value::from_i64(0), 0)).collect()
}

fn fresh_mem(working: u64) -> MemStateDb {
    let db = MemStateDb::new();
    db.apply_block(0, &genesis_writes(working)).expect("genesis");
    db
}

/// The sequential hot path exactly as a lane-less peer runs it.
fn run_sequential(
    store: &dyn StateStore,
    blocks: &[Block],
) -> (Duration, Vec<Vec<ValidationCode>>) {
    let mut scratch = MvccScratch::new();
    let endorsement_ok: Vec<bool> =
        vec![true; blocks.iter().map(|b| b.txs.len()).max().unwrap_or(0)];
    let t0 = Instant::now();
    let mut all_codes = Vec::with_capacity(blocks.len());
    for block in blocks {
        let mut codes = Vec::with_capacity(block.txs.len());
        mvcc_validate_into(
            block,
            store,
            &endorsement_ok[..block.txs.len()],
            &mut scratch,
            &mut codes,
        )
        .unwrap();
        apply(store, block, &codes, None);
        all_codes.push(codes);
    }
    (t0.elapsed(), all_codes)
}

/// The lane path exactly as a lane-configured peer runs it: partition +
/// lane-parallel MVCC, then the lane-parallel shard install. No hints
/// (the bench has no sealer) — the scheduler rebuilds the partition, the
/// path conformance proves identical to the hinted one.
fn run_lanes(
    store: &dyn StateStore,
    blocks: &[Block],
    sched: &LaneScheduler,
) -> (Duration, Vec<Vec<ValidationCode>>) {
    let endorsement_ok: Vec<bool> =
        vec![true; blocks.iter().map(|b| b.txs.len()).max().unwrap_or(0)];
    let sink = TraceSink::disabled();
    let t0 = Instant::now();
    let mut all_codes = Vec::with_capacity(blocks.len());
    for block in blocks {
        let mut codes = Vec::with_capacity(block.txs.len());
        let occ = sched
            .validate(block, store, &endorsement_ok[..block.txs.len()], None, &mut codes, &sink)
            .unwrap();
        store.counters().record_lane_commit(occ.lanes_used, occ.chain_serializations);
        apply(store, block, &codes, Some(sched));
        all_codes.push(codes);
    }
    (t0.elapsed(), all_codes)
}

fn apply(store: &dyn StateStore, block: &Block, codes: &[ValidationCode], lanes: Option<&LaneScheduler>) {
    let mut batch = WriteBatch::new(block.header.number);
    for (tx_num, (tx, code)) in block.txs.iter().zip(codes).enumerate() {
        if code.is_valid() {
            for e in tx.rwset.writes.entries() {
                batch.push(WriteRef { key: &e.key, value: e.value.as_ref(), tx: tx_num as u32 });
            }
        }
    }
    match lanes {
        Some(s) => store.apply_write_batch_lanes(&batch, s.pool()).unwrap(),
        None => store.apply_write_batch(&batch).unwrap(),
    }
}

/// The CI gate: at every lane count and on both engines the lane path is
/// bit-identical to the sequential baseline — codes, post-state,
/// watermark — with the same batched-read traffic.
fn differential_check(lane_sweep: &[usize]) {
    let block_size = 128;
    let working = (block_size * 8) as u64;
    let lo = key(0);
    let hi = key(working + 1);
    for &conflict in &[0.0f64, 0.5, 0.9] {
        let blocks = make_blocks(6, block_size, conflict, 1234);
        let seq_store = fresh_mem(working);
        let (_, seq_codes) = run_sequential(&seq_store, &blocks);
        let valid = seq_codes.iter().flatten().filter(|c| c.is_valid()).count();
        let invalid = seq_codes.iter().flatten().filter(|c| !c.is_valid()).count();
        if conflict > 0.0 {
            assert!(
                valid > 0 && invalid > 0,
                "differential input must exercise both outcomes \
                 (conflict={conflict}: valid={valid} invalid={invalid})"
            );
        }
        for &lanes in lane_sweep {
            let sched = LaneScheduler::new(lanes);
            // Memory engine: lane-parallel validate AND lane-parallel
            // shard install.
            let mem = fresh_mem(working);
            let base = mem.counters().snapshot();
            let (_, lane_codes) = run_lanes(&mem, &blocks, &sched);
            let stats = mem.counters().snapshot().since(&base);
            assert_eq!(
                lane_codes, seq_codes,
                "codes diverge at {lanes} lanes, conflict {conflict}"
            );
            assert_eq!(mem.last_committed_block(), seq_store.last_committed_block());
            assert_eq!(
                mem.scan_range(&lo, &hi).unwrap(),
                seq_store.scan_range(&lo, &hi).unwrap(),
                "post-state diverges at {lanes} lanes, conflict {conflict}"
            );
            assert_eq!(stats.multi_get_batches, blocks.len() as u64, "one prefetch per block");
            assert_eq!(stats.point_gets, 0, "no per-read point gets on the lane path");
            if lanes > 1 {
                assert!(stats.lanes_used > 0, "occupancy counters recorded");
            }

            // LSM engine: same lane validation; the engine keeps its
            // serial group-commit apply (the default), and the result must
            // still be identical.
            let dir = std::env::temp_dir()
                .join(format!("fabric-pcs-{}-{lanes}-{}", std::process::id(), conflict));
            let _ = std::fs::remove_dir_all(&dir);
            let lsm = LsmStateDb::open(&dir, LsmConfig::default()).unwrap();
            lsm.apply_block(0, &genesis_writes(working)).unwrap();
            let (_, lsm_codes) = run_lanes(&lsm, &blocks, &sched);
            assert_eq!(
                lsm_codes, seq_codes,
                "LSM codes diverge at {lanes} lanes, conflict {conflict}"
            );
            assert_eq!(
                lsm.scan_range(&lo, &hi).unwrap(),
                seq_store.scan_range(&lo, &hi).unwrap(),
                "LSM post-state diverges at {lanes} lanes, conflict {conflict}"
            );
            drop(lsm);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    fabric_bench::smoke::record(
        "parallel_commit_scaling",
        "lanes-vs-sequential",
        true,
        "lane codes+post-state == sequential baseline at 2/4/8 lanes, \
         conflict 0.0/0.5/0.9, memory + LSM engines, one prefetch per block",
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let lane_sweep: &[usize] = &[2, 4, 8];
    differential_check(if smoke { &[2, 4, 8] } else { lane_sweep });
    if smoke {
        // CI cares about the gate, not single-core timing noise.
        return;
    }

    let mut header = false;
    for &block_size in &[256usize, 1024] {
        for &conflict in &[0.0f64, 0.5, 0.9] {
            let blocks = make_blocks(24, block_size, conflict, 7);
            let working = (block_size * 8) as u64;
            let txs = blocks.len() * block_size;
            // Sequential baseline: min of three runs, fresh store each.
            let seq = (0..3)
                .map(|_| run_sequential(&fresh_mem(working), &blocks).0)
                .min()
                .unwrap();
            for &lanes in &[1usize, 2, 4, 8] {
                let sched = LaneScheduler::new(lanes);
                let mut lane_time = Duration::MAX;
                let mut stats = Default::default();
                for _ in 0..3 {
                    let store = fresh_mem(working);
                    let base = store.counters().snapshot();
                    let (elapsed, _) = run_lanes(&store, &blocks, &sched);
                    if elapsed < lane_time {
                        lane_time = elapsed;
                    }
                    stats = store.counters().snapshot().since(&base);
                }
                let seq_ms = seq.as_secs_f64() * 1e3;
                let lane_ms = lane_time.as_secs_f64() * 1e3;
                let nblocks = blocks.len() as f64;
                print_row(
                    &mut header,
                    &[
                        ("block_size", block_size.to_string()),
                        ("conflict", format!("{conflict:.1}")),
                        ("lanes", lanes.to_string()),
                        ("blocks", blocks.len().to_string()),
                        ("seq_ms", format!("{seq_ms:.1}")),
                        ("lanes_ms", format!("{lane_ms:.1}")),
                        (
                            "ktps_lanes",
                            format!("{:.1}", txs as f64 / lane_time.as_secs_f64() / 1e3),
                        ),
                        ("lanes_used_avg", format!("{:.2}", stats.lanes_used as f64 / nblocks)),
                        (
                            "chain_serializations_per_block",
                            format!("{:.1}", stats.chain_serializations as f64 / nblocks),
                        ),
                        ("speedup_vs_seq", format!("{:.2}", seq_ms / lane_ms)),
                    ],
                );
            }
        }
    }
}
