//! **Figure 10** — breakdown of the individual optimizations.
//!
//! The Figure 1 configuration (BS=1024, RW=8, HR=40 %, HW=10 %, HSS=1 %)
//! run under four pipelines: vanilla Fabric, Fabric++ with only
//! reordering, Fabric++ with only early abort, and full Fabric++. The
//! paper: vanilla ≈100 valid tps, each optimization alone ≈150, both
//! together ≈220 — the techniques compose.
//!
//! Flags:
//! - `--smoke`: short trace-enabled run per mode with self-checks (JSONL
//!   round-trip, Chrome document shape, no dropped events, abort
//!   provenance consistent with the outcome counters); exits nonzero on
//!   any failure. This is the CI trace gate.
//! - `--trace <prefix>`: enables the flight recorder and writes
//!   `<prefix>.<mode>.jsonl` + `<prefix>.<mode>.chrome.json` per mode.
//! - `--lanes <n>`: overrides `PipelineConfig::commit_lanes` for every
//!   mode (default: the host's available parallelism), so the
//!   `mvcc_lanes`/`apply_lanes` sub-phase rows and lane-occupancy
//!   counters can be recorded even on hosts where the default is 1.

use std::path::PathBuf;
use std::time::Duration;

use fabric_bench::{
    arg_value, point_duration, run_experiment,
    runner::{export_trace, print_phase_table, print_row, print_store_stats},
    ExperimentResult, RunSpec, WorkloadKind,
};
use fabric_common::{CostModel, PipelineConfig};
use fabric_net::LatencyModel;
use fabric_workloads::CustomConfig;

/// Ring capacity for traced runs: far above what a short run emits, so the
/// smoke gate can insist on `dropped == 0`.
const TRACE_CAPACITY: usize = 1 << 20;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let trace_prefix = arg_value("--trace").map(PathBuf::from);
    let lanes: Option<usize> = arg_value("--lanes").and_then(|v| v.parse().ok());
    let duration = if smoke { Duration::from_millis(600) } else { point_duration() };
    let mut header = false;
    let mut phase_tables = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    for (key, mode, pipeline) in [
        ("fabric", "fabric", PipelineConfig::vanilla()),
        ("reorder", "fabric++(only reordering)", PipelineConfig::reordering_only()),
        ("earlyabort", "fabric++(only early abort)", PipelineConfig::early_abort_only()),
        ("fabricpp", "fabric++(reordering & early abort)", PipelineConfig::fabric_pp()),
    ] {
        let mut pipeline = pipeline.with_block_size(1024);
        if let Some(n) = lanes {
            pipeline.commit_lanes = n;
        }
        let mut spec = RunSpec::paper_default(
            mode,
            pipeline,
            WorkloadKind::Custom(CustomConfig::default()),
            duration,
        );
        if smoke {
            // Keep the gate fast and deterministic-ish on small hosts.
            spec.latency = LatencyModel::zero();
            spec.cost = CostModel::raw();
            spec.rate_per_client = 200.0;
        }
        if smoke || trace_prefix.is_some() {
            spec = spec.with_trace(TRACE_CAPACITY);
        }
        let r = run_experiment(&spec);
        let s = r.report.stats;
        print_row(
            &mut header,
            &[
                ("mode", mode.to_string()),
                ("valid_tps", format!("{:.1}", r.valid_tps())),
                ("aborted_tps", format!("{:.1}", r.aborted_tps())),
                ("mvcc_aborts", s.mvcc_conflict.to_string()),
                ("early_abort_sim", s.early_abort_simulation.to_string()),
                ("early_abort_cycle", s.early_abort_cycle.to_string()),
                ("early_abort_version", s.early_abort_version_mismatch.to_string()),
            ],
        );
        if let Some(prefix) = &trace_prefix {
            let mut os = prefix.as_os_str().to_owned();
            os.push(format!(".{key}"));
            export_trace(mode, &r.report, &PathBuf::from(os)).expect("trace export failed");
        }
        if smoke {
            smoke_check(mode, &r, &mut failures);
        }
        phase_tables.push((mode, r.report.phases, r.report.store));
    }
    for (mode, phases, store) in &phase_tables {
        print_phase_table(mode, phases);
        print_store_stats(mode, store);
    }
    if smoke {
        fabric_bench::smoke::record(
            "fig10_breakdown",
            "trace-self-checks",
            failures.is_empty(),
            &if failures.is_empty() {
                "JSONL round-trip, Chrome envelope, zero drops, counters match per mode".into()
            } else {
                failures.join("; ")
            },
        );
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("SMOKE FAIL: {f}");
        }
        std::process::exit(1);
    }
}

/// The CI gate's checks over one traced run.
fn smoke_check(mode: &str, r: &ExperimentResult, failures: &mut Vec<String>) {
    use fabric_trace::{chrome, jsonl, EventKind};

    let mut check = |cond: bool, msg: String| {
        if !cond {
            failures.push(format!("[{mode}] {msg}"));
        }
    };
    let Some(trace) = &r.report.trace else {
        check(false, "smoke run produced no trace".into());
        return;
    };

    // The ring must have been large enough to retain everything.
    check(trace.dropped == 0, format!("{} events dropped", trace.dropped));
    check(
        trace.emitted == trace.dropped + trace.events.len() as u64,
        format!(
            "emitted {} != dropped {} + retained {}",
            trace.emitted,
            trace.dropped,
            trace.events.len()
        ),
    );
    check(!trace.events.is_empty(), "trace is empty".into());

    // JSONL round-trips losslessly.
    let dump = jsonl::to_string(&trace.events);
    match jsonl::parse_str(&dump) {
        Ok(parsed) => check(parsed == trace.events, "JSONL round-trip mismatch".into()),
        Err(e) => check(false, format!("JSONL parse error: {e:?}")),
    }

    // The Chrome document has the trace-event envelope.
    let doc = chrome::to_string(&trace.events);
    check(
        doc.starts_with('{') && doc.trim_end().ends_with('}'),
        "chrome document is not a JSON object".into(),
    );
    check(doc.contains("\"traceEvents\""), "chrome document lacks traceEvents".into());

    // Abort provenance is present and consistent with the counters: every
    // outcome the reporting peer / orderer counted appears as exactly one
    // provenance-carrying event.
    let s = &r.report.stats;
    let count = |label: &str| {
        trace.events.iter().filter(|e| e.kind.label() == label).count() as u64
    };
    check(
        count("mvcc_conflict") == s.mvcc_conflict,
        format!("{} mvcc_conflict events vs {} counted", count("mvcc_conflict"), s.mvcc_conflict),
    );
    check(
        count("early_abort_version") == s.early_abort_version_mismatch,
        format!(
            "{} early_abort_version events vs {} counted",
            count("early_abort_version"),
            s.early_abort_version_mismatch
        ),
    );
    check(
        count("early_abort_cycle") == s.early_abort_cycle,
        format!(
            "{} early_abort_cycle events vs {} counted",
            count("early_abort_cycle"),
            s.early_abort_cycle
        ),
    );
    check(
        count("tx_committed") == s.valid,
        format!("{} tx_committed events vs {} valid", count("tx_committed"), s.valid),
    );
    for ev in &trace.events {
        if let EventKind::TxMvccConflict { expected, writer, .. } = &ev.kind {
            check(
                expected.is_some() || writer.is_some(),
                format!("mvcc_conflict without provenance at seq {}", ev.seq),
            );
        }
    }
}
