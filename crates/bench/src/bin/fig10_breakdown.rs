//! **Figure 10** — breakdown of the individual optimizations.
//!
//! The Figure 1 configuration (BS=1024, RW=8, HR=40 %, HW=10 %, HSS=1 %)
//! run under four pipelines: vanilla Fabric, Fabric++ with only
//! reordering, Fabric++ with only early abort, and full Fabric++. The
//! paper: vanilla ≈100 valid tps, each optimization alone ≈150, both
//! together ≈220 — the techniques compose.

use fabric_bench::{
    point_duration, run_experiment,
    runner::{print_phase_table, print_row, print_store_stats},
    RunSpec, WorkloadKind,
};
use fabric_common::PipelineConfig;
use fabric_workloads::CustomConfig;

fn main() {
    let duration = point_duration();
    let mut header = false;
    let mut phase_tables = Vec::new();

    for (mode, pipeline) in [
        ("fabric", PipelineConfig::vanilla()),
        ("fabric++(only reordering)", PipelineConfig::reordering_only()),
        ("fabric++(only early abort)", PipelineConfig::early_abort_only()),
        ("fabric++(reordering & early abort)", PipelineConfig::fabric_pp()),
    ] {
        let spec = RunSpec::paper_default(
            mode,
            pipeline.with_block_size(1024),
            WorkloadKind::Custom(CustomConfig::default()),
            duration,
        );
        let r = run_experiment(&spec);
        let s = r.report.stats;
        print_row(
            &mut header,
            &[
                ("mode", mode.to_string()),
                ("valid_tps", format!("{:.1}", r.valid_tps())),
                ("aborted_tps", format!("{:.1}", r.aborted_tps())),
                ("mvcc_aborts", s.mvcc_conflict.to_string()),
                ("early_abort_sim", s.early_abort_simulation.to_string()),
                ("early_abort_cycle", s.early_abort_cycle.to_string()),
                ("early_abort_version", s.early_abort_version_mismatch.to_string()),
            ],
        );
        phase_tables.push((mode, r.report.phases, r.report.store));
    }
    for (mode, phases, store) in &phase_tables {
        print_phase_table(mode, phases);
        print_store_stats(mode, store);
    }
}
