//! **Reorder scaling** — ordering-stage throughput as the reorder worker
//! pool grows (workers ∈ {1, 2, 4, 8}).
//!
//! Fabric++ puts Algorithm 1 on the orderer's critical path; the
//! [`ReorderPipeline`] moves it onto worker threads so the cutter can keep
//! cutting batch *k+1* while batch *k* reorders, with only numbering and
//! hash chaining sequential. This sweep drives synthetic cut batches
//! (batch size × conflict rate grid) straight through pipeline + seal and
//! reports ordering throughput per worker count — on a multi-core box the
//! conflict-heavy points should scale with workers, on a single-core host
//! the columns are honest parity (extra workers time-slice one core).
//!
//! `--smoke` (used by CI) runs the differential gate only at a reduced
//! grid: for every worker count the pipelined block stream must be
//! **byte-identical** to the sequential `order_batch` path — same block
//! numbers, same header hashes (hence the same whole hash chain), same
//! transaction order, same early aborts.

use std::time::{Duration, Instant};

use fabric_bench::runner::print_row;
use fabric_common::rwset::RwSetBuilder;
use fabric_common::{
    default_reorder_workers, ChannelId, ClientId, Key, PipelineConfig, Transaction, TxId, Value,
    Version,
};
use fabric_ordering::{CutReason, OrderingService, PreparedBatch, ReorderPipeline};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An endorsed-shaped transaction reading/writing the given key ids.
/// Reads all carry `Version::GENESIS` so the ordering-phase early abort
/// never fires and the sweep isolates the reordering cost.
fn mk_tx(reads: &[u64], writes: &[u64]) -> Transaction {
    let mut b = RwSetBuilder::new();
    for &k in reads {
        b.record_read(Key::composite("K", k), Some(Version::GENESIS));
    }
    for &k in writes {
        b.record_write(Key::composite("K", k), Some(Value::from_i64(1)));
    }
    Transaction {
        id: TxId::next(),
        channel: ChannelId(0),
        client: ClientId(0),
        chaincode: "cc".into(),
        rwset: b.build(),
        endorsements: vec![],
        created_at: Instant::now(),
    }
}

/// Synthetic cut batches: each transaction reads 4 and writes 4 keys;
/// with probability `conflict` a key comes from a 16-key hot set (dense
/// conflict cycles), otherwise from a large cold range (no conflicts).
fn make_batches(count: usize, batch_size: usize, conflict: f64, seed: u64) -> Vec<Vec<Transaction>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cold = 1_000u64;
    (0..count)
        .map(|_| {
            (0..batch_size)
                .map(|_| {
                    let mut pick = |rng: &mut StdRng| -> u64 {
                        if rng.random::<f64>() < conflict {
                            rng.random_range(0..16)
                        } else {
                            cold += 1;
                            cold
                        }
                    };
                    let reads: Vec<u64> = (0..4).map(|_| pick(&mut rng)).collect();
                    let writes: Vec<u64> = (0..4).map(|_| pick(&mut rng)).collect();
                    mk_tx(&reads, &writes)
                })
                .collect()
        })
        .collect()
}

/// Fingerprint of an ordered block stream: (number, header hash, tx ids,
/// early-aborted ids+codes) per block. Header hashes chain, so equal
/// fingerprints mean byte-identical chains.
type StreamPrint = Vec<(u64, String, Vec<u64>, usize)>;

fn seal_all(
    service: &mut OrderingService,
    prepared: impl IntoIterator<Item = PreparedBatch>,
    out: &mut StreamPrint,
) {
    for p in prepared {
        if let Some(ob) = service.seal(p.plan) {
            out.push((
                ob.block.header.number,
                format!("{:?}", ob.block.header.hash()),
                ob.block.txs.iter().map(|t| t.id.raw()).collect(),
                ob.early_aborted.len(),
            ));
        }
    }
}

fn run_pipelined(
    config: &PipelineConfig,
    batches: &[Vec<Transaction>],
    workers: usize,
) -> (Duration, StreamPrint) {
    let mut service = OrderingService::new(config);
    let mut pipeline = ReorderPipeline::new(service.batch_prep(), workers);
    let mut stream = StreamPrint::new();
    let t0 = Instant::now();
    for batch in batches {
        pipeline.submit(batch.clone(), CutReason::TxCount);
        seal_all(&mut service, pipeline.try_collect(), &mut stream);
    }
    seal_all(&mut service, pipeline.drain(), &mut stream);
    (t0.elapsed(), stream)
}

fn run_sequential(config: &PipelineConfig, batches: &[Vec<Transaction>]) -> (Duration, StreamPrint) {
    let mut service = OrderingService::new(config);
    let mut stream = StreamPrint::new();
    let t0 = Instant::now();
    for batch in batches {
        if let Some(ob) = service.order_batch(batch.clone()) {
            stream.push((
                ob.block.header.number,
                format!("{:?}", ob.block.header.hash()),
                ob.block.txs.iter().map(|t| t.id.raw()).collect(),
                ob.early_aborted.len(),
            ));
        }
    }
    (t0.elapsed(), stream)
}

/// The CI gate: at every worker count the pipelined block stream equals
/// the sequential one — block numbers, header hashes, transaction order,
/// early-abort counts.
fn differential_check(config: &PipelineConfig, sweep: &[usize]) {
    let batches = make_batches(12, 96, 0.5, 42);
    let (_, reference) = run_sequential(config, &batches);
    assert!(!reference.is_empty(), "differential input produces blocks");
    for &workers in sweep {
        let (_, pipelined) = run_pipelined(config, &batches, workers);
        assert_eq!(
            pipelined, reference,
            "pipelined block stream diverges from sequential at {workers} workers"
        );
    }
    fabric_bench::smoke::record(
        "reorder_scaling",
        "pipelined-vs-sequential",
        true,
        &format!("pipelined block stream == sequential order_batch at {sweep:?} workers"),
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let config = PipelineConfig::fabric_pp();
    println!(
        "# knobs: max_cycles={} max_scc_for_enumeration={} reorder_workers(default)={} available_parallelism={}",
        config.max_cycles,
        config.max_scc_for_enumeration,
        config.reorder_workers,
        default_reorder_workers(),
    );
    let worker_sweep: &[usize] = if smoke { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    differential_check(&config, worker_sweep);
    if smoke {
        // CI cares about the gate, not single-core timing noise.
        return;
    }

    let mut header = false;
    for &batch_size in &[256usize, 1024] {
        for &conflict in &[0.1f64, 0.5] {
            let batches = make_batches(24, batch_size, conflict, 7);
            let txs: usize = batches.iter().map(Vec::len).sum();
            let mut base_ms = 0.0;
            for &workers in worker_sweep {
                // Warm once (thread spawn, allocator), then measure.
                run_pipelined(&config, &batches, workers);
                let (elapsed, stream) = run_pipelined(&config, &batches, workers);
                let ms = elapsed.as_secs_f64() * 1e3;
                if workers == 1 {
                    base_ms = ms;
                }
                print_row(
                    &mut header,
                    &[
                        ("batch_size", batch_size.to_string()),
                        ("conflict", format!("{conflict:.1}")),
                        ("reorder_workers", workers.to_string()),
                        ("blocks", stream.len().to_string()),
                        ("order_ms", format!("{ms:.1}")),
                        ("ktps", format!("{:.1}", txs as f64 / elapsed.as_secs_f64() / 1e3)),
                        ("speedup_vs_1", format!("{:.2}", base_ms / ms)),
                    ],
                );
            }
        }
    }
}
