//! **Figure 8 (a–c)** — Smallbank throughput under varying skew and write
//! ratio.
//!
//! 100 000 users; Pw ∈ {5 %, 50 %, 95 %} (read-heavy / balanced /
//! write-heavy); Zipf s-value swept 0.0–2.0 in steps of 0.2; Fabric vs.
//! Fabric++. The paper finds both healthy at low skew, and Fabric++
//! pulling away dramatically (up to 12.61×) at s ≥ 1.0.

use fabric_bench::{point_duration, run_experiment, runner::print_row, RunSpec, WorkloadKind};
use fabric_common::PipelineConfig;
use fabric_workloads::SmallbankConfig;

fn main() {
    let duration = point_duration();
    let mut header = false;

    for p_write in [0.05f64, 0.50, 0.95] {
        for step in 0..=10 {
            let s_value = step as f64 * 0.2;
            for (mode, pipeline) in [
                ("fabric", PipelineConfig::vanilla()),
                ("fabric++", PipelineConfig::fabric_pp()),
            ] {
                let cfg = SmallbankConfig { users: 100_000, p_write, s_value, seed: 1 };
                let spec = RunSpec::paper_default(
                    mode,
                    pipeline,
                    WorkloadKind::Smallbank(cfg),
                    duration,
                );
                let r = run_experiment(&spec);
                print_row(
                    &mut header,
                    &[
                        ("p_write", format!("{p_write}")),
                        ("s_value", format!("{s_value:.1}")),
                        ("mode", mode.to_string()),
                        ("valid_tps", format!("{:.1}", r.valid_tps())),
                        ("aborted_tps", format!("{:.1}", r.aborted_tps())),
                    ],
                );
            }
        }
    }
}
