//! Sustained Zipfian soak with live windowed telemetry — the over-time
//! measurement ROADMAP item 3 asks for: goodput + p99 under skewed load,
//! reported per logical-time window, not as one end-of-run aggregate.
//!
//! Clients fire Smallbank transactions (Zipfian account selection,
//! skew `--skew`) continuously — no pacing — until the reporting peer's
//! chain reaches `--blocks` committed blocks. The run's telemetry series
//! (window = `--window` blocks) lands in `results/soak_timeseries.jsonl`
//! (plus a Prometheus text rendering next to it), and the run's
//! trajectory record — goodput, p99, per-window counts, and the verdict
//! of a baseline-comparison regression gate — in `results/BENCH_soak.json`.
//!
//! Usage: `soak_zipfian [flags]`
//!   --blocks N       committed blocks to soak for (default 200)
//!   --window W       telemetry window in blocks (default 8)
//!   --users U        Smallbank accounts (default 1000)
//!   --skew S         Zipfian s-value (default 0.9)
//!   --out PATH       timeseries JSONL path (default results/soak_timeseries.jsonl)
//!   --baseline PATH  baseline trajectory record (default results/BENCH_soak.baseline.json)
//!   --json[=PATH]    also write the full RunReport document (uniform flag)
//!   --smoke          small run; assert window invariants and exercise both
//!                    regression-gate paths; record gates to $SMOKE_SUMMARY
//!
//! Regression gate: if the baseline file exists and records a goodput more
//! than 20% above this run's, the gate fails loudly (non-zero exit). With
//! no baseline it skips with a note — first runs must not fail CI.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fabric_bench::json::{run_to_json, JsonSink};
use fabric_bench::{arg_value, smoke};
use fabric_common::PipelineConfig;
use fabric_net::LatencyModel;
use fabric_telemetry::{jsonl, prom, TelemetryConfig, TelemetrySeries};
use fabric_workloads::smallbank::SmallbankChaincode;
use fabric_workloads::{SmallbankConfig, SmallbankWorkload, WorkloadGen};
use fabricpp::{NetworkBuilder, RunReport};

const BIN: &str = "soak_zipfian";
const CLIENTS: usize = 4;
/// Regression threshold: fail when goodput drops by more than this
/// fraction below the recorded baseline.
const MAX_GOODPUT_DROP: f64 = 0.20;

struct SoakArgs {
    blocks: u64,
    window: u64,
    users: u64,
    skew: f64,
    out: PathBuf,
    baseline: PathBuf,
    record: PathBuf,
    smoke: bool,
}

impl SoakArgs {
    fn parse() -> Self {
        let smoke = std::env::args().any(|a| a == "--smoke");
        SoakArgs {
            blocks: arg_value("--blocks")
                .map(|s| s.parse().expect("--blocks"))
                .unwrap_or(if smoke { 24 } else { 200 }),
            window: arg_value("--window")
                .map(|s| s.parse().expect("--window"))
                .unwrap_or(if smoke { 4 } else { 8 }),
            users: arg_value("--users")
                .map(|s| s.parse().expect("--users"))
                .unwrap_or(if smoke { 200 } else { 1000 }),
            skew: arg_value("--skew").map(|s| s.parse().expect("--skew")).unwrap_or(0.9),
            out: arg_value("--out")
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from("results/soak_timeseries.jsonl")),
            baseline: arg_value("--baseline")
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from("results/BENCH_soak.baseline.json")),
            record: PathBuf::from("results/BENCH_soak.json"),
            smoke,
        }
    }
}

/// Fires Smallbank proposals from `CLIENTS` free-running client threads
/// until the reporting peer commits `blocks` blocks (or a generous
/// wall-clock cap trips). Returns the report plus the firing duration.
fn soak(args: &SoakArgs) -> (RunReport, Duration) {
    let wl_cfg = SmallbankConfig {
        users: args.users,
        p_write: 0.9,
        s_value: args.skew,
        seed: 42,
    };
    let genesis = SmallbankWorkload::new(wl_cfg.clone()).genesis();
    let net = NetworkBuilder::new()
        .orgs(2)
        .peers_per_org(2)
        .channels(1)
        .pipeline(PipelineConfig::fabric_pp())
        .latency(LatencyModel::zero())
        .cost(fabric_common::CostModel::raw())
        .genesis(genesis)
        .deploy(SmallbankChaincode::deployable())
        .telemetry(TelemetryConfig {
            window_blocks: args.window,
            ..TelemetryConfig::default()
        })
        .build()
        .expect("network build failed");

    // Free-running load: each client thread endorses + submits as fast as
    // the pipeline accepts (the soak measures sustained capacity, so no
    // pacer). The run ends on logical progress, not wall-clock.
    let stop = Arc::new(AtomicBool::new(false));
    let fire_start = Instant::now();
    let mut threads = Vec::new();
    for cl in 0..CLIENTS {
        let client = net.client(0);
        let stop = stop.clone();
        let mut gen = SmallbankWorkload::new(SmallbankConfig {
            seed: wl_cfg.seed.wrapping_add((cl as u64 + 1).wrapping_mul(0x9E37)),
            ..wl_cfg.clone()
        });
        let chaincode = gen.chaincode();
        threads.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let _ = client.submit(chaincode, gen.next_args());
            }
        }));
    }

    // Watch logical progress on the reporting peer; the cap only guards
    // against a wedged pipeline (it is not a measurement boundary).
    let reporting = net.channel_peers(0)[0].clone();
    let target_height = args.blocks + 1; // genesis included
    let cap = Duration::from_secs(600);
    while reporting.ledger().height() < target_height && fire_start.elapsed() < cap {
        std::thread::sleep(Duration::from_millis(2));
    }
    stop.store(true, Ordering::Relaxed);
    for t in threads {
        t.join().expect("client thread panicked");
    }
    let fire_duration = fire_start.elapsed();
    (net.finish(), fire_duration)
}

/// Reads `"goodput_tps": <f64>` out of a previously written trajectory
/// record (the only shape this binary writes).
fn baseline_goodput(path: &Path) -> Option<f64> {
    let doc = std::fs::read_to_string(path).ok()?;
    let tag = "\"goodput_tps\":";
    let start = doc.find(tag)? + tag.len();
    let rest = doc[start..].trim_start();
    let end = rest.find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())?;
    rest[..end].parse().ok()
}

enum GateVerdict {
    /// No baseline recorded: first run, nothing to compare against.
    Skipped,
    /// Goodput within the allowed envelope of the baseline.
    Pass { baseline: f64, delta_pct: f64 },
    /// Goodput dropped more than [`MAX_GOODPUT_DROP`] below the baseline.
    Fail { baseline: f64, delta_pct: f64 },
}

/// The perf-trajectory regression gate: compares this run's goodput to the
/// recorded baseline.
fn regression_gate(goodput: f64, baseline_path: &Path) -> GateVerdict {
    let Some(base) = baseline_goodput(baseline_path) else {
        return GateVerdict::Skipped;
    };
    let delta_pct = if base > 0.0 { (goodput - base) / base * 100.0 } else { 0.0 };
    if base > 0.0 && goodput < base * (1.0 - MAX_GOODPUT_DROP) {
        GateVerdict::Fail { baseline: base, delta_pct }
    } else {
        GateVerdict::Pass { baseline: base, delta_pct }
    }
}

/// Writes the `BENCH_soak.json` trajectory record: the headline numbers,
/// the gate verdict, and the full embedded run report.
fn write_record(
    args: &SoakArgs,
    report: &RunReport,
    fire_duration: Duration,
    goodput: f64,
    verdict: &GateVerdict,
) -> std::io::Result<()> {
    let series = report.timeseries.as_ref().expect("soak always records telemetry");
    let (verdict_str, baseline_field) = match verdict {
        GateVerdict::Skipped => ("skip", "null".to_owned()),
        GateVerdict::Pass { baseline, delta_pct } => {
            ("pass", format!("{{\"goodput_tps\":{baseline:.2},\"delta_pct\":{delta_pct:.1}}}"))
        }
        GateVerdict::Fail { baseline, delta_pct } => {
            ("FAIL", format!("{{\"goodput_tps\":{baseline:.2},\"delta_pct\":{delta_pct:.1}}}"))
        }
    };
    let doc = format!(
        "{{\n  \"bin\": \"{BIN}\",\n  \"blocks\": {},\n  \"window\": {},\n  \"users\": {},\n  \
         \"skew\": {},\n  \"fire_duration_s\": {:.3},\n  \"goodput_tps\": {goodput:.2},\n  \
         \"p99_us\": {},\n  \"windows\": {},\n  \"dropped_windows\": {},\n  \
         \"regression_gate\": {{\"verdict\": \"{verdict_str}\", \"threshold_drop_pct\": {}, \
         \"baseline\": {baseline_field}}},\n  \"run\": {}\n}}\n",
        args.blocks,
        args.window,
        args.users,
        args.skew,
        fire_duration.as_secs_f64(),
        report.latency.p99.as_micros(),
        series.len(),
        series.dropped_windows,
        (MAX_GOODPUT_DROP * 100.0) as u64,
        run_to_json("soak", report, fire_duration),
    );
    if let Some(dir) = args.record.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(&args.record, doc)
}

/// Prints the per-window trajectory so the soak's over-time shape is
/// visible in the job log, not only in the JSONL.
fn print_windows(series: &TelemetrySeries) {
    println!("window,end_block,blocks,submitted,valid,aborted,p50_us,p99_us,cutter_q,pins");
    for w in &series.windows {
        println!(
            "{},{},{},{},{},{},{},{},{},{}",
            w.index,
            w.end_logical_block,
            w.blocks,
            w.stats.submitted,
            w.stats.valid,
            w.stats.aborted(),
            w.latency.p50_us,
            w.latency.p99_us,
            w.gauges.cutter_queue_txs,
            w.live_pins,
        );
    }
}

/// The `--smoke` extra: exercise the regression gate's baseline-present
/// and baseline-absent paths against scratch files, so CI proves both
/// verdicts without depending on repository state.
fn smoke_gate_paths(goodput: f64) -> bool {
    let dir = std::env::temp_dir().join(format!("fabric-soak-smoke-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    let missing = dir.join("no_baseline.json");
    let absent_ok = matches!(regression_gate(goodput, &missing), GateVerdict::Skipped);
    smoke::record(BIN, "regression-baseline-absent", absent_ok, "missing baseline skips");

    let present = dir.join("baseline.json");
    let _ = std::fs::write(&present, format!("{{\"goodput_tps\": {goodput:.2}}}"));
    let same_ok = matches!(regression_gate(goodput, &present), GateVerdict::Pass { .. });
    smoke::record(BIN, "regression-baseline-present", same_ok, "equal baseline passes");

    // A baseline far above this run must trip the gate — the detection
    // path itself is under test, not the repo's perf.
    let _ = std::fs::write(&present, format!("{{\"goodput_tps\": {:.2}}}", goodput * 10.0 + 10.0));
    let detects = matches!(regression_gate(goodput, &present), GateVerdict::Fail { .. });
    smoke::record(BIN, "regression-detects-drop", detects, ">20% drop vs inflated baseline fails");

    let _ = std::fs::remove_dir_all(&dir);
    absent_ok && same_ok && detects
}

fn main() {
    let args = SoakArgs::parse();
    println!(
        "# soak_zipfian: blocks={} window={} users={} skew={} smoke={}",
        args.blocks, args.window, args.users, args.skew, args.smoke
    );
    let (report, fire_duration) = soak(&args);
    let goodput = report.stats.valid as f64 / fire_duration.as_secs_f64().max(1e-9);
    let series = report.timeseries.clone().expect("telemetry was enabled");

    // Exports: JSONL + Prometheus text next to it.
    if let Some(dir) = args.out.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&args.out, jsonl::to_string(&series)).expect("write timeseries jsonl");
    let prom_path = args.out.with_extension("prom");
    std::fs::write(&prom_path, prom::render(&series)).expect("write timeseries prom");

    print_windows(&series);
    println!(
        "# soak: {} blocks in {:.2}s, goodput {:.1} tps, p99 {}us, {} windows -> {} + {}",
        report.block_heights[0].saturating_sub(1),
        fire_duration.as_secs_f64(),
        goodput,
        report.latency.p99.as_micros(),
        series.len(),
        args.out.display(),
        prom_path.display(),
    );

    // Window invariants: the series must partition the run exactly.
    let invariants = series.check_invariants(&report.stats);
    let mut failed = false;
    if args.smoke {
        smoke::record(
            BIN,
            "window-invariants",
            invariants.is_ok(),
            &match &invariants {
                Ok(()) => format!(
                    "{} windows over {} blocks sum to TxStats, watermarks monotone, 0 dropped",
                    series.len(),
                    args.blocks
                ),
                Err(e) => e.clone(),
            },
        );
        failed |= invariants.is_err();
        failed |= !smoke_gate_paths(goodput);
    } else if let Err(e) = invariants {
        eprintln!("soak_zipfian FAILED: window invariants violated: {e}");
        failed = true;
    }

    // The real regression gate against the recorded baseline.
    let verdict = regression_gate(goodput, &args.baseline);
    match &verdict {
        GateVerdict::Skipped => println!(
            "# regression gate: no baseline at {} — skipped (record one by copying \
             {} there)",
            args.baseline.display(),
            args.record.display()
        ),
        GateVerdict::Pass { baseline, delta_pct } => println!(
            "# regression gate: goodput {goodput:.1} vs baseline {baseline:.1} \
             ({delta_pct:+.1}%) — pass"
        ),
        GateVerdict::Fail { baseline, delta_pct } => {
            eprintln!(
                "soak_zipfian FAILED: goodput {goodput:.1} dropped {delta_pct:.1}% vs \
                 baseline {baseline:.1} (limit -{}%)",
                (MAX_GOODPUT_DROP * 100.0) as u64
            );
            failed = true;
        }
    }
    if args.smoke {
        let gate_ok = !matches!(verdict, GateVerdict::Fail { .. });
        smoke::record(
            BIN,
            "goodput-regression",
            gate_ok,
            &format!("goodput {goodput:.1} tps vs {}", args.baseline.display()),
        );
    }

    write_record(&args, &report, fire_duration, goodput, &verdict).expect("write BENCH_soak.json");
    println!("# trajectory record -> {}", args.record.display());

    // Uniform --json flag on top (full report document).
    let mut sink = JsonSink::from_args(BIN);
    sink.push_report("soak", &report, fire_duration);
    sink.finish().expect("write --json document");

    if failed {
        std::process::exit(1);
    }
}
