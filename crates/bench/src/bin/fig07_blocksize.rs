//! **Figure 7** — the impact of the blocksize.
//!
//! Smallbank with 100 000 users, write-heavy (Pw = 95 %), uniform account
//! selection (s = 0); blocksize swept from 16 to 2048 transactions in
//! logarithmic steps, for Fabric and Fabric++. The paper finds throughput
//! grows with the blocksize and Fabric++ gains more from larger blocks.

use fabric_bench::{point_duration, run_experiment, runner::print_row, RunSpec, WorkloadKind};
use fabric_common::PipelineConfig;
use fabric_workloads::SmallbankConfig;

fn main() {
    let duration = point_duration();
    let smallbank = SmallbankConfig { users: 100_000, p_write: 0.95, s_value: 0.0, seed: 1 };
    let mut header = false;

    for bs in [16usize, 32, 64, 128, 256, 512, 1024, 2048] {
        for (mode, pipeline) in [
            ("fabric", PipelineConfig::vanilla()),
            ("fabric++", PipelineConfig::fabric_pp()),
        ] {
            let spec = RunSpec::paper_default(
                mode,
                pipeline.with_block_size(bs),
                WorkloadKind::Smallbank(smallbank.clone()),
                duration,
            );
            let r = run_experiment(&spec);
            print_row(
                &mut header,
                &[
                    ("blocksize", bs.to_string()),
                    ("mode", mode.to_string()),
                    ("valid_tps", format!("{:.1}", r.valid_tps())),
                    ("aborted_tps", format!("{:.1}", r.aborted_tps())),
                ],
            );
        }
    }
}
