//! **Consensus scaling** — ordering throughput as the single ordering
//! process is replaced by a replicated consensus group (replicas ∈
//! {1, 3, 5}).
//!
//! The paper treats the ordering service as a black box (§2); this sweep
//! opens it: each cut batch becomes one propose → prevote → precommit →
//! decide height across `n` deterministic replicas, every replica
//! recomputes the Fabric++ block plan (cutter + reorderer + early abort)
//! from its own copy of the batch, and every replica seals its own chain.
//! The overhead measured here is therefore the honest single-core cost of
//! replication: n× plan computation + n× sealing + O(n²) message routing
//! per height, time-sliced onto one core. On a real deployment the n
//! plan computations run on n machines; the interesting deltas are the
//! per-replica message counts and the decide latency in rounds, which
//! this sweep reports alongside wall time.
//!
//! `--smoke` (used by CI) runs the differential gate only: for every
//! replica count the decided block stream must be **byte-identical** to
//! the sequential `order_batch` path — same block numbers, same header
//! hashes (hence the same whole hash chain), same transaction order, same
//! early aborts. The gate outcome is recorded via `fabric_bench::smoke`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fabric_bench::runner::print_row;
use fabric_bench::smoke;
use fabric_common::hash::Digest;
use fabric_common::rwset::RwSetBuilder;
use fabric_common::{
    ChannelId, ClientId, Key, PipelineConfig, Transaction, TxId, Value, Version,
};
use fabric_consensus::{GroupConfig, OrdererGroup};
use fabric_net::{FaultHook, LinkId, SendFault};
use fabric_ordering::OrderingService;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An endorsed-shaped transaction reading/writing the given key ids.
fn mk_tx(reads: &[u64], writes: &[u64]) -> Transaction {
    let mut b = RwSetBuilder::new();
    for &k in reads {
        b.record_read(Key::composite("K", k), Some(Version::GENESIS));
    }
    for &k in writes {
        b.record_write(Key::composite("K", k), Some(Value::from_i64(1)));
    }
    Transaction {
        id: TxId::next(),
        channel: ChannelId(0),
        client: ClientId(0),
        chaincode: "cc".into(),
        rwset: b.build(),
        endorsements: vec![],
        created_at: Instant::now(),
    }
}

/// Synthetic cut batches, same shape as `reorder_scaling`: 4 reads and 4
/// writes per transaction, a 16-key hot set with probability `conflict`.
fn make_batches(count: usize, batch_size: usize, conflict: f64, seed: u64) -> Vec<Vec<Transaction>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cold = 1_000u64;
    (0..count)
        .map(|_| {
            (0..batch_size)
                .map(|_| {
                    let mut pick = |rng: &mut StdRng| -> u64 {
                        if rng.random::<f64>() < conflict {
                            rng.random_range(0..16)
                        } else {
                            cold += 1;
                            cold
                        }
                    };
                    let reads: Vec<u64> = (0..4).map(|_| pick(&mut rng)).collect();
                    let writes: Vec<u64> = (0..4).map(|_| pick(&mut rng)).collect();
                    mk_tx(&reads, &writes)
                })
                .collect()
        })
        .collect()
}

/// Fault hook that delivers everything but counts consensus messages, so
/// the sweep can report messages per decided height.
struct CountingHook {
    consensus_msgs: AtomicU64,
}

impl FaultHook for CountingHook {
    fn on_send(&self, link: LinkId, _size: usize) -> SendFault {
        if link.is_consensus() {
            self.consensus_msgs.fetch_add(1, Ordering::Relaxed);
        }
        SendFault::Deliver
    }
}

/// Fingerprint of an ordered block stream: (number, header hash, tx ids,
/// early-abort count) per block. Header hashes chain, so equal
/// fingerprints mean byte-identical chains.
type StreamPrint = Vec<(u64, String, Vec<u64>, usize)>;

fn print_of(stream: &mut StreamPrint, ob: &fabric_ordering::OrderedBlock) {
    stream.push((
        ob.block.header.number,
        format!("{:?}", ob.block.header.hash()),
        ob.block.txs.iter().map(|t| t.id.raw()).collect(),
        ob.early_aborted.len(),
    ));
}

fn run_sequential(config: &PipelineConfig, batches: &[Vec<Transaction>]) -> (Duration, StreamPrint) {
    let mut service = OrderingService::new(config);
    let mut stream = StreamPrint::new();
    let t0 = Instant::now();
    for batch in batches {
        if let Some(ob) = service.order_batch(batch.clone()) {
            print_of(&mut stream, &ob);
        }
    }
    (t0.elapsed(), stream)
}

/// Runs the batch stream through an `n`-replica group; returns elapsed
/// time, the decided stream, and total consensus messages routed.
fn run_replicated(
    config: &PipelineConfig,
    batches: &[Vec<Transaction>],
    replicas: usize,
) -> (Duration, StreamPrint, u64) {
    let hook = Arc::new(CountingHook { consensus_msgs: AtomicU64::new(0) });
    let mut group = OrdererGroup::new(
        GroupConfig::new(replicas),
        config,
        0,
        Digest::ZERO,
        Arc::clone(&hook) as Arc<dyn FaultHook>,
    )
    .expect("static group config");
    let mut stream = StreamPrint::new();
    let t0 = Instant::now();
    for batch in batches {
        if let Some(ob) = group.decide_batch(batch.clone()).expect("clean net never loses quorum")
        {
            print_of(&mut stream, &ob);
        }
    }
    (t0.elapsed(), stream, hook.consensus_msgs.load(Ordering::Relaxed))
}

/// The CI gate: at every replica count the decided block stream equals
/// the sequential `order_batch` one — block numbers, header hashes,
/// transaction order, early-abort counts.
fn differential_check(config: &PipelineConfig, sweep: &[usize]) {
    let batches = make_batches(12, 96, 0.5, 42);
    let (_, reference) = run_sequential(config, &batches);
    assert!(!reference.is_empty(), "differential input produces blocks");
    for &replicas in sweep {
        let (_, decided, msgs) = run_replicated(config, &batches, replicas);
        assert_eq!(
            decided, reference,
            "replicated block stream diverges from sequential at {replicas} replicas"
        );
        if replicas == 1 {
            assert_eq!(msgs, 0, "a 1-replica group must send no consensus messages");
        }
    }
    smoke::record(
        "consensus_scaling",
        "replicated-vs-single",
        true,
        &format!(
            "decided stream byte-identical to order_batch at {sweep:?} replicas over {} batches",
            batches.len()
        ),
    );
}

fn main() {
    let smoke_only = std::env::args().any(|a| a == "--smoke");
    let config = PipelineConfig::fabric_pp();
    let replica_sweep: &[usize] = &[1, 3, 5];
    println!(
        "# knobs: quorum=majority timeout_ticks=2 replicas={replica_sweep:?} available_parallelism={}",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    );
    differential_check(&config, replica_sweep);
    if smoke_only {
        // CI cares about the gate, not single-core timing noise.
        return;
    }

    // Single-core parity note: all n replicas (plan computation, voting,
    // sealing) time-slice one core here, so order_ms grows ~linearly in n
    // by construction; msgs/height and rounds are the machine-independent
    // outputs.
    let mut header = false;
    for &batch_size in &[256usize, 1024] {
        for &conflict in &[0.1f64, 0.5] {
            let batches = make_batches(24, batch_size, conflict, 7);
            let txs: usize = batches.iter().map(Vec::len).sum();
            let mut base_ms = 0.0;
            for &replicas in replica_sweep {
                // Warm once (allocator, scratch), then measure.
                run_replicated(&config, &batches, replicas);
                let (elapsed, stream, msgs) = run_replicated(&config, &batches, replicas);
                let ms = elapsed.as_secs_f64() * 1e3;
                if replicas == 1 {
                    base_ms = ms;
                }
                print_row(
                    &mut header,
                    &[
                        ("batch_size", batch_size.to_string()),
                        ("conflict", format!("{conflict:.1}")),
                        ("replicas", replicas.to_string()),
                        ("blocks", stream.len().to_string()),
                        ("order_ms", format!("{ms:.1}")),
                        ("ktps", format!("{:.1}", txs as f64 / elapsed.as_secs_f64() / 1e3)),
                        ("msgs_per_height", format!("{:.1}", msgs as f64 / batches.len() as f64)),
                        ("overhead_vs_1", format!("{:.2}", ms / base_ms)),
                    ],
                );
            }
        }
    }
}
