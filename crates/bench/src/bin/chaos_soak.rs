//! Chaos soak: many seeded fault-injection runs back to back, each swept
//! for invariant violations. A failing seed reproduces exactly by rerunning
//! with the same arguments — print-outs include everything needed.
//!
//! Usage: `chaos_soak [seeds] [blocks] [mode]`
//!   seeds   number of consecutive seeds to soak (default 20)
//!   blocks  blocks per run (default 12)
//!   mode    `fabric`, `fabric++`, or `both` (default both)
//!
//! Exits non-zero on the first invariant violation.

use std::time::Instant;

use fabric_chaos::{ChaosNet, FaultPlan};
use fabric_common::PipelineConfig;
use fabric_workloads::smallbank::SmallbankChaincode;
use fabric_workloads::{SmallbankConfig, SmallbankWorkload, WorkloadGen};

const ORGS: usize = 2;
const PEERS_PER_ORG: usize = 2;
const TXS_PER_BLOCK: u64 = 5;

/// One soak run: a chaotic plan with a mid-run crash/restart, seeded
/// Smallbank traffic, and the full invariant sweep. Returns the number of
/// injected faults; panics (after printing the repro line) on violations.
fn soak_one(label: &str, config: &PipelineConfig, seed: u64, blocks: u64) -> u64 {
    // Crash a rotating non-reporting peer partway through the run.
    let victim = 2 + seed % (ORGS * PEERS_PER_ORG - 1) as u64;
    let plan = FaultPlan::chaotic(seed).with_crash(victim, blocks / 2, 2);
    let mut wl = SmallbankWorkload::new(SmallbankConfig {
        users: 50,
        p_write: 0.9,
        s_value: 0.6,
        seed,
    });
    let genesis = wl.genesis();
    let mut net = ChaosNet::new(
        config,
        ORGS,
        PEERS_PER_ORG,
        vec![SmallbankChaincode::deployable()],
        &genesis,
        plan,
    )
    .expect("soak plan is valid");
    let mut client = 0u64;
    for _ in 0..blocks {
        for _ in 0..TXS_PER_BLOCK {
            net.propose_and_submit(client, "smallbank", wl.next_args());
            client += 1;
        }
        net.cut_block().expect("cut");
    }
    let report = net.check().expect("settle");
    if !report.ok() {
        eprintln!(
            "chaos_soak FAILED: mode={label} seed={seed} blocks={blocks} \
             schedule={}\n{:#?}",
            net.injector().schedule_digest().to_hex(),
            report.violations
        );
        std::process::exit(1);
    }
    net.injector().fault_count()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seeds: u64 = args.get(1).map_or(20, |s| s.parse().expect("seeds"));
    let blocks: u64 = args.get(2).map_or(12, |s| s.parse().expect("blocks"));
    let mode = args.get(3).map(String::as_str).unwrap_or("both");
    let mut modes: Vec<(&str, PipelineConfig)> = Vec::new();
    if mode == "fabric" || mode == "both" {
        modes.push(("fabric", PipelineConfig::vanilla()));
    }
    if mode == "fabric++" || mode == "both" {
        modes.push(("fabric++", PipelineConfig::fabric_pp()));
    }
    assert!(!modes.is_empty(), "mode must be fabric, fabric++, or both");

    let t0 = Instant::now();
    let mut total_faults = 0u64;
    for (label, config) in &modes {
        for seed in 1..=seeds {
            let faults = soak_one(label, config, seed, blocks);
            total_faults += faults;
            println!("ok mode={label} seed={seed} blocks={blocks} faults={faults}");
        }
    }
    println!(
        "chaos_soak PASSED: {} runs, {total_faults} faults injected, {:?}",
        seeds * modes.len() as u64,
        t0.elapsed()
    );
}
