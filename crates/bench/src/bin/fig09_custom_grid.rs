//! **Figure 9** — the 36-configuration custom-workload grid.
//!
//! N = 10 000 accounts; RW ∈ {4, 8} reads & writes per transaction;
//! HR ∈ {10 %, 20 %, 40 %}; HW ∈ {5 %, 10 %}; HSS ∈ {1 %, 2 %, 4 %};
//! BS = 1024. Fabric vs. Fabric++ on every cell (the paper's largest
//! observed improvement here is ≈3× at RW=8, HR=40 %, HW=10 %, HSS=1 %).

use fabric_bench::{point_duration, run_experiment, runner::print_row, RunSpec, WorkloadKind};
use fabric_common::PipelineConfig;
use fabric_workloads::CustomConfig;

fn main() {
    let duration = point_duration();
    let mut header = false;

    for rw in [4usize, 8] {
        for hr in [0.10f64, 0.20, 0.40] {
            for hw in [0.05f64, 0.10] {
                for hss in [0.01f64, 0.02, 0.04] {
                    for (mode, pipeline) in [
                        ("fabric", PipelineConfig::vanilla()),
                        ("fabric++", PipelineConfig::fabric_pp()),
                    ] {
                        let cfg = CustomConfig {
                            accounts: 10_000,
                            rw,
                            hot_read_prob: hr,
                            hot_write_prob: hw,
                            hot_set_fraction: hss,
                            seed: 1,
                        };
                        let spec = RunSpec::paper_default(
                            mode,
                            pipeline.clone().with_block_size(1024),
                            WorkloadKind::Custom(cfg),
                            duration,
                        );
                        let r = run_experiment(&spec);
                        print_row(
                            &mut header,
                            &[
                                ("rw", rw.to_string()),
                                ("hr", format!("{hr}")),
                                ("hw", format!("{hw}")),
                                ("hss", format!("{hss}")),
                                ("mode", mode.to_string()),
                                ("valid_tps", format!("{:.1}", r.valid_tps())),
                                ("aborted_tps", format!("{:.1}", r.aborted_tps())),
                            ],
                        );
                    }
                }
            }
        }
    }
}
