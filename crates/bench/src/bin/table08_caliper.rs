//! **Table 8** — the Caliper-style latency measurement.
//!
//! The paper runs Hyperledger Caliper at a reduced rate (150 proposals per
//! second per client × 4 clients = 600 tps) with BS = 512 on the custom
//! workload (N=10 000, RW=4, HR=40 %, HW=10 %, HSS=1 %) and reports
//! min / max / avg latency plus successful throughput for Fabric and
//! Fabric++. Our framework measures the same quantities directly.

use fabric_bench::{point_duration, run_experiment, runner::print_row, RunSpec, WorkloadKind};
use fabric_common::PipelineConfig;
use fabric_workloads::CustomConfig;

fn main() {
    let duration = point_duration();
    let workload = WorkloadKind::Custom(CustomConfig {
        accounts: 10_000,
        rw: 4,
        hot_read_prob: 0.40,
        hot_write_prob: 0.10,
        hot_set_fraction: 0.01,
        seed: 1,
    });
    let mut header = false;

    for (mode, pipeline) in [
        ("fabric", PipelineConfig::vanilla()),
        ("fabric++", PipelineConfig::fabric_pp()),
    ] {
        let mut spec = RunSpec::paper_default(
            mode,
            pipeline.with_block_size(512),
            workload.clone(),
            duration,
        );
        spec.rate_per_client = 150.0;
        let r = run_experiment(&spec);
        let lat = r.report.latency;
        print_row(
            &mut header,
            &[
                ("mode", mode.to_string()),
                ("max_latency_s", format!("{:.2}", lat.max.as_secs_f64())),
                ("min_latency_s", format!("{:.2}", lat.min.as_secs_f64())),
                ("avg_latency_s", format!("{:.2}", lat.avg.as_secs_f64())),
                ("p95_latency_s", format!("{:.2}", lat.p95.as_secs_f64())),
                ("valid_tps", format!("{:.0}", r.valid_tps())),
            ],
        );
    }
}
