//! **Figure 11 (a, b)** — scaling channels and clients.
//!
//! (a) channels swept 1→8 with 2 clients each; (b) clients per channel
//! swept 1→8 on a single channel. Custom workload at the Figure 1
//! configuration. The paper finds both systems scale to 4 channels then
//! degrade from resource competition, with failed transactions rising
//! steeply at 8 channels / 8 clients.

use fabric_bench::{point_duration, run_experiment, runner::print_row, RunSpec, WorkloadKind};
use fabric_common::PipelineConfig;
use fabric_workloads::CustomConfig;

fn main() {
    let duration = point_duration();
    let which = fabric_bench::arg_value("--part").unwrap_or_else(|| "both".into());
    let mut header = false;

    if which == "channels" || which == "both" {
        for channels in [1usize, 2, 4, 8] {
            for (mode, pipeline) in [
                ("fabric", PipelineConfig::vanilla()),
                ("fabric++", PipelineConfig::fabric_pp()),
            ] {
                let mut spec = RunSpec::paper_default(
                    mode,
                    pipeline.with_block_size(1024),
                    WorkloadKind::Custom(CustomConfig::default()),
                    duration,
                );
                spec.channels = channels;
                spec.clients_per_channel = 2;
                let r = run_experiment(&spec);
                print_row(
                    &mut header,
                    &[
                        ("sweep", "channels".to_string()),
                        ("n", channels.to_string()),
                        ("mode", mode.to_string()),
                        ("valid_tps", format!("{:.1}", r.valid_tps())),
                        ("failed_tps", format!("{:.1}", r.aborted_tps())),
                    ],
                );
            }
        }
    }

    if which == "clients" || which == "both" {
        for clients in [1usize, 2, 4, 8] {
            for (mode, pipeline) in [
                ("fabric", PipelineConfig::vanilla()),
                ("fabric++", PipelineConfig::fabric_pp()),
            ] {
                let mut spec = RunSpec::paper_default(
                    mode,
                    pipeline.with_block_size(1024),
                    WorkloadKind::Custom(CustomConfig::default()),
                    duration,
                );
                spec.channels = 1;
                spec.clients_per_channel = clients;
                let r = run_experiment(&spec);
                print_row(
                    &mut header,
                    &[
                        ("sweep", "clients".to_string()),
                        ("n", clients.to_string()),
                        ("mode", mode.to_string()),
                        ("valid_tps", format!("{:.1}", r.valid_tps())),
                        ("failed_tps", format!("{:.1}", r.aborted_tps())),
                    ],
                );
            }
        }
    }
}
