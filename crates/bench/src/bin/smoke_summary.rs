//! **Smoke summary** — folds the JSON lines the `--smoke` gates appended
//! to `$SMOKE_SUMMARY` (see `fabric_bench::smoke`) into one
//! machine-readable JSON document for the whole CI run.
//!
//! Usage: `smoke_summary [records-file [output-file]]`. The records file
//! defaults to `$SMOKE_SUMMARY`; with no output file the document goes to
//! stdout only. Exits non-zero when no records exist (the gates did not
//! run — a silently-skipped gate must not look green) or when any
//! recorded gate failed.

use fabric_bench::smoke;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let records_path = args
        .first()
        .map(std::path::PathBuf::from)
        .or_else(smoke::summary_path)
        .unwrap_or_else(|| {
            eprintln!("smoke_summary: no records file ({} unset, no argument)", smoke::SUMMARY_ENV);
            std::process::exit(2);
        });
    let raw = std::fs::read_to_string(&records_path).unwrap_or_else(|e| {
        eprintln!("smoke_summary: cannot read {}: {e}", records_path.display());
        std::process::exit(2);
    });
    let records: Vec<_> = raw.lines().filter_map(smoke::parse_line).collect();
    if records.is_empty() {
        eprintln!("smoke_summary: {} holds no gate records", records_path.display());
        std::process::exit(2);
    }
    let doc = smoke::aggregate(&records);
    print!("{doc}");
    if let Some(out) = args.get(1) {
        std::fs::write(out, &doc).unwrap_or_else(|e| {
            eprintln!("smoke_summary: cannot write {out}: {e}");
            std::process::exit(2);
        });
    }
    // Judge each gate by its latest record only: a stale FAIL from a
    // superseded attempt must not fail a fresh run (and a stale PASS must
    // not mask a fresh failure).
    let (deduped, duplicates) = smoke::dedupe_latest(&records);
    if duplicates > 0 {
        eprintln!("smoke_summary: {duplicates} superseded record(s) collapsed");
    }
    let failed = deduped.iter().filter(|r| !r.passed).count();
    if failed > 0 {
        eprintln!("smoke_summary: {failed} gate(s) failed");
        std::process::exit(1);
    }
}
