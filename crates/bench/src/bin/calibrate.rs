//! Quick calibration run: vanilla vs. Fabric++ on the Figure 1/10
//! configuration. Not one of the paper's experiments; a sanity tool for
//! checking that the simulator exhibits the paper's qualitative behaviour
//! (meaningful ≈ blank total throughput; Fabric++ ≫ Fabric on successes).

use fabric_bench::{point_duration, run_experiment, RunSpec, WorkloadKind};
use fabric_common::PipelineConfig;
use fabric_workloads::CustomConfig;

fn main() {
    let duration = point_duration();
    for (label, pipeline) in [
        ("fabric", PipelineConfig::vanilla()),
        ("fabric++", PipelineConfig::fabric_pp()),
    ] {
        let spec = RunSpec::paper_default(
            label,
            pipeline,
            WorkloadKind::Custom(CustomConfig::default()),
            duration,
        );
        let r = run_experiment(&spec);
        let s = r.report.stats;
        println!(
            "{label}: submitted={:.0}/s valid={:.0}/s aborted={:.0}/s \
             (mvcc={} sim={} cycle={} vm={}) blocks={} lat_avg={:?}",
            r.submitted_tps(),
            r.valid_tps(),
            r.aborted_tps(),
            s.mvcc_conflict,
            s.early_abort_simulation,
            s.early_abort_cycle,
            s.early_abort_version_mismatch,
            r.report.block_heights[0],
            r.report.latency.avg,
        );
    }
}
