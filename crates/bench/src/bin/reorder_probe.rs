//! Developer probe: times the reordering mechanism on a synthetic hot
//! block matching the Figure 1/10 configuration (1024 txs, RW=8, HR=40%,
//! HW=10%, HSS=1% of 10k accounts).

use std::time::Instant;

use fabric_common::rwset::ReadWriteSet;
use fabric_common::{Key, Value, Version};
use fabric_reorder::{reorder, ReorderConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    let accounts = 10_000u64;
    let hot = 100u64;
    let mut sets = Vec::new();
    for _ in 0..1024 {
        let pick = |rng: &mut StdRng, hot_p: f64| -> u64 {
            if rng.random::<f64>() < hot_p {
                rng.random_range(0..hot)
            } else {
                rng.random_range(hot..accounts)
            }
        };
        let reads: Vec<Key> =
            (0..8).map(|_| Key::composite("bal", pick(&mut rng, 0.4))).collect();
        let writes: Vec<Key> =
            (0..8).map(|_| Key::composite("bal", pick(&mut rng, 0.1))).collect();
        sets.push(fabric_common::rwset::rwset_from_keys(
            &reads,
            Version::GENESIS,
            &writes,
            &Value::from_i64(1),
        ));
    }
    let refs: Vec<&ReadWriteSet> = sets.iter().collect();

    for _ in 0..3 {
        let t0 = Instant::now();
        let result = reorder(&refs, &ReorderConfig::default());
        println!(
            "reorder(1024 hot txs): {:?}  scheduled={} aborted={} edges={} sccs={} cycles={} fallback={}",
            t0.elapsed(),
            result.schedule.len(),
            result.aborted.len(),
            result.stats.edges,
            result.stats.nontrivial_sccs,
            result.stats.cycles,
            result.stats.fallback_used,
        );
    }
}
