//! Machine-readable smoke-gate summaries.
//!
//! Every `--smoke` experiment binary is a CI gate: it asserts a
//! differential or invariant property and exits non-zero on violation.
//! Those gates run as separate CI steps, so their outcomes are scattered
//! across the job log. This module gives each gate one line of structured
//! output: when the `SMOKE_SUMMARY` environment variable names a file,
//! [`record`] appends a JSON object per gate, and the `smoke_summary`
//! binary folds the accumulated lines into a single machine-readable
//! summary document for the whole CI run.
//!
//! The format is deliberately tiny — flat objects, string/bool fields —
//! so it needs no serde and any log-scraping tool can consume it.

use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::PathBuf;

/// The environment variable naming the shared summary file.
pub const SUMMARY_ENV: &str = "SMOKE_SUMMARY";

/// Outcome of one smoke gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateResult {
    /// Experiment binary the gate belongs to (e.g. `reorder_scaling`).
    pub bin: String,
    /// Gate name (e.g. `pipelined-vs-sequential`).
    pub gate: String,
    /// Whether the gate held.
    pub passed: bool,
    /// One-line human context (counts, sweep parameters).
    pub detail: String,
}

/// Where gate records accumulate, if `SMOKE_SUMMARY` is set.
pub fn summary_path() -> Option<PathBuf> {
    std::env::var_os(SUMMARY_ENV).map(PathBuf::from)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn to_json(r: &GateResult) -> String {
    format!(
        r#"{{"bin":"{}","gate":"{}","passed":{},"detail":"{}"}}"#,
        escape(&r.bin),
        escape(&r.gate),
        r.passed,
        escape(&r.detail)
    )
}

/// Records one gate outcome: always echoed to stdout (prefixed `# gate:`
/// so CSV consumers skip it), and appended as a JSON line to the
/// `SMOKE_SUMMARY` file when that variable is set. Failures of the file
/// write are deliberately ignored — a gate must never fail because its
/// bookkeeping did.
pub fn record(bin: &str, gate: &str, passed: bool, detail: &str) {
    let r = GateResult {
        bin: bin.to_owned(),
        gate: gate.to_owned(),
        passed,
        detail: detail.to_owned(),
    };
    println!(
        "# gate: {} / {} -> {} ({})",
        r.bin,
        r.gate,
        if passed { "pass" } else { "FAIL" },
        r.detail
    );
    if let Some(path) = summary_path() {
        if let Ok(mut f) = OpenOptions::new().create(true).append(true).open(path) {
            let _ = writeln!(f, "{}", to_json(&r));
        }
    }
}

/// Extracts the string value of `"field":"..."` from one flat JSON line
/// (the only shape [`record`] writes).
fn string_field(line: &str, field: &str) -> Option<String> {
    let tag = format!("\"{field}\":\"");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let v = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(v)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

/// Parses one JSON line produced by [`record`].
pub fn parse_line(line: &str) -> Option<GateResult> {
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    Some(GateResult {
        bin: string_field(line, "bin")?,
        gate: string_field(line, "gate")?,
        passed: line.contains("\"passed\":true"),
        detail: string_field(line, "detail")?,
    })
}

/// Collapses duplicate `(bin, gate)` records, keeping the **last** record
/// for each pair at the position of its first occurrence. Returns the
/// deduplicated list plus the number of records dropped.
///
/// The summary file is append-only across CI steps, so a re-run step (e.g.
/// a flaky-runner retry) appends a second record for the same gate. Only
/// the latest run's verdict speaks for a gate: a stale FAIL line from a
/// previous attempt must not fail a fresh green run, and a stale PASS must
/// not mask a fresh failure.
pub fn dedupe_latest(records: &[GateResult]) -> (Vec<GateResult>, usize) {
    let mut out: Vec<GateResult> = Vec::with_capacity(records.len());
    let mut duplicates = 0usize;
    for r in records {
        match out.iter().position(|o| o.bin == r.bin && o.gate == r.gate) {
            Some(i) => {
                out[i] = r.clone();
                duplicates += 1;
            }
            None => out.push(r.clone()),
        }
    }
    (out, duplicates)
}

/// Folds accumulated gate records into the single summary document the
/// CI run publishes: counts plus the full result list. Duplicate
/// `(bin, gate)` records are collapsed via [`dedupe_latest`] — each gate is
/// counted once, judged by its most recent record — and the number of
/// collapsed records is reported as `"duplicates"`.
pub fn aggregate(records: &[GateResult]) -> String {
    let (records, duplicates) = dedupe_latest(records);
    let passed = records.iter().filter(|r| r.passed).count();
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"gates\": {},\n  \"passed\": {},\n  \"failed\": {},\n  \"duplicates\": {},\n  \"results\": [\n",
        records.len(),
        passed,
        records.len() - passed,
        duplicates
    ));
    for (i, r) in records.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&to_json(r));
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip_through_json_lines() {
        let r = GateResult {
            bin: "consensus_scaling".into(),
            gate: "replicated-vs-single".into(),
            passed: true,
            detail: "replicas [1, 3, 5] over 12 batches, \"quoted\"\nline".into(),
        };
        let parsed = parse_line(&to_json(&r)).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn aggregate_counts_and_embeds_results() {
        let rs = vec![
            GateResult { bin: "a".into(), gate: "g1".into(), passed: true, detail: String::new() },
            GateResult { bin: "b".into(), gate: "g2".into(), passed: false, detail: "boom".into() },
        ];
        let doc = aggregate(&rs);
        assert!(doc.contains("\"gates\": 2"));
        assert!(doc.contains("\"passed\": 1"));
        assert!(doc.contains("\"failed\": 1"));
        assert!(doc.contains("\"duplicates\": 0"));
        assert!(doc.contains("\"gate\":\"g2\""));
        // Every embedded line parses back.
        let parsed: Vec<_> = doc
            .lines()
            .filter(|l| l.trim_start().starts_with('{') && l.contains("\"bin\""))
            .filter_map(parse_line)
            .collect();
        assert_eq!(parsed, rs);
    }

    fn gr(bin: &str, gate: &str, passed: bool, detail: &str) -> GateResult {
        GateResult {
            bin: bin.into(),
            gate: gate.into(),
            passed,
            detail: detail.into(),
        }
    }

    #[test]
    fn dedupe_keeps_last_record_per_gate() {
        let rs = vec![
            gr("a", "g1", true, "first"),
            gr("b", "g2", true, "other bin"),
            gr("a", "g1", true, "second"),
            gr("a", "g1", true, "third"),
        ];
        let (deduped, dups) = dedupe_latest(&rs);
        assert_eq!(dups, 2);
        assert_eq!(deduped.len(), 2);
        // Position of first occurrence, value of last.
        assert_eq!(deduped[0].detail, "third");
        assert_eq!(deduped[1].detail, "other bin");
        // Same gate name under a different bin is NOT a duplicate.
        let (d2, dups2) = dedupe_latest(&[gr("a", "g", true, ""), gr("b", "g", true, "")]);
        assert_eq!((d2.len(), dups2), (2, 0));
    }

    #[test]
    fn stale_fail_superseded_by_fresh_pass() {
        // A failed first attempt followed by a re-run's pass: the fresh
        // record wins, so the aggregate reports zero failures (and vice
        // versa, a stale pass must not mask a fresh failure).
        let rs = vec![gr("a", "g1", false, "stale attempt"), gr("a", "g1", true, "re-run")];
        let doc = aggregate(&rs);
        assert!(doc.contains("\"gates\": 1"), "{doc}");
        assert!(doc.contains("\"failed\": 0"), "stale FAIL must not fail the run: {doc}");
        assert!(doc.contains("\"duplicates\": 1"), "{doc}");
        assert!(doc.contains("\"detail\":\"re-run\""));
        assert!(!doc.contains("stale attempt"));

        let rs = vec![gr("a", "g1", true, "stale pass"), gr("a", "g1", false, "fresh fail")];
        let (deduped, _) = dedupe_latest(&rs);
        assert_eq!(deduped.iter().filter(|r| !r.passed).count(), 1);
        assert!(aggregate(&rs).contains("\"failed\": 1"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_line("").is_none());
        assert!(parse_line("not json").is_none());
        assert!(parse_line("{\"bin\":\"x\"}").is_none(), "missing fields");
    }
}
