//! Workload selection for experiment runs.

use std::sync::Arc;

use fabric_common::{Key, Value};
use fabric_peer::chaincode::Chaincode;
use fabric_workloads::{
    blank::BlankChaincode, custom::CustomChaincode, smallbank::SmallbankChaincode, BlankWorkload,
    CustomConfig, CustomWorkload, SmallbankConfig, SmallbankWorkload, WorkloadGen,
};

/// Which workload an experiment fires.
#[derive(Debug, Clone)]
pub enum WorkloadKind {
    /// The Smallbank benchmark (paper §6.4.1).
    Smallbank(SmallbankConfig),
    /// The paper's custom hot-key workload (§6.4.2).
    Custom(CustomConfig),
    /// Blank transactions (Figure 1).
    Blank,
}

impl WorkloadKind {
    /// The chaincodes a network running this workload must deploy.
    pub fn chaincodes(&self) -> Vec<Arc<dyn Chaincode>> {
        match self {
            WorkloadKind::Smallbank(_) => vec![SmallbankChaincode::deployable()],
            WorkloadKind::Custom(_) => vec![CustomChaincode::deployable()],
            WorkloadKind::Blank => vec![BlankChaincode::deployable()],
        }
    }

    /// The genesis state the workload expects.
    pub fn genesis(&self) -> Vec<(Key, Value)> {
        match self {
            WorkloadKind::Smallbank(cfg) => SmallbankWorkload::new(cfg.clone()).genesis(),
            WorkloadKind::Custom(cfg) => CustomWorkload::new(cfg.clone()).genesis(),
            WorkloadKind::Blank => Vec::new(),
        }
    }

    /// A fresh generator stream for one client thread. Distinct
    /// `client_seed`s give distinct, deterministic streams.
    pub fn generator(&self, client_seed: u64) -> Box<dyn WorkloadGen> {
        match self {
            WorkloadKind::Smallbank(cfg) => Box::new(SmallbankWorkload::new(SmallbankConfig {
                seed: cfg.seed.wrapping_add(client_seed.wrapping_mul(0x9E37)),
                ..cfg.clone()
            })),
            WorkloadKind::Custom(cfg) => Box::new(CustomWorkload::new(CustomConfig {
                seed: cfg.seed.wrapping_add(client_seed.wrapping_mul(0x9E37)),
                ..cfg.clone()
            })),
            WorkloadKind::Blank => Box::new(BlankWorkload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaincode_names_match_generators() {
        for kind in [
            WorkloadKind::Smallbank(SmallbankConfig { users: 10, ..Default::default() }),
            WorkloadKind::Custom(CustomConfig { accounts: 10, ..Default::default() }),
            WorkloadKind::Blank,
        ] {
            let ccs = kind.chaincodes();
            assert_eq!(ccs.len(), 1);
            let mut g = kind.generator(0);
            assert_eq!(ccs[0].name(), g.chaincode());
            let _ = g.next_args();
        }
    }

    #[test]
    fn distinct_client_seeds_give_distinct_streams() {
        let kind = WorkloadKind::Custom(CustomConfig { accounts: 100, ..Default::default() });
        let mut a = kind.generator(1);
        let mut b = kind.generator(2);
        let sa: Vec<Vec<u8>> = (0..10).map(|_| a.next_args()).collect();
        let sb: Vec<Vec<u8>> = (0..10).map(|_| b.next_args()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn genesis_sizes() {
        assert_eq!(
            WorkloadKind::Smallbank(SmallbankConfig { users: 5, ..Default::default() })
                .genesis()
                .len(),
            10
        );
        assert_eq!(
            WorkloadKind::Custom(CustomConfig { accounts: 7, ..Default::default() })
                .genesis()
                .len(),
            7
        );
        assert!(WorkloadKind::Blank.genesis().is_empty());
    }
}
