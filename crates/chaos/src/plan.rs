//! Declarative fault plans.
//!
//! A [`FaultPlan`] is pure data: probabilities for the random fault kinds,
//! plus explicitly scheduled partitions, crash points, and WAL faults.
//! Paired with a seed it fully determines a fault schedule — the
//! [`crate::FaultInjector`] turns the plan into per-message verdicts.

use std::time::Duration;

use fabric_common::{Error, Result};
use fabric_consensus::{Equivocation, OrdererCrash};
use fabric_net::LinkId;

/// A network partition over a set of peers, expressed as a per-link
/// message-count window: while the `nth` message on a link into the
/// partitioned set satisfies `from_nth <= nth < until_nth`, the message
/// is dropped. In the block-granular chaos harness each link carries one
/// message per block, so the window is effectively a block-number range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Raw peer ids (`PeerId::raw()`) cut off from the rest of the network.
    pub peers: Vec<u64>,
    /// First per-link message index (0-based) inside the partition.
    pub from_nth: u64,
    /// First per-link message index after the partition heals.
    pub until_nth: u64,
}

impl Partition {
    /// True when the `nth` message to `peer` falls inside the window.
    pub fn covers(&self, peer: u64, nth: u64) -> bool {
        self.peers.contains(&peer) && (self.from_nth..self.until_nth).contains(&nth)
    }
}

/// A scheduled peer crash: the peer dies just before block `at_block` is
/// delivered, optionally tearing the tail of its on-disk block log, and is
/// restarted (recovery + archive catch-up) `restart_after_blocks` blocks
/// later. `restart_after_blocks == 0` leaves the peer down until the
/// harness shuts down (it is then excluded from invariant checks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// Raw peer id (`PeerId::raw()`).
    pub peer: u64,
    /// Block number whose delivery the peer misses first.
    pub at_block: u64,
    /// Blocks after `at_block` at which the peer is restarted (0 = never).
    pub restart_after_blocks: u64,
    /// Bytes torn off the tail of the peer's block log while down,
    /// simulating a crash mid-append. Only meaningful with persistence.
    pub tear_bytes: u64,
}

/// A scheduled write-ahead-log fault, applied through the injectable-IO
/// seam in the LSM WAL ([`fabric_statedb::WalFaultPolicy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalFault {
    /// WAL block number the fault fires on.
    pub at_block: u64,
    /// Bytes of the record that reach disk (torn write). `0` keeps
    /// nothing; the append still reports success, like a lying disk cache.
    pub keep: usize,
}

/// A seedable description of which faults to inject and how often.
///
/// Probabilities are expressed per mille (0..=1000) and consulted once per
/// message send; at most one random fault fires per message. Partitions
/// take precedence over random faults on the links they cover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the fault-decision RNG stream.
    pub seed: u64,
    /// Probability (per mille) a message is silently dropped.
    pub drop_per_mille: u32,
    /// Probability (per mille) a message is delivered twice.
    pub duplicate_per_mille: u32,
    /// Probability (per mille) a message suffers a latency spike.
    pub delay_per_mille: u32,
    /// Size of an injected latency spike (real time in the threaded net;
    /// one logical round in the deterministic harness).
    pub delay_spike: Duration,
    /// Probability (per mille) a message opens a reorder burst.
    pub reorder_per_mille: u32,
    /// Messages absorbed and released in reverse order per burst (>= 2).
    pub reorder_burst_len: u32,
    /// Scheduled partitions.
    pub partitions: Vec<Partition>,
    /// Scheduled crash/restart points.
    pub crashes: Vec<CrashPoint>,
    /// Scheduled WAL IO faults.
    pub wal_faults: Vec<WalFault>,
    /// Scheduled orderer-replica crashes (replicated ordering only).
    pub orderer_crashes: Vec<OrdererCrash>,
    /// Scheduled leader equivocations (replicated ordering only).
    pub equivocations: Vec<Equivocation>,
}

impl FaultPlan {
    /// No faults at all — the control arm of every chaos matrix.
    pub fn quiescent(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_per_mille: 0,
            duplicate_per_mille: 0,
            delay_per_mille: 0,
            delay_spike: Duration::from_millis(5),
            reorder_per_mille: 0,
            reorder_burst_len: 3,
            partitions: Vec::new(),
            crashes: Vec::new(),
            wal_faults: Vec::new(),
            orderer_crashes: Vec::new(),
            equivocations: Vec::new(),
        }
    }

    /// A mildly hostile network: occasional drops, duplicates, delays and
    /// reorder bursts, no scheduled faults.
    pub fn lossy(seed: u64) -> Self {
        FaultPlan {
            drop_per_mille: 100,
            duplicate_per_mille: 60,
            delay_per_mille: 60,
            reorder_per_mille: 40,
            ..FaultPlan::quiescent(seed)
        }
    }

    /// An actively hostile network: heavy loss, duplication and reordering.
    pub fn chaotic(seed: u64) -> Self {
        FaultPlan {
            drop_per_mille: 250,
            duplicate_per_mille: 150,
            delay_per_mille: 150,
            reorder_per_mille: 100,
            reorder_burst_len: 4,
            ..FaultPlan::quiescent(seed)
        }
    }

    /// Adds a partition window (builder style).
    pub fn with_partition(mut self, peers: Vec<u64>, from_nth: u64, until_nth: u64) -> Self {
        self.partitions.push(Partition { peers, from_nth, until_nth });
        self
    }

    /// Adds a crash point (builder style).
    pub fn with_crash(mut self, peer: u64, at_block: u64, restart_after_blocks: u64) -> Self {
        self.crashes.push(CrashPoint { peer, at_block, restart_after_blocks, tear_bytes: 0 });
        self
    }

    /// Adds a crash point that also tears the tail of the peer's block log.
    pub fn with_torn_crash(
        mut self,
        peer: u64,
        at_block: u64,
        restart_after_blocks: u64,
        tear_bytes: u64,
    ) -> Self {
        self.crashes.push(CrashPoint { peer, at_block, restart_after_blocks, tear_bytes });
        self
    }

    /// Adds a WAL torn-write fault (builder style).
    pub fn with_wal_fault(mut self, at_block: u64, keep: usize) -> Self {
        self.wal_faults.push(WalFault { at_block, keep });
        self
    }

    /// Adds an orderer-replica crash (builder style). `after_propose`
    /// kills the replica right after its proposal hits the wire — the
    /// leader-dies-mid-height scenario; otherwise it misses the height
    /// entirely. Only meaningful with a replicated ordering service.
    pub fn with_orderer_crash(
        mut self,
        replica: u32,
        at_height: u64,
        restart_after_heights: u64,
        after_propose: bool,
    ) -> Self {
        self.orderer_crashes.push(OrdererCrash {
            replica,
            at_height,
            restart_after_heights,
            after_propose,
        });
        self
    }

    /// Adds a partition over orderer replicas (builder style): every
    /// consensus message into (or out of) the named replicas is dropped
    /// while the per-link message index is inside `from_nth..until_nth`.
    /// Replica indices are mapped to their [`LinkId::consensus_endpoint`]
    /// ids, so peer-side partitions are unaffected.
    pub fn with_orderer_partition(
        mut self,
        replicas: Vec<u32>,
        from_nth: u64,
        until_nth: u64,
    ) -> Self {
        let peers = replicas
            .into_iter()
            .map(|r| u64::from(LinkId::consensus_endpoint(r)))
            .collect();
        self.partitions.push(Partition { peers, from_nth, until_nth });
        self
    }

    /// Adds a leader equivocation (builder style): at `at_height` the
    /// named replica's proposal toward each victim carries a forged plan
    /// digest. Only meaningful with a replicated ordering service.
    pub fn with_equivocation(mut self, leader: u32, at_height: u64, victims: Vec<u32>) -> Self {
        self.equivocations.push(Equivocation { leader, at_height, victims });
        self
    }

    /// True when any fault source is configured.
    pub fn is_quiescent(&self) -> bool {
        self.drop_per_mille == 0
            && self.duplicate_per_mille == 0
            && self.delay_per_mille == 0
            && self.reorder_per_mille == 0
            && self.partitions.is_empty()
            && self.crashes.is_empty()
            && self.wal_faults.is_empty()
            && self.orderer_crashes.is_empty()
            && self.equivocations.is_empty()
    }

    /// Validates internal consistency. The sum of fault probabilities must
    /// not exceed 1000 per mille (they share a single dice roll), burst
    /// lengths must be at least 2, and partition windows must be non-empty.
    pub fn validate(&self) -> Result<()> {
        let total = self.drop_per_mille
            + self.duplicate_per_mille
            + self.delay_per_mille
            + self.reorder_per_mille;
        if total > 1000 {
            return Err(Error::Config(format!(
                "fault probabilities sum to {total} per mille (> 1000)"
            )));
        }
        if self.reorder_per_mille > 0 && self.reorder_burst_len < 2 {
            return Err(Error::Config("reorder_burst_len must be >= 2".into()));
        }
        for p in &self.partitions {
            if p.from_nth >= p.until_nth {
                return Err(Error::Config(format!(
                    "empty partition window {}..{}",
                    p.from_nth, p.until_nth
                )));
            }
            if p.peers.is_empty() {
                return Err(Error::Config("partition over an empty peer set".into()));
            }
        }
        for c in &self.crashes {
            if c.tear_bytes > 0 && c.restart_after_blocks == 0 {
                return Err(Error::Config(
                    "torn crash without a restart never exercises recovery".into(),
                ));
            }
        }
        for c in &self.orderer_crashes {
            if c.replica >= LinkId::MAX_CONSENSUS_REPLICAS {
                return Err(Error::Config(format!(
                    "orderer crash names replica {} outside the consensus endpoint range",
                    c.replica
                )));
            }
            if c.at_height == 0 {
                return Err(Error::Config("consensus heights start at 1".into()));
            }
        }
        for e in &self.equivocations {
            if e.victims.is_empty() {
                return Err(Error::Config("equivocation with no victims is a no-op".into()));
            }
            if e.at_height == 0 {
                return Err(Error::Config("consensus heights start at 1".into()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert!(FaultPlan::quiescent(1).validate().is_ok());
        assert!(FaultPlan::lossy(1).validate().is_ok());
        assert!(FaultPlan::chaotic(1).validate().is_ok());
        assert!(FaultPlan::quiescent(1).is_quiescent());
        assert!(!FaultPlan::lossy(1).is_quiescent());
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let mut p = FaultPlan::quiescent(0);
        p.drop_per_mille = 600;
        p.duplicate_per_mille = 600;
        assert!(p.validate().is_err(), "probabilities over 1000");

        let mut p = FaultPlan::quiescent(0);
        p.reorder_per_mille = 10;
        p.reorder_burst_len = 1;
        assert!(p.validate().is_err(), "burst of one is a no-op");

        let p = FaultPlan::quiescent(0).with_partition(vec![1], 5, 5);
        assert!(p.validate().is_err(), "empty window");

        let p = FaultPlan::quiescent(0).with_partition(vec![], 0, 5);
        assert!(p.validate().is_err(), "empty peer set");

        let p = FaultPlan::quiescent(0).with_torn_crash(1, 2, 0, 9);
        assert!(p.validate().is_err(), "torn crash without restart");

        let p = FaultPlan::quiescent(0).with_orderer_crash(99, 1, 1, true);
        assert!(p.validate().is_err(), "replica outside the consensus range");

        let p = FaultPlan::quiescent(0).with_equivocation(0, 1, vec![]);
        assert!(p.validate().is_err(), "equivocation without victims");
    }

    #[test]
    fn orderer_faults_make_a_plan_non_quiescent() {
        let p = FaultPlan::quiescent(0).with_orderer_crash(1, 2, 1, true);
        assert!(!p.is_quiescent());
        assert!(p.validate().is_ok());

        let p = FaultPlan::quiescent(0).with_equivocation(1, 1, vec![0, 2]);
        assert!(!p.is_quiescent());
        assert!(p.validate().is_ok());

        // Orderer partitions map replica indices into the reserved
        // consensus endpoint range, away from peer ids.
        let p = FaultPlan::quiescent(0).with_orderer_partition(vec![0, 2], 0, 4);
        assert!(p.validate().is_ok());
        let ids = &p.partitions[0].peers;
        assert!(ids.iter().all(|id| *id >= u64::from(LinkId::CONSENSUS_BASE)));
    }

    #[test]
    fn partition_window_covers_expected_messages() {
        let p = Partition { peers: vec![3, 4], from_nth: 2, until_nth: 5 };
        assert!(!p.covers(3, 1));
        assert!(p.covers(3, 2));
        assert!(p.covers(4, 4));
        assert!(!p.covers(4, 5));
        assert!(!p.covers(9, 3), "peer outside the set");
    }
}
