//! `ChaosNet`: a single-threaded, fully deterministic chaos harness.
//!
//! Structurally a sibling of [`fabricpp::SyncNet`], but block delivery
//! runs through a [`FaultInjector`]: each cut block is offered to every
//! peer individually and the injector's verdict decides whether that copy
//! is delivered, dropped, duplicated, deferred one round (a logical
//! latency spike), or absorbed into a reorder burst and released in
//! reverse order. Peers heal duplicates and gaps exactly like the
//! threaded runtime: a block below the chain height is ignored, a block
//! above it triggers catch-up from the orderer's block archive.
//!
//! Scheduled faults from the plan are orchestrated here too: crash points
//! kill a peer right before their block is cut (optionally tearing its
//! on-disk block log mid-append) and restart it — through
//! [`fabric_peer::recovery`] plus archive catch-up — a configured number
//! of blocks later.
//!
//! Because every step is driven by a plain method call on one thread, a
//! (plan, seed, workload) triple determines the entire run: the fault
//! schedule, each peer's commit sequence, and the final state. Tests
//! assert this via [`FaultInjector::schedule_digest`]. The worker knobs
//! (`validation_workers`, `reorder_workers`) may fan stages out to
//! helper threads, but both stages carry a determinism contract — their
//! outputs are pure functions of their inputs — so the run's observable
//! bytes are identical at any setting; the conformance harness verifies
//! this byte-for-byte.

use std::path::PathBuf;
use std::sync::Arc;

use fabric_common::{
    ChannelId, ClientId, CostModel, Error, Key, LatencyRecorder, OrgId, PeerId,
    PipelineConfig, Result, SignerRegistry, SigningKey, SubsystemGauges, Transaction,
    TransactionProposal, TxCounters, TxId, TxStats, ValidationCode, Value,
};
use fabric_telemetry::{TelemetryConfig, TelemetryHub, TelemetrySeries};
use fabric_consensus::{GroupConfig, OrdererGroup};
use fabric_ledger::{Block, FileBlockStore};
use fabric_net::{FaultHook, LinkId, SendFault};
use fabric_ordering::{CutReason, OrderingService, ReorderPipeline};
use fabric_peer::chaincode::{Chaincode, ChaincodeRegistry, SimulationError};
use fabric_peer::peer::Peer;
use fabric_peer::recovery;
use fabric_peer::validation_pool::ValidationPool;
use fabric_peer::validator::EndorsementPolicy;
use fabric_statedb::{LsmConfig, LsmStateDb, MemStateDb, StateStore};
use fabric_trace::TraceSink;
use fabricpp::client::assemble_transaction;
use fabricpp::sync::ProposeOutcome;
use fabricpp::StateEngine;

use crate::injector::FaultInjector;
use crate::invariants::{check_invariants, InvariantReport};
use crate::plan::FaultPlan;

struct Slot {
    peer: Arc<Peer>,
    down: bool,
    /// Blocks hit by a `Delay` verdict: they arrive at the start of the
    /// peer's next delivery round (one logical spike).
    delayed: Vec<Block>,
    /// Blocks absorbed into an open reorder burst.
    burst: Vec<Block>,
    /// Deliveries still to absorb before the burst flushes in reverse.
    burst_remaining: u32,
    log: Option<FileBlockStore>,
}

/// The ordering side of a [`ChaosNet`]: either the classic single
/// ordering process, or a replicated consensus group whose inter-replica
/// messages run through the same fault injector as block delivery.
enum OrdererBackend {
    /// One ordering process. Each batch runs through a
    /// [`ReorderPipeline`] sized by `PipelineConfig::reorder_workers`
    /// and is sealed on this thread. The pipeline's determinism contract
    /// (prepared plans are a pure function of the batch, independent of
    /// worker count) keeps schedule digests a pure function of (plan,
    /// seed, workload) at any worker setting — the conformance harness
    /// asserts exactly this.
    Single {
        orderer: OrderingService,
        pipeline: ReorderPipeline,
    },
    /// `n` consensus replicas deciding each batch before it is sealed
    /// (boxed: a group is an order of magnitude bigger than the single
    /// path).
    Replicated(Box<OrdererGroup>),
}

/// Non-semantic construction knobs for a [`ChaosNet`]: everything here
/// may change *how* a run executes (threading, storage engine, tracing,
/// consensus replication) but — by the determinism contract — never what
/// it computes. The conformance harness builds its replica matrix by
/// varying exactly these.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// `Some(n)`: replace the single ordering process with an `n`-replica
    /// consensus group (see [`ChaosNet::new_replicated`]). `None`: classic
    /// single orderer. Note that consensus replicas consume fault-injector
    /// dice rolls, so schedule digests are only comparable across replica
    /// counts under a quiescent plan.
    pub replicas: Option<usize>,
    /// Flight-recorder sink; observation only (attached strictly after
    /// verdicts are decided), so a traced run is byte-identical to an
    /// untraced one.
    pub sink: TraceSink,
    /// State-database engine backing every peer. `Lsm(dir)` opens one
    /// store per peer under `dir/peer-<id>`. Restarted peers always
    /// rebuild into memory (recovery replays the ledger), which is
    /// observationally identical: state digests are engine-independent.
    pub engine: StateEngine,
    /// `Some(n)`: every peer's store retains up to `n` committed versions
    /// per key for snapshot reads. `None`: engine default. Retention is
    /// non-semantic — it bounds how far back a pinned snapshot can live,
    /// never what a run computes.
    pub retained_versions: Option<usize>,
    /// `Some(cfg)`: attach the windowed time-series telemetry hub
    /// (logical-time windows over the run's counters and gauges; see
    /// `fabric-telemetry`). Observation only, like `sink`: a run with
    /// telemetry enabled is byte-identical to one without.
    pub telemetry: Option<TelemetryConfig>,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            replicas: None,
            sink: TraceSink::disabled(),
            engine: StateEngine::Memory,
            retained_versions: None,
            telemetry: None,
        }
    }
}

/// Deterministic fault-injecting Fabric/Fabric++ instance.
pub struct ChaosNet {
    slots: Vec<Slot>,
    orderer: OrdererBackend,
    pending: Vec<Transaction>,
    /// Every ordered block, in order (block `n` at index `n - 1`).
    archive: Vec<Block>,
    injector: Arc<FaultInjector>,
    counters: TxCounters,
    latency: LatencyRecorder,
    /// Flight-recorder sink; re-attached to the reporting peer on restart.
    sink: TraceSink,
    channel: ChannelId,
    orgs: usize,
    config: PipelineConfig,
    chaincodes: ChaincodeRegistry,
    registry: SignerRegistry,
    policy: EndorsementPolicy,
    /// Signature-check pool shared by every peer (and re-attached on
    /// restart), sized by `PipelineConfig::validation_workers`.
    pool: Arc<ValidationPool>,
    block_log_dir: Option<PathBuf>,
    /// Shared telemetry gauge cells (cutter queue, VSCC batches,
    /// consensus wire); re-attached to the reporting peer on restart.
    gauges: SubsystemGauges,
    /// Telemetry hub (disabled unless [`ChaosOptions::telemetry`]).
    hub: TelemetryHub,
}

impl ChaosNet {
    /// Builds a network of `orgs` × `peers_per_org` peers executing
    /// `plan`. Peer ids are assigned 1, 2, … in construction order, so a
    /// plan's crash points and partitions can name them directly.
    pub fn new(
        config: &PipelineConfig,
        orgs: usize,
        peers_per_org: usize,
        chaincodes: Vec<Arc<dyn Chaincode>>,
        genesis: &[(Key, Value)],
        plan: FaultPlan,
    ) -> Result<Self> {
        Self::build(config, orgs, peers_per_org, chaincodes, genesis, plan, ChaosOptions::default())
    }

    /// [`ChaosNet::new`] with explicit non-semantic knobs (storage
    /// engine, trace sink, consensus replication) — the constructor the
    /// determinism-conformance harness varies its replica matrix over.
    pub fn with_options(
        config: &PipelineConfig,
        orgs: usize,
        peers_per_org: usize,
        chaincodes: Vec<Arc<dyn Chaincode>>,
        genesis: &[(Key, Value)],
        plan: FaultPlan,
        opts: ChaosOptions,
    ) -> Result<Self> {
        Self::build(config, orgs, peers_per_org, chaincodes, genesis, plan, opts)
    }

    /// [`ChaosNet::new`] with a flight-recorder sink attached to the fault
    /// injector (every fault verdict mirrors into the trace) and to the
    /// reporting peer's validate/commit pipeline. Tracing is observation
    /// only: the sink is consulted strictly after each verdict is decided,
    /// so a traced run's schedule digest is identical to an untraced one.
    pub fn new_traced(
        config: &PipelineConfig,
        orgs: usize,
        peers_per_org: usize,
        chaincodes: Vec<Arc<dyn Chaincode>>,
        genesis: &[(Key, Value)],
        plan: FaultPlan,
        sink: TraceSink,
    ) -> Result<Self> {
        let opts = ChaosOptions { sink, ..ChaosOptions::default() };
        Self::build(config, orgs, peers_per_org, chaincodes, genesis, plan, opts)
    }

    /// [`ChaosNet::new`] with the single ordering process replaced by a
    /// group of `replicas` consensus replicas: each cut batch is decided
    /// by propose/vote/commit before it is sealed, every inter-replica
    /// message runs through this run's fault injector (under
    /// [`LinkId::between_replicas`] link ids), and the plan's
    /// `orderer_crashes` / `equivocations` fire inside the group.
    pub fn new_replicated(
        config: &PipelineConfig,
        orgs: usize,
        peers_per_org: usize,
        chaincodes: Vec<Arc<dyn Chaincode>>,
        genesis: &[(Key, Value)],
        plan: FaultPlan,
        replicas: usize,
    ) -> Result<Self> {
        let opts = ChaosOptions { replicas: Some(replicas), ..ChaosOptions::default() };
        Self::build(config, orgs, peers_per_org, chaincodes, genesis, plan, opts)
    }

    /// [`ChaosNet::new_replicated`] with a flight-recorder sink: fault
    /// verdicts, the reporting peer's pipeline, and every replica's
    /// consensus lifecycle (proposals, vote tallies, view changes,
    /// decides) mirror into the trace.
    #[allow(clippy::too_many_arguments)]
    pub fn new_replicated_traced(
        config: &PipelineConfig,
        orgs: usize,
        peers_per_org: usize,
        chaincodes: Vec<Arc<dyn Chaincode>>,
        genesis: &[(Key, Value)],
        plan: FaultPlan,
        replicas: usize,
        sink: TraceSink,
    ) -> Result<Self> {
        let opts =
            ChaosOptions { replicas: Some(replicas), sink, ..ChaosOptions::default() };
        Self::build(config, orgs, peers_per_org, chaincodes, genesis, plan, opts)
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        config: &PipelineConfig,
        orgs: usize,
        peers_per_org: usize,
        chaincodes: Vec<Arc<dyn Chaincode>>,
        genesis: &[(Key, Value)],
        plan: FaultPlan,
        opts: ChaosOptions,
    ) -> Result<Self> {
        let ChaosOptions { replicas, sink, engine, retained_versions, telemetry } = opts;
        config.validate()?;
        if orgs == 0 || peers_per_org == 0 {
            return Err(Error::Config("need at least one org and one peer".into()));
        }
        let injector = FaultInjector::new_traced(plan, sink.clone())?;
        let registry = SignerRegistry::new();
        let counters = TxCounters::new();
        let latency = LatencyRecorder::new();
        let mut cc_registry = ChaincodeRegistry::new();
        for cc in &chaincodes {
            cc_registry.deploy(cc.name().to_owned(), Arc::clone(cc));
        }
        let policy = EndorsementPolicy::require_orgs((1..=orgs as u64).map(OrgId).collect());
        // One signature-check pool shared across all peers (checking is
        // stateless); worker count is a non-semantic knob — validation
        // outcomes are identical at any setting.
        let gauges = SubsystemGauges::new();
        let hub = match &telemetry {
            Some(cfg) => TelemetryHub::with_config(*cfg),
            None => TelemetryHub::disabled(),
        };
        let pool = if config.validation_workers > 1 {
            Arc::new(ValidationPool::threaded(config.validation_workers).with_gauges(gauges.clone()))
        } else {
            Arc::new(ValidationPool::sequential().with_gauges(gauges.clone()))
        };
        gauges.set_validation_workers(pool.workers() as u64);

        let mut slots = Vec::new();
        let mut pid = 1u64;
        for org in 1..=orgs as u64 {
            for _ in 0..peers_per_org {
                let peer_id = PeerId(pid);
                pid += 1;
                let key = SigningKey::for_peer(peer_id, 1);
                registry.register(peer_id, key.clone());
                let store: Arc<dyn StateStore> = match &engine {
                    StateEngine::Memory => match retained_versions {
                        Some(n) => Arc::new(MemStateDb::with_retained_versions(n)),
                        None => Arc::new(MemStateDb::new()),
                    },
                    StateEngine::Lsm(dir) => {
                        let peer_dir = dir.join(format!("peer-{}", peer_id.raw()));
                        let cfg = match retained_versions {
                            Some(n) => {
                                LsmConfig { retained_versions: n, ..LsmConfig::default() }
                            }
                            None => LsmConfig::default(),
                        };
                        Arc::new(LsmStateDb::open(peer_dir, cfg)?)
                    }
                };
                let mut peer = Peer::new(
                    peer_id,
                    OrgId(org),
                    key,
                    store,
                    cc_registry.clone(),
                    registry.clone(),
                    policy.clone(),
                    config.concurrency,
                    config.early_abort_simulation,
                    CostModel::raw(),
                );
                peer = peer
                    .with_validation_pool(Arc::clone(&pool))
                    .with_commit_lanes(config.commit_lanes);
                if slots.is_empty() {
                    peer = peer
                        .with_reporting(counters.clone(), latency.clone())
                        .with_trace(sink.clone())
                        .with_gauges(gauges.clone())
                        .with_telemetry(hub.clone());
                }
                peer.install_genesis(genesis)?;
                slots.push(Slot {
                    peer: Arc::new(peer),
                    down: false,
                    delayed: Vec::new(),
                    burst: Vec::new(),
                    burst_remaining: 0,
                    log: None,
                });
            }
        }
        let genesis_hash = slots[0].peer.ledger().tip_hash();
        let orderer = match replicas {
            None => {
                let orderer = OrderingService::new(config)
                    .with_counters(counters.clone())
                    .resume_at(1, genesis_hash);
                let pipeline =
                    ReorderPipeline::new(orderer.batch_prep(), config.reorder_workers);
                OrdererBackend::Single { orderer, pipeline }
            }
            Some(n) => {
                let mut gcfg = GroupConfig::new(n);
                gcfg.crashes = injector.plan().orderer_crashes.clone();
                gcfg.equivocations = injector.plan().equivocations.clone();
                let hook: Arc<dyn FaultHook> = Arc::clone(&injector) as Arc<dyn FaultHook>;
                let mut group = OrdererGroup::new_traced(
                    gcfg,
                    config,
                    1,
                    genesis_hash,
                    hook,
                    Some(counters.clone()),
                    sink.clone(),
                )?;
                group.set_gauges(gauges.clone());
                OrdererBackend::Replicated(Box::new(group))
            }
        };
        hub.connect(
            counters.clone(),
            latency.clone(),
            vec![slots[0].peer.store().counters()],
            gauges.clone(),
        );
        Ok(ChaosNet {
            slots,
            orderer,
            pending: Vec::new(),
            archive: Vec::new(),
            injector,
            counters,
            latency,
            sink,
            channel: ChannelId(0),
            orgs,
            config: config.clone(),
            chaincodes: cc_registry,
            registry,
            policy,
            pool,
            block_log_dir: None,
            gauges,
            hub,
        })
    }

    /// Closes the telemetry tail window and returns the run's time series
    /// (`None` when telemetry was not enabled in [`ChaosOptions`]).
    /// Idempotent; call after the last block has been driven.
    pub fn telemetry_series(&self) -> Option<TelemetrySeries> {
        self.hub.finish()
    }

    /// The injector executing this run's plan (for event-log and
    /// schedule-digest assertions).
    pub fn injector(&self) -> &Arc<FaultInjector> {
        &self.injector
    }

    /// The consensus group behind a replicated ordering service, or
    /// `None` when this net runs the classic single orderer.
    pub fn orderer_group(&self) -> Option<&OrdererGroup> {
        match &self.orderer {
            OrdererBackend::Single { .. } => None,
            OrdererBackend::Replicated(g) => Some(g.as_ref()),
        }
    }

    /// Enables on-disk block logs under `dir` (required for torn-crash
    /// points): current chains are written out, future commits appended.
    pub fn persist_blocks(&mut self, dir: impl Into<PathBuf>) -> Result<()> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        for slot in &mut self.slots {
            let mut log = FileBlockStore::open(Self::log_path(&dir, slot.peer.id()))?;
            let mut blocks = Vec::new();
            slot.peer.ledger().for_each(|cb| blocks.push(cb.clone()));
            for cb in &blocks {
                log.append(cb)?;
            }
            log.sync()?;
            slot.log = Some(log);
        }
        self.block_log_dir = Some(dir);
        Ok(())
    }

    fn log_path(dir: &std::path::Path, id: PeerId) -> PathBuf {
        dir.join(format!("peer-{}.blocks", id.raw()))
    }

    fn slot_of(&self, peer: u64) -> Option<usize> {
        self.slots.iter().position(|s| s.peer.id().raw() == peer)
    }

    /// Simulation phase on the first live peer of each org.
    pub fn propose(&self, client: u64, chaincode: &str, args: Vec<u8>) -> ProposeOutcome {
        let proposal =
            TransactionProposal::new(self.channel, ClientId(client), chaincode, args);
        self.propose_proposal(proposal)
    }

    /// [`ChaosNet::propose`] with a caller-chosen transaction id instead
    /// of the process-global counter. Determinism harnesses that compare
    /// independent nets byte-for-byte use this so identical workloads
    /// yield identical ids (and hence identical block bytes) in every
    /// replica.
    pub fn propose_with_id(
        &self,
        id: TxId,
        client: u64,
        chaincode: &str,
        args: Vec<u8>,
    ) -> ProposeOutcome {
        let proposal =
            TransactionProposal::with_id(id, self.channel, ClientId(client), chaincode, args);
        self.propose_proposal(proposal)
    }

    fn propose_proposal(&self, proposal: TransactionProposal) -> ProposeOutcome {
        self.counters.record_submitted();
        let per_org = self.slots.len() / self.orgs;
        let mut responses = Vec::new();
        for o in 0..self.orgs {
            let Some(endorser) = (o * per_org..(o + 1) * per_org)
                .find(|&i| !self.slots[i].down)
                .map(|i| &self.slots[i].peer)
            else {
                return ProposeOutcome::Rejected(format!("org {} has no live endorser", o + 1));
            };
            match endorser.endorse(&proposal) {
                Ok(r) => responses.push(r),
                Err(SimulationError::StaleRead { .. }) => {
                    self.counters.record_outcome(ValidationCode::EarlyAbortSimulation);
                    return ProposeOutcome::EarlyAborted(proposal.id);
                }
                Err(e) => return ProposeOutcome::Rejected(e.to_string()),
            }
        }
        match assemble_transaction(&proposal, responses) {
            Ok(tx) => ProposeOutcome::Endorsed(Box::new(tx)),
            Err(e) => ProposeOutcome::Rejected(e),
        }
    }

    /// Hands an endorsed transaction to the orderer's buffer.
    pub fn submit(&mut self, tx: Transaction) {
        self.pending.push(tx);
    }

    /// Propose and, if endorsed, submit.
    pub fn propose_and_submit(
        &mut self,
        client: u64,
        chaincode: &str,
        args: Vec<u8>,
    ) -> Option<TxId> {
        match self.propose(client, chaincode, args) {
            ProposeOutcome::Endorsed(tx) => {
                let id = tx.id;
                self.submit(*tx);
                Some(id)
            }
            _ => None,
        }
    }

    /// [`ChaosNet::propose_and_submit`] with a caller-chosen transaction
    /// id (see [`ChaosNet::propose_with_id`]).
    pub fn propose_and_submit_with_id(
        &mut self,
        id: TxId,
        client: u64,
        chaincode: &str,
        args: Vec<u8>,
    ) -> Option<TxId> {
        match self.propose_with_id(id, client, chaincode, args) {
            ProposeOutcome::Endorsed(tx) => {
                let id = tx.id;
                self.submit(*tx);
                Some(id)
            }
            _ => None,
        }
    }

    /// Ordering + faulty delivery: cuts everything pending into one block,
    /// archives it, fires any crash points scheduled for it, offers it to
    /// every peer through the injector, and finally fires due restarts.
    /// Returns the cut block's number, or `Ok(None)` when the cut was
    /// suppressed (empty pending buffer or fully early-aborted batch): no
    /// block is delivered, no crash/restart points fire, and the fault
    /// schedule stays deterministic per seed.
    pub fn cut_block(&mut self) -> Result<Option<u64>> {
        // Queue depth at the cut: the deterministic harness's analogue of
        // the threaded runtime's cutter queue (observation only).
        self.gauges.set_cutter_queue(self.pending.len() as u64);
        let batch = std::mem::take(&mut self.pending);
        let ordered = match &mut self.orderer {
            // One submit, one drained plan, one seal. With
            // `reorder_workers <= 1` the pipeline runs the prepare stage
            // inline on this thread; with more it fans out — the
            // pipeline's determinism contract guarantees the drained plan
            // is byte-identical either way.
            OrdererBackend::Single { orderer, pipeline } => {
                pipeline.submit(batch, CutReason::Flush);
                let mut sealed = None;
                for prepared in pipeline.drain() {
                    sealed = orderer.seal(prepared.plan);
                }
                sealed
            }
            // Replicated: the batch becomes one consensus height; every
            // live replica seals the decided plan on its own chain and
            // the group asserts the chains are byte-identical. The
            // delivered block is the canonical (lowest live replica's)
            // one. An empty decision (suppressed block) still consumed a
            // height, keeping the consensus message schedule — and hence
            // the fault schedule — deterministic per seed.
            OrdererBackend::Replicated(group) => group.decide_batch(batch)?,
        };
        let Some(ordered) = ordered else {
            return Ok(None);
        };
        let block = ordered.block;
        let num = block.header.number;
        self.archive.push(block.clone());

        // Scheduled crashes fire before delivery: the peer misses this
        // block entirely, like a process that died between cuts.
        let crashes: Vec<_> = self.injector.plan().crashes.to_vec();
        for c in &crashes {
            if c.at_block == num {
                if let Some(idx) = self.slot_of(c.peer) {
                    if !self.slots[idx].down {
                        self.crash(idx)?;
                        if c.tear_bytes > 0 {
                            self.tear_block_log(idx, c.tear_bytes)?;
                        }
                    }
                }
            }
        }

        for idx in 0..self.slots.len() {
            self.deliver(idx, block.clone())?;
        }

        // Scheduled restarts fire after delivery, so a crash at block `b`
        // with `restart_after_blocks = r` misses exactly blocks `b..b+r`
        // before recovery and catch-up bring it back level.
        for c in &crashes {
            if c.restart_after_blocks > 0 && c.at_block + c.restart_after_blocks == num + 1 {
                if let Some(idx) = self.slot_of(c.peer) {
                    if self.slots[idx].down {
                        self.restart(idx)?;
                    }
                }
            }
        }
        Ok(Some(num))
    }

    /// Offers `block` to peer `idx` through the injector.
    fn deliver(&mut self, idx: usize, block: Block) -> Result<()> {
        if self.slots[idx].down {
            return Ok(()); // messages to a dead process vanish
        }
        // Last round's delayed blocks arrive first: their spike is over.
        let delayed = std::mem::take(&mut self.slots[idx].delayed);
        for b in delayed {
            self.apply(idx, b)?;
        }
        // An open reorder burst absorbs deliveries without consulting the
        // injector, then flushes in reverse (mirrors `FaultySender`).
        if self.slots[idx].burst_remaining > 0 {
            self.slots[idx].burst.push(block);
            self.slots[idx].burst_remaining -= 1;
            if self.slots[idx].burst_remaining == 0 {
                let mut burst = std::mem::take(&mut self.slots[idx].burst);
                burst.reverse();
                for b in burst {
                    self.apply(idx, b)?;
                }
            }
            return Ok(());
        }
        let link = LinkId::from_orderer(self.slots[idx].peer.id().raw() as u32);
        // Size proxy: transaction count (the injector decides by link and
        // sequence, not by payload size).
        match self.injector.on_send(link, block.txs.len()) {
            SendFault::Deliver => self.apply(idx, block),
            SendFault::Drop => Ok(()),
            SendFault::Duplicate { extra } => {
                for _ in 0..=extra {
                    self.apply(idx, block.clone())?;
                }
                Ok(())
            }
            SendFault::Delay { .. } => {
                self.slots[idx].delayed.push(block);
                Ok(())
            }
            SendFault::ReorderBurst { len } => {
                if len < 2 {
                    return self.apply(idx, block);
                }
                self.slots[idx].burst.push(block);
                self.slots[idx].burst_remaining = len - 1;
                Ok(())
            }
        }
    }

    /// Commits `block` on peer `idx`, healing duplicates (already on the
    /// chain → ignored) and gaps (future block → archive catch-up).
    fn apply(&mut self, idx: usize, block: Block) -> Result<()> {
        let peer = Arc::clone(&self.slots[idx].peer);
        let height = peer.ledger().height();
        let num = block.header.number;
        if num < height {
            return Ok(()); // duplicate of a committed block
        }
        if num > height {
            // Gap: an earlier block was dropped/delayed past us. The
            // archive holds everything up to and including this block.
            self.catch_up(idx)?;
            return Ok(());
        }
        let committed = peer.process_block(block)?;
        if let Some(log) = &mut self.slots[idx].log {
            log.append(&committed)?;
            log.sync()?;
        }
        Ok(())
    }

    /// Replays archived blocks until peer `idx` is level with the orderer.
    fn catch_up(&mut self, idx: usize) -> Result<u64> {
        let peer = Arc::clone(&self.slots[idx].peer);
        let mut applied = 0;
        while (peer.ledger().height() as usize) <= self.archive.len() {
            let block = self.archive[peer.ledger().height() as usize - 1].clone();
            let committed = peer.process_block(block)?;
            if let Some(log) = &mut self.slots[idx].log {
                log.append(&committed)?;
                log.sync()?;
            }
            applied += 1;
        }
        Ok(applied)
    }

    /// Crashes peer `idx`: in-flight deliveries (delayed blocks, open
    /// bursts) are lost with the process, and its log handle is dropped.
    pub fn crash(&mut self, idx: usize) -> Result<()> {
        let slot = &mut self.slots[idx];
        if slot.down {
            return Err(Error::Config(format!("peer slot {idx} is already down")));
        }
        slot.down = true;
        slot.delayed.clear();
        slot.burst.clear();
        slot.burst_remaining = 0;
        slot.log = None;
        Ok(())
    }

    /// Tears `bytes` off the tail of a crashed peer's on-disk block log
    /// (requires [`ChaosNet::persist_blocks`]).
    pub fn tear_block_log(&mut self, idx: usize, bytes: u64) -> Result<()> {
        if !self.slots[idx].down {
            return Err(Error::Config("tear_block_log requires a crashed peer".into()));
        }
        let dir = self
            .block_log_dir
            .clone()
            .ok_or_else(|| Error::Config("block logs are not enabled".into()))?;
        let path = Self::log_path(&dir, self.slots[idx].peer.id());
        let len = std::fs::metadata(&path)?.len();
        let f = std::fs::OpenOptions::new().write(true).open(&path)?;
        f.set_len(len.saturating_sub(bytes))?;
        f.sync_data()?;
        Ok(())
    }

    /// Restarts a crashed peer through recovery (on-disk log if persisted,
    /// tolerating torn tails; in-memory ledger otherwise) plus archive
    /// catch-up. Returns the number of blocks caught up.
    pub fn restart(&mut self, idx: usize) -> Result<u64> {
        if !self.slots[idx].down {
            return Err(Error::Config("restart requires a crashed peer".into()));
        }
        let old = Arc::clone(&self.slots[idx].peer);
        let rec = match &self.block_log_dir {
            Some(dir) => {
                let path = Self::log_path(dir, old.id());
                recovery::recover_from_crashed_log(&path, true)?.0
            }
            None => {
                let mut blocks = Vec::new();
                old.ledger().for_each(|cb| blocks.push(cb.clone()));
                recovery::rebuild(blocks, true)?
            }
        };
        let key = SigningKey::for_peer(old.id(), 1);
        let mut peer = Peer::restore(
            old.id(),
            old.org(),
            key,
            Arc::clone(&rec.state) as Arc<dyn StateStore>,
            rec.ledger,
            self.chaincodes.clone(),
            self.registry.clone(),
            self.policy.clone(),
            self.config.concurrency,
            self.config.early_abort_simulation,
            CostModel::raw(),
        );
        peer = peer
            .with_validation_pool(Arc::clone(&self.pool))
            .with_commit_lanes(self.config.commit_lanes);
        if idx == 0 {
            peer = peer
                .with_reporting(self.counters.clone(), self.latency.clone())
                .with_trace(self.sink.clone())
                .with_gauges(self.gauges.clone())
                .with_telemetry(self.hub.clone());
        }
        self.slots[idx].peer = Arc::new(peer);
        if let Some(dir) = &self.block_log_dir {
            let path = Self::log_path(dir, old.id());
            self.slots[idx].log = Some(FileBlockStore::open(&path)?);
        }
        self.slots[idx].down = false;
        self.catch_up(idx)
    }

    /// Flushes every in-flight delivery (delayed blocks, open bursts) and
    /// catches every live peer up from the archive. Call before checking
    /// invariants — it is the logical-time analogue of the threaded
    /// network's drain-on-shutdown.
    pub fn settle(&mut self) -> Result<()> {
        for idx in 0..self.slots.len() {
            if self.slots[idx].down {
                continue;
            }
            let delayed = std::mem::take(&mut self.slots[idx].delayed);
            for b in delayed {
                self.apply(idx, b)?;
            }
            let mut burst = std::mem::take(&mut self.slots[idx].burst);
            self.slots[idx].burst_remaining = 0;
            burst.reverse();
            for b in burst {
                self.apply(idx, b)?;
            }
            self.catch_up(idx)?;
        }
        Ok(())
    }

    /// Settles the network and runs the invariant sweep over live peers.
    pub fn check(&mut self) -> Result<InvariantReport> {
        self.settle()?;
        Ok(check_invariants(&self.live_peers()))
    }

    /// All peers, including crashed ones.
    pub fn peers(&self) -> Vec<Arc<Peer>> {
        self.slots.iter().map(|s| Arc::clone(&s.peer)).collect()
    }

    /// Peers currently up.
    pub fn live_peers(&self) -> Vec<Arc<Peer>> {
        self.slots
            .iter()
            .filter(|s| !s.down)
            .map(|s| Arc::clone(&s.peer))
            .collect()
    }

    /// Whether peer slot `idx` is down.
    pub fn is_down(&self, idx: usize) -> bool {
        self.slots[idx].down
    }

    /// Blocks ordered so far (excluding genesis).
    pub fn blocks_cut(&self) -> u64 {
        self.archive.len() as u64
    }

    /// Outcome counters snapshot.
    pub fn stats(&self) -> TxStats {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabricpp::chaincode_fn;

    fn transfer_chaincode() -> Arc<dyn Chaincode> {
        chaincode_fn("transfer", |ctx, args| {
            if args.len() != 24 {
                return Err("bad args".into());
            }
            let from =
                Key::composite("acct", u64::from_le_bytes(args[0..8].try_into().unwrap()));
            let to =
                Key::composite("acct", u64::from_le_bytes(args[8..16].try_into().unwrap()));
            let amount = i64::from_le_bytes(args[16..24].try_into().unwrap());
            let fb = ctx.get_i64(&from).map_err(|e| e.to_string())?.ok_or("no from")?;
            let tb = ctx.get_i64(&to).map_err(|e| e.to_string())?.ok_or("no to")?;
            ctx.put_i64(from, fb - amount);
            ctx.put_i64(to, tb + amount);
            Ok(())
        })
    }

    fn args(from: u64, to: u64, amount: i64) -> Vec<u8> {
        let mut v = Vec::with_capacity(24);
        v.extend_from_slice(&from.to_le_bytes());
        v.extend_from_slice(&to.to_le_bytes());
        v.extend_from_slice(&amount.to_le_bytes());
        v
    }

    fn genesis(n: u64) -> Vec<(Key, Value)> {
        (0..n).map(|i| (Key::composite("acct", i), Value::from_i64(100))).collect()
    }

    fn run_workload(net: &mut ChaosNet, blocks: u64, accounts: u64) {
        let mut c = 0u64;
        for b in 0..blocks {
            for t in 0..3u64 {
                let from = (b * 3 + t) % accounts;
                let to = (from + 1) % accounts;
                net.propose_and_submit(c, "transfer", args(from, to, 1));
                c += 1;
            }
            net.cut_block().unwrap();
        }
    }

    #[test]
    fn quiescent_run_is_clean_and_conserves_money() {
        let mut net = ChaosNet::new(
            &PipelineConfig::fabric_pp(),
            2,
            2,
            vec![transfer_chaincode()],
            &genesis(8),
            FaultPlan::quiescent(1),
        )
        .unwrap();
        run_workload(&mut net, 6, 8);
        let report = net.check().unwrap();
        report.assert_ok();
        assert_eq!(report.peers_checked, 4);
        assert_eq!(net.injector().fault_count(), 0);
        // Transfers conserve the total balance.
        let total: i64 = (0..8)
            .map(|i| {
                net.peers()[0]
                    .store()
                    .get(&Key::composite("acct", i))
                    .unwrap()
                    .unwrap()
                    .value
                    .as_i64()
                    .unwrap()
            })
            .sum();
        assert_eq!(total, 800);
    }

    #[test]
    fn chaotic_run_still_converges() {
        let mut net = ChaosNet::new(
            &PipelineConfig::fabric_pp(),
            2,
            2,
            vec![transfer_chaincode()],
            &genesis(8),
            FaultPlan::chaotic(42),
        )
        .unwrap();
        run_workload(&mut net, 12, 8);
        assert!(net.injector().fault_count() > 0, "chaos must actually fire");
        let report = net.check().unwrap();
        report.assert_ok();
    }

    #[test]
    fn scheduled_crash_and_restart_converges() {
        let plan = FaultPlan::quiescent(3).with_crash(2, 2, 2);
        let mut net = ChaosNet::new(
            &PipelineConfig::fabric_pp(),
            2,
            2,
            vec![transfer_chaincode()],
            &genesis(8),
            plan,
        )
        .unwrap();
        run_workload(&mut net, 2, 8);
        assert!(net.is_down(1), "peer 2 crashes at block 2");
        run_workload(&mut net, 2, 8);
        assert!(!net.is_down(1), "restarted after two blocks");
        net.check().unwrap().assert_ok();
    }

    #[test]
    fn torn_crash_recovers_from_disk() {
        let dir = std::env::temp_dir()
            .join(format!("fabric-chaosnet-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let plan = FaultPlan::quiescent(4).with_torn_crash(3, 2, 1, 9);
        let mut net = ChaosNet::new(
            &PipelineConfig::vanilla(),
            2,
            2,
            vec![transfer_chaincode()],
            &genesis(8),
            plan,
        )
        .unwrap();
        net.persist_blocks(&dir).unwrap();
        run_workload(&mut net, 4, 8);
        net.check().unwrap().assert_ok();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partition_heals_and_network_converges() {
        // Peers 3 and 4 partitioned for blocks 1..4, healed afterwards.
        let plan = FaultPlan::quiescent(5).with_partition(vec![3, 4], 0, 3);
        let mut net = ChaosNet::new(
            &PipelineConfig::fabric_pp(),
            2,
            2,
            vec![transfer_chaincode()],
            &genesis(8),
            plan,
        )
        .unwrap();
        run_workload(&mut net, 3, 8);
        // Mid-partition: the cut-off peers are behind.
        let peers = net.peers();
        assert!(peers[2].ledger().height() < peers[0].ledger().height());
        run_workload(&mut net, 2, 8);
        let report = net.check().unwrap();
        report.assert_ok();
    }

    #[test]
    fn replicated_orderer_converges_through_leader_crash() {
        // Three consensus replicas; the height-2 leader (replica (2+0)%3
        // = 2) dies right after proposing and restarts one height later.
        let plan = FaultPlan::quiescent(9).with_orderer_crash(2, 2, 1, true);
        let mut net = ChaosNet::new_replicated(
            &PipelineConfig::fabric_pp(),
            2,
            2,
            vec![transfer_chaincode()],
            &genesis(8),
            plan,
            3,
        )
        .unwrap();
        run_workload(&mut net, 5, 8);
        let report = net.check().unwrap();
        report.assert_ok();
        let group = net.orderer_group().unwrap();
        assert_eq!(group.replicas(), 3);
        assert_eq!(group.heights_decided(), 5);
        let fps = group.fingerprints();
        assert_eq!(fps.len(), 3, "the crashed replica restarted");
        assert!(
            fps.iter().all(|(_, n, h)| (*n, *h) == (fps[0].1, fps[0].2)),
            "replica block streams diverged: {fps:?}"
        );
        // Replica chains line up with what the peers committed.
        assert_eq!(fps[0].1, net.blocks_cut() + 1);
    }

    #[test]
    fn single_replica_group_matches_single_orderer_observables() {
        // The 1-replica group sends no messages and consults the injector
        // zero times, so a lossy plan produces the same schedule digest
        // and the same peer-visible outcome as the classic single path.
        let run = |replicated: bool| {
            let plan = FaultPlan::lossy(21);
            let cfg = PipelineConfig::fabric_pp();
            let cc = vec![transfer_chaincode()];
            let mut net = if replicated {
                ChaosNet::new_replicated(&cfg, 2, 2, cc, &genesis(8), plan, 1).unwrap()
            } else {
                ChaosNet::new(&cfg, 2, 2, cc, &genesis(8), plan).unwrap()
            };
            run_workload(&mut net, 8, 8);
            net.check().unwrap().assert_ok();
            let state: Vec<_> = (0..8)
                .map(|i| {
                    net.peers()[0]
                        .store()
                        .get(&Key::composite("acct", i))
                        .unwrap()
                        .unwrap()
                        .value
                        .as_i64()
                        .unwrap()
                })
                .collect();
            (net.injector().schedule_digest(), net.blocks_cut(), state)
        };
        let single = run(false);
        let replicated = run(true);
        assert_eq!(single.0, replicated.0, "schedule digests diverged");
        assert_eq!(single.1, replicated.1, "block counts diverged");
        assert_eq!(single.2, replicated.2, "final states diverged");
    }

    #[test]
    fn same_seed_reruns_identically() {
        // Tx ids come from a process-global counter, so raw block hashes
        // differ between in-process runs; the determinism contract is the
        // fault schedule and the observable outcomes.
        let runs: Vec<_> = (0..2)
            .map(|_| {
                let mut net = ChaosNet::new(
                    &PipelineConfig::fabric_pp(),
                    2,
                    2,
                    vec![transfer_chaincode()],
                    &genesis(8),
                    FaultPlan::chaotic(7),
                )
                .unwrap();
                run_workload(&mut net, 10, 8);
                net.check().unwrap().assert_ok();
                let state: Vec<_> = (0..8)
                    .map(|i| {
                        net.peers()[0]
                            .store()
                            .get(&Key::composite("acct", i))
                            .unwrap()
                            .unwrap()
                            .value
                            .as_i64()
                            .unwrap()
                    })
                    .collect();
                (
                    net.injector().schedule_digest(),
                    net.injector().events(),
                    net.peers()[0].ledger().height(),
                    state,
                )
            })
            .collect();
        assert_eq!(runs[0].0, runs[1].0, "fault schedules diverged");
        assert_eq!(runs[0].1, runs[1].1);
        assert_eq!(runs[0].2, runs[1].2, "heights diverged");
        assert_eq!(runs[0].3, runs[1].3, "final states diverged");
    }
}
