//! The dedicated chaos RNG: a tiny xorshift64* generator.
//!
//! Fault decisions draw from this stream and nothing else, so a plan's
//! seed fully determines its fault schedule, and chaos decisions never
//! perturb workload RNG streams (which live in `fabric-workloads`).

/// Seeded xorshift64* generator (Vigna's variant: xorshift then a
/// multiplicative scramble). Deterministic, `Copy`-cheap, and good enough
/// to decorrelate per-message fault rolls.
#[derive(Debug, Clone)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// Creates a generator from `seed`. A zero seed (a fixed point of
    /// xorshift) is remapped to a nonzero constant.
    pub fn new(seed: u64) -> Self {
        // One splitmix64 step spreads low-entropy seeds (0, 1, 2, ...)
        // across the state space before xorshift takes over.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        ChaosRng { state: if z == 0 { 0x6A09_E667_F3BC_C909 } else { z } }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `0..n` (`n > 0`).
    pub fn next_range(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift range reduction; bias is < 2^-53 for the small
        // ranges used here (dice rolls and burst lengths).
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// A Bernoulli draw with probability `per_mille` / 1000.
    pub fn chance(&mut self, per_mille: u32) -> bool {
        self.next_range(1000) < per_mille as u64
    }

    /// Derives an independent child stream (e.g. one per peer), consuming
    /// one draw from this stream.
    pub fn fork(&mut self) -> ChaosRng {
        ChaosRng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaosRng::new(7);
        let mut b = ChaosRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaosRng::new(7);
        let mut b = ChaosRng::new(8);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = ChaosRng::new(0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn range_and_chance_are_in_bounds() {
        let mut r = ChaosRng::new(42);
        for _ in 0..1000 {
            assert!(r.next_range(7) < 7);
        }
        assert!(!(0..1000).any(|_| r.chance(0)), "0 per mille never fires");
        assert!((0..1000).all(|_| r.chance(1000)), "1000 per mille always fires");
        // A 500 per-mille coin lands near half.
        let heads = (0..10_000).filter(|_| r.chance(500)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut parent = ChaosRng::new(9);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let same = (0..100).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }
}
