//! End-of-run invariant checks over the surviving peers.
//!
//! A chaos run is only meaningful if violations are *detected*, so the
//! checks mirror the guarantees the paper's validation/commit pipeline is
//! supposed to give even under faults:
//!
//! 1. **Convergence** — every live peer holds the same chain height, the
//!    same tip hash, and a byte-identical state database.
//! 2. **Chain integrity** — each peer's hash chain verifies end to end
//!    (`previous_hash` links and recomputed data hashes).
//! 3. **Durability** — no committed transaction is lost: every tx id in
//!    the reference peer's ledger is found on every other peer, in the
//!    same block and with the same validation verdict.

use std::sync::Arc;

use fabric_common::hash::{Digest, Sha256};
use fabric_common::Key;
use fabric_peer::Peer;
use fabric_statedb::StateStore;

/// Outcome of a full invariant sweep. `violations` is empty iff the run
/// upheld every guarantee; the remaining fields are diagnostics.
#[derive(Debug, Clone)]
pub struct InvariantReport {
    /// Number of peers that took part in the check.
    pub peers_checked: usize,
    /// Chain height shared by all live peers (0 when none were checked).
    pub height: u64,
    /// State digest shared by all live peers.
    pub state_digest: Digest,
    /// Committed transactions (valid + invalid) on the reference peer.
    pub committed_txs: u64,
    /// Human-readable descriptions of every violated invariant.
    pub violations: Vec<String>,
}

impl InvariantReport {
    /// True when no invariant was violated.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics with the full violation list unless the run was clean.
    pub fn assert_ok(&self) {
        assert!(self.ok(), "invariant violations: {:#?}", self.violations);
    }
}

/// Digest of a state store's full contents: every (key, value, version)
/// triple in key order. Keys are assumed shorter than 64 bytes of `0xFF`
/// (true for all workloads in this repo); `scan_range` is end-exclusive so
/// the upper sentinel itself is never observed.
pub fn state_digest(store: &dyn StateStore) -> Digest {
    let everything = store
        .scan_range(&Key::new(Vec::new()), &Key::new(vec![0xFF; 64]))
        .expect("full-range scan cannot fail on an open store");
    let mut h = Sha256::new();
    for (key, vv) in &everything {
        h.update(&(key.len() as u64).to_le_bytes());
        h.update(key.as_bytes());
        h.update(&(vv.value.len() as u64).to_le_bytes());
        h.update(vv.value.as_bytes());
        h.update(&vv.version.block.to_le_bytes());
        h.update(&vv.version.tx.to_le_bytes());
    }
    h.finalize()
}

/// Runs the full invariant sweep over `peers` (the live peers of one
/// channel; crashed-and-never-restarted peers must be excluded by the
/// caller). The first peer acts as the reference for durability checks.
pub fn check_invariants(peers: &[Arc<Peer>]) -> InvariantReport {
    let mut violations = Vec::new();

    let Some(reference) = peers.first() else {
        return InvariantReport {
            peers_checked: 0,
            height: 0,
            state_digest: Digest::ZERO,
            committed_txs: 0,
            violations: vec!["no live peers to check".into()],
        };
    };

    let ref_height = reference.ledger().height();
    let ref_tip = reference.ledger().tip_hash();
    let ref_state = state_digest(reference.store().as_ref());
    let (ref_valid, ref_invalid) = reference.ledger().tx_totals();

    for peer in peers {
        let who = format!("peer-{}", peer.id().raw());

        // 2. Chain integrity, independently per peer.
        if let Err(e) = peer.ledger().verify_chain() {
            violations.push(format!("{who}: hash chain broken: {e}"));
        }

        // 1. Convergence with the reference.
        let h = peer.ledger().height();
        if h != ref_height {
            violations.push(format!("{who}: height {h} != reference {ref_height}"));
        }
        let tip = peer.ledger().tip_hash();
        if tip != ref_tip {
            violations.push(format!(
                "{who}: tip {} != reference {}",
                tip.to_hex(),
                ref_tip.to_hex()
            ));
        }
        let state = state_digest(peer.store().as_ref());
        if state != ref_state {
            violations.push(format!(
                "{who}: state digest {} != reference {}",
                state.to_hex(),
                ref_state.to_hex()
            ));
        }
    }

    // 3. Durability: every committed tx on the reference exists everywhere,
    // in the same block with the same verdict. Heights already match (or
    // were flagged above), so a symmetric check adds nothing.
    reference.ledger().for_each(|cb| {
        for (tx, code) in cb.block.txs.iter().zip(&cb.validity) {
            for peer in &peers[1..] {
                match peer.ledger().find_tx(tx.id) {
                    None => violations.push(format!(
                        "peer-{}: committed tx-{} (block {}) lost",
                        peer.id().raw(),
                        tx.id.raw(),
                        cb.block.header.number
                    )),
                    Some((block, verdict)) => {
                        if block != cb.block.header.number || verdict != *code {
                            violations.push(format!(
                                "peer-{}: tx-{} at block {block} verdict {verdict:?}, \
                                 reference has block {} verdict {code:?}",
                                peer.id().raw(),
                                tx.id.raw(),
                                cb.block.header.number
                            ));
                        }
                    }
                }
            }
        }
    });

    InvariantReport {
        peers_checked: peers.len(),
        height: ref_height,
        state_digest: ref_state,
        committed_txs: ref_valid + ref_invalid,
        violations,
    }
}
